//! # p-hom
//!
//! A faithful, production-quality Rust implementation of
//! **"Graph Homomorphism Revisited for Graph Matching"**
//! (Wenfei Fan, Jianzhong Li, Shuai Ma, Hongzhi Wang, Yinghui Wu —
//! PVLDB 3(1): 1161–1172, VLDB 2010).
//!
//! The paper relaxes graph homomorphism / subgraph isomorphism for graph
//! matching: **p-homomorphism** maps *edges to paths* and replaces label
//! equality with a *node-similarity matrix* plus threshold; **1-1 p-hom**
//! adds injectivity. Two metrics quantify partial matches — maximum
//! cardinality (`qualCard`) and maximum overall similarity (`qualSim`) —
//! and four NP-complete optimization problems (CPH, CPH¹⁻¹, SPH, SPH¹⁻¹)
//! get `O(log²(n₁n₂)/(n₁n₂))`-quality approximation algorithms.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`graph`] | digraph substrate: SCC, transitive closure, condensation, bitsets |
//! | [`wis`] | Ramsey / CliqueRemoval / weighted independent set (Boppana–Halldórsson) |
//! | [`sim`] | similarity matrices, shingles, MinHash, tf–idf, HITS, PageRank, node weights |
//! | [`core`] | p-hom & 1-1 p-hom: decision, `compMaxCard`/`compMaxSim` families, product-graph reductions, hardness gadgets, Appendix-B optimizations, bounded-stretch matching, restarts, enumeration, schema embedding |
//! | [`baselines`] | graph simulation, subgraph isomorphism, MCS, graph edit distance, similarity flooding, Blondel |
//! | [`workloads`] | §6 synthetic generator, Web-archive simulator, skeletons, PDG plagiarism, email campaigns |
//! | [`dynamic`] | semi-dynamic closure maintenance for live graphs: incremental inserts, bounded-cone deletes |
//! | [`engine`] | prepared-graph matching engine: query planner, parallel batch execution, closure caching, live updates |
//! | [`trace`] | per-query traces (typed spans + sampled counters), windowed metrics registry, slow-trace retention |
//! | [`service`] | request/response service layer: multi-graph registry with WCC sharding, admission control, typed errors |
//! | [`cluster`] | cross-process scale-out: versioned wire codec, TCP/channel transports, worker process mode, routing front-end with read replicas and failover |
//! | [`audit`] | correctness tooling: project lint pass (`phom lint`) and structural invariant validators over snapshots (`phom audit`) |
//!
//! ## Quickstart
//!
//! ```
//! use phom::prelude::*;
//!
//! // Pattern: an edge (books -> textbooks).
//! let g1 = graph_from_labels(&["books", "textbooks"], &[("books", "textbooks")]);
//! // Data: the same reachable through a category page.
//! let g2 = graph_from_labels(
//!     &["books", "categories", "school"],
//!     &[("books", "categories"), ("categories", "school")],
//! );
//! let mat = matrix_from_label_fn(&g1, &g2, |a, b| match (a, b) {
//!     ("books", "books") => 1.0,
//!     ("textbooks", "school") => 0.8,
//!     _ => 0.0,
//! });
//!
//! // Edge-to-edge notions fail, p-hom succeeds:
//! assert!(!is_subgraph_isomorphic(&g1, &g2));
//! let outcome = match_graphs(
//!     &g1, &g2, &mat,
//!     &NodeWeights::uniform(2),
//!     &MatcherConfig { xi: 0.75, ..Default::default() },
//! );
//! assert_eq!(outcome.qual_card, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use phom_audit as audit;
pub use phom_baselines as baselines;
pub use phom_cluster as cluster;
pub use phom_core as core;
pub use phom_dynamic as dynamic;
pub use phom_engine as engine;
pub use phom_graph as graph;
pub use phom_service as service;
pub use phom_sim as sim;
pub use phom_trace as trace;
pub use phom_wis as wis;
pub use phom_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use phom_audit::{audit_snapshot, lint_workspace, AuditError, AuditReport, LintReport};
    pub use phom_baselines::{
        blondel_similarity, extract_matching, feature_similarity, flooding_match_quality,
        graph_simulation, is_subgraph_isomorphic, maximum_common_subgraph, similarity_flooding,
        subgraph_isomorphism, FloodingConfig,
    };
    pub use phom_baselines::{ged_similarity, graph_edit_distance, EditResult};
    pub use phom_cluster::{
        ChannelHub, CodecError, FrameConfig, Router, RouterConfig, RouterError, RouterStats,
        TcpTransport, Transport, TransportTimeouts, WireMessage, WorkerOptions, WorkerServer,
    };
    pub use phom_core::{ac_prefilter_matrix, edge_witnesses, stretch_stats, StretchStats};
    pub use phom_core::{
        check_schema_embedding, comp_max_card_bounded, comp_max_card_restarts,
        comp_max_sim_restarts, decide_phom_bounded, enumerate_phom_mappings, find_schema_embedding,
        minimal_stretch, verify_phom_bounded, EmbeddingViolation, RestartConfig, Stretch,
    };
    pub use phom_core::{
        comp_max_card, comp_max_card_1_1, comp_max_sim, comp_max_sim_1_1, decide_phom,
        exact_optimum, exact_optimum_budgeted, match_graphs, match_graphs_prepared, match_mutual,
        match_paths, naive_max_card, naive_max_sim, verify_phom, AlgoConfig, Algorithm,
        MatchBudget, MatchOutcome, MatcherConfig, Objective, PHomMapping, PreparedInputs,
        ProductGraph, Selection,
    };
    pub use phom_dynamic::{DynamicConfig, GraphUpdate, SemiDynamicClosure};
    pub use phom_engine::{
        percentile_micros, BatchOutcome, ClosureBackend, CompressionPolicy, Engine, EngineConfig,
        EngineStats, PlanKind, PlannerConfig, PrepareOptions, PreparedGraph, Query, QueryConfig,
        QueryResult, ReachIndex, UpdateOutcome, UpdateStats, DEFAULT_CHAIN_NODE_THRESHOLD,
    };
    pub use phom_graph::{
        component_groups, compress_closure, graph_from_labels, tarjan_scc,
        weakly_connected_components, BitSet, ChainIndex, DenseClosure, DiGraph, DynamicClosure,
        NodeId, ReachabilityIndex, TransitiveClosure, UpdateEffect,
    };
    pub use phom_service::{
        plan_name_of, GraphInfo, GraphRegistry, QueryResponse, Request, Response, Service,
        ServiceConfig, ServiceError, ServiceLabel, ServiceStats, ShardingConfig, UpdateSummary,
    };
    pub use phom_sim::{
        hits_scores, matrix_from_label_fn, text_similarity, NodeWeights, SimMatrix,
        SimMatrixBuilder,
    };
    pub use phom_trace::{
        LatencyObjective, MetricsRegistry, QueryTrace, RateObjective, SloConfig, SlowTraceRing,
        Span, SpanKind, TraceCounters, TraceSink,
    };
    pub use phom_wis::{
        clique_removal, max_clique, max_independent_set, ramsey_all, weighted_independent_set,
        UGraph,
    };
    pub use phom_workloads::{
        email_matrix, generate_archive, generate_batch, generate_campaign, generate_instance,
        shingle_matrix, skeleton_alpha, skeleton_top_k, CampaignConfig, SiteCategory, SiteSpec,
        SyntheticConfig,
    };
}
