//! `phom` — command-line graph matcher.
//!
//! ```sh
//! phom match    <pattern.graph> <data.graph> [--xi F] [--algorithm card|card11|sim|sim11]
//!               [--exact] [--witness] [--dot] [--max-stretch K] [--restarts R]
//! phom decide   <pattern.graph> <data.graph> [--xi F] [--one-to-one] [--max-stretch K]
//! phom stats    <file.graph>
//! phom generate <pattern.out> <data.out> [--nodes M] [--noise P] [--seed S]
//! phom engine-batch [--workload synthetic|websim] [--queries N] [--xi F]
//!               [--threads T] [--nodes M] [--noise P] [--seed S] [--cold]
//!               [--closure-backend dense|chain|auto] [--arrivals open:<rate>]
//!               [--timeout-micros U] [--intra-workers W] [--stats-json PATH]
//! phom engine-live [--ops N] [--update-ratio R] [--xi F] [--threads T]
//!               [--nodes M] [--noise P] [--seed S]
//!               [--closure-backend dense|chain|auto]
//!               [--timeout-micros U] [--intra-workers W] [--stats-json PATH]
//! ```
//!
//! Graph files use the text format of `phom_graph::serialize`
//! (`node <id> <label>` / `edge <from> <to>` lines; `#` comments).
//! Node similarity is label equality unless `--text-sim W` is given, in
//! which case labels are treated as whitespace-tokenized page content and
//! compared with `W`-shingles.

use phom::graph::serialize::from_text;
use phom::prelude::*;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: phom <match|decide|stats> <files..> [flags]; see --help");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!(
            "phom — p-homomorphism graph matching (Fan et al., VLDB 2010)\n\n\
             phom match    <pattern> <data> [--xi F] [--algorithm card|card11|sim|sim11]\n\
             \x20                           [--text-sim W] [--exact] [--witness] [--dot]\n\
             \x20                           [--max-stretch K] [--restarts R]\n\
             phom decide   <pattern> <data> [--xi F] [--one-to-one] [--text-sim W]\n\
             \x20                           [--max-stretch K]\n\
             phom stats    <file>\n\
             phom generate <pattern.out> <data.out> [--nodes M] [--noise P] [--seed S]\n\
             phom engine-batch [--workload synthetic|websim] [--queries N] [--xi F]\n\
             \x20                           [--threads T] [--nodes M] [--noise P] [--seed S] [--cold]\n\
             \x20                           [--closure-backend dense|chain|auto]\n\
             \x20                           [--arrivals open:<rate>] [--timeout-micros U]\n\
             \x20                           [--intra-workers W] [--stats-json PATH]\n\
             phom engine-live [--ops N] [--update-ratio R] [--xi F] [--threads T]\n\
             \x20                           [--nodes M] [--noise P] [--seed S]\n\
             \x20                           [--closure-backend dense|chain|auto]\n\
             \x20                           [--timeout-micros U] [--intra-workers W]\n\
             \x20                           [--stats-json PATH]"
        );
        return ExitCode::SUCCESS;
    }

    match args[0].as_str() {
        "match" => cmd_match(&args[1..]),
        "decide" => cmd_decide(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "engine-batch" => cmd_engine_batch(&args[1..]),
        "engine-live" => cmd_engine_live(&args[1..]),
        other => fail(&format!("unknown command {other:?}")),
    }
}

struct Flags {
    xi: f64,
    algorithm: Algorithm,
    one_to_one: bool,
    text_sim: Option<usize>,
    exact: bool,
    witness: bool,
    dot: bool,
    max_stretch: Option<usize>,
    restarts: Option<usize>,
    nodes: usize,
    noise: f64,
    seed: u64,
    workload: String,
    queries: usize,
    threads: usize,
    cold: bool,
    ops: usize,
    update_ratio: f64,
    stats_json: Option<String>,
    closure_backend: ClosureBackend,
    /// Open-loop arrival rate in queries/second (`--arrivals open:<rate>`).
    arrival_rate: Option<f64>,
    /// Per-query deadline in microseconds (`--timeout-micros`).
    timeout_micros: Option<u64>,
    /// Intra-query per-component workers (`--intra-workers`; 0 = all cores).
    intra_workers: usize,
    files: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        xi: 0.75,
        algorithm: Algorithm::MaxCard,
        one_to_one: false,
        text_sim: None,
        exact: false,
        witness: false,
        dot: false,
        max_stretch: None,
        restarts: None,
        nodes: 100,
        noise: 0.1,
        seed: 2010,
        workload: "synthetic".to_owned(),
        queries: 100,
        threads: 0,
        cold: false,
        ops: 200,
        update_ratio: 0.2,
        stats_json: None,
        closure_backend: ClosureBackend::Auto,
        arrival_rate: None,
        timeout_micros: None,
        intra_workers: 1,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--xi" => {
                f.xi = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--xi needs a number in [0,1]")?;
            }
            "--algorithm" => {
                f.algorithm = match it.next().map(String::as_str) {
                    Some("card") => Algorithm::MaxCard,
                    Some("card11") => Algorithm::MaxCard1to1,
                    Some("sim") => Algorithm::MaxSim,
                    Some("sim11") => Algorithm::MaxSim1to1,
                    other => return Err(format!("unknown algorithm {other:?}")),
                };
            }
            "--text-sim" => {
                f.text_sim = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--text-sim needs a window size")?,
                );
            }
            "--max-stretch" => {
                f.max_stretch = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-stretch needs a positive hop count")?,
                );
            }
            "--restarts" => {
                f.restarts = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--restarts needs a positive count")?,
                );
            }
            "--nodes" => {
                f.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--nodes needs a positive count")?;
            }
            "--noise" => {
                f.noise = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--noise needs a rate in [0,1]")?;
            }
            "--seed" => {
                f.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--workload" => {
                f.workload = it
                    .next()
                    .cloned()
                    .ok_or("--workload needs synthetic|websim")?;
            }
            "--queries" => {
                f.queries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--queries needs a positive count")?;
            }
            "--threads" => {
                f.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a count (0 = all cores)")?;
            }
            "--ops" => {
                f.ops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--ops needs a positive count")?;
            }
            "--update-ratio" => {
                f.update_ratio = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--update-ratio needs a rate in [0,1]")?;
            }
            "--stats-json" => {
                f.stats_json = Some(
                    it.next()
                        .cloned()
                        .ok_or("--stats-json needs an output path")?,
                );
            }
            "--closure-backend" => {
                f.closure_backend = it
                    .next()
                    .and_then(|v| ClosureBackend::parse(v))
                    .ok_or("--closure-backend needs dense|chain|auto")?;
            }
            "--timeout-micros" => {
                f.timeout_micros = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--timeout-micros needs a microsecond count")?,
                );
            }
            "--intra-workers" => {
                f.intra_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--intra-workers needs a worker count (0 = all cores)")?;
            }
            "--arrivals" => {
                let spec = it.next().ok_or("--arrivals needs open:<rate>")?;
                let rate = spec
                    .strip_prefix("open:")
                    .and_then(|r| r.parse::<f64>().ok())
                    .filter(|r| *r > 0.0 && r.is_finite())
                    .ok_or("--arrivals needs open:<rate> with rate > 0 (queries/sec)")?;
                f.arrival_rate = Some(rate);
            }
            "--cold" => f.cold = true,
            "--one-to-one" => f.one_to_one = true,
            "--exact" => f.exact = true,
            "--witness" => f.witness = true,
            "--dot" => f.dot = true,
            other if !other.starts_with('-') => f.files.push(other.to_owned()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(f)
}

fn load(path: &str) -> Result<DiGraph<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // DOT interop: accept Graphviz files by extension or header sniff.
    if path.ends_with(".dot") || text.trim_start().starts_with("digraph") {
        return phom::graph::from_dot(&text).map_err(|e| format!("{path}: {e}"));
    }
    from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn build_matrix(g1: &DiGraph<String>, g2: &DiGraph<String>, f: &Flags) -> SimMatrix {
    match f.text_sim {
        Some(w) => matrix_from_label_fn(g1, g2, |a, b| text_similarity(a, b, w)),
        None => SimMatrix::label_equality(g1, g2),
    }
}

fn cmd_match(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [p1, p2] = f.files.as_slice() else {
        return fail("match needs exactly two graph files");
    };
    let (g1, g2) = match (load(p1), load(p2)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let mat = build_matrix(&g1, &g2, &f);
    let weights = NodeWeights::uniform(g1.node_count());

    let mapping = if f.exact {
        if f.max_stretch.is_some() || f.restarts.is_some() {
            return fail("--exact does not combine with --max-stretch / --restarts");
        }
        let objective = if f.algorithm.similarity() {
            Objective::Similarity
        } else {
            Objective::Cardinality
        };
        exact_optimum(
            &g1,
            &g2,
            &mat,
            f.xi,
            f.algorithm.injective(),
            objective,
            &weights,
        )
    } else if f.max_stretch.is_some() || f.restarts.is_some() {
        // Extension paths: stretch-bounded reachability and/or
        // best-of-restarts, composed through a shared closure.
        let closure = match f.max_stretch {
            Some(k) => Stretch::AtMost(k).closure_of(&g2),
            None => Stretch::Unbounded.closure_of(&g2),
        };
        let cfg = AlgoConfig {
            xi: f.xi,
            ..Default::default()
        };
        let rcfg = RestartConfig {
            restarts: f.restarts.unwrap_or(1).max(1),
            ..Default::default()
        };
        if f.algorithm.similarity() {
            phom::core::comp_max_sim_restarts_with(
                &g1,
                &closure,
                &mat,
                &weights,
                &cfg,
                f.algorithm.injective(),
                &rcfg,
            )
        } else {
            phom::core::comp_max_card_restarts_with(
                &g1,
                &closure,
                &mat,
                &cfg,
                f.algorithm.injective(),
                &rcfg,
            )
        }
    } else {
        match_graphs(
            &g1,
            &g2,
            &mat,
            &weights,
            &MatcherConfig {
                algorithm: f.algorithm,
                xi: f.xi,
                ..Default::default()
            },
        )
        .mapping
    };

    println!(
        "qualCard = {:.4}   qualSim = {:.4}   mapped {}/{} nodes",
        mapping.qual_card(),
        mapping.qual_sim(&weights, &mat),
        mapping.len(),
        g1.node_count()
    );
    for (v, u) in mapping.pairs() {
        println!(
            "  {} -> {}   (mat {:.2})",
            g1.label(v),
            g2.label(u),
            mat.score(v, u)
        );
    }
    if f.witness {
        match edge_witnesses(&g1, &g2, &mapping) {
            Ok(ws) => {
                for w in ws {
                    let path: Vec<&str> = w.path.iter().map(|&x| g2.label(x).as_str()).collect();
                    println!(
                        "  edge ({} -> {})  ==>  {}",
                        g1.label(w.from),
                        g1.label(w.to),
                        path.join("/")
                    );
                }
            }
            Err((a, b)) => {
                eprintln!("internal error: edge ({a:?},{b:?}) lacks a witness");
                return ExitCode::FAILURE;
            }
        }
    }
    if f.dot {
        println!("{}", phom::graph::dot::to_dot("pattern", &g1));
    }
    ExitCode::SUCCESS
}

fn cmd_decide(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [p1, p2] = f.files.as_slice() else {
        return fail("decide needs exactly two graph files");
    };
    let (g1, g2) = match (load(p1), load(p2)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let mat = build_matrix(&g1, &g2, &f);
    let decision = match f.max_stretch {
        Some(k) => decide_phom_bounded(&g1, &g2, &mat, f.xi, f.one_to_one, k),
        None => decide_phom(&g1, &g2, &mat, f.xi, f.one_to_one),
    };
    match decision {
        Some(m) => {
            println!(
                "YES: pattern is {}p-hom to data",
                if f.one_to_one { "1-1 " } else { "" }
            );
            for (v, u) in m.pairs() {
                println!("  {} -> {}", g1.label(v), g2.label(u));
            }
            ExitCode::SUCCESS
        }
        None => {
            println!("NO");
            ExitCode::FAILURE
        }
    }
}

/// `phom generate`: writes a §6-style synthetic instance — a pattern
/// graph and a noisy data graph derived from it — to two files in the
/// text format `match`/`decide` read back.
fn cmd_generate(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [p_out, d_out] = f.files.as_slice() else {
        return fail("generate needs two output paths (pattern, data)");
    };
    if !(0.0..=1.0).contains(&f.noise) {
        return fail("--noise must be in [0,1]");
    }
    let cfg = SyntheticConfig {
        m: f.nodes,
        noise: f.noise,
        seed: f.seed,
    };
    let inst = generate_instance(&cfg, 1);
    let to_named = |g: &DiGraph<phom::workloads::synthetic::Label>| -> DiGraph<String> {
        g.map_labels(|_, l| format!("L{l}"))
    };
    for (path, g) in [(p_out, &inst.g1), (d_out, &inst.g2)] {
        let text = phom::graph::serialize::to_text(&to_named(g));
        if let Err(e) = std::fs::write(path, text) {
            return fail(&format!("cannot write {path}: {e}"));
        }
    }
    println!(
        "wrote pattern ({} nodes, {} edges) -> {p_out}",
        inst.g1.node_count(),
        inst.g1.edge_count()
    );
    println!(
        "wrote data    ({} nodes, {} edges) -> {d_out}",
        inst.g2.node_count(),
        inst.g2.edge_count()
    );
    ExitCode::SUCCESS
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [path] = f.files.as_slice() else {
        return fail("stats needs exactly one graph file");
    };
    let g = match load(path) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let scc = tarjan_scc(&g);
    let comps = weakly_connected_components(&g);
    let m = phom::graph::metrics::graph_metrics(&g);
    println!("|V| = {}", m.nodes);
    println!("|E| = {}", m.edges);
    println!("avgDeg = {:.3}", m.avg_degree);
    println!("maxDeg = {}", m.max_degree);
    println!("density = {:.5}", m.density);
    println!("reciprocity = {:.3}", m.reciprocity);
    println!("isolated nodes = {}", m.isolated);
    println!("SCCs = {}", scc.count());
    println!("weakly connected components = {}", comps.len());
    let closure = TransitiveClosure::new(&g);
    println!("|E+| (closure edges) = {}", closure.edge_count());
    let hist = phom::graph::metrics::degree_histogram(&g);
    let rendered: Vec<String> = hist
        .iter()
        .enumerate()
        .map(|(k, c)| format!("2^{k}:{c}"))
        .collect();
    println!("degree histogram (log buckets) = {}", rendered.join(" "));
    ExitCode::SUCCESS
}

/// `phom engine-batch`: generates a workload-driven batch of pattern
/// queries against one data graph and runs it through the prepared-graph
/// engine, reporting plans chosen, closure reuse, and parallelism. With
/// `--cold`, re-runs every query through the unprepared per-query path
/// (`match_graphs`, closure rebuilt each time) and reports the speedup.
fn cmd_engine_batch(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if !f.files.is_empty() {
        return fail("engine-batch takes no file arguments (use --workload)");
    }
    match f.workload.as_str() {
        "synthetic" => {
            let cfg = SyntheticConfig {
                m: f.nodes,
                noise: f.noise,
                seed: f.seed,
            };
            let inst = phom::workloads::generate_instance(&cfg, 1);
            let data = std::sync::Arc::new(inst.g2.clone());
            // Service-shaped queries: small patterns (sliding windows of
            // the template) against one large prepared data graph — the
            // regime where the shared closure dominates per-query cost.
            let pattern_nodes = (f.nodes / 5).clamp(4, 40).min(f.nodes);
            let windows: Vec<std::sync::Arc<DiGraph<_>>> = (0..8)
                .map(|w| {
                    let lo = (w * f.nodes / 8).min(f.nodes - pattern_nodes);
                    let keep: std::collections::BTreeSet<NodeId> =
                        (lo..lo + pattern_nodes).map(|i| NodeId(i as u32)).collect();
                    std::sync::Arc::new(inst.g1.induced_subgraph(&keep).0)
                })
                .collect();
            let queries: Vec<Query<phom::workloads::synthetic::Label>> = (0..f.queries)
                .map(|i| {
                    let pattern = std::sync::Arc::clone(&windows[i % windows.len()]);
                    let mat =
                        SimMatrix::from_fn(pattern.node_count(), data.node_count(), |v, u| {
                            inst.pool.similarity(*pattern.label(v), *data.label(u))
                        });
                    mixed_query(pattern, mat, f.xi, i)
                })
                .collect();
            run_engine_batch(&data, queries, &f)
        }
        "websim" => {
            let spec = SiteSpec::test_scale(SiteCategory::ALL[0], f.seed);
            let archive = phom::workloads::generate_archive(&spec);
            let data = std::sync::Arc::new(archive.versions[0].clone());
            let patterns: Vec<std::sync::Arc<_>> = archive.versions[1..]
                .iter()
                .map(|v| std::sync::Arc::new(skeleton_top_k(v, 20).graph))
                .collect();
            if patterns.is_empty() {
                return fail("websim archive has a single version; nothing to query");
            }
            let queries: Vec<Query<phom::workloads::Page>> = (0..f.queries)
                .map(|i| {
                    let pattern = std::sync::Arc::clone(&patterns[i % patterns.len()]);
                    let mat = shingle_matrix(&pattern, &data, 3);
                    mixed_query(pattern, mat, f.xi, i)
                })
                .collect();
            run_engine_batch(&data, queries, &f)
        }
        other => fail(&format!("unknown workload {other:?} (synthetic|websim)")),
    }
}

/// Builds query `i` of a mixed batch: the four algorithms round-robin,
/// every 5th query carries a stretch bound, every 9th pins restarts.
fn mixed_query<L>(
    pattern: std::sync::Arc<DiGraph<L>>,
    matrix: SimMatrix,
    xi: f64,
    i: usize,
) -> Query<L> {
    let algorithms = [
        Algorithm::MaxCard,
        Algorithm::MaxCard1to1,
        Algorithm::MaxSim,
        Algorithm::MaxSim1to1,
    ];
    let mut q = Query::new(pattern, matrix);
    q.config = QueryConfig {
        xi,
        algorithm: algorithms[i % 4],
        max_stretch: (i % 5 == 4).then_some(3),
        restarts: (i % 9 == 8).then_some(3),
        ..Default::default()
    };
    q
}

/// The engine-side planner knobs shared by `engine-batch`/`engine-live`:
/// closure backend, per-query deadline, intra-query workers.
fn planner_config(f: &Flags) -> PlannerConfig {
    PlannerConfig {
        closure_backend: f.closure_backend,
        timeout: f.timeout_micros.map(std::time::Duration::from_micros),
        intra_query_workers: f.intra_workers,
        ..Default::default()
    }
}

fn run_engine_batch<L: Clone + Send + Sync + std::hash::Hash + PartialEq>(
    data: &std::sync::Arc<DiGraph<L>>,
    queries: Vec<Query<L>>,
    f: &Flags,
) -> ExitCode {
    let engine: Engine<L> = Engine::new(EngineConfig {
        cache_capacity: 8,
        threads: f.threads,
        planner: planner_config(f),
        ..Default::default()
    });
    if let Some(rate) = f.arrival_rate {
        if f.cold {
            return fail("--cold does not combine with --arrivals (open-loop replay has no closed-loop twin)");
        }
        return run_open_loop(&engine, data, &queries, rate, f);
    }
    let started = std::time::Instant::now();
    let batch = engine.execute_batch(data, &queries);
    let elapsed = started.elapsed();
    let stats = &batch.stats;

    let prep = engine.prepare(data); // cache hit: reuse for reporting
    let pstats = prep.stats();
    println!(
        "data graph: {} nodes, {} edges, {} SCCs, |E+| = {} \
         [{} backend, {:.1} KiB]{}",
        pstats.nodes,
        pstats.edges,
        pstats.scc_count,
        pstats.closure_edges,
        pstats.closure_backend,
        pstats.closure_memory_bytes as f64 / 1024.0,
        match pstats.compressed_nodes {
            Some(c) => format!(", compressed to {c} nodes"),
            None => String::new(),
        }
    );
    println!(
        "prepared once in {:.2} ms; closure computations: {} (cache hits {})",
        pstats.prepare_micros as f64 / 1e3,
        stats.prepares,
        stats.cache_hits,
    );
    println!(
        "batch: {} queries in {:.2} ms ({:.3} ms/query), workers = {}, peak parallelism = {}",
        batch.results.len(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / batch.results.len().max(1) as f64,
        stats.last_batch_workers,
        stats.last_batch_peak_parallel,
    );
    println!(
        "plans: approx = {}, exact = {}, bounded = {} (bounded closures built: {}), baseline = {}",
        stats.approx_plans,
        stats.exact_plans,
        stats.bounded_plans,
        prep.bounded_closures_computed(),
        stats.baseline_plans,
    );
    if f.intra_workers != 1 || f.timeout_micros.is_some() {
        println!(
            "deadlines: timeouts = {}, intra-query workers = {}, \
             components matched in parallel = {}",
            stats.timeouts,
            if f.intra_workers == 0 {
                "all-cores".to_owned()
            } else {
                f.intra_workers.to_string()
            },
            stats.intra_parallel_components,
        );
    }
    if !batch.results.is_empty() {
        let mean_card: f64 = batch
            .results
            .iter()
            .map(|r| r.outcome.qual_card)
            .sum::<f64>()
            / batch.results.len() as f64;
        println!("mean qualCard = {mean_card:.4}");
        println!(
            "query latency: p50 = {} us, p95 = {} us, p99 = {} us",
            stats.last_batch_p50_micros, stats.last_batch_p95_micros, stats.last_batch_p99_micros,
        );
    }

    if f.cold {
        // Same worker count as the prepared batch, so the ratio isolates
        // closure reuse rather than crediting multi-core parallelism.
        let workers = stats.last_batch_workers.max(1);
        let started = std::time::Instant::now();
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if i >= queries.len() {
                        break;
                    }
                    let (q, r) = (&queries[i], &batch.results[i]);
                    let weights = q.effective_weights();
                    let cfg = MatcherConfig {
                        algorithm: q.config.algorithm,
                        xi: q.config.xi,
                        max_stretch: q.config.max_stretch,
                        restarts: r.plan.restarts,
                        ..Default::default()
                    };
                    let _ = match_graphs(&q.pattern, data, &q.matrix, &weights, &cfg);
                });
            }
        });
        let cold = started.elapsed();
        println!(
            "cold comparison: per-query closure rebuild ({workers} workers) took {:.2} ms \
             ({:.2}x the prepared batch)",
            cold.as_secs_f64() * 1e3,
            cold.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
        );
    }
    if let Err(e) = write_stats_json(f, &engine.stats(), pstats, None) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

/// Open-loop replay (`--arrivals open:<rate>`): queries arrive on a fixed
/// schedule — query `i` at `i/rate` seconds — independent of completions,
/// the load-generation discipline that exposes queueing delay instead of
/// hiding it (closed-loop batches only ever measure service time). A
/// bounded worker pool claims queries in arrival order, sleeping until
/// each one's scheduled instant; reported **response** latency is
/// completion minus scheduled arrival, so a saturated engine shows its
/// tail honestly in p95/p99.
fn run_open_loop<L: Clone + Send + Sync + std::hash::Hash + PartialEq>(
    engine: &Engine<L>,
    data: &std::sync::Arc<DiGraph<L>>,
    queries: &[Query<L>],
    rate: f64,
    f: &Flags,
) -> ExitCode {
    let prepared = engine.prepare(data);
    let workers = if f.threads > 0 {
        f.threads
    } else {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }
    .min(queries.len())
    .max(1);
    let start = std::time::Instant::now();
    let next = std::sync::atomic::AtomicUsize::new(0);
    // (service, response) latency pairs in microseconds.
    let latencies: std::sync::Mutex<Vec<(u128, u128)>> =
        std::sync::Mutex::new(Vec::with_capacity(queries.len()));
    let card_sum = std::sync::Mutex::new(0.0f64);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= queries.len() {
                    break;
                }
                let sched = std::time::Duration::from_secs_f64(i as f64 / rate);
                let now = start.elapsed();
                if now < sched {
                    std::thread::sleep(sched - now);
                }
                let r = engine.execute(&prepared, &queries[i]);
                let response = start.elapsed().saturating_sub(sched).as_micros();
                latencies
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((r.micros, response));
                *card_sum.lock().unwrap_or_else(|e| e.into_inner()) += r.outcome.qual_card;
            });
        }
    });
    let elapsed = start.elapsed();
    let pairs = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut service: Vec<u128> = pairs.iter().map(|&(s, _)| s).collect();
    let mut response: Vec<u128> = pairs.iter().map(|&(_, r)| r).collect();
    service.sort_unstable();
    response.sort_unstable();

    let pstats = prepared.stats();
    println!(
        "data graph: {} nodes, {} edges, |E+| = {} [{} backend, {:.1} KiB]",
        pstats.nodes,
        pstats.edges,
        pstats.closure_edges,
        pstats.closure_backend,
        pstats.closure_memory_bytes as f64 / 1024.0,
    );
    println!(
        "open-loop replay: {} queries at {rate:.1} q/s over {:.2} ms \
         ({workers} workers, achieved {:.1} q/s)",
        queries.len(),
        elapsed.as_secs_f64() * 1e3,
        queries.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "response latency (arrival to completion): p50 = {} us, p95 = {} us, p99 = {} us",
        percentile_micros(&response, 50),
        percentile_micros(&response, 95),
        percentile_micros(&response, 99),
    );
    println!(
        "service latency (execution only):         p50 = {} us, p95 = {} us, p99 = {} us",
        percentile_micros(&service, 50),
        percentile_micros(&service, 95),
        percentile_micros(&service, 99),
    );
    if !pairs.is_empty() {
        println!(
            "mean qualCard = {:.4}",
            card_sum.into_inner().unwrap_or_else(|e| e.into_inner()) / pairs.len() as f64
        );
    }
    // Export: service percentiles go in the `last_batch_p*` slots (their
    // documented meaning), response percentiles in the dedicated
    // `response_p*` fields — the field names must not lie about which
    // latency they carry.
    let mut stats = engine.stats();
    stats.last_batch_p50_micros = percentile_micros(&service, 50);
    stats.last_batch_p95_micros = percentile_micros(&service, 95);
    stats.last_batch_p99_micros = percentile_micros(&service, 99);
    stats.response_p50_micros = percentile_micros(&response, 50);
    stats.response_p95_micros = percentile_micros(&response, 95);
    stats.response_p99_micros = percentile_micros(&response, 99);
    if let Err(e) = write_stats_json(f, &stats, pstats, None) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

/// Writes the `--stats-json` export (engine counters + preparation stats
/// + live-update stats when present) if the flag was given.
fn write_stats_json(
    f: &Flags,
    engine: &EngineStats,
    prepare: &phom::engine::PrepareStats,
    updates: Option<&UpdateStats>,
) -> Result<(), String> {
    let Some(path) = &f.stats_json else {
        return Ok(());
    };
    let json = format!(
        "{{\"engine\":{},\"prepare\":{},\"updates\":{}}}\n",
        engine.to_json(),
        prepare.to_json(),
        updates.map_or("null".to_owned(), UpdateStats::to_json),
    );
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("stats JSON written to {path}");
    Ok(())
}

/// `phom engine-live`: replays an interleaved stream of edge updates and
/// pattern queries against one evolving synthetic data graph. Each update
/// goes through `Engine::apply_updates` (semi-dynamic closure maintenance
/// plus cache re-keying); each query runs against the current prepared
/// version. Reports the incremental/rebuild split and compares the mean
/// apply cost against one full re-prepare of the final graph.
fn cmd_engine_live(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if !f.files.is_empty() {
        return fail("engine-live takes no file arguments");
    }
    if !(0.0..=1.0).contains(&f.update_ratio) {
        return fail("--update-ratio must be in [0,1]");
    }
    let cfg = SyntheticConfig {
        m: f.nodes,
        noise: f.noise,
        seed: f.seed,
    };
    let inst = phom::workloads::generate_instance(&cfg, 1);
    let mut data = std::sync::Arc::new(inst.g2.clone());
    let n = data.node_count();
    // Window patterns as in engine-batch: label-stable, so standing query
    // matrices survive edge updates (updates are edge-level).
    let pattern_nodes = (f.nodes / 5).clamp(4, 40).min(f.nodes);
    let windows: Vec<std::sync::Arc<DiGraph<phom::workloads::synthetic::Label>>> = (0..8)
        .map(|w| {
            let lo = (w * f.nodes / 8).min(f.nodes - pattern_nodes);
            let keep: std::collections::BTreeSet<NodeId> =
                (lo..lo + pattern_nodes).map(|i| NodeId(i as u32)).collect();
            std::sync::Arc::new(inst.g1.induced_subgraph(&keep).0)
        })
        .collect();

    let engine: Engine<phom::workloads::synthetic::Label> = Engine::new(EngineConfig {
        cache_capacity: 8,
        threads: f.threads,
        planner: planner_config(&f),
        ..Default::default()
    });
    let mut rng = phom::graph::XorShift64::new(f.seed ^ 0x6c69_7665); // "live"
    let mut agg = UpdateStats::default();
    let (mut queries_run, mut updates_run) = (0usize, 0usize);
    let mut query_micros = 0u128;
    let mut card_sum = 0.0f64;
    let started = std::time::Instant::now();
    for i in 0..f.ops {
        if rng.unit() < f.update_ratio && n >= 2 {
            let a = NodeId(rng.below(n) as u32);
            let b = NodeId(rng.below(n) as u32);
            let update = if data.has_edge(a, b) {
                phom::dynamic::GraphUpdate::RemoveEdge(a, b)
            } else {
                phom::dynamic::GraphUpdate::InsertEdge(a, b)
            };
            let outcome = engine.apply_updates(&data, &[update]);
            agg.absorb(&outcome.stats);
            data = std::sync::Arc::clone(outcome.prepared.graph());
            updates_run += 1;
        } else {
            let pattern = std::sync::Arc::clone(&windows[i % windows.len()]);
            let mat = SimMatrix::from_fn(pattern.node_count(), n, |v, u| {
                inst.pool.similarity(*pattern.label(v), *data.label(u))
            });
            let q = mixed_query(pattern, mat, f.xi, i);
            let prepared = engine.prepare(&data);
            let r = engine.execute(&prepared, &q);
            query_micros += r.micros;
            card_sum += r.outcome.qual_card;
            queries_run += 1;
        }
    }
    let elapsed = started.elapsed();

    // The number the subsystem exists to beat: one full re-prepare of the
    // final graph, i.e. what every single-edge update used to cost.
    let reprep_start = std::time::Instant::now();
    let full = PreparedGraph::with_backend(
        std::sync::Arc::clone(&data),
        f.closure_backend,
        DEFAULT_CHAIN_NODE_THRESHOLD,
    );
    let reprep = reprep_start.elapsed();

    let stats = engine.stats();
    println!(
        "final graph: {} nodes, {} edges, {} SCCs, |E+| = {}",
        full.stats().nodes,
        full.stats().edges,
        full.stats().scc_count,
        full.stats().closure_edges,
    );
    println!(
        "stream: {} ops in {:.2} ms  ({} queries, {} updates, ratio {:.2})",
        f.ops,
        elapsed.as_secs_f64() * 1e3,
        queries_run,
        updates_run,
        f.update_ratio,
    );
    println!(
        "updates: {} applied ({} incremental, {} closure-unchanged, {} rebuilds, {} no-ops), \
         {} components touched, {} bounded rows refreshed",
        agg.applied,
        agg.incremental,
        agg.closure_unchanged,
        agg.rebuilds,
        agg.noops,
        agg.affected_components,
        agg.bounded_rows_recomputed,
    );
    if updates_run > 0 {
        let mean_apply = agg.apply_micros as f64 / updates_run as f64;
        let full_micros = reprep.as_micros() as f64;
        println!(
            "mean apply = {:.1} us vs full re-prepare = {:.1} us  ({:.2}x faster)",
            mean_apply,
            full_micros,
            full_micros / mean_apply.max(1e-9),
        );
    }
    if queries_run > 0 {
        println!(
            "queries: mean latency = {:.1} us, mean qualCard = {:.4}, \
             prepares = {} (cache hits {})",
            query_micros as f64 / queries_run as f64,
            card_sum / queries_run as f64,
            stats.prepares,
            stats.cache_hits,
        );
    }
    if let Err(e) = write_stats_json(&f, &stats, full.stats(), Some(&agg)) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}
