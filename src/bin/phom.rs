//! `phom` — command-line graph matcher.
//!
//! ```sh
//! phom match    <pattern.graph> <data.graph> [--xi F] [--algorithm card|card11|sim|sim11]
//!               [--exact] [--witness] [--dot] [--max-stretch K] [--restarts R]
//! phom decide   <pattern.graph> <data.graph> [--xi F] [--one-to-one] [--max-stretch K]
//! phom stats    <file.graph>
//! phom generate <pattern.out> <data.out> [--nodes M] [--noise P] [--seed S]
//! ```
//!
//! Graph files use the text format of `phom_graph::serialize`
//! (`node <id> <label>` / `edge <from> <to>` lines; `#` comments).
//! Node similarity is label equality unless `--text-sim W` is given, in
//! which case labels are treated as whitespace-tokenized page content and
//! compared with `W`-shingles.

use phom::graph::serialize::from_text;
use phom::prelude::*;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: phom <match|decide|stats> <files..> [flags]; see --help");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!(
            "phom — p-homomorphism graph matching (Fan et al., VLDB 2010)\n\n\
             phom match    <pattern> <data> [--xi F] [--algorithm card|card11|sim|sim11]\n\
             \x20                           [--text-sim W] [--exact] [--witness] [--dot]\n\
             \x20                           [--max-stretch K] [--restarts R]\n\
             phom decide   <pattern> <data> [--xi F] [--one-to-one] [--text-sim W]\n\
             \x20                           [--max-stretch K]\n\
             phom stats    <file>\n\
             phom generate <pattern.out> <data.out> [--nodes M] [--noise P] [--seed S]"
        );
        return ExitCode::SUCCESS;
    }

    match args[0].as_str() {
        "match" => cmd_match(&args[1..]),
        "decide" => cmd_decide(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        other => fail(&format!("unknown command {other:?}")),
    }
}

struct Flags {
    xi: f64,
    algorithm: Algorithm,
    one_to_one: bool,
    text_sim: Option<usize>,
    exact: bool,
    witness: bool,
    dot: bool,
    max_stretch: Option<usize>,
    restarts: Option<usize>,
    nodes: usize,
    noise: f64,
    seed: u64,
    files: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        xi: 0.75,
        algorithm: Algorithm::MaxCard,
        one_to_one: false,
        text_sim: None,
        exact: false,
        witness: false,
        dot: false,
        max_stretch: None,
        restarts: None,
        nodes: 100,
        noise: 0.1,
        seed: 2010,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--xi" => {
                f.xi = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--xi needs a number in [0,1]")?;
            }
            "--algorithm" => {
                f.algorithm = match it.next().map(String::as_str) {
                    Some("card") => Algorithm::MaxCard,
                    Some("card11") => Algorithm::MaxCard1to1,
                    Some("sim") => Algorithm::MaxSim,
                    Some("sim11") => Algorithm::MaxSim1to1,
                    other => return Err(format!("unknown algorithm {other:?}")),
                };
            }
            "--text-sim" => {
                f.text_sim = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--text-sim needs a window size")?,
                );
            }
            "--max-stretch" => {
                f.max_stretch = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-stretch needs a positive hop count")?,
                );
            }
            "--restarts" => {
                f.restarts = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--restarts needs a positive count")?,
                );
            }
            "--nodes" => {
                f.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--nodes needs a positive count")?;
            }
            "--noise" => {
                f.noise = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--noise needs a rate in [0,1]")?;
            }
            "--seed" => {
                f.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--one-to-one" => f.one_to_one = true,
            "--exact" => f.exact = true,
            "--witness" => f.witness = true,
            "--dot" => f.dot = true,
            other if !other.starts_with('-') => f.files.push(other.to_owned()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(f)
}

fn load(path: &str) -> Result<DiGraph<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // DOT interop: accept Graphviz files by extension or header sniff.
    if path.ends_with(".dot") || text.trim_start().starts_with("digraph") {
        return phom::graph::from_dot(&text).map_err(|e| format!("{path}: {e}"));
    }
    from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn build_matrix(g1: &DiGraph<String>, g2: &DiGraph<String>, f: &Flags) -> SimMatrix {
    match f.text_sim {
        Some(w) => matrix_from_label_fn(g1, g2, |a, b| text_similarity(a, b, w)),
        None => SimMatrix::label_equality(g1, g2),
    }
}

fn cmd_match(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [p1, p2] = f.files.as_slice() else {
        return fail("match needs exactly two graph files");
    };
    let (g1, g2) = match (load(p1), load(p2)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let mat = build_matrix(&g1, &g2, &f);
    let weights = NodeWeights::uniform(g1.node_count());

    let mapping = if f.exact {
        if f.max_stretch.is_some() || f.restarts.is_some() {
            return fail("--exact does not combine with --max-stretch / --restarts");
        }
        let objective = if f.algorithm.similarity() {
            Objective::Similarity
        } else {
            Objective::Cardinality
        };
        exact_optimum(
            &g1,
            &g2,
            &mat,
            f.xi,
            f.algorithm.injective(),
            objective,
            &weights,
        )
    } else if f.max_stretch.is_some() || f.restarts.is_some() {
        // Extension paths: stretch-bounded reachability and/or
        // best-of-restarts, composed through a shared closure.
        let closure = match f.max_stretch {
            Some(k) => Stretch::AtMost(k).closure_of(&g2),
            None => Stretch::Unbounded.closure_of(&g2),
        };
        let cfg = AlgoConfig {
            xi: f.xi,
            ..Default::default()
        };
        let rcfg = RestartConfig {
            restarts: f.restarts.unwrap_or(1).max(1),
            ..Default::default()
        };
        if f.algorithm.similarity() {
            phom::core::comp_max_sim_restarts_with(
                &g1,
                &closure,
                &mat,
                &weights,
                &cfg,
                f.algorithm.injective(),
                &rcfg,
            )
        } else {
            phom::core::comp_max_card_restarts_with(
                &g1,
                &closure,
                &mat,
                &cfg,
                f.algorithm.injective(),
                &rcfg,
            )
        }
    } else {
        match_graphs(
            &g1,
            &g2,
            &mat,
            &weights,
            &MatcherConfig {
                algorithm: f.algorithm,
                xi: f.xi,
                ..Default::default()
            },
        )
        .mapping
    };

    println!(
        "qualCard = {:.4}   qualSim = {:.4}   mapped {}/{} nodes",
        mapping.qual_card(),
        mapping.qual_sim(&weights, &mat),
        mapping.len(),
        g1.node_count()
    );
    for (v, u) in mapping.pairs() {
        println!(
            "  {} -> {}   (mat {:.2})",
            g1.label(v),
            g2.label(u),
            mat.score(v, u)
        );
    }
    if f.witness {
        match edge_witnesses(&g1, &g2, &mapping) {
            Ok(ws) => {
                for w in ws {
                    let path: Vec<&str> = w.path.iter().map(|&x| g2.label(x).as_str()).collect();
                    println!(
                        "  edge ({} -> {})  ==>  {}",
                        g1.label(w.from),
                        g1.label(w.to),
                        path.join("/")
                    );
                }
            }
            Err((a, b)) => {
                eprintln!("internal error: edge ({a:?},{b:?}) lacks a witness");
                return ExitCode::FAILURE;
            }
        }
    }
    if f.dot {
        println!("{}", phom::graph::dot::to_dot("pattern", &g1));
    }
    ExitCode::SUCCESS
}

fn cmd_decide(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [p1, p2] = f.files.as_slice() else {
        return fail("decide needs exactly two graph files");
    };
    let (g1, g2) = match (load(p1), load(p2)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let mat = build_matrix(&g1, &g2, &f);
    let decision = match f.max_stretch {
        Some(k) => decide_phom_bounded(&g1, &g2, &mat, f.xi, f.one_to_one, k),
        None => decide_phom(&g1, &g2, &mat, f.xi, f.one_to_one),
    };
    match decision {
        Some(m) => {
            println!(
                "YES: pattern is {}p-hom to data",
                if f.one_to_one { "1-1 " } else { "" }
            );
            for (v, u) in m.pairs() {
                println!("  {} -> {}", g1.label(v), g2.label(u));
            }
            ExitCode::SUCCESS
        }
        None => {
            println!("NO");
            ExitCode::FAILURE
        }
    }
}

/// `phom generate`: writes a §6-style synthetic instance — a pattern
/// graph and a noisy data graph derived from it — to two files in the
/// text format `match`/`decide` read back.
fn cmd_generate(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [p_out, d_out] = f.files.as_slice() else {
        return fail("generate needs two output paths (pattern, data)");
    };
    if !(0.0..=1.0).contains(&f.noise) {
        return fail("--noise must be in [0,1]");
    }
    let cfg = SyntheticConfig {
        m: f.nodes,
        noise: f.noise,
        seed: f.seed,
    };
    let inst = generate_instance(&cfg, 1);
    let to_named = |g: &DiGraph<phom::workloads::synthetic::Label>| -> DiGraph<String> {
        g.map_labels(|_, l| format!("L{l}"))
    };
    for (path, g) in [(p_out, &inst.g1), (d_out, &inst.g2)] {
        let text = phom::graph::serialize::to_text(&to_named(g));
        if let Err(e) = std::fs::write(path, text) {
            return fail(&format!("cannot write {path}: {e}"));
        }
    }
    println!(
        "wrote pattern ({} nodes, {} edges) -> {p_out}",
        inst.g1.node_count(),
        inst.g1.edge_count()
    );
    println!(
        "wrote data    ({} nodes, {} edges) -> {d_out}",
        inst.g2.node_count(),
        inst.g2.edge_count()
    );
    ExitCode::SUCCESS
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [path] = f.files.as_slice() else {
        return fail("stats needs exactly one graph file");
    };
    let g = match load(path) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let scc = tarjan_scc(&g);
    let comps = weakly_connected_components(&g);
    let m = phom::graph::metrics::graph_metrics(&g);
    println!("|V| = {}", m.nodes);
    println!("|E| = {}", m.edges);
    println!("avgDeg = {:.3}", m.avg_degree);
    println!("maxDeg = {}", m.max_degree);
    println!("density = {:.5}", m.density);
    println!("reciprocity = {:.3}", m.reciprocity);
    println!("isolated nodes = {}", m.isolated);
    println!("SCCs = {}", scc.count());
    println!("weakly connected components = {}", comps.len());
    let closure = TransitiveClosure::new(&g);
    println!("|E+| (closure edges) = {}", closure.edge_count());
    let hist = phom::graph::metrics::degree_histogram(&g);
    let rendered: Vec<String> = hist
        .iter()
        .enumerate()
        .map(|(k, c)| format!("2^{k}:{c}"))
        .collect();
    println!("degree histogram (log buckets) = {}", rendered.join(" "));
    ExitCode::SUCCESS
}
