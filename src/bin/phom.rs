//! `phom` — command-line graph matcher.
//!
//! ```sh
//! phom match    <pattern.graph> <data.graph> [--xi F] [--algorithm card|card11|sim|sim11]
//!               [--exact] [--witness] [--dot] [--max-stretch K] [--restarts R]
//! phom decide   <pattern.graph> <data.graph> [--xi F] [--one-to-one] [--max-stretch K]
//! phom stats    <file.graph>
//! phom generate <pattern.out> <data.out> [--nodes M] [--noise P] [--seed S]
//! phom engine-batch [--workload synthetic|websim] [--queries N] [--xi F]
//!               [--threads T] [--nodes M] [--noise P] [--seed S] [--cold]
//!               [--algorithm card|card11|sim|sim11]
//!               [--closure-backend dense|chain|twohop|auto]
//!               [--arrivals open:<rate>|poisson:<rate>] [--queue-depth D]
//!               [--timeout-micros U] [--intra-workers W] [--stats-json PATH]
//!               [--trace-json PATH] [--slow-query-micros T]
//! phom engine-live [--ops N] [--update-ratio R] [--xi F] [--threads T]
//!               [--nodes M] [--noise P] [--seed S]
//!               [--closure-backend dense|chain|twohop|auto]
//!               [--timeout-micros U] [--intra-workers W] [--stats-json PATH]
//!               [--trace-json PATH] [--slow-query-micros T]
//! phom serve-sim [--graphs G] [--parts K] [--nodes M] [--queries N]
//!               [--update-ratio R] [--queue-depth D] [--threads T]
//!               [--closure-backend dense|chain|twohop|auto]
//!               [--arrivals open:<rate>|poisson:<rate>] [--seed S] [--xi F]
//!               [--timeout-micros U] [--stats-json PATH]
//!               [--trace-json PATH] [--slow-query-micros T]
//!               [--processes N] [--replicas R] [--kill-worker]
//! phom worker   --listen <host:port> [--max-seconds S]
//!               [--closure-backend dense|chain|twohop|auto]
//!               [--threads T] [--intra-workers W] [--timeout-micros U]
//!               [--journal PATH] [--metrics-text PATH]
//! phom flight-dump [--queries N] [--nodes M] [--noise P] [--seed S] [--xi F]
//! phom lint     [paths..] [--deny] [--json] [--baseline PATH]
//! phom audit    --graph <snapshot> [--deep] [--samples N]
//! phom audit    --generate <snapshot.out> [--nodes M] [--seed S]
//! ```
//!
//! `engine-batch` and `engine-live` run through the service layer
//! (`phom_service::Service`) with sharding disabled; `serve-sim` stands
//! up a multi-graph registry with WCC sharding and admission control and
//! replays an open-loop request mix against it; `flight-dump` replays a
//! short synthetic batch and prints the always-on flight recorder's
//! retained per-query summaries.
//!
//! `worker` hosts one single-process `Service` over TCP speaking the
//! `phom_cluster` wire protocol; `serve-sim --processes N` spawns `N`
//! such workers as child processes, shards every registered graph
//! across them behind a `phom_cluster::Router` front-end (with
//! `--replicas R` read replicas per shard), and replays the same
//! open-loop mix through the router. `--kill-worker` kills one worker
//! process mid-replay to exercise heartbeat failure detection and
//! replica promotion.
//!
//! `lint` runs the project's own rule set (`phom_audit`) over the
//! workspace (or the given paths) and, with `--deny`, exits nonzero on
//! any finding not covered by `lint-baseline.txt`; `audit` validates a
//! serialized engine snapshot with the structural tier and, with
//! `--deep`, the graph-backed tier (`--generate` writes a synthetic
//! snapshot to audit, which CI corrupts to exercise the negative path).
//!
//! The four service-backed subcommands additionally accept the
//! **operations flags**: `--journal PATH` (structured JSON-lines event
//! journal), `--metrics-text PATH` (Prometheus text exposition —
//! `serve-sim` rewrites it periodically from a reporter thread, the
//! others write it once at exit), `--flight-capacity N` (per-query
//! flight-recorder ring size; `0` disables it), and the SLO knobs
//! `--slo-p99-micros U` (per-plan p99 latency objectives),
//! `--slo-shed-rate F`, and `--slo-timeout-rate F` (bad-event rate
//! ceilings as fractions in `(0,1]`).
//!
//! Graph files use the text format of `phom_graph::serialize`
//! (`node <id> <label>` / `edge <from> <to>` lines; `#` comments).
//! Node similarity is label equality unless `--text-sim W` is given, in
//! which case labels are treated as whitespace-tokenized page content and
//! compared with `W`-shingles.

use phom::graph::serialize::from_text;
use phom::prelude::*;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: phom <match|decide|stats> <files..> [flags]; see --help");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!(
            "phom — p-homomorphism graph matching (Fan et al., VLDB 2010)\n\n\
             phom match    <pattern> <data> [--xi F] [--algorithm card|card11|sim|sim11]\n\
             \x20                           [--text-sim W] [--exact] [--witness] [--dot]\n\
             \x20                           [--max-stretch K] [--restarts R]\n\
             phom decide   <pattern> <data> [--xi F] [--one-to-one] [--text-sim W]\n\
             \x20                           [--max-stretch K]\n\
             phom stats    <file>\n\
             phom generate <pattern.out> <data.out> [--nodes M] [--noise P] [--seed S]\n\
             phom engine-batch [--workload synthetic|websim] [--queries N] [--xi F]\n\
             \x20                           [--threads T] [--nodes M] [--noise P] [--seed S] [--cold]\n\
             \x20                           [--algorithm card|card11|sim|sim11]\n\
             \x20                           [--closure-backend dense|chain|twohop|auto]\n\
             \x20                           [--arrivals open:<rate>|poisson:<rate>]\n\
             \x20                           [--queue-depth D] [--timeout-micros U]\n\
             \x20                           [--intra-workers W] [--stats-json PATH]\n\
             \x20                           [--trace-json PATH] [--slow-query-micros T]\n\
             phom engine-live [--ops N] [--update-ratio R] [--xi F] [--threads T]\n\
             \x20                           [--nodes M] [--noise P] [--seed S]\n\
             \x20                           [--closure-backend dense|chain|twohop|auto]\n\
             \x20                           [--timeout-micros U] [--intra-workers W]\n\
             \x20                           [--stats-json PATH]\n\
             \x20                           [--trace-json PATH] [--slow-query-micros T]\n\
             phom serve-sim [--graphs G] [--parts K] [--nodes M] [--queries N]\n\
             \x20                           [--update-ratio R] [--queue-depth D] [--threads T]\n\
             \x20                           [--closure-backend dense|chain|twohop|auto]\n\
             \x20                           [--arrivals open:<rate>|poisson:<rate>] [--seed S]\n\
             \x20                           [--xi F] [--timeout-micros U] [--stats-json PATH]\n\
             \x20                           [--trace-json PATH] [--slow-query-micros T]\n\
             \x20                           [--processes N] [--replicas R] [--kill-worker]\n\
             phom worker   --listen <host:port> [--max-seconds S]\n\
             \x20                           [--closure-backend dense|chain|twohop|auto]\n\
             \x20                           [--threads T] [--intra-workers W]\n\
             \x20                           [--timeout-micros U] [--journal PATH]\n\
             phom flight-dump [--queries N] [--nodes M] [--noise P] [--seed S] [--xi F]\n\
             phom lint     [paths..] [--deny] [--json] [--baseline PATH]\n\
             phom audit    --graph <snapshot> [--deep] [--samples N]\n\
             phom audit    --generate <snapshot.out> [--nodes M] [--seed S]\n\
             \x20                           [--closure-backend dense|chain|twohop|auto]\n\n\
             operations flags (engine-batch, engine-live, serve-sim, flight-dump):\n\
             \x20  --journal PATH         JSON-lines event journal sink\n\
             \x20  --metrics-text PATH    Prometheus text exposition (serve-sim: periodic)\n\
             \x20  --flight-capacity N    flight-recorder ring size (0 disables)\n\
             \x20  --slo-p99-micros U     per-plan p99 latency objectives\n\
             \x20  --slo-shed-rate F      shed-rate ceiling over offered load\n\
             \x20  --slo-timeout-rate F   timeout-rate ceiling over admitted queries"
        );
        return ExitCode::SUCCESS;
    }

    match args[0].as_str() {
        "match" => cmd_match(&args[1..]),
        "decide" => cmd_decide(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "engine-batch" => cmd_engine_batch(&args[1..]),
        "engine-live" => cmd_engine_live(&args[1..]),
        "serve-sim" => cmd_serve_sim(&args[1..]),
        "worker" => cmd_worker(&args[1..]),
        "flight-dump" => cmd_flight_dump(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        other => fail(&format!("unknown command {other:?}")),
    }
}

struct Flags {
    xi: f64,
    algorithm: Option<Algorithm>,
    one_to_one: bool,
    text_sim: Option<usize>,
    exact: bool,
    witness: bool,
    dot: bool,
    max_stretch: Option<usize>,
    restarts: Option<usize>,
    nodes: usize,
    noise: f64,
    seed: u64,
    workload: String,
    queries: usize,
    threads: usize,
    cold: bool,
    ops: usize,
    update_ratio: f64,
    stats_json: Option<String>,
    closure_backend: ClosureBackend,
    /// Open-loop arrival schedule (`--arrivals open:<rate>` fixed
    /// inter-arrival times, `poisson:<rate>` exponential ones).
    arrivals: Option<Arrivals>,
    /// Per-query deadline in microseconds (`--timeout-micros`).
    timeout_micros: Option<u64>,
    /// Intra-query per-component workers (`--intra-workers`; 0 = all cores).
    intra_workers: usize,
    /// Admission-control queue depth (`--queue-depth`; 0 = unlimited).
    queue_depth: usize,
    /// Graphs to register in `serve-sim` (`--graphs`).
    graphs: usize,
    /// Disjoint parts (= WCCs) per `serve-sim` data graph (`--parts`).
    parts: usize,
    /// Per-query trace output path (`--trace-json`; one JSON line per
    /// traced query). Tracing is enabled iff this is set.
    trace_json: Option<String>,
    /// Only log traces for queries at least this slow (`--slow-query-micros`;
    /// 0 = log every traced query).
    slow_query_micros: u128,
    /// Structured event-journal sink path (`--journal`; one JSON line
    /// per operational event). Journaling is enabled iff this is set.
    journal: Option<String>,
    /// Prometheus text-exposition output path (`--metrics-text`).
    /// `serve-sim` rewrites it periodically; the other subcommands
    /// write it once at exit.
    metrics_text: Option<String>,
    /// Flight-recorder ring capacity override (`--flight-capacity`;
    /// 0 disables the recorder, absent keeps the always-on default).
    flight_capacity: Option<usize>,
    /// Per-plan p99 latency objective in microseconds
    /// (`--slo-p99-micros`).
    slo_p99_micros: Option<u64>,
    /// Shed-rate ceiling over offered load (`--slo-shed-rate`).
    slo_shed_rate: Option<f64>,
    /// Timeout-rate ceiling over admitted queries
    /// (`--slo-timeout-rate`).
    slo_timeout_rate: Option<f64>,
    /// Worker processes for `serve-sim` cluster mode (`--processes`;
    /// 0 = in-process registry, the historical behavior).
    processes: usize,
    /// Read replicas per shard in cluster mode (`--replicas`).
    replicas: usize,
    /// Kill one worker process mid-replay (`--kill-worker`; cluster
    /// mode only) to exercise failure detection and replica promotion.
    kill_worker: bool,
    /// Listen address for `phom worker` (`--listen`; port 0 picks a
    /// free port, reported on stdout as `listening <addr>`).
    listen: Option<String>,
    /// Worker lifetime ceiling in seconds (`--max-seconds`; 0 = run
    /// until killed). A leak guard when spawned as a child process.
    max_seconds: u64,
    files: Vec<String>,
}

/// Open-loop arrival discipline: query `i`'s scheduled instant.
#[derive(Debug, Clone, Copy)]
enum Arrivals {
    /// Fixed inter-arrival times: query `i` at `i/rate` seconds.
    Open(f64),
    /// Poisson process: exponential inter-arrival times with mean
    /// `1/rate`, drawn from the seeded shim RNG.
    Poisson(f64),
}

impl Arrivals {
    fn rate(self) -> f64 {
        match self {
            Arrivals::Open(r) | Arrivals::Poisson(r) => r,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Arrivals::Open(_) => "open",
            Arrivals::Poisson(_) => "poisson",
        }
    }

    /// The scheduled arrival instant of each of `n` queries, as offsets
    /// from the replay start.
    fn schedule(self, n: usize, seed: u64) -> Vec<std::time::Duration> {
        match self {
            Arrivals::Open(rate) => (0..n)
                .map(|i| std::time::Duration::from_secs_f64(i as f64 / rate))
                .collect(),
            Arrivals::Poisson(rate) => {
                use rand::{rngs::SmallRng, RngCore, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x7069_6f73); // "pois"
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        let at = t;
                        // Inverse-CDF exponential draw; the shift keeps
                        // ln's argument strictly positive.
                        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        t += -(1.0 - unit).ln() / rate;
                        std::time::Duration::from_secs_f64(at)
                    })
                    .collect()
            }
        }
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        xi: 0.75,
        algorithm: None,
        one_to_one: false,
        text_sim: None,
        exact: false,
        witness: false,
        dot: false,
        max_stretch: None,
        restarts: None,
        nodes: 100,
        noise: 0.1,
        seed: 2010,
        workload: "synthetic".to_owned(),
        queries: 100,
        threads: 0,
        cold: false,
        ops: 200,
        update_ratio: 0.2,
        stats_json: None,
        closure_backend: ClosureBackend::Auto,
        arrivals: None,
        timeout_micros: None,
        intra_workers: 1,
        queue_depth: 0,
        graphs: 2,
        parts: 4,
        trace_json: None,
        slow_query_micros: 0,
        journal: None,
        metrics_text: None,
        flight_capacity: None,
        slo_p99_micros: None,
        slo_shed_rate: None,
        slo_timeout_rate: None,
        processes: 0,
        replicas: 1,
        kill_worker: false,
        listen: None,
        max_seconds: 0,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--xi" => {
                f.xi = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--xi needs a number in [0,1]")?;
            }
            "--algorithm" => {
                f.algorithm = Some(match it.next().map(String::as_str) {
                    Some("card") => Algorithm::MaxCard,
                    Some("card11") => Algorithm::MaxCard1to1,
                    Some("sim") => Algorithm::MaxSim,
                    Some("sim11") => Algorithm::MaxSim1to1,
                    other => return Err(format!("unknown algorithm {other:?}")),
                });
            }
            "--text-sim" => {
                f.text_sim = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--text-sim needs a window size")?,
                );
            }
            "--max-stretch" => {
                f.max_stretch = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-stretch needs a positive hop count")?,
                );
            }
            "--restarts" => {
                f.restarts = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--restarts needs a positive count")?,
                );
            }
            "--nodes" => {
                f.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--nodes needs a positive count")?;
            }
            "--noise" => {
                f.noise = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--noise needs a rate in [0,1]")?;
            }
            "--seed" => {
                f.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--workload" => {
                f.workload = it
                    .next()
                    .cloned()
                    .ok_or("--workload needs synthetic|websim")?;
            }
            "--queries" => {
                f.queries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--queries needs a positive count")?;
            }
            "--threads" => {
                f.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a count (0 = all cores)")?;
            }
            "--ops" => {
                f.ops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--ops needs a positive count")?;
            }
            "--update-ratio" => {
                f.update_ratio = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--update-ratio needs a rate in [0,1]")?;
            }
            "--stats-json" => {
                f.stats_json = Some(
                    it.next()
                        .cloned()
                        .ok_or("--stats-json needs an output path")?,
                );
            }
            "--trace-json" => {
                f.trace_json = Some(
                    it.next()
                        .cloned()
                        .ok_or("--trace-json needs an output path")?,
                );
            }
            "--slow-query-micros" => {
                f.slow_query_micros = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--slow-query-micros needs a microsecond threshold")?;
            }
            "--journal" => {
                f.journal = Some(it.next().cloned().ok_or("--journal needs an output path")?);
            }
            "--metrics-text" => {
                f.metrics_text = Some(
                    it.next()
                        .cloned()
                        .ok_or("--metrics-text needs an output path")?,
                );
            }
            "--flight-capacity" => {
                f.flight_capacity = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--flight-capacity needs a record count (0 = disabled)")?,
                );
            }
            "--slo-p99-micros" => {
                f.slo_p99_micros = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--slo-p99-micros needs a microsecond target")?,
                );
            }
            "--slo-shed-rate" => {
                f.slo_shed_rate = Some(
                    it.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|r| *r > 0.0 && *r <= 1.0)
                        .ok_or("--slo-shed-rate needs a fraction in (0,1]")?,
                );
            }
            "--slo-timeout-rate" => {
                f.slo_timeout_rate = Some(
                    it.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|r| *r > 0.0 && *r <= 1.0)
                        .ok_or("--slo-timeout-rate needs a fraction in (0,1]")?,
                );
            }
            "--closure-backend" => {
                f.closure_backend = it
                    .next()
                    .and_then(|v| ClosureBackend::parse(v))
                    .ok_or("--closure-backend needs dense|chain|twohop|auto")?;
            }
            "--timeout-micros" => {
                f.timeout_micros = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--timeout-micros needs a microsecond count")?,
                );
            }
            "--intra-workers" => {
                f.intra_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--intra-workers needs a worker count (0 = all cores)")?;
            }
            "--arrivals" => {
                let spec = it
                    .next()
                    .ok_or("--arrivals needs open:<rate> or poisson:<rate>")?;
                let parse_rate =
                    |r: &str| r.parse::<f64>().ok().filter(|r| *r > 0.0 && r.is_finite());
                f.arrivals = Some(if let Some(r) = spec.strip_prefix("open:") {
                    Arrivals::Open(parse_rate(r).ok_or("--arrivals open:<rate> needs rate > 0")?)
                } else if let Some(r) = spec.strip_prefix("poisson:") {
                    Arrivals::Poisson(
                        parse_rate(r).ok_or("--arrivals poisson:<rate> needs rate > 0")?,
                    )
                } else {
                    return Err("--arrivals needs open:<rate> or poisson:<rate>".into());
                });
            }
            "--queue-depth" => {
                f.queue_depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--queue-depth needs a count (0 = unlimited)")?;
            }
            "--graphs" => {
                f.graphs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&g: &usize| g > 0)
                    .ok_or("--graphs needs a positive count")?;
            }
            "--parts" => {
                f.parts = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&p: &usize| p > 0)
                    .ok_or("--parts needs a positive count")?;
            }
            "--processes" => {
                f.processes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--processes needs a worker count (0 = in-process)")?;
            }
            "--replicas" => {
                f.replicas = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--replicas needs a per-shard replica count")?;
            }
            "--listen" => {
                f.listen = Some(
                    it.next()
                        .cloned()
                        .ok_or("--listen needs host:port (port 0 picks a free port)")?,
                );
            }
            "--max-seconds" => {
                f.max_seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-seconds needs a second count (0 = run until killed)")?;
            }
            "--kill-worker" => f.kill_worker = true,
            "--cold" => f.cold = true,
            "--one-to-one" => f.one_to_one = true,
            "--exact" => f.exact = true,
            "--witness" => f.witness = true,
            "--dot" => f.dot = true,
            other if !other.starts_with('-') => f.files.push(other.to_owned()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(f)
}

fn load(path: &str) -> Result<DiGraph<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // DOT interop: accept Graphviz files by extension or header sniff.
    if path.ends_with(".dot") || text.trim_start().starts_with("digraph") {
        return phom::graph::from_dot(&text).map_err(|e| format!("{path}: {e}"));
    }
    from_text(&text).map_err(|e| format!("{path}: {e}"))
}

fn build_matrix(g1: &DiGraph<String>, g2: &DiGraph<String>, f: &Flags) -> SimMatrix {
    match f.text_sim {
        Some(w) => matrix_from_label_fn(g1, g2, |a, b| text_similarity(a, b, w)),
        None => SimMatrix::label_equality(g1, g2),
    }
}

fn cmd_match(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [p1, p2] = f.files.as_slice() else {
        return fail("match needs exactly two graph files");
    };
    let (g1, g2) = match (load(p1), load(p2)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let mat = build_matrix(&g1, &g2, &f);
    let weights = NodeWeights::uniform(g1.node_count());
    let algorithm = f.algorithm.unwrap_or(Algorithm::MaxCard);

    let mapping = if f.exact {
        if f.max_stretch.is_some() || f.restarts.is_some() {
            return fail("--exact does not combine with --max-stretch / --restarts");
        }
        let objective = if algorithm.similarity() {
            Objective::Similarity
        } else {
            Objective::Cardinality
        };
        exact_optimum(
            &g1,
            &g2,
            &mat,
            f.xi,
            algorithm.injective(),
            objective,
            &weights,
        )
    } else if f.max_stretch.is_some() || f.restarts.is_some() {
        // Extension paths: stretch-bounded reachability and/or
        // best-of-restarts, composed through a shared closure.
        let closure = match f.max_stretch {
            Some(k) => Stretch::AtMost(k).closure_of(&g2),
            None => Stretch::Unbounded.closure_of(&g2),
        };
        let cfg = AlgoConfig {
            xi: f.xi,
            ..Default::default()
        };
        let rcfg = RestartConfig {
            restarts: f.restarts.unwrap_or(1).max(1),
            ..Default::default()
        };
        if algorithm.similarity() {
            phom::core::comp_max_sim_restarts_with(
                &g1,
                &closure,
                &mat,
                &weights,
                &cfg,
                algorithm.injective(),
                &rcfg,
            )
        } else {
            phom::core::comp_max_card_restarts_with(
                &g1,
                &closure,
                &mat,
                &cfg,
                algorithm.injective(),
                &rcfg,
            )
        }
    } else {
        match_graphs(
            &g1,
            &g2,
            &mat,
            &weights,
            &MatcherConfig {
                algorithm,
                xi: f.xi,
                ..Default::default()
            },
        )
        .mapping
    };

    println!(
        "qualCard = {:.4}   qualSim = {:.4}   mapped {}/{} nodes",
        mapping.qual_card(),
        mapping.qual_sim(&weights, &mat),
        mapping.len(),
        g1.node_count()
    );
    for (v, u) in mapping.pairs() {
        println!(
            "  {} -> {}   (mat {:.2})",
            g1.label(v),
            g2.label(u),
            mat.score(v, u)
        );
    }
    if f.witness {
        match edge_witnesses(&g1, &g2, &mapping) {
            Ok(ws) => {
                for w in ws {
                    let path: Vec<&str> = w.path.iter().map(|&x| g2.label(x).as_str()).collect();
                    println!(
                        "  edge ({} -> {})  ==>  {}",
                        g1.label(w.from),
                        g1.label(w.to),
                        path.join("/")
                    );
                }
            }
            Err((a, b)) => {
                eprintln!("internal error: edge ({a:?},{b:?}) lacks a witness");
                return ExitCode::FAILURE;
            }
        }
    }
    if f.dot {
        println!("{}", phom::graph::dot::to_dot("pattern", &g1));
    }
    ExitCode::SUCCESS
}

fn cmd_decide(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [p1, p2] = f.files.as_slice() else {
        return fail("decide needs exactly two graph files");
    };
    let (g1, g2) = match (load(p1), load(p2)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let mat = build_matrix(&g1, &g2, &f);
    let decision = match f.max_stretch {
        Some(k) => decide_phom_bounded(&g1, &g2, &mat, f.xi, f.one_to_one, k),
        None => decide_phom(&g1, &g2, &mat, f.xi, f.one_to_one),
    };
    match decision {
        Some(m) => {
            println!(
                "YES: pattern is {}p-hom to data",
                if f.one_to_one { "1-1 " } else { "" }
            );
            for (v, u) in m.pairs() {
                println!("  {} -> {}", g1.label(v), g2.label(u));
            }
            ExitCode::SUCCESS
        }
        None => {
            println!("NO");
            ExitCode::FAILURE
        }
    }
}

/// `phom generate`: writes a §6-style synthetic instance — a pattern
/// graph and a noisy data graph derived from it — to two files in the
/// text format `match`/`decide` read back.
fn cmd_generate(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [p_out, d_out] = f.files.as_slice() else {
        return fail("generate needs two output paths (pattern, data)");
    };
    if !(0.0..=1.0).contains(&f.noise) {
        return fail("--noise must be in [0,1]");
    }
    let cfg = SyntheticConfig {
        m: f.nodes,
        noise: f.noise,
        seed: f.seed,
    };
    let inst = generate_instance(&cfg, 1);
    let to_named = |g: &DiGraph<phom::workloads::synthetic::Label>| -> DiGraph<String> {
        g.map_labels(|_, l| format!("L{l}"))
    };
    for (path, g) in [(p_out, &inst.g1), (d_out, &inst.g2)] {
        let text = phom::graph::serialize::to_text(&to_named(g));
        if let Err(e) = std::fs::write(path, text) {
            return fail(&format!("cannot write {path}: {e}"));
        }
    }
    println!(
        "wrote pattern ({} nodes, {} edges) -> {p_out}",
        inst.g1.node_count(),
        inst.g1.edge_count()
    );
    println!(
        "wrote data    ({} nodes, {} edges) -> {d_out}",
        inst.g2.node_count(),
        inst.g2.edge_count()
    );
    ExitCode::SUCCESS
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let [path] = f.files.as_slice() else {
        return fail("stats needs exactly one graph file");
    };
    let g = match load(path) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let scc = tarjan_scc(&g);
    let comps = weakly_connected_components(&g);
    let m = phom::graph::metrics::graph_metrics(&g);
    println!("|V| = {}", m.nodes);
    println!("|E| = {}", m.edges);
    println!("avgDeg = {:.3}", m.avg_degree);
    println!("maxDeg = {}", m.max_degree);
    println!("density = {:.5}", m.density);
    println!("reciprocity = {:.3}", m.reciprocity);
    println!("isolated nodes = {}", m.isolated);
    println!("SCCs = {}", scc.count());
    println!("weakly connected components = {}", comps.len());
    let closure = TransitiveClosure::new(&g);
    println!("|E+| (closure edges) = {}", closure.edge_count());
    let hist = phom::graph::metrics::degree_histogram(&g);
    let rendered: Vec<String> = hist
        .iter()
        .enumerate()
        .map(|(k, c)| format!("2^{k}:{c}"))
        .collect();
    println!("degree histogram (log buckets) = {}", rendered.join(" "));
    ExitCode::SUCCESS
}

/// `phom engine-batch`: generates a workload-driven batch of pattern
/// queries against one data graph and runs it through the prepared-graph
/// engine, reporting plans chosen, closure reuse, and parallelism. With
/// `--cold`, re-runs every query through the unprepared per-query path
/// (`match_graphs`, closure rebuilt each time) and reports the speedup.
fn cmd_engine_batch(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if !f.files.is_empty() {
        return fail("engine-batch takes no file arguments (use --workload)");
    }
    match f.workload.as_str() {
        "synthetic" => {
            let (data, queries) = synthetic_batch(&f);
            run_engine_batch(&data, queries, &f)
        }
        "websim" => {
            let spec = SiteSpec::test_scale(SiteCategory::ALL[0], f.seed);
            let archive = phom::workloads::generate_archive(&spec);
            let data = std::sync::Arc::new(archive.versions[0].clone());
            let patterns: Vec<std::sync::Arc<_>> = archive.versions[1..]
                .iter()
                .map(|v| std::sync::Arc::new(skeleton_top_k(v, 20).graph))
                .collect();
            if patterns.is_empty() {
                return fail("websim archive has a single version; nothing to query");
            }
            let queries: Vec<Query<phom::workloads::Page>> = (0..f.queries)
                .map(|i| {
                    let pattern = std::sync::Arc::clone(&patterns[i % patterns.len()]);
                    let mat = shingle_matrix(&pattern, &data, 3);
                    mixed_query(pattern, mat, f.xi, f.algorithm, i)
                })
                .collect();
            run_engine_batch(&data, queries, &f)
        }
        other => fail(&format!("unknown workload {other:?} (synthetic|websim)")),
    }
}

/// The synthetic engine-batch workload: one data graph and `--queries`
/// service-shaped pattern queries — small patterns (sliding windows of
/// the template) against one large prepared data graph, the regime
/// where the shared closure dominates per-query cost. Shared by
/// `engine-batch --workload synthetic` and `flight-dump`.
fn synthetic_batch(
    f: &Flags,
) -> (
    std::sync::Arc<DiGraph<phom::workloads::synthetic::Label>>,
    Vec<Query<phom::workloads::synthetic::Label>>,
) {
    let cfg = SyntheticConfig {
        m: f.nodes,
        noise: f.noise,
        seed: f.seed,
    };
    let inst = phom::workloads::generate_instance(&cfg, 1);
    let data = std::sync::Arc::new(inst.g2.clone());
    let pattern_nodes = (f.nodes / 5).clamp(4, 40).min(f.nodes);
    let windows: Vec<std::sync::Arc<DiGraph<_>>> = (0..8)
        .map(|w| {
            let lo = (w * f.nodes / 8).min(f.nodes - pattern_nodes);
            let keep: std::collections::BTreeSet<NodeId> =
                (lo..lo + pattern_nodes).map(|i| NodeId(i as u32)).collect();
            std::sync::Arc::new(inst.g1.induced_subgraph(&keep).0)
        })
        .collect();
    let queries: Vec<Query<phom::workloads::synthetic::Label>> = (0..f.queries)
        .map(|i| {
            let pattern = std::sync::Arc::clone(&windows[i % windows.len()]);
            let mat = SimMatrix::from_fn(pattern.node_count(), data.node_count(), |v, u| {
                inst.pool.similarity(*pattern.label(v), *data.label(u))
            });
            mixed_query(pattern, mat, f.xi, f.algorithm, i)
        })
        .collect();
    (data, queries)
}

/// Builds query `i` of a mixed batch: the four algorithms round-robin
/// (unless `--algorithm` pins one for the whole batch), every 5th query
/// carries a stretch bound, every 9th pins restarts.
fn mixed_query<L>(
    pattern: std::sync::Arc<DiGraph<L>>,
    matrix: SimMatrix,
    xi: f64,
    pin: Option<Algorithm>,
    i: usize,
) -> Query<L> {
    let algorithms = [
        Algorithm::MaxCard,
        Algorithm::MaxCard1to1,
        Algorithm::MaxSim,
        Algorithm::MaxSim1to1,
    ];
    let mut q = Query::new(pattern, matrix);
    q.config = QueryConfig {
        xi,
        algorithm: pin.unwrap_or(algorithms[i % 4]),
        max_stretch: (i % 5 == 4).then_some(3),
        restarts: (i % 9 == 8).then_some(3),
        ..Default::default()
    };
    q
}

/// The engine-side planner knobs shared by `engine-batch`/`engine-live`/
/// `serve-sim`: closure backend, per-query deadline, intra-query workers
/// — built through the one shared config path.
fn planner_config(f: &Flags) -> PlannerConfig {
    PlannerConfig::builder()
        .closure_backend(f.closure_backend)
        .timeout_opt(f.timeout_micros.map(std::time::Duration::from_micros))
        .intra_query_workers(f.intra_workers)
        .build()
}

/// The service configuration the CLI subcommands share. `engine-batch`
/// and `engine-live` disable sharding (one graph, one shard — the
/// engine-parity path); `serve-sim` turns it on. The operations flags
/// ride along: `--journal` switches the event journal's ring on,
/// `--flight-capacity` resizes (or disables) the flight recorder, and
/// the `--slo-*` flags configure the burn-rate monitor.
fn service_config(f: &Flags, sharding: ShardingConfig) -> ServiceConfig {
    let mut builder = ServiceConfig::builder()
        .engine(
            EngineConfig::builder()
                .cache_capacity(8.max(f.graphs * f.parts))
                .threads(f.threads)
                .planner(planner_config(f))
                .build(),
        )
        .sharding(sharding)
        .queue_depth(f.queue_depth)
        .journal_capacity(if f.journal.is_some() { 256 } else { 0 })
        .slo(slo_config(f));
    if let Some(n) = f.flight_capacity {
        builder = builder.flight_capacity(n);
    }
    builder.build()
}

/// The `--slo-*` flags as a monitor config. Each absent flag leaves its
/// objective out; no flags at all leave the monitor disabled.
/// `--slo-p99-micros` expands to one p99 objective per plan kind over
/// the per-plan latency histograms the service already records.
fn slo_config(f: &Flags) -> SloConfig {
    let mut slo = SloConfig::default();
    if let Some(target) = f.slo_p99_micros {
        for kind in [
            PlanKind::Exact,
            PlanKind::Approx,
            PlanKind::Bounded,
            PlanKind::Baseline,
        ] {
            slo.latency.push(LatencyObjective {
                name: format!("latency_{}_p99", kind.name()),
                histogram: format!("latency_{}", kind.name()),
                percentile: 99,
                target_micros: target,
            });
        }
    }
    if let Some(ceiling) = f.slo_shed_rate {
        slo.rates.push(RateObjective {
            name: "shed_rate".to_owned(),
            bad: "queries_shed".to_owned(),
            base: "queries_admitted".to_owned(),
            base_includes_bad: false,
            ceiling,
        });
    }
    if let Some(ceiling) = f.slo_timeout_rate {
        slo.rates.push(RateObjective {
            name: "timeout_rate".to_owned(),
            bad: "queries_timed_out".to_owned(),
            base: "queries_admitted".to_owned(),
            base_includes_bad: true,
            ceiling,
        });
    }
    slo
}

/// Attaches the `--journal` JSON-lines sink to a freshly built service.
/// Called before graph registration so the `GraphRegistered` events land
/// in the file too.
fn attach_journal<L: ServiceLabel>(service: &Service<L>, f: &Flags) -> Result<(), String> {
    let Some(path) = &f.journal else {
        return Ok(());
    };
    service
        .journal()
        .attach_sink(std::path::Path::new(path))
        .map_err(|e| format!("cannot open journal {path}: {e}"))?;
    println!("event journal (JSON lines) -> {path}");
    Ok(())
}

/// Renders the service's Prometheus text exposition to `path`. The
/// serve-sim reporter thread calls this periodically; every
/// service-backed subcommand calls it once at exit via
/// [`finish_metrics_text`].
fn write_metrics_text<L: ServiceLabel>(service: &Service<L>, path: &str) -> Result<(), String> {
    std::fs::write(path, service.render_prometheus())
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// The final `--metrics-text` write at subcommand exit: one SLO
/// evaluation (so breaches crossed since the last poll still journal)
/// and one exposition render.
fn finish_metrics_text<L: ServiceLabel>(service: &Service<L>, f: &Flags) -> Result<(), String> {
    let Some(path) = &f.metrics_text else {
        return Ok(());
    };
    let _ = service.slo_status();
    write_metrics_text(service, path)?;
    println!("metrics text written to {path}");
    Ok(())
}

/// Converts a service [`GraphInfo`] into the `PrepareStats` shape the
/// `--stats-json` schema has always exported under `"prepare"`.
fn prepare_stats_of(info: &GraphInfo) -> phom::engine::PrepareStats {
    phom::engine::PrepareStats {
        nodes: info.nodes,
        edges: info.edges,
        scc_count: info.scc_count,
        closure_edges: info.closure_edges,
        closure_backend: info.closure_backend.clone(),
        closure_memory_bytes: info.closure_memory_bytes,
        compressed_nodes: info.compressed_nodes,
        prepare_micros: info.prepare_micros,
    }
}

fn print_graph_info(info: &GraphInfo) {
    println!(
        "data graph: {} nodes, {} edges, {} SCCs, |E+| = {} \
         [{} backend, {:.1} KiB]{}{}",
        info.nodes,
        info.edges,
        info.scc_count,
        info.closure_edges,
        info.closure_backend,
        info.closure_memory_bytes as f64 / 1024.0,
        match info.compressed_nodes {
            Some(c) => format!(", compressed to {c} nodes"),
            None => String::new(),
        },
        if info.shards > 1 {
            format!(", {} WCC shards", info.shards)
        } else {
            String::new()
        }
    );
}

fn run_engine_batch<L: ServiceLabel>(
    data: &std::sync::Arc<DiGraph<L>>,
    queries: Vec<Query<L>>,
    f: &Flags,
) -> ExitCode {
    let service: Service<L> = Service::new(service_config(f, ShardingConfig::disabled()));
    if let Err(e) = attach_journal(&service, f) {
        return fail(&e);
    }
    if let Err(e) = service.register("batch".into(), std::sync::Arc::clone(data)) {
        return fail(&e.to_string());
    }
    if let Some(arrivals) = f.arrivals {
        if f.cold {
            return fail("--cold does not combine with --arrivals (open-loop replay has no closed-loop twin)");
        }
        return run_open_loop(&service, "batch", &queries, arrivals, f);
    }
    let trace_log = TraceLog::new(f);
    let started = std::time::Instant::now();
    let responses = match service.query_batch_traced("batch", &queries, trace_log.enabled()) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    let elapsed = started.elapsed();
    for (i, r) in responses.iter().enumerate() {
        trace_log.record(i, "batch", r);
    }
    if let Err(e) = trace_log.flush() {
        return fail(&e);
    }
    let stats = service.engine_stats();

    let info = service.graph_info("batch").expect("registered above");
    print_graph_info(&info);
    println!(
        "prepared once in {:.2} ms; closure computations: {} (cache hits {})",
        info.prepare_micros as f64 / 1e3,
        stats.prepares,
        stats.cache_hits,
    );
    println!(
        "batch: {} queries in {:.2} ms ({:.3} ms/query), workers = {}, peak parallelism = {}",
        responses.len(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / responses.len().max(1) as f64,
        stats.last_batch_workers,
        stats.last_batch_peak_parallel,
    );
    println!(
        "plans: approx = {}, exact = {}, bounded = {}, baseline = {}",
        stats.approx_plans, stats.exact_plans, stats.bounded_plans, stats.baseline_plans,
    );
    if f.intra_workers != 1 || f.timeout_micros.is_some() {
        println!(
            "deadlines: timeouts = {}, intra-query workers = {}, \
             components matched in parallel = {}",
            stats.timeouts,
            if f.intra_workers == 0 {
                "all-cores".to_owned()
            } else {
                f.intra_workers.to_string()
            },
            stats.intra_parallel_components,
        );
    }
    if !responses.is_empty() {
        let mean_card: f64 =
            responses.iter().map(|r| r.qual_card).sum::<f64>() / responses.len() as f64;
        println!("mean qualCard = {mean_card:.4}");
        println!(
            "query latency: p50 = {} us, p95 = {} us, p99 = {} us",
            stats.last_batch_p50_micros, stats.last_batch_p95_micros, stats.last_batch_p99_micros,
        );
    }

    if f.cold {
        // Same worker count as the prepared batch, so the ratio isolates
        // closure reuse rather than crediting multi-core parallelism.
        let workers = stats.last_batch_workers.max(1);
        let started = std::time::Instant::now();
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if i >= queries.len() {
                        break;
                    }
                    let (q, r) = (&queries[i], &responses[i]);
                    let weights = q.effective_weights();
                    let cfg = MatcherConfig {
                        algorithm: q.config.algorithm,
                        xi: q.config.xi,
                        max_stretch: q.config.max_stretch,
                        restarts: r.plan.restarts,
                        ..Default::default()
                    };
                    let _ = match_graphs(&q.pattern, data, &q.matrix, &weights, &cfg);
                });
            }
        });
        let cold = started.elapsed();
        println!(
            "cold comparison: per-query closure rebuild ({workers} workers) took {:.2} ms \
             ({:.2}x the prepared batch)",
            cold.as_secs_f64() * 1e3,
            cold.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
        );
    }
    if let Err(e) = write_stats_json(
        f,
        &service.engine_stats(),
        &prepare_stats_of(&info),
        None,
        Some(&service.stats()),
    ) {
        return fail(&e);
    }
    if let Err(e) = finish_metrics_text(&service, f) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

/// Open-loop replay (`--arrivals open:<rate>` / `poisson:<rate>`):
/// queries arrive on a precomputed schedule — fixed or exponential
/// inter-arrival times — independent of completions, the load-generation
/// discipline that exposes queueing delay instead of hiding it
/// (closed-loop batches only ever measure service time). A bounded worker
/// pool claims queries in arrival order, sleeping until each one's
/// scheduled instant; reported **response** latency is completion minus
/// scheduled arrival, so a saturated service shows its tail honestly in
/// p95/p99, and with a bounded `--queue-depth` the shed count shows what
/// admission control refused outright.
fn run_open_loop<L: ServiceLabel>(
    service: &Service<L>,
    graph: &str,
    queries: &[Query<L>],
    arrivals: Arrivals,
    f: &Flags,
) -> ExitCode {
    let schedule = arrivals.schedule(queries.len(), f.seed);
    let trace_log = TraceLog::new(f);
    let workers = if f.threads > 0 {
        f.threads
    } else {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }
    .min(queries.len())
    .max(1);
    let start = std::time::Instant::now();
    let next = std::sync::atomic::AtomicUsize::new(0);
    // (service, response) latency pairs in microseconds.
    let latencies: std::sync::Mutex<Vec<(u128, u128)>> =
        std::sync::Mutex::new(Vec::with_capacity(queries.len()));
    let shed = std::sync::atomic::AtomicUsize::new(0);
    let card_sum = std::sync::Mutex::new(0.0f64);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= queries.len() {
                    break;
                }
                let sched = schedule[i];
                let now = start.elapsed();
                if now < sched {
                    std::thread::sleep(sched - now);
                }
                match service.query_traced(graph, &queries[i], trace_log.enabled()) {
                    Ok(r) => {
                        let response = start.elapsed().saturating_sub(sched).as_micros();
                        latencies
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push((r.micros, response));
                        *card_sum.lock().unwrap_or_else(|e| e.into_inner()) += r.qual_card;
                        trace_log.record(i, graph, &r);
                    }
                    Err(ServiceError::Overloaded { .. }) => {
                        shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    Err(e) => eprintln!("query {i}: {e}"),
                }
            });
        }
    });
    let elapsed = start.elapsed();
    if let Err(e) = trace_log.flush() {
        return fail(&e);
    }
    let pairs = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut service_lat: Vec<u128> = pairs.iter().map(|&(s, _)| s).collect();
    let mut response: Vec<u128> = pairs.iter().map(|&(_, r)| r).collect();
    service_lat.sort_unstable();
    response.sort_unstable();

    let info = service.graph_info(graph).expect("registered by caller");
    print_graph_info(&info);
    let rate = arrivals.rate();
    println!(
        "open-loop replay ({} arrivals): {} queries at {rate:.1} q/s over {:.2} ms \
         ({workers} workers, achieved {:.1} q/s, shed {})",
        arrivals.name(),
        queries.len(),
        elapsed.as_secs_f64() * 1e3,
        pairs.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        shed.load(std::sync::atomic::Ordering::Relaxed),
    );
    println!(
        "response latency (arrival to completion): p50 = {} us, p95 = {} us, p99 = {} us",
        percentile_micros(&response, 50),
        percentile_micros(&response, 95),
        percentile_micros(&response, 99),
    );
    println!(
        "service latency (execution only):         p50 = {} us, p95 = {} us, p99 = {} us",
        percentile_micros(&service_lat, 50),
        percentile_micros(&service_lat, 95),
        percentile_micros(&service_lat, 99),
    );
    if !pairs.is_empty() {
        println!(
            "mean qualCard = {:.4}",
            card_sum.into_inner().unwrap_or_else(|e| e.into_inner()) / pairs.len() as f64
        );
    }
    // Export: service percentiles go in the `last_batch_p*` slots (their
    // documented meaning), response percentiles in the dedicated
    // `response_p*` fields — the field names must not lie about which
    // latency they carry.
    let mut stats = service.engine_stats();
    stats.last_batch_p50_micros = percentile_micros(&service_lat, 50);
    stats.last_batch_p95_micros = percentile_micros(&service_lat, 95);
    stats.last_batch_p99_micros = percentile_micros(&service_lat, 99);
    stats.response_p50_micros = percentile_micros(&response, 50);
    stats.response_p95_micros = percentile_micros(&response, 95);
    stats.response_p99_micros = percentile_micros(&response, 99);
    if let Err(e) = write_stats_json(
        f,
        &stats,
        &prepare_stats_of(&info),
        None,
        Some(&service.stats()),
    ) {
        return fail(&e);
    }
    if let Err(e) = finish_metrics_text(service, f) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

/// Collects `--trace-json` output: one JSON line per traced query
/// (`{"seq":S,"query":i,"graph":"...","micros":M,"trace":{...}}`),
/// filtered by the `--slow-query-micros` threshold and flushed at
/// command end. Tracing is enabled iff `--trace-json` was given;
/// threads share the log through the interior mutex, and `seq` — the
/// line's index in the log — is assigned under that mutex, so
/// concurrent submitters always produce a strictly increasing sequence
/// with no gaps (unlike `query`, which records submission order).
struct TraceLog {
    path: Option<String>,
    threshold: u128,
    lines: std::sync::Mutex<Vec<String>>,
}

impl TraceLog {
    fn new(f: &Flags) -> Self {
        TraceLog {
            path: f.trace_json.clone(),
            threshold: f.slow_query_micros,
            lines: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Whether queries should run traced (drives the `trace` arguments
    /// and the `Request::Query::trace` field).
    fn enabled(&self) -> bool {
        self.path.is_some()
    }

    fn record(&self, i: usize, graph: &str, r: &QueryResponse) {
        let Some(t) = r.trace.as_deref() else {
            return;
        };
        if r.micros < self.threshold {
            return;
        }
        let mut lines = self.lines.lock().unwrap_or_else(|e| e.into_inner());
        let seq = lines.len();
        lines.push(format!(
            "{{\"seq\":{seq},\"query\":{i},\"graph\":\"{}\",\"micros\":{},\"trace\":{}}}",
            phom::trace::json_escape(graph),
            r.micros,
            t.to_json(),
        ));
    }

    fn flush(&self) -> Result<(), String> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let lines = self.lines.lock().unwrap_or_else(|e| e.into_inner());
        let mut text = lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace JSON written to {path} ({} queries)", lines.len());
        Ok(())
    }
}

/// Writes the `--stats-json` export (engine counters, preparation stats,
/// live-update stats, and service counters when present) if the flag was
/// given.
fn write_stats_json(
    f: &Flags,
    engine: &EngineStats,
    prepare: &phom::engine::PrepareStats,
    updates: Option<&UpdateStats>,
    service: Option<&ServiceStats>,
) -> Result<(), String> {
    let Some(path) = &f.stats_json else {
        return Ok(());
    };
    let json = format!(
        "{{\"engine\":{},\"prepare\":{},\"updates\":{},\"service\":{}}}\n",
        engine.to_json(),
        prepare.to_json(),
        updates.map_or("null".to_owned(), UpdateStats::to_json),
        service.map_or("null".to_owned(), ServiceStats::to_json),
    );
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("stats JSON written to {path}");
    Ok(())
}

/// `phom engine-live`: replays an interleaved stream of edge updates and
/// pattern queries against one evolving registered graph. Each update
/// goes through the service's `ApplyUpdates` path (owning-shard routing,
/// semi-dynamic closure maintenance, cache re-keying); each query runs
/// against the current registered version. Reports the
/// incremental/rebuild split and compares the mean apply cost against one
/// full re-prepare of the final graph.
fn cmd_engine_live(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if !f.files.is_empty() {
        return fail("engine-live takes no file arguments");
    }
    if !(0.0..=1.0).contains(&f.update_ratio) {
        return fail("--update-ratio must be in [0,1]");
    }
    let cfg = SyntheticConfig {
        m: f.nodes,
        noise: f.noise,
        seed: f.seed,
    };
    let inst = phom::workloads::generate_instance(&cfg, 1);
    let mut data = std::sync::Arc::new(inst.g2.clone());
    let n = data.node_count();
    // Window patterns as in engine-batch: label-stable, so standing query
    // matrices survive edge updates (updates are edge-level).
    let pattern_nodes = (f.nodes / 5).clamp(4, 40).min(f.nodes);
    let windows: Vec<std::sync::Arc<DiGraph<phom::workloads::synthetic::Label>>> = (0..8)
        .map(|w| {
            let lo = (w * f.nodes / 8).min(f.nodes - pattern_nodes);
            let keep: std::collections::BTreeSet<NodeId> =
                (lo..lo + pattern_nodes).map(|i| NodeId(i as u32)).collect();
            std::sync::Arc::new(inst.g1.induced_subgraph(&keep).0)
        })
        .collect();

    let service: Service<phom::workloads::synthetic::Label> =
        Service::new(service_config(&f, ShardingConfig::disabled()));
    if let Err(e) = attach_journal(&service, &f) {
        return fail(&e);
    }
    if let Err(e) = service.register("live".into(), std::sync::Arc::clone(&data)) {
        return fail(&e.to_string());
    }
    let mut rng = phom::graph::XorShift64::new(f.seed ^ 0x6c69_7665); // "live"
    let trace_log = TraceLog::new(&f);
    let mut agg = UpdateStats::default();
    let (mut queries_run, mut updates_run) = (0usize, 0usize);
    let mut query_micros = 0u128;
    let mut card_sum = 0.0f64;
    let started = std::time::Instant::now();
    for i in 0..f.ops {
        if rng.unit() < f.update_ratio && n >= 2 {
            let a = NodeId(rng.below(n) as u32);
            let b = NodeId(rng.below(n) as u32);
            let update = if data.has_edge(a, b) {
                phom::dynamic::GraphUpdate::RemoveEdge(a, b)
            } else {
                phom::dynamic::GraphUpdate::InsertEdge(a, b)
            };
            match service.apply_updates("live", &[update]) {
                Ok(summary) => agg.absorb(&summary.stats),
                Err(e) => return fail(&e.to_string()),
            }
            data = service.graph("live").expect("registered");
            updates_run += 1;
        } else {
            let pattern = std::sync::Arc::clone(&windows[i % windows.len()]);
            let mat = SimMatrix::from_fn(pattern.node_count(), n, |v, u| {
                inst.pool.similarity(*pattern.label(v), *data.label(u))
            });
            let q = mixed_query(pattern, mat, f.xi, f.algorithm, i);
            match service.query_traced("live", &q, trace_log.enabled()) {
                Ok(r) => {
                    query_micros += r.micros;
                    card_sum += r.qual_card;
                    trace_log.record(i, "live", &r);
                }
                Err(e) => return fail(&e.to_string()),
            }
            queries_run += 1;
        }
    }
    let elapsed = started.elapsed();
    if let Err(e) = trace_log.flush() {
        return fail(&e);
    }

    // The number the subsystem exists to beat: one full re-prepare of the
    // final graph, i.e. what every single-edge update used to cost.
    let reprep_start = std::time::Instant::now();
    let full = PreparedGraph::prepare(
        std::sync::Arc::clone(&data),
        PrepareOptions::from_planner(&planner_config(&f)),
    );
    let reprep = reprep_start.elapsed();

    let stats = service.engine_stats();
    println!(
        "final graph: {} nodes, {} edges, {} SCCs, |E+| = {}",
        full.stats().nodes,
        full.stats().edges,
        full.stats().scc_count,
        full.stats().closure_edges,
    );
    println!(
        "stream: {} ops in {:.2} ms  ({} queries, {} updates, ratio {:.2})",
        f.ops,
        elapsed.as_secs_f64() * 1e3,
        queries_run,
        updates_run,
        f.update_ratio,
    );
    println!(
        "updates: {} applied ({} incremental, {} closure-unchanged, {} rebuilds, {} no-ops), \
         {} components touched, {} bounded rows refreshed",
        agg.applied,
        agg.incremental,
        agg.closure_unchanged,
        agg.rebuilds,
        agg.noops,
        agg.affected_components,
        agg.bounded_rows_recomputed,
    );
    if updates_run > 0 {
        let mean_apply = agg.apply_micros as f64 / updates_run as f64;
        let full_micros = reprep.as_micros() as f64;
        println!(
            "mean apply = {:.1} us vs full re-prepare = {:.1} us  ({:.2}x faster)",
            mean_apply,
            full_micros,
            full_micros / mean_apply.max(1e-9),
        );
    }
    if queries_run > 0 {
        println!(
            "queries: mean latency = {:.1} us, mean qualCard = {:.4}, \
             prepares = {} (cache hits {})",
            query_micros as f64 / queries_run as f64,
            card_sum / queries_run as f64,
            stats.prepares,
            stats.cache_hits,
        );
    }
    if let Err(e) = write_stats_json(&f, &stats, full.stats(), Some(&agg), Some(&service.stats())) {
        return fail(&e);
    }
    if let Err(e) = finish_metrics_text(&service, &f) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

/// `phom serve-sim`: stands up the full service stack — a multi-graph
/// registry whose data graphs each split into WCC shards, a bounded
/// admission queue — and replays an open-loop mix of queries and edge
/// updates against it, reporting shed counts, per-plan latency
/// percentiles, and cache behavior. The workload: each registered graph
/// is a disjoint union of `--parts` synthetic instances (each part one
/// weakly connected component, so the registry actually shards), queries
/// are sliding-window patterns routed by candidate labels, updates flip
/// random intra-part edges.
fn cmd_serve_sim(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if !f.files.is_empty() {
        return fail("serve-sim takes no file arguments");
    }
    if !(0.0..=1.0).contains(&f.update_ratio) {
        return fail("--update-ratio must be in [0,1]");
    }
    if f.kill_worker && f.processes == 0 {
        return fail("--kill-worker needs --processes N (cluster mode)");
    }
    if f.processes > 0 {
        return serve_sim_cluster(&f);
    }
    let arrivals = f.arrivals.unwrap_or(Arrivals::Poisson(400.0));
    let service: Service<phom::workloads::synthetic::Label> = Service::new(service_config(
        &f,
        ShardingConfig {
            max_shards: f.parts,
            min_shard_nodes: 2,
        },
    ));
    if let Err(e) = attach_journal(&service, &f) {
        return fail(&e);
    }

    // Each graph: `--parts` disjoint copies of one synthetic instance
    // (distinct per graph via the seed), so every part is a WCC and the
    // label pool is shared across parts — a query's candidates appear in
    // every shard, exercising multi-shard routing and merging.
    let mut instances = Vec::with_capacity(f.graphs);
    let part_nodes = f.nodes.max(4);
    for g in 0..f.graphs {
        let cfg = SyntheticConfig {
            m: part_nodes,
            noise: f.noise,
            seed: f.seed.wrapping_add(g as u64),
        };
        let inst = phom::workloads::generate_instance(&cfg, 1);
        let mut union: DiGraph<phom::workloads::synthetic::Label> =
            DiGraph::with_capacity(part_nodes * f.parts);
        for _ in 0..f.parts {
            let offset = union.node_count();
            for v in inst.g2.nodes() {
                union.add_node(*inst.g2.label(v));
            }
            for (a, b) in inst.g2.edges() {
                union.add_edge(
                    NodeId((a.index() + offset) as u32),
                    NodeId((b.index() + offset) as u32),
                );
            }
        }
        let name = format!("g{g}");
        match service.register(name.clone(), std::sync::Arc::new(union)) {
            Ok(info) => {
                println!(
                    "registered {name}: {} nodes, {} edges, {} shards {:?} [{} backend, compression {}]",
                    info.nodes, info.edges, info.shards, info.shard_nodes,
                    info.closure_backend, info.compression,
                );
            }
            Err(e) => return fail(&e.to_string()),
        }
        instances.push(inst);
    }

    // Sliding-window patterns per graph (as engine-batch), with matrices
    // against the full union — label-stable under edge updates, so they
    // are precomputed once.
    let pattern_nodes = (part_nodes / 5).clamp(4, 40).min(part_nodes);
    let mut queries: Vec<(String, Query<phom::workloads::synthetic::Label>)> = Vec::new();
    for (g, inst) in instances.iter().enumerate() {
        let name = format!("g{g}");
        let data = service.graph(&name).expect("registered");
        for w in 0..4 {
            let lo = (w * part_nodes / 4).min(part_nodes - pattern_nodes);
            let keep: std::collections::BTreeSet<NodeId> =
                (lo..lo + pattern_nodes).map(|i| NodeId(i as u32)).collect();
            let pattern = std::sync::Arc::new(inst.g1.induced_subgraph(&keep).0);
            let mat = SimMatrix::from_fn(pattern.node_count(), data.node_count(), |v, u| {
                inst.pool.similarity(*pattern.label(v), *data.label(u))
            });
            queries.push((name.clone(), Query::new(pattern, mat)));
        }
    }

    let ops = f.queries;
    let schedule = arrivals.schedule(ops, f.seed);
    let workers = if f.threads > 0 {
        f.threads
    } else {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }
    .min(ops)
    .max(1);
    let update_every = if f.update_ratio > 0.0 {
        (1.0 / f.update_ratio).round().max(1.0) as usize
    } else {
        usize::MAX
    };
    let trace_log = TraceLog::new(&f);
    let start = std::time::Instant::now();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let latencies: std::sync::Mutex<Vec<(u128, u128)>> =
        std::sync::Mutex::new(Vec::with_capacity(ops));
    let shed = std::sync::atomic::AtomicUsize::new(0);
    // The reporter thread lives in an outer scope so the main thread can
    // run (and implicitly join) the submitter scope, then flip the stop
    // flag — while the reporter keeps the `--metrics-text` file fresh
    // and polls the SLO monitor (journaling breaches as they happen, not
    // at exit).
    let stop_reporter = std::sync::atomic::AtomicBool::new(false);
    let elapsed = std::thread::scope(|ops_scope| {
        if f.metrics_text.is_some() {
            let (service, f, stop) = (&service, &f, &stop_reporter);
            ops_scope.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let _ = service.slo_status();
                    if let Some(path) = &f.metrics_text {
                        if let Err(e) = write_metrics_text(service, path) {
                            eprintln!("{e}");
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_millis(220));
                }
            });
        }
        std::thread::scope(|s| {
            for worker in 0..workers {
                let queries = &queries;
                let schedule = &schedule;
                let trace_log = &trace_log;
                let service = &service;
                let latencies = &latencies;
                let shed = &shed;
                let next = &next;
                let f = &f;
                s.spawn(move || {
                    let mut rng =
                        phom::graph::XorShift64::new(f.seed ^ ((worker as u64 + 1) * 0x9e37));
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        if i >= ops {
                            break;
                        }
                        let sched = schedule[i];
                        let now = start.elapsed();
                        if now < sched {
                            std::thread::sleep(sched - now);
                        }
                        let graph_name = format!("g{}", i % f.graphs);
                        if update_every != usize::MAX && i % update_every == update_every - 1 {
                            // Edge flip inside one part of the target graph
                            // (intra-shard, routed to its owning shard).
                            let data = service.graph(&graph_name).expect("registered");
                            let n = data.node_count();
                            let part = n / f.parts.max(1);
                            let base = rng.below(f.parts.max(1)) * part;
                            let a = NodeId((base + rng.below(part.max(1))) as u32);
                            let b = NodeId((base + rng.below(part.max(1))) as u32);
                            let update = if data.has_edge(a, b) {
                                phom::dynamic::GraphUpdate::RemoveEdge(a, b)
                            } else {
                                phom::dynamic::GraphUpdate::InsertEdge(a, b)
                            };
                            if let Err(e) = service.handle(Request::ApplyUpdates {
                                graph: graph_name,
                                updates: vec![update],
                            }) {
                                eprintln!("update {i}: {e}");
                            }
                        } else {
                            let (name, q) = &queries[i % queries.len()];
                            match service.handle(Request::Query {
                                graph: name.clone(),
                                query: q.clone(),
                                trace: trace_log.enabled(),
                            }) {
                                Ok(Response::Answer(r)) => {
                                    let response =
                                        start.elapsed().saturating_sub(sched).as_micros();
                                    latencies
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .push((r.micros, response));
                                    trace_log.record(i, name, &r);
                                }
                                Ok(_) => unreachable!("query returns Answer"),
                                Err(ServiceError::Overloaded { .. }) => {
                                    shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                                Err(e) => eprintln!("query {i}: {e}"),
                            }
                        }
                    }
                });
            }
        });
        // Replay time excludes the reporter's final sleep-out: measure
        // before flipping the stop flag (the outer scope then joins it).
        let elapsed = start.elapsed();
        stop_reporter.store(true, std::sync::atomic::Ordering::Release);
        elapsed
    });
    if let Err(e) = trace_log.flush() {
        return fail(&e);
    }
    let pairs = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut service_lat: Vec<u128> = pairs.iter().map(|&(s, _)| s).collect();
    let mut response: Vec<u128> = pairs.iter().map(|&(_, r)| r).collect();
    service_lat.sort_unstable();
    response.sort_unstable();

    let stats = service.stats();
    println!(
        "serve-sim: {} ops at {:.1} op/s ({} arrivals) over {:.2} ms, {workers} submitters",
        ops,
        arrivals.rate(),
        arrivals.name(),
        elapsed.as_secs_f64() * 1e3,
    );
    println!(
        "admission: {} admitted, {} shed (queue depth {}), {} update batches, {} reshards",
        stats.queries_admitted,
        stats.queries_shed,
        if f.queue_depth == 0 {
            "unlimited".to_owned()
        } else {
            f.queue_depth.to_string()
        },
        stats.update_batches,
        stats.reshards,
    );
    println!(
        "response latency: p50 = {} us, p95 = {} us, p99 = {} us",
        percentile_micros(&response, 50),
        percentile_micros(&response, 95),
        percentile_micros(&response, 99),
    );
    println!(
        "service latency:  p50 = {} us, p95 = {} us, p99 = {} us",
        percentile_micros(&service_lat, 50),
        percentile_micros(&service_lat, 95),
        percentile_micros(&service_lat, 99),
    );
    let hist = &stats.plan_histograms;
    println!(
        "per-plan p99 (histogram upper bound): exact = {} us ({}), approx = {} us ({}), \
         bounded = {} us ({}), baseline = {} us ({})",
        hist.of(PlanKind::Exact).percentile_upper_micros(99),
        hist.of(PlanKind::Exact).count(),
        hist.of(PlanKind::Approx).percentile_upper_micros(99),
        hist.of(PlanKind::Approx).count(),
        hist.of(PlanKind::Bounded).percentile_upper_micros(99),
        hist.of(PlanKind::Bounded).count(),
        hist.of(PlanKind::Baseline).percentile_upper_micros(99),
        hist.of(PlanKind::Baseline).count(),
    );
    println!(
        "cache hit ratio = {:.3} lifetime / {:.3} windowed ({} graphs, {} shards)",
        stats.cache_hit_ratio_lifetime, stats.cache_hit_ratio_windowed, stats.graphs, stats.shards,
    );
    println!(
        "updates: {} backend fallbacks; slow-trace ring holds {} traces",
        stats.backend_fallbacks,
        stats.slow_traces.len(),
    );
    println!(
        "ops: {} journal events, {} flight records, SLO breached = {}",
        stats.journal_events, stats.flight_recorded, stats.slo.breached,
    );
    if let Some(path) = &f.stats_json {
        let mut engine_stats = service.engine_stats();
        engine_stats.last_batch_p50_micros = percentile_micros(&service_lat, 50);
        engine_stats.last_batch_p95_micros = percentile_micros(&service_lat, 95);
        engine_stats.last_batch_p99_micros = percentile_micros(&service_lat, 99);
        engine_stats.response_p50_micros = percentile_micros(&response, 50);
        engine_stats.response_p95_micros = percentile_micros(&response, 95);
        engine_stats.response_p99_micros = percentile_micros(&response, 99);
        let json = format!(
            "{{\"service\":{},\"engine\":{}}}\n",
            stats.to_json(),
            engine_stats.to_json(),
        );
        if let Err(e) = std::fs::write(path, json) {
            return fail(&format!("cannot write {path}: {e}"));
        }
        println!("stats JSON written to {path}");
    }
    if let Err(e) = finish_metrics_text(&service, &f) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

/// `phom worker`: hosts one single-process [`Service`] over TCP
/// speaking the `phom_cluster` wire protocol. Prints `listening <addr>`
/// once the socket is bound (`--listen host:0` picks a free port) so a
/// parent process can scrape the resolved address off stdout, then
/// serves until killed or until the `--max-seconds` leak guard expires.
fn cmd_worker(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if !f.files.is_empty() {
        return fail("worker takes no file arguments");
    }
    let Some(listen) = f.listen.clone() else {
        return fail("worker needs --listen host:port (port 0 picks a free port)");
    };
    // Short read timeout so connection handlers poll the stop flag and
    // the process drains promptly on shutdown.
    let transport = TcpTransport {
        timeouts: TransportTimeouts {
            read: std::time::Duration::from_millis(100),
            write: std::time::Duration::from_secs(5),
        },
        frame: FrameConfig::default(),
    };
    let listener = match transport.bind(&listen) {
        Ok(l) => l,
        Err(e) => return fail(&format!("cannot bind {listen}: {e}")),
    };
    let (service, mut server) = phom::cluster::worker::spawn_service(
        service_config(&f, ShardingConfig::disabled()),
        Box::new(listener),
        WorkerOptions::default(),
    );
    if let Err(e) = attach_journal(&service, &f) {
        return fail(&e);
    }
    println!("listening {}", server.addr());
    let started = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        if f.max_seconds > 0 && started.elapsed().as_secs() >= f.max_seconds {
            break;
        }
    }
    server.stop();
    if let Err(e) = finish_metrics_text(&service, &f) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

/// `serve-sim --processes N`: the cluster-mode replay. Spawns `N`
/// `phom worker` child processes on loopback, shards every synthetic
/// graph across them behind a [`Router`] front-end (with `--replicas`
/// read replicas per shard hydrated from primary snapshots), and
/// replays the open-loop query/update mix through the router. With
/// `--kill-worker`, one worker process is killed halfway through the
/// replay: the router detects the loss, promotes a replica for every
/// shard the dead worker led, and the replay completes against the
/// survivors.
fn serve_sim_cluster(f: &Flags) -> ExitCode {
    let arrivals = f.arrivals.unwrap_or(Arrivals::Poisson(400.0));
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return fail(&format!("cannot locate the phom binary: {e}")),
    };
    let mut spawned: Vec<std::process::Child> = Vec::new();
    let kill_all = |spawned: &mut Vec<std::process::Child>| {
        for c in spawned.iter_mut() {
            let _ = c.kill();
            let _ = c.wait();
        }
    };
    let mut readers = Vec::new();
    let mut addrs = Vec::new();
    for w in 0..f.processes {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("worker")
            .arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--max-seconds")
            .arg("600")
            .arg("--closure-backend")
            .arg(f.closure_backend.name())
            .arg("--threads")
            .arg(f.threads.to_string())
            .arg("--intra-workers")
            .arg(f.intra_workers.to_string());
        if let Some(t) = f.timeout_micros {
            cmd.arg("--timeout-micros").arg(t.to_string());
        }
        cmd.stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null());
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(e) => {
                kill_all(&mut spawned);
                return fail(&format!("cannot spawn worker {w}: {e}"));
            }
        };
        // Scrape the resolved listen address off the child's stdout
        // (`--listen 127.0.0.1:0` binds a free port; a journal banner
        // may print first). The reader stays alive for the run so the
        // child's stdout pipe never breaks.
        use std::io::BufRead;
        let mut reader = std::io::BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut addr = None;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if let Some(a) = line.trim().strip_prefix("listening ") {
                        addr = Some(a.to_owned());
                        break;
                    }
                }
            }
        }
        println!("worker {w}: pid {}", child.id());
        spawned.push(child);
        readers.push(reader);
        let Some(addr) = addr else {
            kill_all(&mut spawned);
            return fail(&format!("worker {w} never reported a listen address"));
        };
        addrs.push(addr);
    }

    let transport = std::sync::Arc::new(TcpTransport {
        timeouts: TransportTimeouts {
            read: std::time::Duration::from_secs(10),
            write: std::time::Duration::from_secs(10),
        },
        frame: FrameConfig::default(),
    });
    let router = Router::connect(
        transport,
        &addrs,
        RouterConfig {
            planner: planner_config(f),
            sharding: ShardingConfig {
                max_shards: f.parts,
                min_shard_nodes: 2,
            },
            replicas: f.replicas,
            frame: FrameConfig::default(),
            redials: 2,
            retry_backoff: std::time::Duration::from_millis(20),
            journal_capacity: 256,
        },
    );
    if router.heartbeat() == 0 {
        kill_all(&mut spawned);
        return fail("no workers reachable after spawn");
    }

    // Each graph: `--parts` disjoint string-labeled parts over a shared
    // 8-label pool (each part a spanning path plus random intra-part
    // edges), so every part is a WCC and a query's candidates appear in
    // every shard — multi-worker fan-out and merging on each query.
    let part_nodes = f.nodes.max(4);
    let mut queries: Vec<(String, Query<String>)> = Vec::new();
    for g in 0..f.graphs {
        let mut rng = phom::graph::XorShift64::new(f.seed.wrapping_add(g as u64) ^ 0x636c_7573); // "clus"
        let mut union: DiGraph<String> = DiGraph::with_capacity(part_nodes * f.parts);
        for _ in 0..f.parts {
            let base = union.node_count() as u32;
            for i in 0..part_nodes {
                union.add_node(format!("l{}", i % 8));
            }
            for i in 0..part_nodes as u32 - 1 {
                union.add_edge(NodeId(base + i), NodeId(base + i + 1));
            }
            for _ in 0..part_nodes {
                let a = rng.below(part_nodes) as u32;
                let b = rng.below(part_nodes) as u32;
                if a != b {
                    union.add_edge(NodeId(base + a), NodeId(base + b));
                }
            }
        }
        let name = format!("g{g}");
        let data = std::sync::Arc::new(union);
        match router.register(name.clone(), std::sync::Arc::clone(&data)) {
            Ok(info) => println!(
                "registered {name}: {} nodes, {} edges, {} shards x {} member(s) over {} workers",
                info.nodes,
                info.edges,
                info.shards,
                1 + f.replicas,
                f.processes,
            ),
            Err(e) => {
                kill_all(&mut spawned);
                return fail(&format!("register {name}: {e:?}"));
            }
        }
        // Three-node path patterns sliding over the label pool, matched
        // by label equality — precomputed once, label-stable under the
        // edge-insert update mix.
        for w in 0..4u32 {
            let mut pattern: DiGraph<String> = DiGraph::new();
            for k in 0..3u32 {
                pattern.add_node(format!("l{}", (w + k) % 8));
            }
            pattern.add_edge(NodeId(0), NodeId(1));
            pattern.add_edge(NodeId(1), NodeId(2));
            let pattern = std::sync::Arc::new(pattern);
            let matrix = SimMatrix::label_equality(&pattern, &data);
            let mut q = Query::new(pattern, matrix);
            q.config = QueryConfig::builder().xi(f.xi).restarts(1).build();
            queries.push((name.clone(), q));
        }
    }

    let ops = f.queries;
    let schedule = arrivals.schedule(ops, f.seed);
    let workers = if f.threads > 0 {
        f.threads
    } else {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }
    .min(ops)
    .max(1);
    let update_every = if f.update_ratio > 0.0 {
        (1.0 / f.update_ratio).round().max(1.0) as usize
    } else {
        usize::MAX
    };
    let trace_log = TraceLog::new(f);
    let children = std::sync::Mutex::new(spawned);
    let start = std::time::Instant::now();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let latencies: std::sync::Mutex<Vec<(u128, u128)>> =
        std::sync::Mutex::new(Vec::with_capacity(ops));
    let errors = std::sync::atomic::AtomicUsize::new(0);
    let elapsed = std::thread::scope(|s| {
        if f.kill_worker {
            let (next, children) = (&next, &children);
            s.spawn(move || loop {
                if next.load(std::sync::atomic::Ordering::SeqCst) >= ops / 2 {
                    let mut kids = children.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(c) = kids.first_mut() {
                        let pid = c.id();
                        let _ = c.kill();
                        let _ = c.wait();
                        println!("killed worker 0 (pid {pid}) mid-replay");
                    }
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            });
        }
        std::thread::scope(|s| {
            for worker in 0..workers {
                let queries = &queries;
                let schedule = &schedule;
                let trace_log = &trace_log;
                let router = &router;
                let latencies = &latencies;
                let errors = &errors;
                let next = &next;
                s.spawn(move || {
                    let mut rng =
                        phom::graph::XorShift64::new(f.seed ^ ((worker as u64 + 1) * 0x9e37));
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        if i >= ops {
                            break;
                        }
                        let sched = schedule[i];
                        let now = start.elapsed();
                        if now < sched {
                            std::thread::sleep(sched - now);
                        }
                        let graph_name = format!("g{}", i % f.graphs);
                        if update_every != usize::MAX && i % update_every == update_every - 1 {
                            // Random intra-part edge insert — idempotent
                            // (re-inserting an existing edge is a no-op),
                            // so a failover retry never corrupts a shard.
                            let part = rng.below(f.parts) * part_nodes;
                            let a = NodeId((part + rng.below(part_nodes)) as u32);
                            let b = NodeId((part + rng.below(part_nodes)) as u32);
                            if a == b {
                                continue;
                            }
                            if let Err(e) = router.apply_updates(
                                &graph_name,
                                &[phom::dynamic::GraphUpdate::InsertEdge(a, b)],
                            ) {
                                errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                eprintln!("update {i}: {e:?}");
                            }
                        } else {
                            let (name, q) = &queries[i % queries.len()];
                            match router.query(name, q, trace_log.enabled()) {
                                Ok(r) => {
                                    let response =
                                        start.elapsed().saturating_sub(sched).as_micros();
                                    latencies
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .push((r.micros, response));
                                    trace_log.record(i, name, &r);
                                }
                                Err(e) => {
                                    errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    eprintln!("query {i}: {e:?}");
                                }
                            }
                        }
                    }
                });
            }
        });
        start.elapsed()
    });
    // The fleet is no longer needed — stats, journal, and metrics below
    // are all router-local. Tear the children down before any output
    // path can early-return.
    let mut kids = children.into_inner().unwrap_or_else(|e| e.into_inner());
    kill_all(&mut kids);

    if let Err(e) = trace_log.flush() {
        return fail(&e);
    }
    let stats = router.stats();
    let err_count = errors.load(std::sync::atomic::Ordering::Relaxed);
    let pairs = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut service_lat: Vec<u128> = pairs.iter().map(|&(s, _)| s).collect();
    let mut response: Vec<u128> = pairs.iter().map(|&(_, r)| r).collect();
    service_lat.sort_unstable();
    response.sort_unstable();
    let throughput = pairs.len() as f64 / elapsed.as_secs_f64().max(1e-9);

    println!(
        "serve-sim (cluster): {} ops at {:.1} op/s ({} arrivals) over {:.2} ms, \
         {workers} submitters, {} worker processes",
        ops,
        arrivals.rate(),
        arrivals.name(),
        elapsed.as_secs_f64() * 1e3,
        f.processes,
    );
    println!(
        "routing: {} queries routed, {} update batches routed, {} ok responses \
         ({throughput:.1} op/s), {err_count} errors",
        stats.queries_routed,
        stats.updates_routed,
        pairs.len(),
    );
    println!(
        "fleet: {}/{} workers alive, {} connected, {} lost, {} replicas promoted, {} reconnects",
        stats.workers_alive,
        stats.workers,
        stats.workers_connected,
        stats.workers_lost,
        stats.replicas_promoted,
        stats.reconnects,
    );
    println!(
        "transport: {} bytes sent, {} bytes received",
        stats.bytes_sent, stats.bytes_received,
    );
    println!(
        "response latency: p50 = {} us, p95 = {} us, p99 = {} us",
        percentile_micros(&response, 50),
        percentile_micros(&response, 95),
        percentile_micros(&response, 99),
    );
    println!(
        "service latency:  p50 = {} us, p95 = {} us, p99 = {} us",
        percentile_micros(&service_lat, 50),
        percentile_micros(&service_lat, 95),
        percentile_micros(&service_lat, 99),
    );
    if let Some(path) = &f.stats_json {
        let json = format!(
            "{{\"router\":{},\"ops\":{},\"errors\":{},\"throughput_ops_per_sec\":{:.3},\
             \"response_p50_micros\":{},\"response_p95_micros\":{},\"response_p99_micros\":{},\
             \"service_p50_micros\":{},\"service_p95_micros\":{},\"service_p99_micros\":{}}}\n",
            stats.to_json(),
            ops,
            err_count,
            throughput,
            percentile_micros(&response, 50),
            percentile_micros(&response, 95),
            percentile_micros(&response, 99),
            percentile_micros(&service_lat, 50),
            percentile_micros(&service_lat, 95),
            percentile_micros(&service_lat, 99),
        );
        if let Err(e) = std::fs::write(path, json) {
            return fail(&format!("cannot write {path}: {e}"));
        }
        println!("stats JSON written to {path}");
    }
    if let Some(path) = &f.journal {
        let lines: Vec<String> = router
            .journal()
            .snapshot()
            .iter()
            .map(|e| e.to_json())
            .collect();
        let mut text = lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            return fail(&format!("cannot write {path}: {e}"));
        }
        println!(
            "event journal (JSON lines) -> {path} ({} events)",
            lines.len()
        );
    }
    if let Some(path) = &f.metrics_text {
        let text = phom::trace::render_prometheus(&router.metrics().export(), &[]);
        if let Err(e) = std::fs::write(path, text) {
            return fail(&format!("cannot write {path}: {e}"));
        }
        println!("metrics text written to {path}");
    }
    ExitCode::SUCCESS
}

/// `phom flight-dump`: replays a short synthetic batch through the
/// service layer and dumps the always-on flight recorder — one JSON
/// line per retained per-query summary, oldest first, plus a trailer
/// reconciling the retained/recorded counts against admitted queries.
/// With `--flight-capacity` smaller than `--queries`, the trailer shows
/// the ring keeping only the most recent summaries.
fn cmd_flight_dump(args: &[String]) -> ExitCode {
    let f = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    if !f.files.is_empty() {
        return fail("flight-dump takes no file arguments");
    }
    let (data, queries) = synthetic_batch(&f);
    let service: Service<phom::workloads::synthetic::Label> =
        Service::new(service_config(&f, ShardingConfig::disabled()));
    if let Err(e) = attach_journal(&service, &f) {
        return fail(&e);
    }
    if let Err(e) = service.register("flight".into(), std::sync::Arc::clone(&data)) {
        return fail(&e.to_string());
    }
    if let Err(e) = service.query_batch_traced("flight", &queries, false) {
        return fail(&e.to_string());
    }
    let records = service.flight().snapshot();
    for r in &records {
        println!("{}", r.to_json(plan_name_of(r.plan)));
    }
    let stats = service.stats();
    println!(
        "flight: {} retained of {} recorded ({} queries admitted)",
        records.len(),
        stats.flight_recorded,
        stats.queries_admitted,
    );
    if let Err(e) = finish_metrics_text(&service, &f) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut baseline: Option<std::path::PathBuf> = None;
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(std::path::PathBuf::from(p)),
                None => return fail("--baseline needs a path"),
            },
            p if !p.starts_with("--") => paths.push(std::path::PathBuf::from(p)),
            other => return fail(&format!("unknown lint flag {other:?}")),
        }
    }
    let root = match std::env::current_dir() {
        Ok(r) => r,
        Err(e) => return fail(&format!("cannot resolve working directory: {e}")),
    };
    // The committed baseline applies by default; --baseline overrides.
    let default_baseline = root.join("lint-baseline.txt");
    let baseline = baseline.or_else(|| default_baseline.is_file().then_some(default_baseline));
    let report = if paths.is_empty() {
        phom::audit::lint_workspace(&root, baseline.as_deref())
    } else {
        phom::audit::lint_paths(&root, &paths, baseline.as_deref())
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => return fail(&format!("lint failed: {e}")),
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_audit(args: &[String]) -> ExitCode {
    let mut graph: Option<String> = None;
    let mut generate: Option<String> = None;
    let mut deep = false;
    let mut samples = 16usize;
    let mut nodes = 400usize;
    let mut seed = 7u64;
    let mut backend = ClosureBackend::Auto;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--graph" => match take("--graph") {
                Ok(v) => graph = Some(v),
                Err(e) => return fail(&e),
            },
            "--generate" => match take("--generate") {
                Ok(v) => generate = Some(v),
                Err(e) => return fail(&e),
            },
            "--deep" => deep = true,
            "--samples" => match take("--samples")
                .and_then(|v| v.parse::<usize>().map_err(|e| format!("--samples: {e}")))
            {
                Ok(v) => samples = v,
                Err(e) => return fail(&e),
            },
            "--nodes" => match take("--nodes")
                .and_then(|v| v.parse::<usize>().map_err(|e| format!("--nodes: {e}")))
            {
                Ok(v) => nodes = v,
                Err(e) => return fail(&e),
            },
            "--seed" => match take("--seed")
                .and_then(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
            {
                Ok(v) => seed = v,
                Err(e) => return fail(&e),
            },
            "--closure-backend" => match take("--closure-backend") {
                Ok(v) => match ClosureBackend::parse(&v) {
                    Some(b) => backend = b,
                    None => return fail(&format!("unknown closure backend {v:?}")),
                },
                Err(e) => return fail(&e),
            },
            other => return fail(&format!("unknown audit flag {other:?}")),
        }
    }
    if let Some(path) = generate {
        // Build a synthetic data graph, prepare it under the requested
        // backend, and write the engine snapshot — the positive fixture
        // for the CI audit smoke (corrupt a byte to get the negative).
        let cfg = SyntheticConfig {
            m: nodes,
            noise: 0.1,
            seed,
        };
        let inst = generate_instance(&cfg, 1);
        let data: DiGraph<String> = inst.g2.map_labels(|_, l| format!("L{l}"));
        let prepared = PreparedGraph::with_backend(
            std::sync::Arc::new(data),
            backend,
            DEFAULT_CHAIN_NODE_THRESHOLD,
        );
        let bytes = prepared.save_snapshot();
        if let Err(e) = std::fs::write(&path, &bytes) {
            return fail(&format!("cannot write {path}: {e}"));
        }
        println!(
            "wrote snapshot: {} nodes, {} edges, backend {} ({} bytes) -> {path}",
            prepared.stats().nodes,
            prepared.stats().edges,
            prepared.stats().closure_backend,
            bytes.len()
        );
        return ExitCode::SUCCESS;
    }
    let Some(path) = graph else {
        return fail("audit needs --graph <snapshot> or --generate <snapshot.out>");
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    match audit_snapshot(bytes::Bytes::from(bytes), deep, samples) {
        Ok(report) => {
            print!("{}", report.render_text());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("audit FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
