//! The query planner: inspects one [`Query`] (pattern size, stretch
//! bound, injectivity, candidate-pair count) and routes it to the
//! execution strategy the cost model prefers, mirroring Appendix B's
//! observation that tiny product graphs are cheaper to solve *exactly*
//! (`phom_core::bounds::prefer_exact`) while large ones need the greedy
//! approximation with its Theorem 5.1 guarantee.

use phom_core::Algorithm;
use phom_graph::DiGraph;
use phom_sim::{NodeWeights, SimMatrix};
use std::sync::Arc;
use std::time::Duration;

/// Which reachability backend a prepared graph should use for its full
/// closure — the policy knob behind `phom_graph::ReachabilityIndex`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClosureBackend {
    /// Pick per graph: dense below
    /// [`PlannerConfig::chain_node_threshold`] nodes (unbeatable query
    /// speed while `O(n²)` bits fit); at or above it, the *reach shape*
    /// decides between the compressed backends — sparse-reach graphs
    /// (most components see almost nothing, the regime chains compress
    /// well) keep the chain index, while dense-reach graphs (sampled
    /// mean reachable fraction at or past
    /// [`DENSE_REACH_DENSITY_CUTOFF`], where chain entry lists blow past
    /// the dense bitset itself) switch to the 2-hop labeling.
    #[default]
    Auto,
    /// Always the dense bitset closure (`TransitiveClosure`).
    Dense,
    /// Always the compressed chain index (`ChainIndex`).
    Chain,
    /// Always the pruned-landmark 2-hop labeling (`TwoHopIndex`).
    TwoHop,
}

/// The concrete backend [`ClosureBackend::resolve`] picked for one graph
/// (`Auto` resolved away).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedBackend {
    /// Dense bitset closure.
    Dense,
    /// Compressed chain index.
    Chain,
    /// Pruned-landmark 2-hop labeling.
    TwoHop,
}

/// Sampled mean reachable fraction of condensation components
/// (`phom_graph::reach_density_sample`) at or above which
/// [`ClosureBackend::Auto`] prefers the 2-hop labeling over the chain
/// index on large graphs. Calibrated on the PR 3 generator families:
/// dense-reach DAGs (`random_dag` at average degree 4, where the chain
/// index measured *worse* than dense) sample well above 0.10, while the
/// sparse preferential-attachment and hierarchy families (where chains
/// win by orders of magnitude) sample below 0.05.
pub const DENSE_REACH_DENSITY_CUTOFF: f64 = 0.05;

impl ClosureBackend {
    /// Parses the CLI spelling (`dense`, `chain`, `twohop`, `auto`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(ClosureBackend::Auto),
            "dense" => Some(ClosureBackend::Dense),
            "chain" => Some(ClosureBackend::Chain),
            "twohop" => Some(ClosureBackend::TwoHop),
            _ => None,
        }
    }

    /// Resolves the policy for a graph of `nodes` nodes. `density` is
    /// consulted only by `Auto` at or above `chain_node_threshold` —
    /// pass a thunk over `phom_graph::reach_density_sample` so the probe
    /// runs only when the decision actually needs it.
    pub fn resolve(
        self,
        nodes: usize,
        chain_node_threshold: usize,
        density: impl FnOnce() -> f64,
    ) -> ResolvedBackend {
        match self {
            ClosureBackend::Dense => ResolvedBackend::Dense,
            ClosureBackend::Chain => ResolvedBackend::Chain,
            ClosureBackend::TwoHop => ResolvedBackend::TwoHop,
            ClosureBackend::Auto if nodes < chain_node_threshold => ResolvedBackend::Dense,
            ClosureBackend::Auto => {
                if density() >= DENSE_REACH_DENSITY_CUTOFF {
                    ResolvedBackend::TwoHop
                } else {
                    ResolvedBackend::Chain
                }
            }
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ClosureBackend::Auto => "auto",
            ClosureBackend::Dense => "dense",
            ClosureBackend::Chain => "chain",
            ClosureBackend::TwoHop => "twohop",
        }
    }
}

/// Node count at which [`ClosureBackend::Auto`] switches from the dense
/// closure to a compressed backend (chain or 2-hop, by reach density):
/// the dense rows of a 65k-node graph already cost ~0.5 GB of bits,
/// while the compressed indexes stay in the tens of MB on the families
/// they each target.
pub const DEFAULT_CHAIN_NODE_THRESHOLD: usize = 65_536;

/// Whether a prepared graph keeps the Appendix-B compressed graph `G2*`
/// (and its closure). The compressed and uncompressed matching runs are
/// both correct but are *different greedy runs* — they can return
/// different (equal-quality-class) mappings — so a sharded registry must
/// pin the decision that the whole graph would have made onto every
/// shard to stay result-identical with the unsharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionPolicy {
    /// Keep compression when `phom_core::compression_worthwhile` says the
    /// SCC condensation shrinks the graph enough to pay for the
    /// matrix-translation overhead (the original behavior).
    #[default]
    Auto,
    /// Always build and keep the compressed graph (even a trivial one
    /// where every SCC is a singleton).
    Always,
    /// Never keep the compressed graph.
    Never,
}

impl CompressionPolicy {
    /// Resolves the policy for a graph of `nodes` nodes condensing to
    /// `scc_count` components: true = keep the compressed graph.
    pub fn keep(self, nodes: usize, scc_count: usize) -> bool {
        match self {
            CompressionPolicy::Auto => phom_core::compression_worthwhile(nodes, scc_count),
            CompressionPolicy::Always => nodes > 0,
            CompressionPolicy::Never => false,
        }
    }

    /// The pinned policy matching what [`CompressionPolicy::keep`] would
    /// decide for a whole graph — what a registry forces onto shards.
    pub fn pinned(nodes: usize, scc_count: usize) -> Self {
        if CompressionPolicy::Auto.keep(nodes, scc_count) {
            CompressionPolicy::Always
        } else {
            CompressionPolicy::Never
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CompressionPolicy::Auto => "auto",
            CompressionPolicy::Always => "always",
            CompressionPolicy::Never => "never",
        }
    }
}

/// Planner tuning. Previously the routing cutoffs were hard-coded
/// (`phom_core::bounds::prefer_exact`'s magic 64 and a private restart
/// constant); exposing them here lets a deployment tune the exact/approx
/// trade-off per engine instance without rebuilding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Candidate-pair count at or below which the planner routes to exact
    /// branch-and-bound. Appendix B observes `log²n/n` peaks at `n = e²`,
    /// so *approximating* tiny instances forfeits quality for no speedup;
    /// the default (64) matches `phom_core::bounds::prefer_exact` and is
    /// deliberately larger than `e²` because the branch-and-bound oracle
    /// stays affordable into the hundreds of product nodes. Lower it if
    /// exact solving ever dominates tail latency; raise it for
    /// quality-critical workloads with slack.
    pub exact_pair_cutoff: usize,
    /// Candidate-pair count at or below which unbounded approximate plans
    /// default to multiple randomized restarts (restarts are cheap when
    /// the product graph is small).
    pub restart_friendly_pairs: usize,
    /// Restarts granted to restart-friendly plans when the query does not
    /// pin a count itself.
    pub default_restarts: usize,
    /// Reachability-backend policy for prepared graphs.
    pub closure_backend: ClosureBackend,
    /// Node count at which [`ClosureBackend::Auto`] switches to the chain
    /// index.
    pub chain_node_threshold: usize,
    /// Engine-wide per-query deadline for approximate plans, applied when
    /// the query does not set [`QueryConfig::timeout`] itself. A query
    /// past its deadline stops at the next iteration boundary and
    /// returns its best-so-far mapping with `MatchStats::timed_out` set
    /// (counted in `EngineStats::timeouts`). Exact and baseline plans
    /// are not interruptible (the planner only routes tiny instances
    /// there). `None` (the default) never times out.
    pub timeout: Option<Duration>,
    /// Worker threads for *intra*-query per-component parallelism
    /// (Proposition 1 makes p-hom components independent), applied when
    /// the query does not set [`QueryConfig::intra_workers`]. `1` (the
    /// default) keeps the sequential path; `0` uses the available
    /// parallelism. Injective plans run their components speculatively
    /// in parallel and merge in deterministic component order
    /// (result-identical to the sequential masking run).
    pub intra_query_workers: usize,
    /// Whether prepared graphs keep the Appendix-B compressed graph.
    pub compression: CompressionPolicy,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            exact_pair_cutoff: 64,
            restart_friendly_pairs: 2_048,
            default_restarts: 4,
            closure_backend: ClosureBackend::Auto,
            chain_node_threshold: DEFAULT_CHAIN_NODE_THRESHOLD,
            timeout: None,
            intra_query_workers: 1,
            compression: CompressionPolicy::Auto,
        }
    }
}

impl PlannerConfig {
    /// A builder starting from the defaults — the one config path the
    /// engine, the service layer, and the CLI all construct through.
    pub fn builder() -> PlannerConfigBuilder {
        PlannerConfigBuilder {
            config: PlannerConfig::default(),
        }
    }
}

/// Builder for [`PlannerConfig`] (see [`PlannerConfig::builder`]).
#[derive(Debug, Clone)]
pub struct PlannerConfigBuilder {
    config: PlannerConfig,
}

impl PlannerConfigBuilder {
    /// Sets [`PlannerConfig::exact_pair_cutoff`].
    pub fn exact_pair_cutoff(mut self, pairs: usize) -> Self {
        self.config.exact_pair_cutoff = pairs;
        self
    }

    /// Sets [`PlannerConfig::restart_friendly_pairs`].
    pub fn restart_friendly_pairs(mut self, pairs: usize) -> Self {
        self.config.restart_friendly_pairs = pairs;
        self
    }

    /// Sets [`PlannerConfig::default_restarts`].
    pub fn default_restarts(mut self, restarts: usize) -> Self {
        self.config.default_restarts = restarts;
        self
    }

    /// Sets [`PlannerConfig::closure_backend`].
    pub fn closure_backend(mut self, backend: ClosureBackend) -> Self {
        self.config.closure_backend = backend;
        self
    }

    /// Sets [`PlannerConfig::chain_node_threshold`].
    pub fn chain_node_threshold(mut self, nodes: usize) -> Self {
        self.config.chain_node_threshold = nodes;
        self
    }

    /// Sets [`PlannerConfig::timeout`].
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.config.timeout = Some(timeout);
        self
    }

    /// Sets [`PlannerConfig::timeout`] from an optional value (`None`
    /// clears it — convenient for CLI flag plumbing).
    pub fn timeout_opt(mut self, timeout: Option<Duration>) -> Self {
        self.config.timeout = timeout;
        self
    }

    /// Sets [`PlannerConfig::intra_query_workers`].
    pub fn intra_query_workers(mut self, workers: usize) -> Self {
        self.config.intra_query_workers = workers;
        self
    }

    /// Sets [`PlannerConfig::compression`].
    pub fn compression(mut self, policy: CompressionPolicy) -> Self {
        self.config.compression = policy;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> PlannerConfig {
        self.config
    }
}

/// Per-query knobs (the pattern-side half of a
/// [`phom_core::MatcherConfig`], plus planner hints).
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Similarity threshold `ξ`.
    pub xi: f64,
    /// Which of the four Table-1 problems to solve.
    pub algorithm: Algorithm,
    /// Bounded-stretch matching: image paths of at most this many edges.
    pub max_stretch: Option<usize>,
    /// Randomized restarts; `None` lets the planner choose.
    pub restarts: Option<usize>,
    /// Bypass the planner and force a strategy. `PlanKind::Baseline` is
    /// only sound for edgeless patterns (the planner never picks it
    /// otherwise); forcing it on a pattern with edges may return an
    /// invalid p-hom mapping.
    pub force_plan: Option<PlanKind>,
    /// Per-query deadline; `None` falls back to
    /// [`PlannerConfig::timeout`]. See that field for semantics.
    pub timeout: Option<Duration>,
    /// Per-query intra-query worker count; `None` falls back to
    /// [`PlannerConfig::intra_query_workers`].
    pub intra_workers: Option<usize>,
    /// Appendix-B pattern partitioning (`MatcherConfig::partition_g1`)
    /// for approximate plans.
    pub partition: bool,
    /// Appendix-B compressed-graph matching (`MatcherConfig::compress_g2`)
    /// for approximate plans — effective only when the prepared graph
    /// kept a compressed graph (see
    /// [`CompressionPolicy`]).
    pub compress: bool,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            xi: 0.5,
            algorithm: Algorithm::MaxCard,
            max_stretch: None,
            restarts: None,
            force_plan: None,
            timeout: None,
            intra_workers: None,
            partition: true,
            compress: true,
        }
    }
}

impl QueryConfig {
    /// A builder starting from the defaults.
    pub fn builder() -> QueryConfigBuilder {
        QueryConfigBuilder {
            config: QueryConfig::default(),
        }
    }
}

/// Builder for [`QueryConfig`] (see [`QueryConfig::builder`]).
#[derive(Debug, Clone)]
pub struct QueryConfigBuilder {
    config: QueryConfig,
}

impl QueryConfigBuilder {
    /// Sets [`QueryConfig::xi`].
    pub fn xi(mut self, xi: f64) -> Self {
        self.config.xi = xi;
        self
    }

    /// Sets [`QueryConfig::algorithm`].
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Sets [`QueryConfig::max_stretch`].
    pub fn max_stretch(mut self, k: usize) -> Self {
        self.config.max_stretch = Some(k);
        self
    }

    /// Sets [`QueryConfig::restarts`].
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.config.restarts = Some(restarts);
        self
    }

    /// Sets [`QueryConfig::force_plan`].
    pub fn force_plan(mut self, kind: PlanKind) -> Self {
        self.config.force_plan = Some(kind);
        self
    }

    /// Sets [`QueryConfig::timeout`].
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.config.timeout = Some(timeout);
        self
    }

    /// Sets [`QueryConfig::intra_workers`].
    pub fn intra_workers(mut self, workers: usize) -> Self {
        self.config.intra_workers = Some(workers);
        self
    }

    /// Sets [`QueryConfig::partition`].
    pub fn partition(mut self, on: bool) -> Self {
        self.config.partition = on;
        self
    }

    /// Sets [`QueryConfig::compress`].
    pub fn compress(mut self, on: bool) -> Self {
        self.config.compress = on;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> QueryConfig {
        self.config
    }
}

/// One pattern query against a prepared data graph.
#[derive(Debug, Clone)]
pub struct Query<L> {
    /// The pattern `G1`.
    pub pattern: Arc<DiGraph<L>>,
    /// Node-similarity matrix (`pattern.node_count()` ×
    /// `data.node_count()`).
    pub matrix: SimMatrix,
    /// `qualSim` weights over the pattern; `None` = uniform.
    pub weights: Option<NodeWeights>,
    /// Query configuration.
    pub config: QueryConfig,
}

impl<L> Query<L> {
    /// A query with default configuration.
    pub fn new(pattern: Arc<DiGraph<L>>, matrix: SimMatrix) -> Self {
        Query {
            pattern,
            matrix,
            weights: None,
            config: QueryConfig::default(),
        }
    }

    /// The weights to score `qualSim` with (uniform when unset).
    pub fn effective_weights(&self) -> NodeWeights {
        self.weights
            .clone()
            .unwrap_or_else(|| NodeWeights::uniform(self.pattern.node_count()))
    }
}

/// The execution strategy a query was routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Branch-and-bound exact optimum (tiny candidate sets only).
    Exact,
    /// The paper's greedy approximation (`compMaxCard`/`compMaxSim`
    /// via the Appendix-B matcher), possibly with restarts.
    Approx,
    /// Approximation against the hop-bounded closure (stretch bound).
    Bounded,
    /// Independent best-candidate assignment — the degenerate strategy
    /// for edgeless patterns, where p-hom imposes no path constraints.
    Baseline,
}

impl PlanKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::Exact => "exact",
            PlanKind::Approx => "approx",
            PlanKind::Bounded => "bounded",
            PlanKind::Baseline => "baseline",
        }
    }
}

/// A routing decision plus the planner's rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Plan {
    /// Chosen strategy.
    pub kind: PlanKind,
    /// Restarts the executor should run (1 = the paper's algorithm).
    pub restarts: usize,
    /// Human-readable rationale (for engine stats / EXPLAIN output).
    pub reason: &'static str,
}

fn pick_restarts(requested: Option<usize>, candidate_pairs: usize, cfg: &PlannerConfig) -> usize {
    requested.unwrap_or(if candidate_pairs <= cfg.restart_friendly_pairs {
        cfg.default_restarts
    } else {
        1
    })
}

/// Routes a query under explicit [`PlannerConfig`] cutoffs. Deterministic
/// in the query and config alone (the prepared data graph's artifacts do
/// not change the choice, only its cost).
pub fn plan_query_with<L>(query: &Query<L>, cfg: &PlannerConfig) -> Plan {
    let candidate_pairs = query.matrix.candidate_pair_count(query.config.xi);
    let restarts = pick_restarts(query.config.restarts, candidate_pairs, cfg);
    if let Some(kind) = query.config.force_plan {
        return Plan {
            kind,
            restarts,
            reason: "forced by query config",
        };
    }
    if query.config.max_stretch.is_some() {
        return Plan {
            kind: PlanKind::Bounded,
            restarts,
            reason: "stretch bound requires the hop-bounded closure",
        };
    }
    if query.pattern.edge_count() == 0 {
        return Plan {
            kind: PlanKind::Baseline,
            restarts: 1,
            reason: "edgeless pattern: no path constraints to satisfy",
        };
    }
    if candidate_pairs <= cfg.exact_pair_cutoff {
        return Plan {
            kind: PlanKind::Exact,
            restarts: 1,
            reason: "tiny candidate set: exact branch-and-bound is affordable",
        };
    }
    Plan {
        kind: PlanKind::Approx,
        restarts,
        reason: "greedy approximation with the Theorem 5.1 guarantee",
    }
}

/// Routes a query with the default cutoffs — see [`plan_query_with`].
#[deprecated(
    since = "0.2.0",
    note = "use plan_query_with(query, &PlannerConfig::default()) — or route \
            queries through phom_service::Service, which plans internally"
)]
pub fn plan_query<L>(query: &Query<L>) -> Plan {
    plan_query_with(query, &PlannerConfig::default())
}

#[cfg(test)]
#[allow(deprecated)] // `plan_query`'s own forwarding behavior stays tested
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    fn query_for(n_labels: usize, edges: &[(&str, &str)]) -> Query<String> {
        let labels: Vec<String> = (0..n_labels).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        let g1 = Arc::new(graph_from_labels(&refs, edges));
        // Dense all-ones matrix against a 40-node data side: candidate
        // count = n_labels * 40.
        let matrix = SimMatrix::from_fn(n_labels, 40, |_, _| 1.0);
        Query::new(g1, matrix)
    }

    #[test]
    fn stretch_routes_to_bounded() {
        let mut q = query_for(3, &[("n0", "n1")]);
        q.config.max_stretch = Some(2);
        assert_eq!(plan_query(&q).kind, PlanKind::Bounded);
    }

    #[test]
    fn edgeless_routes_to_baseline() {
        let q = query_for(3, &[]);
        assert_eq!(plan_query(&q).kind, PlanKind::Baseline);
    }

    #[test]
    fn tiny_candidate_set_routes_to_exact() {
        let mut q = query_for(2, &[("n0", "n1")]);
        // Shrink the candidate set below the prefer_exact cutoff.
        q.matrix = SimMatrix::from_fn(2, 40, |v, u| {
            if u.index() < 8 && v.index() == u.index() % 2 {
                1.0
            } else {
                0.0
            }
        });
        let plan = plan_query(&q);
        assert_eq!(plan.kind, PlanKind::Exact);
        assert_eq!(plan.restarts, 1);
    }

    #[test]
    fn large_instance_routes_to_approx() {
        let q = query_for(10, &[("n0", "n1"), ("n1", "n2")]);
        let plan = plan_query(&q);
        assert_eq!(plan.kind, PlanKind::Approx);
        assert_eq!(plan.restarts, 4, "400 candidate pairs: restart-friendly");
    }

    #[test]
    fn requested_restarts_win() {
        let mut q = query_for(10, &[("n0", "n1")]);
        q.config.restarts = Some(9);
        assert_eq!(plan_query(&q).restarts, 9);
    }

    #[test]
    fn force_plan_bypasses_routing() {
        let mut q = query_for(10, &[("n0", "n1")]);
        q.config.force_plan = Some(PlanKind::Approx);
        q.config.max_stretch = Some(1); // would otherwise route Bounded
        assert_eq!(plan_query(&q).kind, PlanKind::Approx);
    }

    #[test]
    fn backend_policy_resolves_by_size_then_density() {
        let panic_density = || -> f64 { panic!("density probe must stay lazy") };
        // Forced backends never probe.
        for (policy, want) in [
            (ClosureBackend::Dense, ResolvedBackend::Dense),
            (ClosureBackend::Chain, ResolvedBackend::Chain),
            (ClosureBackend::TwoHop, ResolvedBackend::TwoHop),
        ] {
            assert_eq!(policy.resolve(1_000_000, 100, panic_density), want);
        }
        // Auto below the node threshold is dense, still without probing.
        assert_eq!(
            ClosureBackend::Auto.resolve(99, 100, panic_density),
            ResolvedBackend::Dense
        );
        // At or above it, the sampled reach density decides.
        assert_eq!(
            ClosureBackend::Auto.resolve(100, 100, || 0.40),
            ResolvedBackend::TwoHop
        );
        assert_eq!(
            ClosureBackend::Auto.resolve(100, 100, || 0.01),
            ResolvedBackend::Chain
        );
        assert_eq!(
            ClosureBackend::parse("twohop"),
            Some(ClosureBackend::TwoHop)
        );
        assert_eq!(ClosureBackend::TwoHop.name(), "twohop");
    }

    #[test]
    fn planner_config_cutoffs_are_tunable() {
        // 10 * 40 = 400 candidate pairs: Approx under the default cutoff.
        let q = query_for(10, &[("n0", "n1")]);
        assert_eq!(plan_query(&q).kind, PlanKind::Approx);
        // Raising the exact cutoff above 400 routes the same query Exact.
        let generous = PlannerConfig {
            exact_pair_cutoff: 500,
            ..Default::default()
        };
        assert_eq!(plan_query_with(&q, &generous).kind, PlanKind::Exact);
        // Shrinking the restart-friendly window drops restarts to 1.
        let stingy = PlannerConfig {
            restart_friendly_pairs: 100,
            ..Default::default()
        };
        assert_eq!(plan_query_with(&q, &stingy).restarts, 1);
        // And the default-restart count itself is a knob.
        let eager = PlannerConfig {
            default_restarts: 9,
            ..Default::default()
        };
        assert_eq!(plan_query_with(&q, &eager).restarts, 9);
    }
}
