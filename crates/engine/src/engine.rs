//! The engine proper: an LRU cache of [`PreparedGraph`]s keyed by graph
//! fingerprint, per-query execution against prepared artifacts, and a
//! work-stealing batch executor over a scoped thread pool.

use crate::planner::{plan_query_with, Plan, PlanKind, PlannerConfig, Query};
use crate::prepared::{PrepareOptions, PreparedGraph, UpdateOutcome, UpdateStats};
use phom_core::{
    exact_optimum_budgeted, match_graphs_prepared, MatchBudget, MatchOutcome, MatchStats,
    MatcherConfig, Objective, PHomMapping,
};
use phom_dynamic::{DynamicConfig, GraphUpdate};
use phom_graph::{DiGraph, NodeId, ReachabilityIndex};
use phom_sim::{NodeWeights, SimMatrix};
use phom_trace::{EventJournal, EventKind, QueryTrace, Severity, SpanKind};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Prepared graphs kept in the LRU cache.
    pub cache_capacity: usize,
    /// Batch worker threads; `0` = available parallelism.
    pub threads: usize,
    /// Query-routing cutoffs (exact/approx/restart decisions).
    pub planner: PlannerConfig,
    /// Closure-maintenance tuning for [`Engine::apply_updates`].
    pub dynamic: DynamicConfig,
    /// Update admission: batches longer than this skip incremental
    /// maintenance and re-prepare from scratch once (a huge batch
    /// amortizes the rebuild, and per-edge cascades would only add
    /// overhead on top).
    pub max_update_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 8,
            threads: 0,
            planner: PlannerConfig::default(),
            dynamic: DynamicConfig::default(),
            max_update_batch: 256,
        }
    }
}

impl EngineConfig {
    /// A builder starting from the defaults — the one config path the
    /// engine, the service layer, and the CLI all construct through.
    ///
    /// ```
    /// use phom_engine::{ClosureBackend, EngineConfig, PlannerConfig};
    ///
    /// let config = EngineConfig::builder()
    ///     .cache_capacity(32)
    ///     .threads(4)
    ///     .planner(
    ///         PlannerConfig::builder()
    ///             .closure_backend(ClosureBackend::Dense)
    ///             .intra_query_workers(2)
    ///             .build(),
    ///     )
    ///     .build();
    /// assert_eq!(config.cache_capacity, 32);
    /// ```
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }

    /// The [`PrepareOptions`] this config implies for fresh preparations.
    pub fn prepare_options(&self) -> PrepareOptions {
        PrepareOptions::from_planner(&self.planner)
    }
}

/// Builder for [`EngineConfig`] (see [`EngineConfig::builder`]).
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets [`EngineConfig::cache_capacity`].
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Sets [`EngineConfig::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets [`EngineConfig::planner`].
    pub fn planner(mut self, planner: PlannerConfig) -> Self {
        self.config.planner = planner;
        self
    }

    /// Sets [`EngineConfig::dynamic`].
    pub fn dynamic(mut self, dynamic: DynamicConfig) -> Self {
        self.config.dynamic = dynamic;
        self
    }

    /// Sets [`EngineConfig::max_update_batch`].
    pub fn max_update_batch(mut self, batch: usize) -> Self {
        self.config.max_update_batch = batch;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Monotone counters the engine keeps across its lifetime, snapshot via
/// [`Engine::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Full preparations run (each computes the closure exactly once).
    pub prepares: usize,
    /// Prepared graphs served from the cache.
    pub cache_hits: usize,
    /// Queries executed.
    pub queries: usize,
    /// Queries routed to each strategy.
    pub exact_plans: usize,
    /// See [`EngineStats::exact_plans`].
    pub approx_plans: usize,
    /// See [`EngineStats::exact_plans`].
    pub bounded_plans: usize,
    /// See [`EngineStats::exact_plans`].
    pub baseline_plans: usize,
    /// Worker threads used by the most recent batch.
    pub last_batch_workers: usize,
    /// Workers observed simultaneously holding queries in the most
    /// recent batch (the parallelism actually achieved at its start).
    pub last_batch_peak_parallel: usize,
    /// Graph updates admitted via [`Engine::apply_updates`] that changed
    /// a graph.
    pub updates_applied: usize,
    /// Updates serviced by incremental closure maintenance (including
    /// those that left the closure untouched).
    pub updates_incremental: usize,
    /// Updates that fell back to a full re-prepare (damage threshold or
    /// admission limit).
    pub update_rebuilds: usize,
    /// Queries whose deadline expired mid-run (best-so-far returned with
    /// `MatchStats::timed_out`).
    pub timeouts: usize,
    /// Pattern components matched on the intra-query parallel path
    /// (Proposition 1 fan-out; see `PlannerConfig::intra_query_workers`).
    pub intra_parallel_components: usize,
    /// p50 of per-query *service* latency (execution only, microseconds)
    /// in the most recent batch or open-loop replay. Always service
    /// time — queueing delay is reported separately in
    /// [`EngineStats::response_p50_micros`].
    pub last_batch_p50_micros: usize,
    /// p95 of per-query service latency in the most recent batch
    /// (microseconds).
    pub last_batch_p95_micros: usize,
    /// p99 of per-query service latency in the most recent batch
    /// (microseconds).
    pub last_batch_p99_micros: usize,
    /// p50 of *response* latency (scheduled arrival to completion,
    /// queueing included, microseconds). Only open-loop replays have a
    /// queueing discipline, so only they populate these; closed-loop
    /// batches leave them 0.
    pub response_p50_micros: usize,
    /// p95 of response latency (microseconds); see
    /// [`EngineStats::response_p50_micros`].
    pub response_p95_micros: usize,
    /// p99 of response latency (microseconds); see
    /// [`EngineStats::response_p50_micros`].
    pub response_p99_micros: usize,
}

/// Nearest-rank percentile of a sorted latency sample (`p` in `0..=100`).
pub fn percentile_micros(sorted: &[u128], p: usize) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)] as usize
}

impl EngineStats {
    /// Compact JSON rendering (field names match the struct) — the
    /// `--stats-json` export format.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"prepares\":{},\"cache_hits\":{},\"queries\":{},\"exact_plans\":{},\
             \"approx_plans\":{},\"bounded_plans\":{},\"baseline_plans\":{},\
             \"last_batch_workers\":{},\"last_batch_peak_parallel\":{},\
             \"updates_applied\":{},\"updates_incremental\":{},\"update_rebuilds\":{},\
             \"timeouts\":{},\"intra_parallel_components\":{},\
             \"last_batch_p50_micros\":{},\"last_batch_p95_micros\":{},\
             \"last_batch_p99_micros\":{},\"response_p50_micros\":{},\
             \"response_p95_micros\":{},\"response_p99_micros\":{}}}",
            self.prepares,
            self.cache_hits,
            self.queries,
            self.exact_plans,
            self.approx_plans,
            self.bounded_plans,
            self.baseline_plans,
            self.last_batch_workers,
            self.last_batch_peak_parallel,
            self.updates_applied,
            self.updates_incremental,
            self.update_rebuilds,
            self.timeouts,
            self.intra_parallel_components,
            self.last_batch_p50_micros,
            self.last_batch_p95_micros,
            self.last_batch_p99_micros,
            self.response_p50_micros,
            self.response_p95_micros,
            self.response_p99_micros
        )
    }
}

#[derive(Debug, Default)]
struct Counters {
    prepares: AtomicUsize,
    cache_hits: AtomicUsize,
    queries: AtomicUsize,
    exact_plans: AtomicUsize,
    approx_plans: AtomicUsize,
    bounded_plans: AtomicUsize,
    baseline_plans: AtomicUsize,
    last_batch_workers: AtomicUsize,
    last_batch_peak_parallel: AtomicUsize,
    updates_applied: AtomicUsize,
    updates_incremental: AtomicUsize,
    update_rebuilds: AtomicUsize,
    timeouts: AtomicUsize,
    intra_parallel_components: AtomicUsize,
    last_batch_p50_micros: AtomicUsize,
    last_batch_p95_micros: AtomicUsize,
    last_batch_p99_micros: AtomicUsize,
}

/// The result of one query: the matching outcome plus how the engine got
/// there.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The matcher's outcome (mapping + quality metrics + run stats).
    pub outcome: MatchOutcome,
    /// The plan the query was routed to.
    pub plan: Plan,
    /// Wall-clock microseconds spent executing (excludes preparation).
    pub micros: u128,
    /// The query's trace when tracing was requested
    /// ([`Engine::execute_traced`]); `None` on the untraced hot path,
    /// which never constructs a trace.
    pub trace: Option<Box<QueryTrace>>,
}

/// One batch's results plus the stats snapshot taken right after it.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query results, in input order.
    pub results: Vec<QueryResult>,
    /// Engine stats after the batch.
    pub stats: EngineStats,
}

#[derive(Debug)]
struct LruCache<L> {
    map: HashMap<u64, (Arc<PreparedGraph<L>>, u64)>,
    tick: u64,
    capacity: usize,
}

impl<L> LruCache<L> {
    fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<PreparedGraph<L>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|entry| {
            entry.1 = tick;
            Arc::clone(&entry.0)
        })
    }

    fn insert(&mut self, key: u64, value: Arc<PreparedGraph<L>>) {
        self.tick += 1;
        self.map.insert(key, (value, self.tick));
        if self.map.len() > self.capacity {
            if let Some(&evict) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
            {
                self.map.remove(&evict);
            }
        }
    }
}

/// Structural fingerprint of a labeled digraph: node count, labels in id
/// order, and the edge list. The engine keys its prepared-graph cache by
/// this 64-bit hash but **verifies structural equality on every hit**
/// (see [`Engine::prepare`]), so a hash collision degrades to a cache
/// miss instead of silently serving another graph's artifacts.
pub fn graph_fingerprint<L: Hash>(g: &DiGraph<L>) -> u64 {
    let mut h = DefaultHasher::new();
    g.node_count().hash(&mut h);
    for v in g.nodes() {
        g.label(v).hash(&mut h);
    }
    g.edge_count().hash(&mut h);
    for (a, b) in g.edges() {
        (a.0, b.0).hash(&mut h);
    }
    h.finish()
}

/// Structural equality of two labeled digraphs: node/edge counts, labels
/// in id order, and the edge lists. This is what the cache key *means*;
/// the fingerprint is only its 64-bit shadow.
fn same_structure<L: PartialEq>(a: &DiGraph<L>, b: &DiGraph<L>) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.nodes().all(|v| a.label(v) == b.label(v))
        && a.edges().eq(b.edges())
}

/// A long-lived matching engine: prepare a data graph once, answer many
/// pattern queries against it, in parallel, with per-query planning.
///
/// ```
/// use phom_engine::{Engine, Query};
/// use phom_graph::graph_from_labels;
/// use phom_sim::SimMatrix;
/// use std::sync::Arc;
///
/// let data = Arc::new(graph_from_labels(
///     &["books", "cat", "school"],
///     &[("books", "cat"), ("cat", "school")],
/// ));
/// let pattern = Arc::new(graph_from_labels(&["books", "school"], &[("books", "school")]));
/// let mat = SimMatrix::label_equality(&pattern, &data);
///
/// let engine: Engine<String> = Engine::default();
/// let batch = engine.execute_batch(&data, &[Query::new(pattern, mat)]);
/// assert_eq!(batch.results[0].outcome.qual_card, 1.0);
/// assert_eq!(batch.stats.prepares, 1);
/// ```
#[derive(Debug)]
pub struct Engine<L> {
    config: EngineConfig,
    cache: Mutex<LruCache<L>>,
    counters: Counters,
    /// Lifecycle-event sink (timeouts, update admissions, backend
    /// fallbacks). Disabled by default: every emission site is then a
    /// single branch that constructs nothing (see
    /// [`phom_trace::event_constructions`]).
    journal: Arc<EventJournal>,
}

impl<L> Default for Engine<L> {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl<L> Engine<L> {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        let capacity = config.cache_capacity;
        Engine {
            config,
            cache: Mutex::new(LruCache::new(capacity)),
            counters: Counters::default(),
            journal: Arc::new(EventJournal::disabled()),
        }
    }

    /// Routes the engine's lifecycle events ([`EventKind::QueryTimedOut`],
    /// [`EventKind::UpdateApplied`], [`EventKind::BackendFallback`]) into
    /// `journal` — typically a journal shared with the service layer, so
    /// every layer's events land in one sequenced stream.
    pub fn set_journal(&mut self, journal: Arc<EventJournal>) {
        self.journal = journal;
    }

    /// The engine's event journal (disabled unless
    /// [`Engine::set_journal`] installed one).
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// Snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        let c = &self.counters;
        EngineStats {
            prepares: c.prepares.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            queries: c.queries.load(Ordering::Relaxed),
            exact_plans: c.exact_plans.load(Ordering::Relaxed),
            approx_plans: c.approx_plans.load(Ordering::Relaxed),
            bounded_plans: c.bounded_plans.load(Ordering::Relaxed),
            baseline_plans: c.baseline_plans.load(Ordering::Relaxed),
            last_batch_workers: c.last_batch_workers.load(Ordering::Relaxed),
            last_batch_peak_parallel: c.last_batch_peak_parallel.load(Ordering::Relaxed),
            updates_applied: c.updates_applied.load(Ordering::Relaxed),
            updates_incremental: c.updates_incremental.load(Ordering::Relaxed),
            update_rebuilds: c.update_rebuilds.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            intra_parallel_components: c.intra_parallel_components.load(Ordering::Relaxed),
            last_batch_p50_micros: c.last_batch_p50_micros.load(Ordering::Relaxed),
            last_batch_p95_micros: c.last_batch_p95_micros.load(Ordering::Relaxed),
            last_batch_p99_micros: c.last_batch_p99_micros.load(Ordering::Relaxed),
            // Response percentiles have no engine-side counter: only the
            // open-loop replay (which owns the arrival schedule) can
            // compute them, and it fills them into its exported snapshot.
            response_p50_micros: 0,
            response_p95_micros: 0,
            response_p99_micros: 0,
        }
    }

    fn worker_count(&self, queries: usize) -> usize {
        let hw = if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        };
        hw.min(queries).max(1)
    }
}

impl<L: Clone + Hash + PartialEq> Engine<L> {
    /// Returns the prepared form of `graph`, preparing it on a cache miss
    /// (one closure computation) and serving it from the LRU thereafter.
    ///
    /// A hit is only served after verifying the cached entry is
    /// *structurally* the same graph: the cache is keyed by the 64-bit
    /// [`graph_fingerprint`], and a hash collision must degrade to a
    /// miss (re-prepare), never to silently matching queries against a
    /// different graph's closure.
    pub fn prepare(&self, graph: &Arc<DiGraph<L>>) -> Arc<PreparedGraph<L>> {
        self.prepare_with(graph, self.config.prepare_options())
    }

    /// [`Engine::prepare`] under explicit [`PrepareOptions`] — the entry
    /// point a sharded registry uses to pin the whole graph's compression
    /// decision onto each shard. A cache hit is only served when the
    /// cached entry was prepared under the *same* options; a mismatch
    /// degrades to a re-prepare (replacing the entry), never to serving
    /// artifacts built under another policy.
    pub fn prepare_with(
        &self,
        graph: &Arc<DiGraph<L>>,
        options: PrepareOptions,
    ) -> Arc<PreparedGraph<L>> {
        let key = graph_fingerprint(graph);
        // Only the O(1) lookup holds the lock; the O(V + E) structural
        // verification walks the graph on a cloned Arc so concurrent
        // preparers of other graphs do not serialize behind it.
        let hit = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.get(key)
        };
        if let Some(hit) = hit {
            if hit.options() == options && same_structure(hit.graph(), graph) {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
            // Fingerprint collision (or an options mismatch): fall
            // through to a fresh prepare. The insert below replaces the
            // colliding entry — the two graphs will thrash one slot,
            // which is correct if slow; a 1-in-2⁶⁴ event does not
            // deserve a second-level key.
        }
        // Prepare outside the lock: preparation is the expensive part and
        // other graphs' lookups should not serialize behind it. A racing
        // duplicate prepare for the *same* graph is benign (last insert
        // wins; both Arcs are valid).
        let prepared = Arc::new(PreparedGraph::prepare(Arc::clone(graph), options));
        self.counters.prepares.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.insert(key, Arc::clone(&prepared));
        prepared
    }

    /// Admits a batch of edge updates against `graph`: fetches (or
    /// prepares) its current version, produces the post-update version —
    /// incrementally via [`PreparedGraph::apply_with`], or through one
    /// full re-prepare when the batch exceeds
    /// [`EngineConfig::max_update_batch`] — and **re-keys the LRU cache**
    /// under the new graph's fingerprint, so subsequent
    /// [`Engine::execute_batch`] calls on the mutated graph hit the cache
    /// instead of re-preparing.
    ///
    /// Copy-on-write versioning: the pre-update entry stays cached under
    /// its own fingerprint, and any in-flight query holding the old `Arc`
    /// keeps reading the old snapshot.
    pub fn apply_updates(
        &self,
        graph: &Arc<DiGraph<L>>,
        updates: &[GraphUpdate],
    ) -> UpdateOutcome<L> {
        // Fast path: a batch in which no update can change the graph
        // (duplicate inserts, absent deletes, out-of-range nodes — common
        // in live streams) keeps the current prepared version instead of
        // assembling an identical new one.
        if let Some(outcome) = self.noop_batch(graph, updates, None) {
            self.journal_update(updates, &outcome.stats);
            return outcome;
        }
        let outcome = if updates.len() > self.config.max_update_batch {
            // No point preparing (or caching) the pre-update graph here:
            // the oversized branch re-prepares the mutated graph anyway.
            self.oversized_rebuild(graph, updates, self.config.prepare_options())
        } else {
            self.prepare(graph)
                .apply_with(updates, &self.config.dynamic)
        };
        let outcome = self.admit_outcome(outcome);
        self.journal_update(updates, &outcome.stats);
        outcome
    }

    /// [`Engine::apply_updates`] against an **already prepared** version —
    /// the entry point a registry holding per-shard prepared graphs uses.
    /// The new version inherits `prepared`'s [`PrepareOptions`] (also on
    /// the oversized-batch rebuild path), the same admission limit
    /// applies, and the cache is re-keyed to the mutated graph's
    /// fingerprint exactly as in [`Engine::apply_updates`].
    pub fn apply_updates_prepared(
        &self,
        prepared: &Arc<PreparedGraph<L>>,
        updates: &[GraphUpdate],
    ) -> UpdateOutcome<L> {
        if let Some(outcome) = self.noop_batch(prepared.graph(), updates, Some(prepared)) {
            self.journal_update(updates, &outcome.stats);
            return outcome;
        }
        let outcome = if updates.len() > self.config.max_update_batch {
            self.oversized_rebuild(prepared.graph(), updates, prepared.options())
        } else {
            prepared.apply_with(updates, &self.config.dynamic)
        };
        let outcome = self.admit_outcome(outcome);
        self.journal_update(updates, &outcome.stats);
        outcome
    }

    /// Journals an admitted update batch — and, separately at `Warn`, any
    /// chain-backend fallbacks it recorded. Payloads are built lazily:
    /// a disabled journal pays one branch per batch.
    fn journal_update(&self, updates: &[GraphUpdate], stats: &UpdateStats) {
        self.journal.emit(Severity::Info, || {
            let inserts = updates
                .iter()
                .filter(|u| matches!(u, GraphUpdate::InsertEdge(..)))
                .count();
            EventKind::UpdateApplied {
                inserts,
                removes: updates.len() - inserts,
                applied: stats.applied,
                noops: stats.noops,
                rejected: stats.rejected,
                rebuilds: stats.rebuilds,
                micros: stats.apply_micros,
            }
        });
        if stats.backend_fallbacks > 0 {
            let reason = match (stats.fallback_damage > 0, stats.fallback_unsupported > 0) {
                (true, true) => "damage-threshold+unsupported-op",
                (true, false) => "damage-threshold",
                _ => "unsupported-op",
            };
            self.journal
                .emit(Severity::Warn, || EventKind::BackendFallback {
                    fallbacks: stats.backend_fallbacks,
                    reason: reason.to_owned(),
                });
        }
    }

    /// The all-no-ops fast path shared by the two apply entry points:
    /// `Some` when no update can change the graph, carrying the current
    /// prepared version (the given one, or a cache fetch).
    fn noop_batch(
        &self,
        graph: &Arc<DiGraph<L>>,
        updates: &[GraphUpdate],
        prepared: Option<&Arc<PreparedGraph<L>>>,
    ) -> Option<UpdateOutcome<L>> {
        let n = graph.node_count();
        let changes_graph = |u: &GraphUpdate| {
            u.in_range(n)
                && match *u {
                    GraphUpdate::InsertEdge(a, b) => !graph.has_edge(a, b),
                    GraphUpdate::RemoveEdge(a, b) => graph.has_edge(a, b),
                }
        };
        if updates.iter().any(changes_graph) {
            return None;
        }
        // phom-lint: allow(clock, "monotonic elapsed-time stats for prepare/query/update timings; no wall-clock semantics")
        let started = Instant::now();
        let mut stats = UpdateStats::default();
        for update in updates {
            if update.in_range(n) {
                stats.noops += 1;
            } else {
                stats.rejected += 1;
            }
        }
        let prepared = match prepared {
            Some(p) => Arc::clone(p),
            None => self.prepare(graph),
        };
        stats.apply_micros = started.elapsed().as_micros();
        Some(UpdateOutcome { prepared, stats })
    }

    /// One from-scratch re-prepare of the mutated graph — the admission
    /// path for batches beyond [`EngineConfig::max_update_batch`].
    fn oversized_rebuild(
        &self,
        graph: &Arc<DiGraph<L>>,
        updates: &[GraphUpdate],
        options: PrepareOptions,
    ) -> UpdateOutcome<L> {
        // phom-lint: allow(clock, "monotonic elapsed-time stats for prepare/query/update timings; no wall-clock semantics")
        let started = Instant::now();
        let mut stats = UpdateStats::default();
        let mut g = (**graph).clone();
        for &update in updates {
            if !update.in_range(g.node_count()) {
                stats.rejected += 1;
            } else if update.apply_to(&mut g) {
                stats.applied += 1;
            } else {
                stats.noops += 1;
            }
        }
        stats.rebuilds += 1;
        self.counters.prepares.fetch_add(1, Ordering::Relaxed);
        let rebuilt = Arc::new(PreparedGraph::prepare(Arc::new(g), options));
        stats.apply_micros = started.elapsed().as_micros();
        UpdateOutcome {
            prepared: rebuilt,
            stats,
        }
    }

    /// The shared tail of an admitted update batch: counters plus the
    /// cache re-key under the mutated graph's fingerprint.
    fn admit_outcome(&self, outcome: UpdateOutcome<L>) -> UpdateOutcome<L> {
        self.counters
            .updates_applied
            .fetch_add(outcome.stats.applied, Ordering::Relaxed);
        self.counters.updates_incremental.fetch_add(
            outcome.stats.incremental + outcome.stats.closure_unchanged,
            Ordering::Relaxed,
        );
        self.counters
            .update_rebuilds
            .fetch_add(outcome.stats.rebuilds, Ordering::Relaxed);
        let key = graph_fingerprint(outcome.prepared.graph());
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.insert(key, Arc::clone(&outcome.prepared));
        outcome
    }
}

impl<L: Clone + Sync> Engine<L> {
    /// Plans and executes one query against a prepared graph.
    ///
    /// A deadline ([`crate::QueryConfig::timeout`], falling back to
    /// [`PlannerConfig::timeout`]) starts ticking here and bounds the
    /// approximate plans: past it, the matcher returns best-so-far with
    /// `MatchStats::timed_out` set and [`EngineStats::timeouts`] is
    /// incremented. Per-component fan-out ([`crate::QueryConfig::intra_workers`]
    /// falling back to [`PlannerConfig::intra_query_workers`]) is
    /// accounted in [`EngineStats::intra_parallel_components`].
    pub fn execute(&self, prepared: &PreparedGraph<L>, query: &Query<L>) -> QueryResult {
        self.execute_traced(prepared, query, false)
    }

    /// [`Engine::execute`] with optional tracing: when `trace` is set,
    /// the result carries a [`QueryTrace`] with `plan` / `match` spans,
    /// nested per-restart spans, and the sampled hot-path counters
    /// ([`phom_trace::TraceCounters`]). The answer is **identical** to
    /// an untraced run — tracing observes, it never steers — and the
    /// untraced path constructs no trace at all (guarded by
    /// [`phom_trace::constructions`]).
    pub fn execute_traced(
        &self,
        prepared: &PreparedGraph<L>,
        query: &Query<L>,
        trace: bool,
    ) -> QueryResult {
        let mut tr = trace.then(|| Box::new(QueryTrace::new()));
        let plan_open = tr.as_ref().map(|t| t.begin());
        let plan = plan_query_with(query, &self.config.planner);
        if let (Some(t), Some(open)) = (tr.as_mut(), plan_open) {
            t.end(SpanKind::Plan, open);
        }
        // "Cache hit" for the trace means the query ran entirely on
        // prepared state: no bounded closure was built during execution.
        let closures_before = tr.as_ref().map(|_| prepared.bounded_closures_computed());
        let match_open = tr.as_ref().map(|t| t.begin());
        // phom-lint: allow(clock, "monotonic elapsed-time stats for prepare/query/update timings; no wall-clock semantics")
        let started = Instant::now();
        let budget = query
            .config
            .timeout
            .or(self.config.planner.timeout)
            .map_or_else(MatchBudget::unlimited, MatchBudget::with_timeout);
        let intra_workers = query
            .config
            .intra_workers
            .unwrap_or(self.config.planner.intra_query_workers);
        let weights = query.effective_weights();
        let counter = match plan.kind {
            PlanKind::Exact => &self.counters.exact_plans,
            PlanKind::Approx => &self.counters.approx_plans,
            PlanKind::Bounded => &self.counters.bounded_plans,
            PlanKind::Baseline => &self.counters.baseline_plans,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.counters.queries.fetch_add(1, Ordering::Relaxed);

        let outcome = match plan.kind {
            PlanKind::Exact => {
                let objective = if query.config.algorithm.similarity() {
                    Objective::Similarity
                } else {
                    Objective::Cardinality
                };
                // A stretch bound (reachable only via force_plan, since the
                // planner routes bounded queries to Bounded) is honored by
                // solving against the hop-bounded closure.
                let bounded_arc: Option<Arc<dyn ReachabilityIndex>> = query
                    .config
                    .max_stretch
                    .map(|k| prepared.bounded_closure(k));
                let closure: &dyn ReachabilityIndex =
                    bounded_arc.as_deref().unwrap_or_else(|| prepared.closure());
                // The branch-and-bound honors the same deadline as the
                // approximate plans: past it, best-so-far comes back with
                // `timed_out` set instead of holding the worker hostage.
                let (mapping, timed_out) = exact_optimum_budgeted(
                    &*query.pattern,
                    closure,
                    &query.matrix,
                    query.config.xi,
                    query.config.algorithm.injective(),
                    objective,
                    &weights,
                    budget,
                );
                outcome_of(mapping, &query.matrix, &weights, query.config.xi, timed_out)
            }
            PlanKind::Baseline => {
                let mapping = baseline_assignment(
                    &*query.pattern,
                    prepared.closure(),
                    &query.matrix,
                    query.config.xi,
                    query.config.algorithm.injective(),
                );
                outcome_of(mapping, &query.matrix, &weights, query.config.xi, false)
            }
            PlanKind::Approx | PlanKind::Bounded => {
                let cfg = MatcherConfig {
                    algorithm: query.config.algorithm,
                    xi: query.config.xi,
                    max_stretch: query.config.max_stretch,
                    restarts: plan.restarts,
                    intra_workers,
                    partition_g1: query.config.partition,
                    compress_g2: query.config.compress,
                    ..Default::default()
                };
                // Hold the memoized bounded closure for the duration of
                // the call; the borrowed view points into it.
                let bounded_arc: Option<(usize, Arc<dyn ReachabilityIndex>)> = query
                    .config
                    .max_stretch
                    .map(|k| (k, prepared.bounded_closure(k)));
                let bounded_ref = bounded_arc.as_ref().map(|(k, c)| (*k, &**c));
                let mut inputs = prepared.inputs(bounded_ref);
                inputs.budget = budget;
                match_graphs_prepared(
                    &*query.pattern,
                    prepared.graph(),
                    &query.matrix,
                    &weights,
                    &cfg,
                    inputs,
                )
            }
        };

        if outcome.stats.timed_out {
            self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            self.journal
                .emit(Severity::Warn, || EventKind::QueryTimedOut {
                    plan: plan.kind.name().to_owned(),
                    micros: started.elapsed().as_micros(),
                });
        }
        if outcome.stats.parallel_components > 0 {
            self.counters
                .intra_parallel_components
                .fetch_add(outcome.stats.parallel_components, Ordering::Relaxed);
        }

        if let (Some(t), Some(open)) = (tr.as_mut(), match_open) {
            t.end(SpanKind::Match, open);
            // Nested restart spans, laid end-to-end from the match span's
            // start (the kernels report durations, not absolute offsets).
            let mut offset = t.spans.last().map_or(0, |s| s.start_micros);
            for (i, &micros) in outcome.stats.restart_micros.iter().enumerate() {
                t.push_span_micros(SpanKind::Restart(i as u32), offset, micros);
                offset += micros;
            }
            t.counters.plan = plan.kind.name().to_owned();
            t.counters.restarts_planned = plan.restarts;
            t.counters.restarts_taken = outcome.stats.restarts_taken;
            t.counters.budget_polls = outcome.stats.budget_polls;
            t.counters.components = outcome.stats.components;
            t.counters.parallel_components = outcome.stats.parallel_components;
            t.counters.cache_hit = closures_before == Some(prepared.bounded_closures_computed());
            t.counters.closure_backend = prepared.stats().closure_backend.clone();
            t.counters.candidate_pairs = outcome.stats.candidate_pairs;
            t.counters.extended_pairs = outcome.stats.extended_pairs;
            t.counters.timed_out = outcome.stats.timed_out;
        }

        QueryResult {
            outcome,
            plan,
            micros: started.elapsed().as_micros(),
            trace: tr,
        }
    }
}

impl<L: Clone + Send + Sync + Hash + PartialEq> Engine<L> {
    /// Prepares `graph` (or fetches it from the cache) and executes the
    /// whole batch across the worker pool — see
    /// [`Engine::execute_batch_prepared`].
    pub fn execute_batch(&self, graph: &Arc<DiGraph<L>>, queries: &[Query<L>]) -> BatchOutcome {
        let prepared = self.prepare(graph);
        self.execute_batch_prepared(&prepared, queries)
    }
}

impl<L: Clone + Send + Sync> Engine<L> {
    /// Executes the whole batch against an **already prepared** graph
    /// across the worker pool, returning per-query results in input
    /// order plus a stats snapshot. A registry holding per-shard
    /// prepared graphs calls this directly so warm artifacts (e.g. a
    /// snapshot-restored closure that never entered the cache) are used
    /// instead of re-prepared.
    ///
    /// Work distribution is stealing (a shared atomic index), so skewed
    /// query costs do not idle workers. All workers synchronize on a
    /// barrier after claiming their first query, which makes the achieved
    /// start-of-batch parallelism observable in
    /// [`EngineStats::last_batch_peak_parallel`].
    pub fn execute_batch_prepared(
        &self,
        prepared: &Arc<PreparedGraph<L>>,
        queries: &[Query<L>],
    ) -> BatchOutcome {
        self.execute_batch_prepared_traced(prepared, queries, false)
    }

    /// [`Engine::execute_batch_prepared`] with optional per-query
    /// tracing — each result carries its own [`QueryTrace`] when `trace`
    /// is set (see [`Engine::execute_traced`]).
    pub fn execute_batch_prepared_traced(
        &self,
        prepared: &Arc<PreparedGraph<L>>,
        queries: &[Query<L>],
        trace: bool,
    ) -> BatchOutcome {
        let workers = self.worker_count(queries.len());
        self.counters
            .last_batch_workers
            .store(workers, Ordering::Relaxed);
        self.counters
            .last_batch_peak_parallel
            .store(0, Ordering::Relaxed);

        let results: Mutex<Vec<Option<QueryResult>>> =
            Mutex::new((0..queries.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let in_flight = AtomicUsize::new(0);
        let barrier = Barrier::new(workers);

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut first = true;
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= queries.len() {
                            if first {
                                barrier.wait();
                            }
                            break;
                        }
                        let holding = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        self.counters
                            .last_batch_peak_parallel
                            .fetch_max(holding, Ordering::SeqCst);
                        if first {
                            // Rendezvous with every other worker while each
                            // holds its first query: proves the batch is
                            // actually concurrent before any work retires.
                            barrier.wait();
                            first = false;
                        }
                        let result = self.execute_traced(prepared, &queries[i], trace);
                        let mut slots = results.lock().unwrap_or_else(|e| e.into_inner());
                        slots[i] = Some(result);
                        drop(slots);
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });

        let results: Vec<QueryResult> = results
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            // phom-lint: allow(unwrap, "the scope joins all workers and the claim loop covers every index, so each slot was filled")
            .map(|r| r.expect("every query index was claimed by a worker"))
            .collect();
        let mut latencies: Vec<u128> = results.iter().map(|r| r.micros).collect();
        latencies.sort_unstable();
        self.counters
            .last_batch_p50_micros
            .store(percentile_micros(&latencies, 50), Ordering::Relaxed);
        self.counters
            .last_batch_p95_micros
            .store(percentile_micros(&latencies, 95), Ordering::Relaxed);
        self.counters
            .last_batch_p99_micros
            .store(percentile_micros(&latencies, 99), Ordering::Relaxed);
        BatchOutcome {
            results,
            stats: self.stats(),
        }
    }
}

/// Wraps a bare mapping in a [`MatchOutcome`] with the quality metrics
/// the matcher would report.
fn outcome_of(
    mapping: PHomMapping,
    mat: &SimMatrix,
    weights: &NodeWeights,
    xi: f64,
    timed_out: bool,
) -> MatchOutcome {
    let qual_card = mapping.qual_card();
    let qual_sim = mapping.qual_sim(weights, mat);
    MatchOutcome {
        mapping,
        qual_card,
        qual_sim,
        stats: MatchStats {
            candidate_pairs: mat.candidate_pair_count(xi),
            timed_out,
            ..Default::default()
        },
    }
}

/// Best-candidate assignment for edgeless patterns: each pattern node
/// independently takes its highest-scoring candidate at threshold `xi`
/// (smallest id on ties, matching the Appendix-B singleton shortcut);
/// injective mode claims data nodes greedily in pattern-id order.
fn baseline_assignment<L>(
    g1: &DiGraph<L>,
    closure: &dyn ReachabilityIndex,
    mat: &SimMatrix,
    xi: f64,
    injective: bool,
) -> PHomMapping {
    let mut mapping = PHomMapping::empty(g1.node_count());
    let mut used: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    for v in g1.nodes() {
        let mut best: Option<(NodeId, f64)> = None;
        for u in mat.candidates(v, xi) {
            if g1.has_self_loop(v) && !closure.reaches(u, u) {
                continue;
            }
            if injective && used.contains(&u) {
                continue;
            }
            let s = mat.score(v, u);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((u, s));
            }
        }
        if let Some((u, _)) = best {
            mapping.set(v, u);
            if injective {
                used.insert(u);
            }
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    fn data_graph() -> Arc<DiGraph<String>> {
        Arc::new(graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "c"), ("c", "d")],
        ))
    }

    fn simple_query(data: &DiGraph<String>) -> Query<String> {
        let pattern = Arc::new(graph_from_labels(&["a", "c"], &[("a", "c")]));
        let mat = SimMatrix::label_equality(&pattern, data);
        Query::new(pattern, mat)
    }

    #[test]
    fn cache_hits_skip_preparation() {
        let engine: Engine<String> = Engine::default();
        let g = data_graph();
        let p1 = engine.prepare(&g);
        let p2 = engine.prepare(&g);
        assert!(Arc::ptr_eq(&p1, &p2));
        // A structurally equal but distinct allocation also hits.
        let g2 = data_graph();
        let p3 = engine.prepare(&g2);
        assert!(Arc::ptr_eq(&p1, &p3));
        let stats = engine.stats();
        assert_eq!(stats.prepares, 1);
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let engine: Engine<String> = Engine::new(EngineConfig {
            cache_capacity: 2,
            threads: 1,
            ..Default::default()
        });
        let mk = |tag: &str| Arc::new(graph_from_labels(&[tag, "x"], &[(tag, "x")]));
        let (ga, gb, gc) = (mk("a"), mk("b"), mk("c"));
        engine.prepare(&ga);
        engine.prepare(&gb);
        engine.prepare(&ga); // refresh a; b becomes LRU
        engine.prepare(&gc); // evicts b
        engine.prepare(&ga);
        assert_eq!(engine.stats().prepares, 3, "a, b, c each prepared once");
        engine.prepare(&gb); // miss: was evicted
        assert_eq!(engine.stats().prepares, 4);
    }

    #[test]
    fn execute_matches_direct_call() {
        let engine: Engine<String> = Engine::default();
        let g = data_graph();
        let prepared = engine.prepare(&g);
        let q = simple_query(&g);
        let result = engine.execute(&prepared, &q);
        assert_eq!(result.outcome.qual_card, 1.0, "a ⇝ c via 2-hop path");
    }

    #[test]
    fn batch_returns_results_in_input_order() {
        let engine: Engine<String> = Engine::new(EngineConfig {
            cache_capacity: 4,
            threads: 2,
            ..Default::default()
        });
        let g = data_graph();
        let queries: Vec<Query<String>> = (0..8).map(|_| simple_query(&g)).collect();
        let batch = engine.execute_batch(&g, &queries);
        assert_eq!(batch.results.len(), 8);
        assert!(batch.results.iter().all(|r| r.outcome.qual_card == 1.0));
        assert_eq!(batch.stats.prepares, 1, "one closure for the whole batch");
        assert_eq!(batch.stats.queries, 8);
        assert_eq!(batch.stats.last_batch_workers, 2);
        assert!(batch.stats.last_batch_peak_parallel >= 2);
    }

    #[test]
    fn fingerprint_collision_serves_a_miss_not_another_graph() {
        // A real 64-bit DefaultHasher collision cannot be constructed on
        // demand, so forge one: plant graph A's prepared artifacts in the
        // cache under graph B's fingerprint key and ask for B.
        let engine: Engine<String> = Engine::default();
        let g_a = data_graph(); // 4 nodes, path a->b->c->d
        let g_b = Arc::new(graph_from_labels(&["a", "c"], &[("a", "c")]));
        let planted = Arc::new(PreparedGraph::new(Arc::clone(&g_a)));
        engine
            .cache
            .lock()
            .unwrap()
            .insert(graph_fingerprint(&*g_b), Arc::clone(&planted));

        let served = engine.prepare(&g_b);
        assert!(
            !Arc::ptr_eq(&served, &planted),
            "collision must re-prepare, not alias the planted graph"
        );
        assert_eq!(served.graph().node_count(), 2, "B's own artifacts");
        assert!(served.closure().reaches(NodeId(0), NodeId(1)));
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 0, "a collision is a miss");
        assert_eq!(stats.prepares, 1);
        // The re-prepared entry replaced the colliding one and now hits.
        let again = engine.prepare(&g_b);
        assert!(Arc::ptr_eq(&served, &again));
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn fingerprint_collision_on_labels_alone_is_caught() {
        // Same node and edge counts, same shape — only a label differs.
        // The count checks cannot catch this one; the label sweep must.
        let engine: Engine<String> = Engine::default();
        let g_a = data_graph();
        let g_b = Arc::new(graph_from_labels(
            &["a", "b", "c", "DIFFERENT"],
            &[("a", "b"), ("b", "c"), ("c", "DIFFERENT")],
        ));
        let planted = Arc::new(PreparedGraph::new(Arc::clone(&g_a)));
        engine
            .cache
            .lock()
            .unwrap()
            .insert(graph_fingerprint(&*g_b), planted);
        let served = engine.prepare(&g_b);
        assert_eq!(served.graph().label(NodeId(3)), "DIFFERENT");
        assert_eq!(engine.stats().cache_hits, 0);
        assert_eq!(engine.stats().prepares, 1);
    }

    #[test]
    fn percentile_micros_edge_cases() {
        assert_eq!(percentile_micros(&[], 0), 0, "empty sample");
        assert_eq!(percentile_micros(&[], 50), 0);
        assert_eq!(percentile_micros(&[], 100), 0);
        assert_eq!(percentile_micros(&[7], 0), 7, "single element");
        assert_eq!(percentile_micros(&[7], 50), 7);
        assert_eq!(percentile_micros(&[7], 100), 7);
        let s = [1u128, 2, 3, 4];
        assert_eq!(percentile_micros(&s, 0), 1, "p0 = minimum");
        assert_eq!(
            percentile_micros(&s, 50),
            2,
            "nearest rank, not interpolated"
        );
        assert_eq!(percentile_micros(&s, 99), 4);
        assert_eq!(percentile_micros(&s, 100), 4, "p100 = maximum");
    }

    #[test]
    fn deadline_expired_query_returns_best_so_far_without_poisoning_cache() {
        let engine: Engine<String> = Engine::default();
        let g = data_graph();
        let prepared = engine.prepare(&g);
        // Zero budget: deterministically expired at the first boundary.
        // Forced Approx (a 2-node pattern would otherwise route Exact,
        // which is not interruptible).
        let mut q = simple_query(&g);
        q.config.force_plan = Some(PlanKind::Approx);
        q.config.timeout = Some(std::time::Duration::ZERO);
        let timed = engine.execute(&prepared, &q);
        assert!(timed.outcome.stats.timed_out);
        assert!(
            timed.outcome.mapping.is_empty(),
            "zero budget: best-so-far is the empty mapping"
        );
        assert_eq!(engine.stats().timeouts, 1);

        // The prepared graph is untouched: the same query without a
        // deadline — served from the same cache entry — answers fully.
        let mut q2 = simple_query(&g);
        q2.config.force_plan = Some(PlanKind::Approx);
        let full = engine.execute(&engine.prepare(&g), &q2);
        assert!(!full.outcome.stats.timed_out);
        assert_eq!(full.outcome.qual_card, 1.0, "a ⇝ c via 2-hop path");
        let stats = engine.stats();
        assert_eq!(stats.timeouts, 1, "no new timeout");
        assert_eq!(stats.prepares, 1, "cache entry survived the timeout");
    }

    #[test]
    fn exact_plan_honors_zero_deadline() {
        // A 2-node pattern routes Exact under the default cutoff; with a
        // zero budget the branch-and-bound must return the empty
        // best-so-far instead of running to completion (the ROADMAP's
        // "exact plans are not interruptible" caveat, closed).
        let engine: Engine<String> = Engine::default();
        let g = data_graph();
        let prepared = engine.prepare(&g);
        let mut q = simple_query(&g);
        q.config.timeout = Some(std::time::Duration::ZERO);
        let result = engine.execute(&prepared, &q);
        assert_eq!(result.plan.kind, PlanKind::Exact);
        assert!(result.outcome.stats.timed_out);
        assert!(result.outcome.mapping.is_empty());
        assert_eq!(engine.stats().timeouts, 1);
        // The same query with room to run answers fully.
        let full = engine.execute(&prepared, &simple_query(&g));
        assert_eq!(full.plan.kind, PlanKind::Exact);
        assert!(!full.outcome.stats.timed_out);
        assert_eq!(full.outcome.qual_card, 1.0);
    }

    #[test]
    fn prepare_with_options_mismatch_is_a_miss() {
        use crate::planner::CompressionPolicy;
        let engine: Engine<String> = Engine::default();
        let g = data_graph();
        let auto = engine.prepare(&g);
        // Same graph under a different compression policy must not alias
        // the cached auto-policy artifacts.
        let never = engine.prepare_with(
            &g,
            PrepareOptions {
                compression: CompressionPolicy::Never,
                ..Default::default()
            },
        );
        assert!(!Arc::ptr_eq(&auto, &never));
        assert_eq!(never.options().compression, CompressionPolicy::Never);
        assert_eq!(engine.stats().prepares, 2, "options mismatch re-prepares");
        // The replacement entry now hits under its own options.
        let again = engine.prepare_with(&g, never.options());
        assert!(Arc::ptr_eq(&never, &again));
    }

    #[test]
    fn apply_updates_prepared_inherits_options_and_rekeys() {
        use crate::planner::CompressionPolicy;
        let engine: Engine<String> = Engine::default();
        let g = data_graph();
        let options = PrepareOptions {
            compression: CompressionPolicy::Always,
            ..Default::default()
        };
        let prepared = engine.prepare_with(&g, options);
        let outcome = engine
            .apply_updates_prepared(&prepared, &[GraphUpdate::InsertEdge(NodeId(3), NodeId(0))]);
        assert_eq!(outcome.stats.applied, 1);
        assert_eq!(outcome.prepared.options(), options, "version inherits");
        assert!(outcome.prepared.compressed().is_some(), "Always kept it");
        // Re-keyed: the mutated graph hits the cache under the same options.
        let mut mutated = (*g).clone();
        mutated.add_edge(NodeId(3), NodeId(0));
        let hit = engine.prepare_with(&Arc::new(mutated), options);
        assert!(Arc::ptr_eq(&hit, &outcome.prepared));
    }

    #[test]
    fn intra_query_workers_keep_results_and_count_components() {
        // Pattern with three weakly connected components against the
        // path graph; force Approx so the partitioner actually runs.
        let g = data_graph();
        let pattern = Arc::new({
            // (graph_from_labels needs unique labels; build by hand.)
            let mut p: DiGraph<String> = DiGraph::new();
            let ids: Vec<NodeId> = ["a", "b", "b", "c", "c", "d"]
                .iter()
                .map(|l| p.add_node((*l).to_owned()))
                .collect();
            p.add_edge(ids[0], ids[1]);
            p.add_edge(ids[2], ids[3]);
            p.add_edge(ids[4], ids[5]);
            p
        });
        let mk_query = || {
            let mat = SimMatrix::label_equality(&*pattern, &*g);
            let mut q = Query::new(Arc::clone(&pattern), mat);
            q.config.force_plan = Some(PlanKind::Approx);
            q
        };
        let run = |intra: usize| {
            let engine: Engine<String> = Engine::new(EngineConfig {
                planner: crate::planner::PlannerConfig {
                    intra_query_workers: intra,
                    ..Default::default()
                },
                ..Default::default()
            });
            let r = engine.execute(&engine.prepare(&g), &mk_query());
            (r, engine.stats())
        };
        let (seq, seq_stats) = run(1);
        let (par, par_stats) = run(4);
        assert_eq!(
            seq.outcome.mapping.pairs().collect::<Vec<_>>(),
            par.outcome.mapping.pairs().collect::<Vec<_>>(),
            "intra-query fan-out must not change the mapping"
        );
        assert_eq!(seq_stats.intra_parallel_components, 0);
        assert_eq!(
            par_stats.intra_parallel_components, par.outcome.stats.components,
            "every component accounted on the parallel path"
        );
        assert!(par_stats.intra_parallel_components >= 2);
    }

    #[test]
    fn apply_updates_rekeys_cache_and_counts_incremental_work() {
        let engine: Engine<String> = Engine::default();
        let g = data_graph();
        engine.prepare(&g);
        let outcome = engine.apply_updates(&g, &[GraphUpdate::InsertEdge(NodeId(3), NodeId(0))]);
        assert_eq!(outcome.stats.applied, 1);
        assert_eq!(outcome.stats.rebuilds, 0, "single insert is incremental");
        // The mutated graph is already cached under its new fingerprint.
        let mut mutated = (*g).clone();
        mutated.add_edge(NodeId(3), NodeId(0));
        let hit = engine.prepare(&Arc::new(mutated));
        assert!(Arc::ptr_eq(&hit, &outcome.prepared));
        let stats = engine.stats();
        assert_eq!(stats.prepares, 1, "no re-prepare for the new version");
        assert_eq!(stats.updates_applied, 1);
        assert_eq!(stats.updates_incremental, 1);
        assert_eq!(stats.update_rebuilds, 0);
        // The old version stays cached and readable (copy-on-write).
        let old = engine.prepare(&g);
        assert!(!old.closure().reaches(NodeId(3), NodeId(0)));
        assert!(outcome.prepared.closure().reaches(NodeId(3), NodeId(0)));
    }

    #[test]
    fn noop_update_batch_keeps_current_version() {
        let engine: Engine<String> = Engine::default();
        let g = data_graph();
        let before = engine.prepare(&g);
        let outcome = engine.apply_updates(
            &g,
            &[
                GraphUpdate::InsertEdge(NodeId(0), NodeId(1)), // duplicate
                GraphUpdate::RemoveEdge(NodeId(3), NodeId(0)), // absent
                GraphUpdate::InsertEdge(NodeId(0), NodeId(99)), // out of range
            ],
        );
        assert_eq!(outcome.stats.applied, 0);
        assert_eq!(outcome.stats.noops, 2);
        assert_eq!(outcome.stats.rejected, 1);
        assert!(
            Arc::ptr_eq(&outcome.prepared, &before),
            "no-op batch must not assemble a new version"
        );
        assert_eq!(engine.stats().prepares, 1);
    }

    #[test]
    fn oversized_update_batch_is_admitted_as_one_rebuild() {
        let engine: Engine<String> = Engine::new(EngineConfig {
            cache_capacity: 4,
            threads: 1,
            max_update_batch: 1,
            ..Default::default()
        });
        let g = data_graph();
        let outcome = engine.apply_updates(
            &g,
            &[
                GraphUpdate::InsertEdge(NodeId(3), NodeId(0)),
                GraphUpdate::RemoveEdge(NodeId(0), NodeId(1)),
            ],
        );
        assert_eq!(outcome.stats.applied, 2);
        assert_eq!(outcome.stats.rebuilds, 1, "admission limit exceeded");
        assert_eq!(engine.stats().update_rebuilds, 1);
        assert!(outcome.prepared.closure().reaches(NodeId(3), NodeId(0)));
        assert!(!outcome.prepared.closure().reaches(NodeId(0), NodeId(1)));
    }

    #[test]
    fn engine_stats_json_lists_every_field() {
        let stats = EngineStats {
            prepares: 2,
            queries: 7,
            ..Default::default()
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"prepares\":2"));
        assert!(json.contains("\"queries\":7"));
        assert!(json.contains("\"update_rebuilds\":0"));
        assert!(json.contains("\"timeouts\":0"));
        assert!(json.contains("\"intra_parallel_components\":0"));
        assert!(json.contains("\"response_p50_micros\":0"));
        assert!(json.contains("\"response_p95_micros\":0"));
        assert!(json.contains("\"response_p99_micros\":0"));
    }

    #[test]
    fn baseline_assignment_respects_injectivity() {
        let mut g: DiGraph<&str> = DiGraph::new();
        g.add_node("x");
        g.add_node("x");
        let mut data: DiGraph<&str> = DiGraph::new();
        data.add_node("x");
        let mat = SimMatrix::label_equality(&g, &data);
        let closure = phom_graph::TransitiveClosure::new(&data);
        let free = baseline_assignment(&g, &closure, &mat, 0.5, false);
        assert_eq!(free.qual_card(), 1.0, "both map to the one data node");
        let inj = baseline_assignment(&g, &closure, &mat, 0.5, true);
        assert_eq!(inj.qual_card(), 0.5, "only one may claim it");
        assert!(inj.is_injective());
    }
}
