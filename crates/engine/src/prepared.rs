//! [`PreparedGraph`]: the query-independent artifacts of one data graph,
//! computed once and shared (behind `Arc`) across every query the engine
//! answers against that graph.
//!
//! The paper's algorithms all start by building the transitive closure
//! `G2+` (Fig. 3 line 5) — the dominant preprocessing cost. A prepared
//! graph hoists that cost out of the per-query path:
//!
//! * the **full proper closure** `G2+` (via one SCC condensation pass);
//! * the **SCC decomposition** itself (reused by the closure build and
//!   exposed for diagnostics);
//! * the **compressed graph** `G2*` of Appendix B plus *its* closure,
//!   kept only when compression actually shrinks the graph;
//! * **hop-bounded closures** for bounded-stretch queries, built lazily
//!   per distinct bound `k` and memoized;
//! * degree-based **node weights** of the data graph (importance ranking
//!   for result display and workload skimming).

use phom_core::{compression_worthwhile, CompressedClosure, PreparedInputs};
use phom_graph::{compress_closure, tarjan_scc, DiGraph, SccResult, TransitiveClosure};
use phom_sim::NodeWeights;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What one [`PreparedGraph::new`] computed, and how long it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepareStats {
    /// Data-graph node count.
    pub nodes: usize,
    /// Data-graph edge count.
    pub edges: usize,
    /// Strongly connected components.
    pub scc_count: usize,
    /// Reachable pairs in the full closure, `|E+|`.
    pub closure_edges: usize,
    /// Compressed node count when Appendix-B compression was kept.
    pub compressed_nodes: Option<usize>,
    /// Wall-clock microseconds spent preparing.
    pub prepare_micros: u128,
}

/// A data graph plus every query-independent index the matching
/// algorithms consume. Cheap to share: all fields are immutable after
/// construction except the lazily grown bounded-closure memo.
#[derive(Debug)]
pub struct PreparedGraph<L> {
    graph: Arc<DiGraph<L>>,
    scc: SccResult,
    closure: Arc<TransitiveClosure>,
    compressed: Option<CompressedClosure<L>>,
    data_weights: NodeWeights,
    bounded: Mutex<HashMap<usize, Arc<TransitiveClosure>>>,
    bounded_computed: AtomicUsize,
    stats: PrepareStats,
}

impl<L: Clone> PreparedGraph<L> {
    /// Prepares `graph`: SCC decomposition, full closure, compression
    /// decision (kept only when [`compression_worthwhile`]), and
    /// degree-based node weights.
    pub fn new(graph: Arc<DiGraph<L>>) -> Self {
        let started = Instant::now();
        let scc = tarjan_scc(&*graph);
        let closure = TransitiveClosure::from_scc(&*graph, &scc);
        let comp = compress_closure(&*graph);
        let compressed =
            compression_worthwhile(graph.node_count(), comp.graph.node_count()).then(|| {
                CompressedClosure {
                    closure: TransitiveClosure::new(&comp.graph),
                    compressed: comp,
                }
            });
        let data_weights = NodeWeights::by_degree(&*graph);
        let stats = PrepareStats {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            scc_count: scc.count(),
            closure_edges: closure.edge_count(),
            compressed_nodes: compressed
                .as_ref()
                .map(|cc| cc.compressed.graph.node_count()),
            prepare_micros: started.elapsed().as_micros(),
        };
        PreparedGraph {
            graph,
            scc,
            closure: Arc::new(closure),
            compressed,
            data_weights,
            bounded: Mutex::new(HashMap::new()),
            bounded_computed: AtomicUsize::new(0),
            stats,
        }
    }

    /// The underlying data graph.
    pub fn graph(&self) -> &Arc<DiGraph<L>> {
        &self.graph
    }

    /// The full proper closure `G2+`.
    pub fn closure(&self) -> &TransitiveClosure {
        &self.closure
    }

    /// The SCC decomposition the closure was built from.
    pub fn scc(&self) -> &SccResult {
        &self.scc
    }

    /// Appendix-B compressed graph + closure, when kept.
    pub fn compressed(&self) -> Option<&CompressedClosure<L>> {
        self.compressed.as_ref()
    }

    /// Degree-based importance weights of the data-graph nodes.
    pub fn data_weights(&self) -> &NodeWeights {
        &self.data_weights
    }

    /// Preparation statistics.
    pub fn stats(&self) -> &PrepareStats {
        &self.stats
    }

    /// The hop-bounded closure for stretch bound `k`, building and
    /// memoizing it on first use. Bounds at or above the node count
    /// coincide with the full closure, which is returned without a build.
    pub fn bounded_closure(&self, k: usize) -> Arc<TransitiveClosure> {
        if k >= self.graph.node_count().max(1) {
            return Arc::clone(&self.closure);
        }
        let mut memo = self.bounded.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = memo.get(&k) {
            return Arc::clone(c);
        }
        let built = Arc::new(TransitiveClosure::bounded(&*self.graph, k));
        self.bounded_computed.fetch_add(1, Ordering::Relaxed);
        memo.insert(k, Arc::clone(&built));
        built
    }

    /// How many distinct hop-bounded closures have been built so far.
    pub fn bounded_closures_computed(&self) -> usize {
        self.bounded_computed.load(Ordering::Relaxed)
    }

    /// Assembles the borrowed view [`phom_core::match_graphs_prepared`]
    /// consumes. `bounded` must be the memoized closure for the query's
    /// stretch bound when one applies (see [`PreparedGraph::bounded_closure`]).
    pub fn inputs<'a>(
        &'a self,
        bounded: Option<(usize, &'a TransitiveClosure)>,
    ) -> PreparedInputs<'a, L> {
        PreparedInputs {
            closure: &self.closure,
            bounded,
            compressed: self.compressed.as_ref(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::{graph_from_labels, NodeId};

    fn cyclic_graph() -> Arc<DiGraph<String>> {
        Arc::new(graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
        ))
    }

    #[test]
    fn prepare_computes_closure_and_scc() {
        let p = PreparedGraph::new(cyclic_graph());
        assert_eq!(p.stats().nodes, 4);
        assert_eq!(p.stats().scc_count, 3, "{{a,b}} collapses");
        assert!(p.closure().reaches(NodeId(0), NodeId(3)));
        assert!(p.closure().reaches(NodeId(0), NodeId(0)), "on a cycle");
        assert!(!p.closure().reaches(NodeId(3), NodeId(0)));
    }

    #[test]
    fn bounded_closures_are_memoized() {
        let p = PreparedGraph::new(cyclic_graph());
        assert_eq!(p.bounded_closures_computed(), 0);
        let c1 = p.bounded_closure(1);
        let c1_again = p.bounded_closure(1);
        assert_eq!(p.bounded_closures_computed(), 1, "second call is a hit");
        assert!(Arc::ptr_eq(&c1, &c1_again));
        let _c2 = p.bounded_closure(2);
        assert_eq!(p.bounded_closures_computed(), 2);
        assert!(!c1.reaches(NodeId(0), NodeId(3)), "3 hops exceed k=1");
    }

    #[test]
    fn huge_bound_reuses_full_closure() {
        let p = PreparedGraph::new(cyclic_graph());
        let c = p.bounded_closure(100);
        assert_eq!(p.bounded_closures_computed(), 0, "no bounded build");
        for u in p.graph().nodes() {
            for v in p.graph().nodes() {
                assert_eq!(c.reaches(u, v), p.closure().reaches(u, v));
            }
        }
    }

    #[test]
    fn acyclic_graph_skips_compression() {
        let p = PreparedGraph::new(Arc::new(graph_from_labels(
            &["a", "b", "c"],
            &[("a", "b"), ("b", "c")],
        )));
        assert!(p.compressed().is_none(), "condensation does not shrink");
        assert_eq!(p.stats().compressed_nodes, None);
    }

    #[test]
    fn cyclic_enough_graph_keeps_compression() {
        // 5 nodes, a 3-cycle collapses: 3 compressed nodes for 5 original.
        let p = PreparedGraph::new(Arc::new(graph_from_labels(
            &["a", "b", "c", "d", "e"],
            &[("a", "b"), ("b", "c"), ("c", "d"), ("d", "b"), ("d", "e")],
        )));
        let cc = p.compressed().expect("3-cycle shrinks the graph");
        assert_eq!(cc.compressed.graph.node_count(), 3);
        assert_eq!(p.stats().compressed_nodes, Some(3));
    }
}
