//! [`PreparedGraph`]: the query-independent artifacts of one data graph,
//! computed once and shared (behind `Arc`) across every query the engine
//! answers against that graph.
//!
//! The paper's algorithms all start by building the transitive closure
//! `G2+` (Fig. 3 line 5) — the dominant preprocessing cost. A prepared
//! graph hoists that cost out of the per-query path:
//!
//! * the **full reachability index** over `G2+` behind a pluggable
//!   [`ReachIndex`] backend — the dense bitset closure, the compressed
//!   chain index, or the 2-hop labeling, chosen by the
//!   [`ClosureBackend`] policy (`Auto` samples the reach density of
//!   large graphs to pick between the compressed backends);
//! * the **SCC decomposition** itself (reused by the index build and
//!   exposed for diagnostics);
//! * the **compressed graph** `G2*` of Appendix B plus *its* closure,
//!   kept only when compression actually shrinks the graph;
//! * **hop-bounded closures** for bounded-stretch queries, built lazily
//!   per distinct bound `k` and memoized (always dense: SCC members do
//!   not share hop-bounded rows, so the chain trick does not apply);
//! * degree-based **node weights** of the data graph (importance ranking
//!   for result display and workload skimming).

use crate::planner::{
    ClosureBackend, CompressionPolicy, PlannerConfig, ResolvedBackend, DEFAULT_CHAIN_NODE_THRESHOLD,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use phom_core::{CompressedClosure, PreparedInputs};
use phom_dynamic::{
    refresh_bounded_closure, DynamicConfig, GraphUpdate, SemiDynamicChain, SemiDynamicClosure,
};
use phom_graph::serialize::ParseError;
use phom_graph::validate::Violation;
use phom_graph::{
    compress_closure_with, reach_density_sample, tarjan_scc, BitSet, ChainIndex, DiGraph,
    DynamicClosure, NodeId, ReachabilityIndex, SccResult, TransitiveClosure, TwoHopIndex,
    UpdateEffect,
};
use phom_sim::NodeWeights;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Condensation components [`ClosureBackend::Auto`] probes with
/// `phom_graph::reach_density_sample` when deciding between the chain
/// and 2-hop backends on large graphs.
const DENSITY_SAMPLES: usize = 64;

/// The reachability backend a prepared graph actually holds — the owning
/// side of `phom_graph::ReachabilityIndex`. Cloning is a pointer bump.
#[derive(Debug, Clone)]
pub enum ReachIndex {
    /// Dense bitset closure (`O(1)` queries, `O(n²)` bits).
    Dense(Arc<TransitiveClosure>),
    /// Compressed chain index (`O(log w)` queries, `O(n·w)` words).
    Chain(Arc<ChainIndex>),
    /// Pruned-landmark 2-hop labeling (label-intersection queries).
    TwoHop(Arc<TwoHopIndex>),
}

impl ReachIndex {
    /// The trait-object view the matching kernels consume.
    #[inline]
    pub fn as_dyn(&self) -> &dyn ReachabilityIndex {
        match self {
            ReachIndex::Dense(c) => &**c,
            ReachIndex::Chain(c) => &**c,
            ReachIndex::TwoHop(c) => &**c,
        }
    }

    /// Shared trait-object handle (for memo shortcuts).
    pub fn as_dyn_arc(&self) -> Arc<dyn ReachabilityIndex> {
        match self {
            ReachIndex::Dense(c) => Arc::clone(c) as Arc<dyn ReachabilityIndex>,
            ReachIndex::Chain(c) => Arc::clone(c) as Arc<dyn ReachabilityIndex>,
            ReachIndex::TwoHop(c) => Arc::clone(c) as Arc<dyn ReachabilityIndex>,
        }
    }

    /// Stable backend name (`"dense"` / `"chain"` / `"twohop"`).
    pub fn backend_name(&self) -> &'static str {
        match self {
            ReachIndex::Dense(_) => "dense",
            ReachIndex::Chain(_) => "chain",
            ReachIndex::TwoHop(_) => "twohop",
        }
    }

    /// The dense closure, when that is the active backend (the
    /// semi-dynamic dense maintenance path needs concrete rows to seed
    /// from).
    // phom-lint: allow(concrete-closure, "backend downcast accessor: the dense maintenance path seeds from concrete rows; not a matching API")
    pub fn dense(&self) -> Option<&Arc<TransitiveClosure>> {
        match self {
            ReachIndex::Dense(c) => Some(c),
            _ => None,
        }
    }

    /// Cheap structural self-check of the active backend: dispatches to
    /// the per-backend `validate` in `phom_graph` (shape, CSR structure,
    /// composition/label invariants). Does not need the graph.
    pub fn validate(&self) -> Result<(), Violation> {
        match self {
            ReachIndex::Dense(c) => c.validate(),
            ReachIndex::Chain(c) => c.validate(),
            ReachIndex::TwoHop(c) => c.validate(),
        }
    }

    /// Deep check of the active backend against the graph it claims to
    /// index: fresh Tarjan partition comparison plus a sampled BFS
    /// ground-truth sweep (`samples` source nodes, evenly spaced).
    pub fn validate_against<L>(&self, g: &DiGraph<L>, samples: usize) -> Result<(), Violation> {
        match self {
            ReachIndex::Dense(c) => c.validate_against(g, samples),
            ReachIndex::Chain(c) => c.validate_against(g, samples),
            ReachIndex::TwoHop(c) => c.validate_against(g, samples),
        }
    }

    /// Builds the index chosen by `policy` for `graph`, reusing an SCC
    /// decomposition. The `Auto` density probe runs only when the node
    /// count passes the chain threshold.
    fn build<L>(
        graph: &DiGraph<L>,
        scc: &SccResult,
        policy: ClosureBackend,
        chain_node_threshold: usize,
    ) -> Self {
        let resolved = policy.resolve(graph.node_count(), chain_node_threshold, || {
            reach_density_sample(graph, scc, DENSITY_SAMPLES)
        });
        match resolved {
            ResolvedBackend::Dense => {
                ReachIndex::Dense(Arc::new(TransitiveClosure::from_scc(graph, scc)))
            }
            ResolvedBackend::Chain => ReachIndex::Chain(Arc::new(ChainIndex::from_scc(graph, scc))),
            ResolvedBackend::TwoHop => {
                ReachIndex::TwoHop(Arc::new(TwoHopIndex::from_scc(graph, scc)))
            }
        }
    }
}

/// Everything a preparation needs to decide *how* to build its artifacts:
/// reachability backend policy and Appendix-B compression policy. A
/// prepared graph remembers its options, and every update-derived version
/// inherits them — which is what lets a sharded registry pin the whole
/// graph's compression decision onto each shard across its entire
/// lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareOptions {
    /// Reachability-backend policy (dense / chain / auto).
    pub backend: ClosureBackend,
    /// Node count at which [`ClosureBackend::Auto`] switches to the chain
    /// index.
    pub chain_node_threshold: usize,
    /// Whether to keep the Appendix-B compressed graph.
    pub compression: CompressionPolicy,
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions {
            backend: ClosureBackend::Auto,
            chain_node_threshold: DEFAULT_CHAIN_NODE_THRESHOLD,
            compression: CompressionPolicy::Auto,
        }
    }
}

impl PrepareOptions {
    /// The options a [`PlannerConfig`] implies — the single config path
    /// the engine, service, and CLI share.
    pub fn from_planner(cfg: &PlannerConfig) -> Self {
        PrepareOptions {
            backend: cfg.closure_backend,
            chain_node_threshold: cfg.chain_node_threshold,
            compression: cfg.compression,
        }
    }
}

/// What one [`PreparedGraph::new`] computed, and how long it took.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrepareStats {
    /// Data-graph node count.
    pub nodes: usize,
    /// Data-graph edge count.
    pub edges: usize,
    /// Strongly connected components.
    pub scc_count: usize,
    /// Reachable pairs in the full closure, `|E+|`.
    pub closure_edges: usize,
    /// Active reachability backend (`"dense"` / `"chain"` / `"twohop"`).
    pub closure_backend: String,
    /// Heap footprint of the active reachability index in bytes.
    pub closure_memory_bytes: usize,
    /// Compressed node count when Appendix-B compression was kept.
    pub compressed_nodes: Option<usize>,
    /// Wall-clock microseconds spent preparing.
    pub prepare_micros: u128,
}

impl PrepareStats {
    /// Compact JSON rendering (field names match the struct).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"nodes\":{},\"edges\":{},\"scc_count\":{},\"closure_edges\":{},\
             \"closure_backend\":\"{}\",\"closure_memory_bytes\":{},\
             \"compressed_nodes\":{},\"prepare_micros\":{}}}",
            self.nodes,
            self.edges,
            self.scc_count,
            self.closure_edges,
            self.closure_backend,
            self.closure_memory_bytes,
            match self.compressed_nodes {
                Some(c) => c.to_string(),
                None => "null".to_owned(),
            },
            self.prepare_micros
        )
    }
}

/// What one [`PreparedGraph::apply_with`] batch did to the indexes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Updates that changed the graph.
    pub applied: usize,
    /// Updates that were no-ops (duplicate insert / absent delete).
    pub noops: usize,
    /// Updates referencing out-of-range nodes, skipped.
    pub rejected: usize,
    /// Applied updates that left the closure untouched.
    pub closure_unchanged: usize,
    /// Applied updates patched incrementally.
    pub incremental: usize,
    /// Applied updates that fell back to a full closure rebuild.
    pub rebuilds: usize,
    /// Rebuild fallbacks recorded against the backend — the downgrades
    /// from semi-dynamic maintenance. Always
    /// [`UpdateStats::fallback_damage`] + [`UpdateStats::fallback_unsupported`].
    pub backend_fallbacks: usize,
    /// Backend fallbacks whose reason was a deletion cone past
    /// [`DynamicConfig::damage_threshold`] — the tuned escape hatch.
    pub fallback_damage: usize,
    /// Backend fallbacks whose reason was an update shape with no
    /// incremental rule for the active backend (SCC-splitting deletions
    /// on the chain index; any applied batch on the 2-hop index).
    pub fallback_unsupported: usize,
    /// Total closure components created, merged, or rewritten.
    pub affected_components: usize,
    /// Highest deletion damage the maintainer observed in this batch, in
    /// permille of live condensation components (see
    /// `DynamicStats::peak_damage_permille`).
    pub peak_damage_permille: usize,
    /// Hop-bounded memo rows re-run (affected sources across all
    /// memoized bounds).
    pub bounded_rows_recomputed: usize,
    /// Microseconds spent maintaining the full closure (incremental
    /// patching on the dense and chain backends; the from-scratch index
    /// rebuild on the 2-hop fallback) — the update-apply phase timing
    /// traces and the service registry export.
    pub closure_maintain_micros: u128,
    /// Microseconds spent refreshing the memoized hop-bounded closures.
    pub bounded_refresh_micros: u128,
    /// Wall-clock microseconds for the whole apply (including new-version
    /// assembly).
    pub apply_micros: u128,
}

impl UpdateStats {
    /// Folds another batch's counters into this one (the `engine-live`
    /// aggregate view).
    pub fn absorb(&mut self, other: &UpdateStats) {
        self.applied += other.applied;
        self.noops += other.noops;
        self.rejected += other.rejected;
        self.closure_unchanged += other.closure_unchanged;
        self.incremental += other.incremental;
        self.rebuilds += other.rebuilds;
        self.backend_fallbacks += other.backend_fallbacks;
        self.fallback_damage += other.fallback_damage;
        self.fallback_unsupported += other.fallback_unsupported;
        self.affected_components += other.affected_components;
        self.peak_damage_permille = self.peak_damage_permille.max(other.peak_damage_permille);
        self.bounded_rows_recomputed += other.bounded_rows_recomputed;
        self.closure_maintain_micros += other.closure_maintain_micros;
        self.bounded_refresh_micros += other.bounded_refresh_micros;
        self.apply_micros += other.apply_micros;
    }

    /// Compact JSON rendering (field names match the struct).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"applied\":{},\"noops\":{},\"rejected\":{},\"closure_unchanged\":{},\
             \"incremental\":{},\"rebuilds\":{},\"backend_fallbacks\":{},\
             \"fallback_damage\":{},\"fallback_unsupported\":{},\
             \"affected_components\":{},\"peak_damage_permille\":{},\
             \"bounded_rows_recomputed\":{},\
             \"closure_maintain_micros\":{},\"bounded_refresh_micros\":{},\
             \"apply_micros\":{}}}",
            self.applied,
            self.noops,
            self.rejected,
            self.closure_unchanged,
            self.incremental,
            self.rebuilds,
            self.backend_fallbacks,
            self.fallback_damage,
            self.fallback_unsupported,
            self.affected_components,
            self.peak_damage_permille,
            self.bounded_rows_recomputed,
            self.closure_maintain_micros,
            self.bounded_refresh_micros,
            self.apply_micros
        )
    }
}

/// The result of applying one update batch: the new prepared version
/// (copy-on-write — the version it was derived from is untouched) plus
/// maintenance accounting.
#[derive(Debug, Clone)]
pub struct UpdateOutcome<L> {
    /// The post-update prepared graph.
    pub prepared: Arc<PreparedGraph<L>>,
    /// What the maintenance pass did.
    pub stats: UpdateStats,
}

/// A data graph plus every query-independent index the matching
/// algorithms consume. Cheap to share: all fields are immutable after
/// construction except the lazily grown bounded-closure memo.
#[derive(Debug)]
pub struct PreparedGraph<L> {
    graph: Arc<DiGraph<L>>,
    /// Tarjan decomposition, computed lazily: the fresh-prepare path has
    /// it anyway (the index is built from it), but the incremental
    /// update path maintains SCC *membership* in its own slot numbering
    /// and only needs a Tarjan-numbered result if a caller asks.
    scc: OnceLock<SccResult>,
    index: ReachIndex,
    /// The options this graph was prepared under (inherited by
    /// update-derived versions).
    options: PrepareOptions,
    compressed: Option<CompressedClosure<L>>,
    data_weights: NodeWeights,
    bounded: Mutex<HashMap<usize, Arc<TransitiveClosure>>>,
    bounded_computed: AtomicUsize,
    stats: PrepareStats,
}

impl<L: Clone> PreparedGraph<L> {
    /// Prepares `graph` under the default [`PrepareOptions`]: SCC
    /// decomposition, full reachability index, compression decision
    /// ([`CompressionPolicy::Auto`]), and degree-based node weights.
    pub fn new(graph: Arc<DiGraph<L>>) -> Self {
        Self::prepare(graph, PrepareOptions::default())
    }

    /// [`PreparedGraph::new`] under an explicit [`ClosureBackend`] policy
    /// with the default compression policy.
    pub fn with_backend(
        graph: Arc<DiGraph<L>>,
        policy: ClosureBackend,
        chain_node_threshold: usize,
    ) -> Self {
        Self::prepare(
            graph,
            PrepareOptions {
                backend: policy,
                chain_node_threshold,
                ..Default::default()
            },
        )
    }

    /// Prepares `graph` under explicit [`PrepareOptions`] (the engine and
    /// the service registry pass their config-derived options here).
    pub fn prepare(graph: Arc<DiGraph<L>>, options: PrepareOptions) -> Self {
        // phom-lint: allow(clock, "monotonic elapsed-time stats for prepare/query/update timings; no wall-clock semantics")
        let started = Instant::now();
        let scc = tarjan_scc(&*graph);
        let index = ReachIndex::build(&graph, &scc, options.backend, options.chain_node_threshold);
        let scc_count = scc.count();
        Self::assemble(
            graph,
            index,
            options,
            Some(scc),
            scc_count,
            HashMap::new(),
            started,
        )
    }

    /// Builds every remaining artifact around an **already built**
    /// reachability index — the shared tail of
    /// [`PreparedGraph::with_backend`] (index just computed, SCC pass
    /// reused), [`PreparedGraph::apply_with`] (index maintained or
    /// rebuilt), and snapshot restore (index deserialized). `scc_count`
    /// is the component count of `graph` (every caller knows it
    /// cheaply); the Tarjan-numbered decomposition itself is optional —
    /// when absent it is computed only if the compression decision needs
    /// it, and otherwise stays lazy until someone calls
    /// [`PreparedGraph::scc`].
    fn assemble(
        graph: Arc<DiGraph<L>>,
        index: ReachIndex,
        options: PrepareOptions,
        scc: Option<SccResult>,
        scc_count: usize,
        bounded: HashMap<usize, Arc<TransitiveClosure>>,
        started: Instant,
    ) -> Self {
        let scc_cell = OnceLock::new();
        if let Some(s) = scc {
            debug_assert_eq!(s.count(), scc_count);
            let _ = scc_cell.set(s);
        }
        let compressed = options
            .compression
            .keep(graph.node_count(), scc_count)
            .then(|| {
                let scc = scc_cell.get_or_init(|| tarjan_scc(&*graph));
                let comp = compress_closure_with(&*graph, scc);
                CompressedClosure {
                    closure: TransitiveClosure::new(&comp.graph),
                    compressed: comp,
                }
            });
        let data_weights = NodeWeights::by_degree(&*graph);
        let stats = PrepareStats {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            scc_count,
            closure_edges: index.as_dyn().pair_count(),
            closure_backend: index.backend_name().to_owned(),
            closure_memory_bytes: index.as_dyn().memory_bytes(),
            compressed_nodes: compressed
                .as_ref()
                .map(|cc| cc.compressed.graph.node_count()),
            prepare_micros: started.elapsed().as_micros(),
        };
        let bounded_computed = AtomicUsize::new(bounded.len());
        PreparedGraph {
            graph,
            scc: scc_cell,
            index,
            options,
            compressed,
            data_weights,
            bounded: Mutex::new(bounded),
            bounded_computed,
            stats,
        }
    }

    /// Applies a batch of edge updates with default maintenance tuning —
    /// see [`PreparedGraph::apply_with`].
    pub fn apply(&self, updates: &[GraphUpdate]) -> UpdateOutcome<L> {
        self.apply_with(updates, &DynamicConfig::default())
    }

    /// Applies a batch of edge updates to this prepared graph and returns
    /// a **new version** — copy-on-write: `self` is untouched, so
    /// in-flight queries holding the old `Arc` keep reading a consistent
    /// snapshot while new queries route to the returned version.
    ///
    /// With the **dense** backend the closure is *maintained*, not
    /// recomputed: a [`SemiDynamicClosure`] is seeded from the existing
    /// rows (one memcpy), each update is patched in (incremental insert /
    /// bounded-cone delete, with the [`DynamicConfig::damage_threshold`]
    /// rebuild fallback), and memoized hop-bounded closures are refreshed
    /// for affected sources only. The compressed graph and *its* closure
    /// are still recomputed from linear passes per version (patching them
    /// incrementally is the ROADMAP's open refinement, and the dominant
    /// residual cost of an apply on compression-worthy graphs). The
    /// **chain** backend is likewise maintained incrementally by a
    /// [`SemiDynamicChain`] — chains are extended, split, and
    /// concatenated from the update's affected cone — with a full
    /// rebuild kept only as the escape hatch (deletion cones past the
    /// damage threshold, or SCC-splitting deletions, which have no
    /// incremental chain rule); each rebuild is recorded in
    /// [`UpdateStats::backend_fallbacks`] with its reason split across
    /// [`UpdateStats::fallback_damage`] /
    /// [`UpdateStats::fallback_unsupported`]. The **2-hop** backend has
    /// no incremental rule at all: any batch that changes the graph is
    /// serviced by one from-scratch rebuild, counted the same way.
    pub fn apply_with(&self, updates: &[GraphUpdate], config: &DynamicConfig) -> UpdateOutcome<L> {
        match &self.index {
            ReachIndex::Dense(dense) => self.apply_dense(updates, config, dense),
            ReachIndex::Chain(chain) => self.apply_chain(updates, config, chain),
            ReachIndex::TwoHop(_) => self.apply_twohop_rebuild(updates),
        }
    }

    /// The semi-dynamic maintenance path (dense backend only).
    fn apply_dense(
        &self,
        updates: &[GraphUpdate],
        config: &DynamicConfig,
        dense: &Arc<TransitiveClosure>,
    ) -> UpdateOutcome<L> {
        // phom-lint: allow(clock, "monotonic elapsed-time stats for prepare/query/update timings; no wall-clock semantics")
        let started = Instant::now();
        let n = self.graph.node_count();
        let mut stats = UpdateStats::default();
        // The clone becomes the new version's graph: the maintainer owns
        // it, applies each edit to graph and closure in lockstep, and
        // hands both back via `into_parts`.
        let mut dyc = SemiDynamicClosure::from_closure((*self.graph).clone(), dense, *config);
        let mut touched: Vec<NodeId> = Vec::new();
        for &update in updates {
            if !update.in_range(n) {
                stats.rejected += 1;
                continue;
            }
            let effect = match update {
                GraphUpdate::InsertEdge(a, b) => dyc.insert_edge(a, b),
                GraphUpdate::RemoveEdge(a, b) => dyc.remove_edge(a, b),
            };
            match effect {
                UpdateEffect::NoOp => stats.noops += 1,
                UpdateEffect::Unchanged => {
                    stats.applied += 1;
                    stats.closure_unchanged += 1;
                }
                UpdateEffect::Incremental {
                    affected_components,
                } => {
                    stats.applied += 1;
                    stats.incremental += 1;
                    stats.affected_components += affected_components;
                }
                UpdateEffect::Rebuilt => {
                    stats.applied += 1;
                    stats.rebuilds += 1;
                }
            }
            if effect != UpdateEffect::NoOp {
                touched.push(update.source());
            }
        }
        stats.closure_maintain_micros = dyc.stats().maintain_micros;
        stats.peak_damage_permille = dyc.stats().peak_damage_permille;
        let scc_count = dyc.component_count();
        let (new_graph, closure) = dyc.into_parts();
        let bounded = self.refreshed_bounded_memo(&new_graph, &touched, &mut stats);
        let prepared = Self::assemble(
            Arc::new(new_graph),
            ReachIndex::Dense(Arc::new(closure)),
            self.options,
            None,
            scc_count,
            bounded,
            started,
        );
        stats.apply_micros = started.elapsed().as_micros();
        UpdateOutcome {
            prepared: Arc::new(prepared),
            stats,
        }
    }

    /// The semi-dynamic chain maintenance path: chains are extended,
    /// split, and concatenated from each update's affected cone; full
    /// rebuilds happen only through the counted escape hatches (damage
    /// threshold / SCC-splitting deletion).
    fn apply_chain(
        &self,
        updates: &[GraphUpdate],
        config: &DynamicConfig,
        chain: &Arc<ChainIndex>,
    ) -> UpdateOutcome<L> {
        // phom-lint: allow(clock, "monotonic elapsed-time stats for prepare/query/update timings; no wall-clock semantics")
        let started = Instant::now();
        let n = self.graph.node_count();
        let mut stats = UpdateStats::default();
        // The clone becomes the new version's graph, exactly like the
        // dense path: the maintainer owns it and mutates graph and index
        // in lockstep.
        let mut dyc = SemiDynamicChain::from_index((*self.graph).clone(), chain, *config);
        let mut touched: Vec<NodeId> = Vec::new();
        for &update in updates {
            if !update.in_range(n) {
                stats.rejected += 1;
                continue;
            }
            let effect = match update {
                GraphUpdate::InsertEdge(a, b) => dyc.insert_edge(a, b),
                GraphUpdate::RemoveEdge(a, b) => dyc.remove_edge(a, b),
            };
            match effect {
                UpdateEffect::NoOp => stats.noops += 1,
                UpdateEffect::Unchanged => {
                    stats.applied += 1;
                    stats.closure_unchanged += 1;
                }
                UpdateEffect::Incremental {
                    affected_components,
                } => {
                    stats.applied += 1;
                    stats.incremental += 1;
                    stats.affected_components += affected_components;
                }
                UpdateEffect::Rebuilt => {
                    stats.applied += 1;
                    stats.rebuilds += 1;
                }
            }
            if effect != UpdateEffect::NoOp {
                touched.push(update.source());
            }
        }
        stats.closure_maintain_micros = dyc.stats().maintain_micros;
        stats.peak_damage_permille = dyc.stats().peak_damage_permille;
        stats.fallback_damage = dyc.fallback_damage();
        stats.fallback_unsupported = dyc.fallback_unsupported();
        stats.backend_fallbacks = stats.fallback_damage + stats.fallback_unsupported;
        let scc_count = dyc.component_count();
        let (new_graph, index) = dyc.into_parts();
        let bounded = self.refreshed_bounded_memo(&new_graph, &touched, &mut stats);
        let prepared = Self::assemble(
            Arc::new(new_graph),
            ReachIndex::Chain(Arc::new(index)),
            self.options,
            None,
            scc_count,
            bounded,
            started,
        );
        stats.apply_micros = started.elapsed().as_micros();
        UpdateOutcome {
            prepared: Arc::new(prepared),
            stats,
        }
    }

    /// The 2-hop-backend fallback: apply the edits to a graph clone and
    /// rebuild the labeling from scratch (semi-dynamic by design — never
    /// worse than a re-prepare, and the downgrade is visible in the
    /// stats as an unsupported-op backend fallback).
    fn apply_twohop_rebuild(&self, updates: &[GraphUpdate]) -> UpdateOutcome<L> {
        // phom-lint: allow(clock, "monotonic elapsed-time stats for prepare/query/update timings; no wall-clock semantics")
        let started = Instant::now();
        let n = self.graph.node_count();
        let mut stats = UpdateStats::default();
        let mut new_graph = (*self.graph).clone();
        let mut touched: Vec<NodeId> = Vec::new();
        for &update in updates {
            if !update.in_range(n) {
                stats.rejected += 1;
            } else if update.apply_to(&mut new_graph) {
                stats.applied += 1;
                touched.push(update.source());
            } else {
                stats.noops += 1;
            }
        }
        let (index, scc, scc_count) = if stats.applied == 0 {
            // Nothing changed the graph: keep the existing index (a
            // pointer bump) — no rebuild ran, so no downgrade to record.
            (self.index.clone(), None, self.stats.scc_count)
        } else {
            stats.backend_fallbacks = 1;
            stats.fallback_unsupported = 1;
            stats.rebuilds += 1;
            // phom-lint: allow(clock, "monotonic elapsed-time stats for closure rebuilds; no wall-clock semantics")
            let rebuild_started = Instant::now();
            let scc = tarjan_scc(&new_graph);
            let scc_count = scc.count();
            let index = ReachIndex::TwoHop(Arc::new(TwoHopIndex::from_scc(&new_graph, &scc)));
            stats.closure_maintain_micros = rebuild_started.elapsed().as_micros();
            (index, Some(scc), scc_count)
        };
        let bounded = self.refreshed_bounded_memo(&new_graph, &touched, &mut stats);
        let prepared = Self::assemble(
            Arc::new(new_graph),
            index,
            self.options,
            scc,
            scc_count,
            bounded,
            started,
        );
        stats.apply_micros = started.elapsed().as_micros();
        UpdateOutcome {
            prepared: Arc::new(prepared),
            stats,
        }
    }

    /// Refreshes the memoized hop-bounded closures (affected sources
    /// only) so a warm memo survives the version bump.
    fn refreshed_bounded_memo(
        &self,
        new_graph: &DiGraph<L>,
        touched: &[NodeId],
        stats: &mut UpdateStats,
    ) -> HashMap<usize, Arc<TransitiveClosure>> {
        // phom-lint: allow(clock, "monotonic elapsed-time stats for SCC refresh; no wall-clock semantics")
        let refresh_started = Instant::now();
        let old_memo: Vec<(usize, Arc<TransitiveClosure>)> = {
            let memo = self.bounded.lock().unwrap_or_else(|e| e.into_inner());
            memo.iter().map(|(&k, c)| (k, Arc::clone(c))).collect()
        };
        let mut bounded = HashMap::with_capacity(old_memo.len());
        for (k, old) in old_memo {
            if touched.is_empty() {
                bounded.insert(k, old);
                continue;
            }
            let (fresh, recomputed) = refresh_bounded_closure(&old, new_graph, k, touched);
            stats.bounded_rows_recomputed += recomputed;
            bounded.insert(k, Arc::new(fresh));
        }
        stats.bounded_refresh_micros = refresh_started.elapsed().as_micros();
        bounded
    }

    /// The underlying data graph.
    pub fn graph(&self) -> &Arc<DiGraph<L>> {
        &self.graph
    }

    /// The full reachability index over `G2+` (backend-agnostic view).
    pub fn closure(&self) -> &dyn ReachabilityIndex {
        self.index.as_dyn()
    }

    /// The owning reachability backend (for snapshotting and policy
    /// introspection).
    pub fn backend(&self) -> &ReachIndex {
        &self.index
    }

    /// The options this graph was prepared under (update-derived versions
    /// inherit them).
    pub fn options(&self) -> PrepareOptions {
        self.options
    }

    /// The Tarjan SCC decomposition of the data graph (computed lazily
    /// after an incremental update; always membership-equivalent to the
    /// index's component structure).
    pub fn scc(&self) -> &SccResult {
        self.scc.get_or_init(|| tarjan_scc(&*self.graph))
    }

    /// Appendix-B compressed graph + closure, when kept.
    pub fn compressed(&self) -> Option<&CompressedClosure<L>> {
        self.compressed.as_ref()
    }

    /// Degree-based importance weights of the data-graph nodes.
    pub fn data_weights(&self) -> &NodeWeights {
        &self.data_weights
    }

    /// Preparation statistics.
    pub fn stats(&self) -> &PrepareStats {
        &self.stats
    }

    /// Cheap structural tier of the backend validators: checks the
    /// active reachability index's internal invariants without touching
    /// the graph (see [`ReachIndex::validate`]). This is the check the
    /// snapshot-restore gate and `phom audit` run first.
    pub fn validate(&self) -> Result<(), Violation> {
        self.index.validate()
    }

    /// Deep tier: validates the active index *against* the data graph —
    /// fresh SCC partition comparison plus a sampled BFS ground-truth
    /// sweep over `samples` evenly spaced source nodes (see
    /// [`ReachIndex::validate_against`]).
    pub fn validate_deep(&self, samples: usize) -> Result<(), Violation> {
        self.index.validate_against(&self.graph, samples)
    }

    /// The hop-bounded closure for stretch bound `k`, building and
    /// memoizing it on first use. Bounds at or above the node count
    /// coincide with the full closure, so the active full index is
    /// returned without a build.
    pub fn bounded_closure(&self, k: usize) -> Arc<dyn ReachabilityIndex> {
        if k >= self.graph.node_count().max(1) {
            return self.index.as_dyn_arc();
        }
        let mut memo = self.bounded.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = memo.get(&k) {
            return Arc::clone(c) as Arc<dyn ReachabilityIndex>;
        }
        let built = Arc::new(TransitiveClosure::bounded(&*self.graph, k));
        self.bounded_computed.fetch_add(1, Ordering::Relaxed);
        memo.insert(k, Arc::clone(&built));
        built
    }

    /// How many distinct hop-bounded closures have been built so far.
    pub fn bounded_closures_computed(&self) -> usize {
        self.bounded_computed.load(Ordering::Relaxed)
    }

    /// Assembles the borrowed view [`phom_core::match_graphs_prepared`]
    /// consumes. `bounded` must be the memoized closure for the query's
    /// stretch bound when one applies (see [`PreparedGraph::bounded_closure`]).
    /// The returned view carries an unlimited [`phom_core::MatchBudget`];
    /// callers with a per-query deadline (the engine's executor) set the
    /// `budget` field before matching.
    pub fn inputs<'a>(
        &'a self,
        bounded: Option<(usize, &'a dyn ReachabilityIndex)>,
    ) -> PreparedInputs<'a, L> {
        PreparedInputs {
            closure: self.index.as_dyn(),
            bounded,
            compressed: self.compressed.as_ref(),
            budget: phom_core::MatchBudget::unlimited(),
        }
    }
}

/// Bounds check shared by the snapshot readers.
fn need(data: &Bytes, bytes: usize) -> Result<(), ParseError> {
    if data.remaining() < bytes {
        Err(ParseError::Corrupt(format!("need {bytes} more bytes")))
    } else {
        Ok(())
    }
}

/// Rejects serialized bitset words with bits set at or beyond `len`.
/// `BitSet::from_words` silently clears such bits, so accepting them
/// would let a corrupted snapshot round-trip into a valid-looking index.
fn check_padding(len: usize, words: &[u64]) -> Result<(), ParseError> {
    let tail = len % 64;
    if tail != 0 && words.len() == len.div_ceil(64) {
        if let Some(&last) = words.last() {
            if last >> tail != 0 {
                return Err(ParseError::Corrupt(format!(
                    "bitset has bits set beyond its {len}-bit length"
                )));
            }
        }
    }
    Ok(())
}

/// Magic prefix of the prepared-graph snapshot format ("pHPG").
const PREPARED_MAGIC: u32 = 0x7048_5047;
/// Snapshot format version. Version 2 added the version byte itself plus
/// the backend tag (the PR-2 format was unversioned; its first payload
/// byte — the high byte of a big-endian graph length — reads back as
/// version 0 and is rejected with a clear error instead of misparsing).
const SNAPSHOT_VERSION: u8 = 2;
const BACKEND_DENSE: u8 = 0;
const BACKEND_CHAIN: u8 = 1;
const BACKEND_TWOHOP: u8 = 2;

impl PreparedGraph<String> {
    /// Serializes the prepared graph — the data graph (via
    /// `phom_graph::serialize::to_snapshot`) **plus the warm reachability
    /// index** (dense closure rows or chain-index arrays, tagged by
    /// backend) — into a compact binary snapshot, so a restarted engine
    /// restores a prepared graph without re-running the closure
    /// computation (the dominant preparation cost).
    ///
    /// Bounded-closure memos are *not* persisted (they are per-workload
    /// and rebuild lazily); SCC numbering, compression, and node weights
    /// are recomputed on load from their linear-time passes.
    pub fn save_snapshot(&self) -> Bytes {
        let graph_bytes = phom_graph::serialize::to_snapshot(&self.graph);
        let n = self.graph.node_count();
        let mut buf = BytesMut::with_capacity(24 + graph_bytes.len() + 8 * n);
        buf.put_u32(PREPARED_MAGIC);
        buf.put_u8(SNAPSHOT_VERSION);
        buf.put_u8(match self.index {
            ReachIndex::Dense(_) => BACKEND_DENSE,
            ReachIndex::Chain(_) => BACKEND_CHAIN,
            ReachIndex::TwoHop(_) => BACKEND_TWOHOP,
        });
        buf.put_u32(graph_bytes.len() as u32);
        buf.put_slice(graph_bytes.as_ref());
        buf.put_u32(n as u32);
        match &self.index {
            ReachIndex::Dense(closure) => {
                for v in self.graph.nodes() {
                    buf.put_u32(closure.component_of(v) as u32);
                }
                let rows = closure.component_count();
                buf.put_u32(rows as u32);
                for c in 0..rows {
                    let words = closure.component_row(c).words();
                    buf.put_u32(words.len() as u32);
                    for &w in words {
                        buf.put_u64(w);
                    }
                }
            }
            ReachIndex::Chain(chain) => {
                let p = chain.parts();
                buf.put_u32(p.chain_of.len() as u32);
                for &c in p.comp {
                    buf.put_u32(c);
                }
                let cyclic_words = p.cyclic.words();
                buf.put_u32(cyclic_words.len() as u32);
                for &w in cyclic_words {
                    buf.put_u64(w);
                }
                for &j in p.chain_of {
                    buf.put_u32(j);
                }
                for &pos in p.pos_of {
                    buf.put_u32(pos);
                }
                for &off in p.entry_off {
                    buf.put_u32(off);
                }
                buf.put_u32(p.entries.len() as u32);
                for &(j, pos) in p.entries {
                    buf.put_u32(j);
                    buf.put_u32(pos);
                }
            }
            ReachIndex::TwoHop(hop) => {
                let p = hop.parts();
                buf.put_u32(p.out_mask.len() as u32);
                for &c in p.comp {
                    buf.put_u32(c);
                }
                let cyclic_words = p.cyclic.words();
                buf.put_u32(cyclic_words.len() as u32);
                for &w in cyclic_words {
                    buf.put_u64(w);
                }
                for &m in p.out_mask {
                    buf.put_u64(m);
                }
                for &m in p.in_mask {
                    buf.put_u64(m);
                }
                for (offs, labs) in [(p.out_off, p.out_lab), (p.in_off, p.in_lab)] {
                    for &off in offs {
                        buf.put_u32(off);
                    }
                    buf.put_u32(labs.len() as u32);
                    for &r in labs {
                        buf.put_u32(r);
                    }
                }
            }
        }
        buf.freeze()
    }

    /// Restores a prepared graph from [`PreparedGraph::save_snapshot`]
    /// bytes. Snapshots from unknown format versions — including the
    /// unversioned pre-version-byte layout — are rejected with a
    /// [`ParseError`] instead of being silently misparsed. The index
    /// payload is validated for shape, not re-derived (snapshots are a
    /// cache format, not an interchange format).
    pub fn load_snapshot(data: Bytes) -> Result<Self, ParseError> {
        Self::load_snapshot_with(data, CompressionPolicy::Auto)
    }

    /// [`PreparedGraph::load_snapshot`] under an explicit
    /// [`CompressionPolicy`] — a registry restoring a sharded graph
    /// passes the pinned graph-wide decision here, so a restored shard
    /// does not re-decide Appendix-B compression from its own node/SCC
    /// counts (which would diverge from the unsharded answer the pin
    /// exists to preserve).
    pub fn load_snapshot_with(
        mut data: Bytes,
        compression: CompressionPolicy,
    ) -> Result<Self, ParseError> {
        // phom-lint: allow(clock, "monotonic elapsed-time stats for prepare/query/update timings; no wall-clock semantics")
        let started = Instant::now();
        need(&data, 10)?;
        let magic = data.get_u32();
        if magic != PREPARED_MAGIC {
            return Err(ParseError::Corrupt(format!(
                "bad prepared-graph magic {magic:#x}"
            )));
        }
        let version = data.get_u8();
        if version != SNAPSHOT_VERSION {
            return Err(ParseError::Corrupt(format!(
                "unsupported prepared-snapshot format version {version} \
                 (this build reads version {SNAPSHOT_VERSION}; re-save the snapshot)"
            )));
        }
        let backend = data.get_u8();
        let graph_len = data.get_u32() as usize;
        need(&data, graph_len)?;
        let graph = phom_graph::serialize::from_snapshot(data.split_to(graph_len))?;
        need(&data, 4)?;
        let n = data.get_u32() as usize;
        if n != graph.node_count() {
            return Err(ParseError::Corrupt(format!(
                "closure covers {n} nodes, graph has {}",
                graph.node_count()
            )));
        }
        let index = match backend {
            BACKEND_DENSE => ReachIndex::Dense(Arc::new(Self::load_dense(&mut data, n)?)),
            BACKEND_CHAIN => ReachIndex::Chain(Arc::new(Self::load_chain(&mut data, n)?)),
            BACKEND_TWOHOP => ReachIndex::TwoHop(Arc::new(Self::load_twohop(&mut data, &graph)?)),
            other => {
                return Err(ParseError::Corrupt(format!(
                    "unknown reachability backend tag {other}"
                )))
            }
        };
        let scc = tarjan_scc(&graph);
        let scc_count = scc.count();
        // A restored graph keeps whichever backend it was saved with;
        // later `apply` versions inherit that choice explicitly.
        let options = PrepareOptions {
            backend: match index {
                ReachIndex::Dense(_) => ClosureBackend::Dense,
                ReachIndex::Chain(_) => ClosureBackend::Chain,
                ReachIndex::TwoHop(_) => ClosureBackend::TwoHop,
            },
            compression,
            ..Default::default()
        };
        Ok(Self::assemble(
            Arc::new(graph),
            index,
            options,
            Some(scc),
            scc_count,
            HashMap::new(),
            started,
        ))
    }

    fn load_dense(data: &mut Bytes, n: usize) -> Result<TransitiveClosure, ParseError> {
        need(data, 4 * n)?;
        let comp: Vec<u32> = (0..n).map(|_| data.get_u32()).collect();
        need(data, 4)?;
        let row_count = data.get_u32() as usize;
        // Each serialized row costs at least its 4-byte word count, so a
        // claimed row count past that bound cannot be satisfied; reject
        // before sizing any allocation off the header value.
        if row_count > n || row_count > data.remaining() / 4 {
            return Err(ParseError::Corrupt(format!(
                "{row_count} rows exceed what the snapshot can hold"
            )));
        }
        if let Some(&c) = comp.iter().find(|&&c| c as usize >= row_count) {
            return Err(ParseError::Corrupt(format!(
                "component {c} out of range {row_count}"
            )));
        }
        let max_words = n.div_ceil(64);
        let mut rows = Vec::with_capacity(row_count);
        for _ in 0..row_count {
            need(data, 4)?;
            let word_count = data.get_u32() as usize;
            if word_count > max_words {
                return Err(ParseError::Corrupt(format!(
                    "{word_count} row words exceed {max_words}"
                )));
            }
            need(data, 8 * word_count)?;
            let mut words = Vec::with_capacity(word_count);
            for _ in 0..word_count {
                words.push(data.get_u64());
            }
            check_padding(n, &words)?;
            rows.push(BitSet::from_words(n, &words));
        }
        Ok(TransitiveClosure::from_parts(comp, rows, n))
    }

    fn load_chain(data: &mut Bytes, n: usize) -> Result<ChainIndex, ParseError> {
        need(data, 4)?;
        let c_count = data.get_u32() as usize;
        if c_count > n {
            return Err(ParseError::Corrupt(format!(
                "{c_count} components exceed {n} nodes"
            )));
        }
        need(data, 4 * n)?;
        let comp: Vec<u32> = (0..n).map(|_| data.get_u32()).collect();
        need(data, 4)?;
        let word_count = data.get_u32() as usize;
        if word_count > c_count.div_ceil(64) {
            return Err(ParseError::Corrupt(format!(
                "{word_count} cyclic words exceed {} components",
                c_count
            )));
        }
        need(data, 8 * word_count)?;
        let cyclic_words: Vec<u64> = (0..word_count).map(|_| data.get_u64()).collect();
        check_padding(c_count, &cyclic_words)?;
        let cyclic = BitSet::from_words(c_count, &cyclic_words);
        need(data, 4 * c_count)?;
        let chain_of: Vec<u32> = (0..c_count).map(|_| data.get_u32()).collect();
        need(data, 4 * c_count)?;
        let pos_of: Vec<u32> = (0..c_count).map(|_| data.get_u32()).collect();
        need(data, 4 * (c_count + 1))?;
        let entry_off: Vec<u32> = (0..=c_count).map(|_| data.get_u32()).collect();
        need(data, 4)?;
        let entry_count = data.get_u32() as usize;
        need(data, 8 * entry_count)?;
        let entries: Vec<(u32, u32)> = (0..entry_count)
            .map(|_| (data.get_u32(), data.get_u32()))
            .collect();
        ChainIndex::from_parts(n, comp, cyclic, chain_of, pos_of, entry_off, entries)
            .map_err(|e| ParseError::Corrupt(format!("chain index: {e}")))
    }

    fn load_twohop(data: &mut Bytes, graph: &DiGraph<String>) -> Result<TwoHopIndex, ParseError> {
        let n = graph.node_count();
        need(data, 4)?;
        let c_count = data.get_u32() as usize;
        if c_count > n {
            return Err(ParseError::Corrupt(format!(
                "{c_count} components exceed {n} nodes"
            )));
        }
        need(data, 4 * n)?;
        let comp: Vec<u32> = (0..n).map(|_| data.get_u32()).collect();
        need(data, 4)?;
        let word_count = data.get_u32() as usize;
        if word_count > c_count.div_ceil(64) {
            return Err(ParseError::Corrupt(format!(
                "{word_count} cyclic words exceed {c_count} components"
            )));
        }
        need(data, 8 * word_count)?;
        let cyclic_words: Vec<u64> = (0..word_count).map(|_| data.get_u64()).collect();
        check_padding(c_count, &cyclic_words)?;
        let cyclic = BitSet::from_words(c_count, &cyclic_words);
        need(data, 8 * c_count)?;
        let out_mask: Vec<u64> = (0..c_count).map(|_| data.get_u64()).collect();
        need(data, 8 * c_count)?;
        let in_mask: Vec<u64> = (0..c_count).map(|_| data.get_u64()).collect();
        fn tail_section(
            data: &mut Bytes,
            c_count: usize,
        ) -> Result<(Vec<u32>, Vec<u32>), ParseError> {
            need(data, 4 * (c_count + 1))?;
            let off: Vec<u32> = (0..=c_count).map(|_| data.get_u32()).collect();
            need(data, 4)?;
            let lab_count = data.get_u32() as usize;
            need(data, 4 * lab_count)?;
            let lab: Vec<u32> = (0..lab_count).map(|_| data.get_u32()).collect();
            Ok((off, lab))
        }
        let (out_off, out_lab) = tail_section(data, c_count)?;
        let (in_off, in_lab) = tail_section(data, c_count)?;
        TwoHopIndex::from_parts(
            graph, comp, cyclic, out_mask, in_mask, out_off, out_lab, in_off, in_lab,
        )
        .map_err(|e| ParseError::Corrupt(format!("2-hop index: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::{graph_from_labels, NodeId};

    fn cyclic_graph() -> Arc<DiGraph<String>> {
        Arc::new(graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
        ))
    }

    fn chain_prepared(graph: Arc<DiGraph<String>>) -> PreparedGraph<String> {
        PreparedGraph::with_backend(graph, ClosureBackend::Chain, DEFAULT_CHAIN_NODE_THRESHOLD)
    }

    #[test]
    fn prepare_computes_closure_and_scc() {
        let p = PreparedGraph::new(cyclic_graph());
        assert_eq!(p.stats().nodes, 4);
        assert_eq!(p.stats().scc_count, 3, "{{a,b}} collapses");
        assert_eq!(p.stats().closure_backend, "dense", "auto below threshold");
        assert!(p.stats().closure_memory_bytes > 0);
        assert!(p.closure().reaches(NodeId(0), NodeId(3)));
        assert!(p.closure().reaches(NodeId(0), NodeId(0)), "on a cycle");
        assert!(!p.closure().reaches(NodeId(3), NodeId(0)));
    }

    #[test]
    fn chain_backend_answers_identically() {
        let g = cyclic_graph();
        let dense = PreparedGraph::with_backend(
            Arc::clone(&g),
            ClosureBackend::Dense,
            DEFAULT_CHAIN_NODE_THRESHOLD,
        );
        let chain = chain_prepared(Arc::clone(&g));
        assert_eq!(chain.stats().closure_backend, "chain");
        assert_eq!(chain.stats().closure_edges, dense.stats().closure_edges);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    dense.closure().reaches(u, v),
                    chain.closure().reaches(u, v),
                    "{u:?}->{v:?}"
                );
            }
        }
    }

    #[test]
    fn auto_policy_switches_on_node_threshold_then_density() {
        let g = cyclic_graph();
        let small = PreparedGraph::with_backend(Arc::clone(&g), ClosureBackend::Auto, 1_000_000);
        assert_eq!(small.stats().closure_backend, "dense");
        // Past the node threshold the reach density decides: the tiny
        // cyclic graph condenses to a 3-component path — dense-reach —
        // so Auto picks the 2-hop labeling...
        let big = PreparedGraph::with_backend(Arc::clone(&g), ClosureBackend::Auto, 2);
        assert_eq!(big.stats().closure_backend, "twohop");
        // ...while a tree-shaped graph (almost every component reaches
        // almost nothing) stays on the chain index.
        let tree = Arc::new(phom_graph::preferential_attachment(200, 1, 9));
        let sparse = PreparedGraph::with_backend(Arc::clone(&tree), ClosureBackend::Auto, 2);
        assert_eq!(sparse.stats().closure_backend, "chain");
    }

    #[test]
    fn twohop_backend_answers_identically() {
        let g = cyclic_graph();
        let dense = PreparedGraph::with_backend(
            Arc::clone(&g),
            ClosureBackend::Dense,
            DEFAULT_CHAIN_NODE_THRESHOLD,
        );
        let hop = PreparedGraph::with_backend(
            Arc::clone(&g),
            ClosureBackend::TwoHop,
            DEFAULT_CHAIN_NODE_THRESHOLD,
        );
        assert_eq!(hop.stats().closure_backend, "twohop");
        assert_eq!(hop.stats().closure_edges, dense.stats().closure_edges);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    dense.closure().reaches(u, v),
                    hop.closure().reaches(u, v),
                    "{u:?}->{v:?}"
                );
            }
        }
    }

    #[test]
    fn bounded_closures_are_memoized() {
        let p = PreparedGraph::new(cyclic_graph());
        assert_eq!(p.bounded_closures_computed(), 0);
        let c1 = p.bounded_closure(1);
        let _c1_again = p.bounded_closure(1);
        assert_eq!(p.bounded_closures_computed(), 1, "second call is a hit");
        let _c2 = p.bounded_closure(2);
        assert_eq!(p.bounded_closures_computed(), 2);
        assert!(!c1.reaches(NodeId(0), NodeId(3)), "3 hops exceed k=1");
    }

    #[test]
    fn huge_bound_reuses_full_closure() {
        for p in [
            PreparedGraph::new(cyclic_graph()),
            chain_prepared(cyclic_graph()),
        ] {
            let c = p.bounded_closure(100);
            assert_eq!(p.bounded_closures_computed(), 0, "no bounded build");
            for u in p.graph().nodes() {
                for v in p.graph().nodes() {
                    assert_eq!(c.reaches(u, v), p.closure().reaches(u, v));
                }
            }
        }
    }

    #[test]
    fn acyclic_graph_skips_compression() {
        let p = PreparedGraph::new(Arc::new(graph_from_labels(
            &["a", "b", "c"],
            &[("a", "b"), ("b", "c")],
        )));
        assert!(p.compressed().is_none(), "condensation does not shrink");
        assert_eq!(p.stats().compressed_nodes, None);
    }

    #[test]
    fn compression_policy_overrides_the_worthwhile_heuristic() {
        // Acyclic path: Auto skips compression, Always keeps a trivial
        // (all-singleton) compressed graph.
        let path = Arc::new(graph_from_labels(
            &["a", "b", "c"],
            &[("a", "b"), ("b", "c")],
        ));
        let always = PreparedGraph::prepare(
            Arc::clone(&path),
            PrepareOptions {
                compression: CompressionPolicy::Always,
                ..Default::default()
            },
        );
        assert_eq!(
            always.compressed().unwrap().compressed.graph.node_count(),
            3,
            "every SCC is a singleton"
        );
        // Cyclic graph: Auto keeps it (see the sibling test), Never drops.
        let never = PreparedGraph::prepare(
            cyclic_graph(),
            PrepareOptions {
                compression: CompressionPolicy::Never,
                ..Default::default()
            },
        );
        assert!(never.compressed().is_none());
        // Update-derived versions inherit the pinned policy.
        let outcome = never.apply(&[GraphUpdate::InsertEdge(NodeId(3), NodeId(0))]);
        assert_eq!(
            outcome.prepared.options().compression,
            CompressionPolicy::Never
        );
        assert!(outcome.prepared.compressed().is_none());
    }

    #[test]
    fn pinned_policy_matches_the_global_decision() {
        assert_eq!(CompressionPolicy::pinned(10, 5), CompressionPolicy::Always);
        assert_eq!(CompressionPolicy::pinned(10, 10), CompressionPolicy::Never);
        assert!(CompressionPolicy::Always.keep(1, 1));
        assert!(!CompressionPolicy::Always.keep(0, 0), "empty graph");
        assert!(!CompressionPolicy::Never.keep(10, 1));
    }

    #[test]
    fn cyclic_enough_graph_keeps_compression() {
        // 5 nodes, a 3-cycle collapses: 3 compressed nodes for 5 original.
        let p = PreparedGraph::new(Arc::new(graph_from_labels(
            &["a", "b", "c", "d", "e"],
            &[("a", "b"), ("b", "c"), ("c", "d"), ("d", "b"), ("d", "e")],
        )));
        let cc = p.compressed().expect("3-cycle shrinks the graph");
        assert_eq!(cc.compressed.graph.node_count(), 3);
        assert_eq!(p.stats().compressed_nodes, Some(3));
    }

    /// Every artifact of an applied version must behave like a from-scratch
    /// prepare of the mutated graph (closure, compression decision,
    /// compressed closure, stats).
    fn assert_equivalent_to_fresh(applied: &PreparedGraph<String>) {
        let fresh = PreparedGraph::new(Arc::clone(applied.graph()));
        for u in applied.graph().nodes() {
            for v in applied.graph().nodes() {
                assert_eq!(
                    applied.closure().reaches(u, v),
                    fresh.closure().reaches(u, v),
                    "closure diverged at {u:?}->{v:?}"
                );
            }
        }
        assert_eq!(applied.stats().closure_edges, fresh.stats().closure_edges);
        assert_eq!(applied.stats().scc_count, fresh.stats().scc_count);
        assert_eq!(
            applied.stats().compressed_nodes,
            fresh.stats().compressed_nodes
        );
        match (applied.compressed(), fresh.compressed()) {
            (None, None) => {}
            (Some(a), Some(f)) => {
                let cg = &a.compressed.graph;
                assert_eq!(cg.node_count(), f.compressed.graph.node_count());
                for u in cg.nodes() {
                    for v in cg.nodes() {
                        assert_eq!(
                            a.closure.reaches(u, v),
                            f.closure.reaches(u, v),
                            "compressed closure diverged at {u:?}->{v:?}"
                        );
                    }
                }
            }
            (a, f) => panic!(
                "compression decision diverged: applied={} fresh={}",
                a.is_some(),
                f.is_some()
            ),
        }
    }

    #[test]
    fn apply_is_copy_on_write_and_equivalent_to_fresh_prepare() {
        let old = PreparedGraph::new(cyclic_graph());
        let old_edges = old.stats().edges;
        // d -> a closes a big cycle; then cut b -> c.
        let outcome = old.apply(&[
            GraphUpdate::InsertEdge(NodeId(3), NodeId(0)),
            GraphUpdate::RemoveEdge(NodeId(1), NodeId(2)),
        ]);
        assert_eq!(outcome.stats.applied, 2);
        assert_eq!(outcome.stats.rejected, 0);
        assert_eq!(outcome.stats.backend_fallbacks, 0, "dense is semi-dynamic");
        // Copy-on-write: the old version is untouched.
        assert_eq!(old.stats().edges, old_edges);
        assert!(old.closure().reaches(NodeId(0), NodeId(3)));
        // The new version matches a from-scratch prepare of the new graph.
        let new = &outcome.prepared;
        assert_eq!(new.stats().edges, old_edges); // one added, one removed
        assert!(!new.closure().reaches(NodeId(0), NodeId(2)), "b->c cut");
        assert!(new.closure().reaches(NodeId(3), NodeId(1)), "d->a->b");
        assert_equivalent_to_fresh(new);
    }

    #[test]
    fn chain_backend_apply_maintains_incrementally() {
        let old = chain_prepared(cyclic_graph());
        let outcome = old.apply(&[
            GraphUpdate::InsertEdge(NodeId(0), NodeId(3)), // a->d: already reached
            GraphUpdate::RemoveEdge(NodeId(2), NodeId(3)), // cut c->d
        ]);
        assert_eq!(outcome.stats.applied, 2);
        assert_eq!(outcome.stats.closure_unchanged, 1, "a reached d via b,c");
        assert_eq!(outcome.stats.incremental, 1, "the cut is patched in place");
        assert_eq!(outcome.stats.rebuilds, 0);
        assert_eq!(
            outcome.stats.backend_fallbacks, 0,
            "no escape hatch taken: the batch was maintained, not rebuilt"
        );
        let new = &outcome.prepared;
        assert_eq!(new.stats().closure_backend, "chain");
        assert!(!new.closure().reaches(NodeId(2), NodeId(3)), "c->d cut");
        assert!(new.closure().reaches(NodeId(0), NodeId(3)), "a->d direct");
        // Old version untouched (copy-on-write holds under maintenance).
        assert!(old.closure().reaches(NodeId(2), NodeId(3)));
        assert_equivalent_to_fresh(new);
    }

    #[test]
    fn chain_backend_scc_split_falls_back_with_unsupported_reason() {
        let old = chain_prepared(cyclic_graph());
        let outcome = old.apply(&[
            GraphUpdate::InsertEdge(NodeId(3), NodeId(0)), // back edge: one big SCC
            GraphUpdate::RemoveEdge(NodeId(1), NodeId(2)), // splits it again
            GraphUpdate::InsertEdge(NodeId(0), NodeId(99)), // out of range
        ]);
        assert_eq!(outcome.stats.applied, 2);
        assert_eq!(outcome.stats.rejected, 1);
        assert_eq!(outcome.stats.incremental, 1, "the SCC merge is patched");
        assert_eq!(outcome.stats.rebuilds, 1, "the SCC split is not");
        assert_eq!(outcome.stats.backend_fallbacks, 1);
        assert_eq!(
            outcome.stats.fallback_unsupported, 1,
            "SCC splits have no incremental chain rule"
        );
        assert_eq!(outcome.stats.fallback_damage, 0);
        let new = &outcome.prepared;
        assert_eq!(
            new.stats().closure_backend,
            "chain",
            "versions inherit the backend"
        );
        assert!(!new.closure().reaches(NodeId(0), NodeId(2)), "b->c cut");
        assert!(new.closure().reaches(NodeId(3), NodeId(1)), "d->a->b");
        // Old version untouched (copy-on-write holds on the fallback too).
        assert!(old.closure().reaches(NodeId(0), NodeId(2)));
        assert_equivalent_to_fresh(new);
    }

    #[test]
    fn chain_backend_damage_threshold_falls_back_with_damage_reason() {
        let old = PreparedGraph::prepare(
            cyclic_graph(),
            PrepareOptions {
                backend: ClosureBackend::Chain,
                ..Default::default()
            },
        );
        // A zero damage budget turns every reach-changing deletion into
        // a damage-threshold rebuild.
        let outcome = old.apply_with(
            &[GraphUpdate::RemoveEdge(NodeId(2), NodeId(3))],
            &DynamicConfig {
                damage_threshold: 0.0,
            },
        );
        assert_eq!(outcome.stats.applied, 1);
        assert_eq!(outcome.stats.backend_fallbacks, 1);
        assert_eq!(outcome.stats.fallback_damage, 1, "cone exceeded the budget");
        assert_eq!(outcome.stats.fallback_unsupported, 0);
        assert_equivalent_to_fresh(&outcome.prepared);
    }

    #[test]
    fn twohop_backend_apply_falls_back_to_rebuild() {
        let old = PreparedGraph::with_backend(
            cyclic_graph(),
            ClosureBackend::TwoHop,
            DEFAULT_CHAIN_NODE_THRESHOLD,
        );
        let outcome = old.apply(&[
            GraphUpdate::InsertEdge(NodeId(3), NodeId(0)),
            GraphUpdate::RemoveEdge(NodeId(1), NodeId(2)),
            GraphUpdate::InsertEdge(NodeId(0), NodeId(99)), // out of range
        ]);
        assert_eq!(outcome.stats.applied, 2);
        assert_eq!(outcome.stats.rejected, 1);
        assert_eq!(
            outcome.stats.backend_fallbacks, 1,
            "2-hop has no incremental rule: one rebuild per batch"
        );
        assert_eq!(outcome.stats.fallback_unsupported, 1);
        assert_eq!(outcome.stats.fallback_damage, 0);
        assert_eq!(outcome.stats.rebuilds, 1);
        let new = &outcome.prepared;
        assert_eq!(new.stats().closure_backend, "twohop");
        assert!(!new.closure().reaches(NodeId(0), NodeId(2)), "b->c cut");
        assert!(new.closure().reaches(NodeId(3), NodeId(1)), "d->a->b");
        assert!(old.closure().reaches(NodeId(0), NodeId(2)));
        assert_equivalent_to_fresh(new);
        // A batch of pure no-ops keeps the index without a rebuild.
        let noop = old.apply(&[GraphUpdate::InsertEdge(NodeId(0), NodeId(1))]);
        assert_eq!(noop.stats.backend_fallbacks, 0);
        assert_eq!(noop.prepared.stats().closure_backend, "twohop");
    }

    #[test]
    fn chain_backend_noop_batch_skips_rebuild() {
        let old = chain_prepared(cyclic_graph());
        let outcome = old.apply(&[
            GraphUpdate::InsertEdge(NodeId(0), NodeId(1)), // duplicate
            GraphUpdate::RemoveEdge(NodeId(3), NodeId(0)), // absent
        ]);
        assert_eq!(outcome.stats.applied, 0);
        assert_eq!(outcome.stats.noops, 2);
        assert_eq!(
            outcome.stats.backend_fallbacks, 0,
            "no rebuild ran, so no downgrade to record"
        );
        assert_eq!(outcome.stats.rebuilds, 0);
        assert_eq!(outcome.prepared.stats().closure_backend, "chain");
        assert_equivalent_to_fresh(&outcome.prepared);
    }

    #[test]
    fn apply_refreshes_memoized_bounded_closures() {
        for old in [
            PreparedGraph::new(cyclic_graph()),
            chain_prepared(cyclic_graph()),
        ] {
            let k1 = old.bounded_closure(1);
            assert!(!k1.reaches(NodeId(0), NodeId(2)), "a->c is 2 hops");
            let outcome = old.apply(&[GraphUpdate::InsertEdge(NodeId(0), NodeId(2))]);
            let new = &outcome.prepared;
            assert_eq!(
                new.bounded_closures_computed(),
                1,
                "memo carried over, not dropped"
            );
            let k1_new = new.bounded_closure(1);
            assert!(k1_new.reaches(NodeId(0), NodeId(2)), "now one hop");
            assert!(outcome.stats.bounded_rows_recomputed > 0);
            let scratch = TransitiveClosure::bounded(&**new.graph(), 1);
            for u in new.graph().nodes() {
                for v in new.graph().nodes() {
                    assert_eq!(k1_new.reaches(u, v), scratch.reaches(u, v));
                }
            }
        }
    }

    #[test]
    fn apply_counts_noops_and_rejects_out_of_range() {
        let old = PreparedGraph::new(cyclic_graph());
        let outcome = old.apply(&[
            GraphUpdate::InsertEdge(NodeId(0), NodeId(1)), // already present
            GraphUpdate::RemoveEdge(NodeId(3), NodeId(0)), // absent
            GraphUpdate::InsertEdge(NodeId(0), NodeId(99)), // out of range
        ]);
        assert_eq!(outcome.stats.applied, 0);
        assert_eq!(outcome.stats.noops, 2);
        assert_eq!(outcome.stats.rejected, 1);
        assert_equivalent_to_fresh(&outcome.prepared);
    }

    #[test]
    fn apply_keeps_compression_decision_in_sync() {
        // Starts acyclic (compression skipped); a back edge builds a
        // 4-cycle that makes compression worthwhile.
        let p = PreparedGraph::new(Arc::new(graph_from_labels(
            &["a", "b", "c", "d", "e"],
            &[("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")],
        )));
        assert!(p.compressed().is_none());
        let outcome = p.apply(&[GraphUpdate::InsertEdge(NodeId(3), NodeId(0))]);
        assert!(
            outcome.prepared.compressed().is_some(),
            "4-cycle of 5 nodes compresses to 2"
        );
        assert_equivalent_to_fresh(&outcome.prepared);
    }

    #[test]
    fn snapshot_roundtrip_restores_warm_closure() {
        let p = PreparedGraph::new(cyclic_graph());
        let bytes = p.save_snapshot();
        let restored = PreparedGraph::load_snapshot(bytes).expect("restore");
        assert_eq!(restored.stats().nodes, p.stats().nodes);
        assert_eq!(restored.stats().edges, p.stats().edges);
        assert_eq!(restored.stats().closure_edges, p.stats().closure_edges);
        assert_eq!(restored.stats().closure_backend, "dense");
        assert_eq!(restored.graph().label(NodeId(2)), "c");
        for u in p.graph().nodes() {
            for v in p.graph().nodes() {
                assert_eq!(
                    restored.closure().reaches(u, v),
                    p.closure().reaches(u, v),
                    "{u:?}->{v:?}"
                );
            }
        }
        // A restored graph is live: updates apply on top of it.
        let outcome = restored.apply(&[GraphUpdate::InsertEdge(NodeId(3), NodeId(0))]);
        assert!(outcome.prepared.closure().reaches(NodeId(3), NodeId(2)));
        assert_equivalent_to_fresh(&outcome.prepared);
    }

    #[test]
    fn snapshot_roundtrip_restores_chain_backend() {
        let p = chain_prepared(cyclic_graph());
        let bytes = p.save_snapshot();
        let restored = PreparedGraph::load_snapshot(bytes).expect("restore");
        assert_eq!(restored.stats().closure_backend, "chain");
        assert_eq!(restored.stats().closure_edges, p.stats().closure_edges);
        for u in p.graph().nodes() {
            for v in p.graph().nodes() {
                assert_eq!(
                    restored.closure().reaches(u, v),
                    p.closure().reaches(u, v),
                    "{u:?}->{v:?}"
                );
            }
        }
        // Updates on a restored chain graph keep the chain backend and
        // the incremental maintenance path (the back edge is a patched
        // SCC merge, not a rebuild).
        let outcome = restored.apply(&[GraphUpdate::InsertEdge(NodeId(3), NodeId(0))]);
        assert_eq!(outcome.stats.incremental, 1);
        assert_eq!(outcome.stats.backend_fallbacks, 0);
        assert_eq!(outcome.prepared.stats().closure_backend, "chain");
        assert!(outcome.prepared.closure().reaches(NodeId(3), NodeId(2)));
    }

    #[test]
    fn snapshot_roundtrip_restores_twohop_backend() {
        let p = PreparedGraph::with_backend(
            cyclic_graph(),
            ClosureBackend::TwoHop,
            DEFAULT_CHAIN_NODE_THRESHOLD,
        );
        let bytes = p.save_snapshot();
        let restored = PreparedGraph::load_snapshot(bytes).expect("restore");
        assert_eq!(restored.stats().closure_backend, "twohop");
        assert_eq!(restored.stats().closure_edges, p.stats().closure_edges);
        for u in p.graph().nodes() {
            for v in p.graph().nodes() {
                assert_eq!(
                    restored.closure().reaches(u, v),
                    p.closure().reaches(u, v),
                    "{u:?}->{v:?}"
                );
            }
        }
        // Updates on a restored 2-hop graph rebuild (recorded) and keep
        // the backend.
        let outcome = restored.apply(&[GraphUpdate::InsertEdge(NodeId(3), NodeId(0))]);
        assert_eq!(outcome.stats.backend_fallbacks, 1);
        assert_eq!(outcome.stats.fallback_unsupported, 1);
        assert_eq!(outcome.prepared.stats().closure_backend, "twohop");
        assert!(outcome.prepared.closure().reaches(NodeId(3), NodeId(2)));
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let p = PreparedGraph::new(cyclic_graph());
        let bytes = p.save_snapshot();
        assert!(matches!(
            PreparedGraph::load_snapshot(bytes.slice(0..bytes.len() - 5)),
            Err(ParseError::Corrupt(_))
        ));
        let mut garbled = bytes.to_vec();
        garbled[0] ^= 0xff;
        assert!(matches!(
            PreparedGraph::load_snapshot(Bytes::from(garbled)),
            Err(ParseError::Corrupt(_))
        ));
    }

    #[test]
    fn snapshot_rejects_unknown_format_version() {
        let p = PreparedGraph::new(cyclic_graph());
        let bytes = p.save_snapshot();
        // Flip the version byte (offset 4, right after the magic).
        let mut wrong = bytes.to_vec();
        wrong[4] = 9;
        let err = PreparedGraph::load_snapshot(Bytes::from(wrong)).unwrap_err();
        let ParseError::Corrupt(msg) = err else {
            panic!("expected Corrupt, got {err:?}");
        };
        assert!(msg.contains("version 9"), "actionable message: {msg}");
        // The unversioned PR-2 layout put the graph length where the
        // version byte now lives; its high byte is 0 for any realistic
        // graph, so legacy snapshots surface as "version 0" — rejected,
        // not misparsed.
        let mut legacy_like = bytes.to_vec();
        legacy_like[4] = 0;
        assert!(matches!(
            PreparedGraph::load_snapshot(Bytes::from(legacy_like)),
            Err(ParseError::Corrupt(_))
        ));
    }

    #[test]
    fn snapshot_rejects_unknown_backend_tag() {
        let p = PreparedGraph::new(cyclic_graph());
        let mut wrong = p.save_snapshot().to_vec();
        wrong[5] = 7; // backend byte follows the version byte
        let err = PreparedGraph::load_snapshot(Bytes::from(wrong)).unwrap_err();
        assert!(matches!(err, ParseError::Corrupt(ref m) if m.contains("backend")));
    }
}
