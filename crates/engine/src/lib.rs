//! # phom-engine
//!
//! A **prepared-graph matching engine** for the p-homomorphism algorithms
//! of *Graph Homomorphism Revisited for Graph Matching* (Fan et al.,
//! VLDB 2010).
//!
//! Every algorithm in `phom-core` pays the same dominant preprocessing
//! cost — the transitive closure `G2+` (and, with Appendix B enabled, the
//! compressed graph `G2*` plus *its* closure) — yet a service matching
//! many patterns against the same data graph should pay it **once**, not
//! per query. This crate separates the two concerns, in the spirit of
//! factorized/prepared representations that a query engine then evaluates
//! many queries over:
//!
//! * [`PreparedGraph`] — computes and holds the full closure, SCC data,
//!   the Appendix-B compressed graph (when profitable), lazily memoized
//!   hop-bounded closures, and degree-based data-node weights, all
//!   behind `Arc` for zero-copy sharing across threads;
//! * [`planner`] — routes each [`Query`] to `exact` branch-and-bound,
//!   the greedy approximation (optionally with restarts), the
//!   bounded-stretch variant, or a best-candidate baseline, using the
//!   `phom_core::bounds::prefer_exact` cost model;
//! * [`Engine`] — an LRU cache of prepared graphs keyed by structural
//!   fingerprint, plus [`Engine::execute_batch`]: a work-stealing scoped
//!   thread pool that fans a batch of queries out in parallel and
//!   reports [`EngineStats`] (closures computed, cache hits, plans
//!   chosen, achieved parallelism).
//!
//! For **live graphs**, [`PreparedGraph::apply`] produces a new prepared
//! version under edge insertions/deletions via semi-dynamic closure
//! maintenance (the `phom-dynamic` crate) instead of re-preparing, with
//! copy-on-write versioning; [`Engine::apply_updates`] admits update
//! batches and re-keys the cache to the mutated graph's fingerprint.
//! Prepared graphs also snapshot/restore ([`PreparedGraph::save_snapshot`])
//! so warm closures survive restarts.
//!
//! ## Quickstart
//!
//! ```
//! use phom_engine::{Engine, Query};
//! use phom_graph::graph_from_labels;
//! use phom_sim::SimMatrix;
//! use std::sync::Arc;
//!
//! let data = Arc::new(graph_from_labels(
//!     &["home", "cat", "item"],
//!     &[("home", "cat"), ("cat", "item")],
//! ));
//! let pattern = Arc::new(graph_from_labels(&["home", "item"], &[("home", "item")]));
//! let mat = SimMatrix::label_equality(&pattern, &data);
//!
//! let engine: Engine<String> = Engine::default();
//! let batch = engine.execute_batch(&data, &[Query::new(pattern, mat)]);
//! assert_eq!(batch.results[0].outcome.qual_card, 1.0);
//! // The whole batch shared one preparation:
//! assert_eq!(batch.stats.prepares, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod planner;
pub mod prepared;

pub use engine::{
    graph_fingerprint, percentile_micros, BatchOutcome, Engine, EngineConfig, EngineConfigBuilder,
    EngineStats, QueryResult,
};
#[allow(deprecated)]
pub use planner::plan_query;
pub use planner::{
    plan_query_with, ClosureBackend, CompressionPolicy, Plan, PlanKind, PlannerConfig,
    PlannerConfigBuilder, Query, QueryConfig, QueryConfigBuilder, ResolvedBackend,
    DEFAULT_CHAIN_NODE_THRESHOLD, DENSE_REACH_DENSITY_CUTOFF,
};
pub use prepared::{
    PrepareOptions, PrepareStats, PreparedGraph, ReachIndex, UpdateOutcome, UpdateStats,
};

// Re-exported so engine consumers can speak the update vocabulary
// without a direct `phom-dynamic` dependency.
pub use phom_dynamic::{DynamicConfig, GraphUpdate};

// Re-exported so engine consumers can read [`QueryResult::trace`]
// without a direct `phom-trace` dependency.
pub use phom_trace::{QueryTrace, Span, SpanKind, TraceCounters};
