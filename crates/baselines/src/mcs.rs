//! Maximum common (induced) subgraph by McGregor-style branch and bound —
//! the stand-in for the `cdkMCS` comparator of §6 (the Chemistry
//! Development Kit's MCS, a Java library we cannot link).
//!
//! Like `cdkMCS` in the paper's experiments, this solver is exact and
//! therefore explodes on anything but tiny skeletons: a wall-clock budget
//! makes it report "did not run to completion" (`timed_out`) exactly the
//! way Table 3 reports `N/A` for skeletons 1.

use phom_graph::{DiGraph, NodeId};
use phom_sim::SimMatrix;
use std::time::{Duration, Instant};

/// Result of an MCS search.
#[derive(Debug, Clone)]
pub struct McsResult {
    /// The best common-subgraph correspondence found (pattern, data) pairs.
    pub mapping: Vec<(NodeId, NodeId)>,
    /// True when the budget expired before the search space was exhausted;
    /// `mapping` is then the best found so far (paper: `N/A`).
    pub timed_out: bool,
    /// `|mapping| / |V1|`, comparable with `qualCard`.
    pub qual_card: f64,
}

/// Finds a maximum common induced subgraph between `g1` and `g2`:
/// an injective partial mapping `σ` with
/// `(v, v') ∈ E1 ⟺ (σ(v), σ(v')) ∈ E2` for all mapped pairs, maximizing
/// the number of mapped nodes. Node compatibility is `mat(v, u) ≥ xi`.
pub fn maximum_common_subgraph<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mat: &SimMatrix,
    xi: f64,
    budget: Duration,
) -> McsResult {
    let n1 = g1.node_count();
    // phom-lint: allow(clock, "monotonic deadline for the branch-and-bound time budget; no wall-clock semantics")
    let deadline = Instant::now() + budget;
    let cands: Vec<Vec<NodeId>> = g1
        .nodes()
        .map(|v| mat.candidates(v, xi).collect::<Vec<NodeId>>())
        .collect();

    struct State<'a, L> {
        g1: &'a DiGraph<L>,
        g2: &'a DiGraph<L>,
        cands: &'a [Vec<NodeId>],
        deadline: Instant,
        timed_out: bool,
        best: Vec<(NodeId, NodeId)>,
    }

    fn compatible<L>(s: &State<'_, L>, assign: &[Option<NodeId>], v: NodeId, u: NodeId) -> bool {
        if assign.iter().flatten().any(|&x| x == u) {
            return false;
        }
        for (v2_idx, u2) in assign.iter().enumerate() {
            let Some(u2) = *u2 else { continue };
            let v2 = NodeId(v2_idx as u32);
            // Induced: edge presence must agree in both directions.
            if s.g1.has_edge(v, v2) != s.g2.has_edge(u, u2) {
                return false;
            }
            if s.g1.has_edge(v2, v) != s.g2.has_edge(u2, u) {
                return false;
            }
        }
        true
    }

    fn go<L>(s: &mut State<'_, L>, v_idx: usize, assign: &mut Vec<Option<NodeId>>, size: usize) {
        // phom-lint: allow(clock, "monotonic deadline check for the branch-and-bound time budget; no wall-clock semantics")
        if s.timed_out || Instant::now() >= s.deadline {
            s.timed_out = true;
            return;
        }
        let n1 = assign.len();
        if size + (n1 - v_idx) <= s.best.len() {
            return; // cannot beat the incumbent
        }
        if v_idx == n1 {
            if size > s.best.len() {
                s.best = assign
                    .iter()
                    .enumerate()
                    .filter_map(|(v, u)| u.map(|u| (NodeId(v as u32), u)))
                    .collect();
            }
            return;
        }
        let v = NodeId(v_idx as u32);
        for idx in 0..s.cands[v_idx].len() {
            let u = s.cands[v_idx][idx];
            if compatible(s, assign, v, u) {
                assign[v_idx] = Some(u);
                go(s, v_idx + 1, assign, size + 1);
                assign[v_idx] = None;
                if s.timed_out {
                    return;
                }
            }
        }
        go(s, v_idx + 1, assign, size);
    }

    let mut state = State {
        g1,
        g2,
        cands: &cands,
        deadline,
        timed_out: false,
        best: Vec::new(),
    };
    let mut assign: Vec<Option<NodeId>> = vec![None; n1];
    go(&mut state, 0, &mut assign, 0);

    let qual_card = if n1 == 0 {
        0.0
    } else {
        state.best.len() as f64 / n1 as f64
    };
    McsResult {
        mapping: state.best,
        timed_out: state.timed_out,
        qual_card,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    fn budget() -> Duration {
        Duration::from_secs(5)
    }

    #[test]
    fn identical_graphs_share_everything() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let mat = SimMatrix::label_equality(&g, &g);
        let r = maximum_common_subgraph(&g, &g, &mat, 0.5, budget());
        assert!(!r.timed_out);
        assert_eq!(r.mapping.len(), 3);
        assert!((r.qual_card - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_found() {
        // Common part: a -> b. g1 additionally has b -> c, g2 has c -> b.
        let g1 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let g2 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("c", "b")]);
        let mat = SimMatrix::label_equality(&g1, &g2);
        let r = maximum_common_subgraph(&g1, &g2, &mat, 0.5, budget());
        assert!(!r.timed_out);
        // {a, b, c} as an induced common subgraph fails (edge b->c vs c->b),
        // but {a, b} ∪ {c} works: c is isolated from a,b in... g1 has b->c.
        // Induced on {a,b,c}: g1 edges {a->b, b->c}; g2 edges {a->b, c->b}.
        // Mismatch. On {a,b}: both have a->b. Plus c alone can't join since
        // b->c (g1) vs none (g2). So MCS = 2.
        assert_eq!(r.mapping.len(), 2);
    }

    #[test]
    fn induced_condition_enforced() {
        // g1: two disconnected nodes; g2: edge between them. Induced common
        // subgraph of size 2 impossible.
        let g1 = graph_from_labels(&["a", "b"], &[]);
        let g2 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let mat = SimMatrix::label_equality(&g1, &g2);
        let r = maximum_common_subgraph(&g1, &g2, &mat, 0.5, budget());
        assert_eq!(r.mapping.len(), 1);
    }

    #[test]
    fn zero_budget_times_out() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let mat = SimMatrix::label_equality(&g, &g);
        let r = maximum_common_subgraph(&g, &g, &mat, 0.5, Duration::ZERO);
        assert!(r.timed_out, "no time, no completion — the Table 3 N/A case");
    }

    #[test]
    fn mcs_is_special_case_of_cph_1_1() {
        // §3.3: MCS is a special case of CPH¹⁻¹ — any common subgraph is a
        // valid 1-1 p-hom mapping (edges map to length-1 paths), so the
        // exact CPH¹⁻¹ optimum is at least the MCS size.
        let g1 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let g2 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("c", "b")]);
        let mat = SimMatrix::label_equality(&g1, &g2);
        let mcs = maximum_common_subgraph(&g1, &g2, &mat, 0.5, budget());
        let w = phom_sim::NodeWeights::uniform(3);
        let exact = phom_core::exact_optimum(
            &g1,
            &g2,
            &mat,
            0.5,
            true,
            phom_core::Objective::Cardinality,
            &w,
        );
        assert!(exact.len() >= mcs.mapping.len());
    }
}
