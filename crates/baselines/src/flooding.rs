//! Similarity flooding (Melnik, Garcia-Molina, Rahm \[21\]) — the "SF"
//! vertex-similarity baseline of §6.
//!
//! SF builds a *pairwise connectivity graph* (PCG) over node pairs
//! `(v, u)`: an edge `(v, u) → (v', u')` whenever `(v, v') ∈ E1` and
//! `(u, u') ∈ E2`. Similarity mass then floods along PCG edges (weighted
//! by inverse out-degree, plus the reverse direction) until a fixpoint;
//! the final scores are read as a node-similarity matrix.
//!
//! As §6 observes, vertex similarity alone "ignores the topology of graphs
//! by and large" — our experiments reproduce both its mediocre accuracy on
//! restructured sites and its poor scalability (the PCG has up to
//! `|E1|·|E2|` edges).

use phom_graph::{DiGraph, NodeId};
use phom_sim::SimMatrix;

/// Similarity-flooding configuration.
#[derive(Debug, Clone, Copy)]
pub struct FloodingConfig {
    /// Maximum fixpoint iterations.
    pub max_iterations: usize,
    /// Stop when the residual (max score delta) drops below this.
    pub epsilon: f64,
    /// Ignore seed pairs below this initial similarity (keeps the PCG
    /// tractable; Melnik's implementation filters similarly).
    pub seed_floor: f64,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        Self {
            max_iterations: 50,
            epsilon: 1e-4,
            seed_floor: 1e-9,
        }
    }
}

/// Runs similarity flooding seeded by `seed` (e.g. shingle similarity) and
/// returns the flooded similarity matrix, normalized to `[0, 1]`.
pub fn similarity_flooding<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    seed: &SimMatrix,
    cfg: &FloodingConfig,
) -> SimMatrix {
    let n1 = g1.node_count();
    let n2 = g2.node_count();

    // PCG vertices: seeded pairs only.
    let mut pair_id = vec![usize::MAX; n1 * n2];
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for v in g1.nodes() {
        for u in g2.nodes() {
            if seed.score(v, u) >= cfg.seed_floor {
                pair_id[v.index() * n2 + u.index()] = pairs.len();
                pairs.push((v, u));
            }
        }
    }
    if pairs.is_empty() {
        return SimMatrix::new(n1, n2);
    }

    // PCG edges (forward); each also used backward during propagation.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); pairs.len()];
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); pairs.len()];
    for (pid, &(v, u)) in pairs.iter().enumerate() {
        for &vc in g1.post(v) {
            for &uc in g2.post(u) {
                let qid = pair_id[vc.index() * n2 + uc.index()];
                if qid != usize::MAX {
                    out_edges[pid].push(qid);
                    in_edges[qid].push(pid);
                }
            }
        }
    }

    // Propagation coefficients: 1 / out-degree (resp. in-degree).
    let mut sigma: Vec<f64> = pairs.iter().map(|&(v, u)| seed.score(v, u)).collect();
    let sigma0 = sigma.clone();
    let mut next = vec![0.0f64; pairs.len()];

    for _ in 0..cfg.max_iterations {
        for (pid, slot) in next.iter_mut().enumerate() {
            // Basic SF update: σ' = σ0 + σ + incoming flow (both ways).
            let mut inflow = 0.0;
            for &qid in &in_edges[pid] {
                inflow += sigma[qid] / out_edges[qid].len() as f64;
            }
            for &qid in &out_edges[pid] {
                inflow += sigma[qid] / in_edges[qid].len() as f64;
            }
            *slot = sigma0[pid] + sigma[pid] + inflow;
        }
        // Normalize by the maximum.
        let max = next.iter().cloned().fold(0.0f64, f64::max);
        if max > 0.0 {
            for x in next.iter_mut() {
                *x /= max;
            }
        }
        let residual = sigma
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        std::mem::swap(&mut sigma, &mut next);
        if residual < cfg.epsilon {
            break;
        }
    }

    let mut out = SimMatrix::new(n1, n2);
    for (pid, &(v, u)) in pairs.iter().enumerate() {
        out.set(v, u, sigma[pid].clamp(0.0, 1.0));
    }
    out
}

/// Extracts an injective matching from a similarity matrix: greedily take
/// the highest-scoring pairs (≥ `threshold`) with both endpoints unused.
/// Shared by the SF and Blondel baselines.
pub fn extract_matching(scores: &SimMatrix, threshold: f64) -> Vec<(NodeId, NodeId)> {
    let mut ranked: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for v in 0..scores.n1() {
        let v = NodeId(v as u32);
        for u in scores.candidates(v, threshold) {
            ranked.push((v, u, scores.score(v, u)));
        }
    }
    ranked.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    let mut used_v = vec![false; scores.n1()];
    let mut used_u = vec![false; scores.n2()];
    let mut out = Vec::new();
    for (v, u, _) in ranked {
        if !used_v[v.index()] && !used_u[u.index()] {
            used_v[v.index()] = true;
            used_u[u.index()] = true;
            out.push((v, u));
        }
    }
    out.sort_unstable();
    out
}

/// End-to-end SF match quality: flooded scores drive the *alignment*
/// (which pairs correspond), the seed similarity judges whether each
/// aligned pair is actually a match (`seed ≥ threshold`). Returns the
/// matched fraction of `G1`, comparable with `qualCard`.
///
/// Judging by raw flooded scores would be meaningless here: they are
/// max-normalized per run, so only the top pair could ever clear an
/// absolute threshold.
pub fn flooding_match_quality<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    seed: &SimMatrix,
    threshold: f64,
    cfg: &FloodingConfig,
) -> f64 {
    if g1.node_count() == 0 {
        return 0.0;
    }
    let flooded = similarity_flooding(g1, g2, seed, cfg);
    let matching = extract_matching(&flooded, f64::MIN_POSITIVE);
    let good = matching
        .iter()
        .filter(|&&(v, u)| seed.score(v, u) >= threshold)
        .count();
    good as f64 / g1.node_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    #[test]
    fn identical_graphs_flood_to_self_matches() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let seed = SimMatrix::label_equality(&g, &g);
        let flooded = similarity_flooding(&g, &g, &seed, &FloodingConfig::default());
        // Diagonal dominates: each node's best match is itself.
        for v in g.nodes() {
            let self_score = flooded.score(v, v);
            for u in g.nodes() {
                if u != v {
                    assert!(
                        self_score >= flooded.score(v, u),
                        "{v:?} prefers {u:?} over itself"
                    );
                }
            }
        }
    }

    #[test]
    fn structure_boosts_related_pairs() {
        // Seed everything equal; flooding should prefer structurally
        // aligned pairs (a,a) over (a,c).
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "b", "c"], &[("a", "b")]);
        let seed = phom_sim::matrix_from_label_fn(&g1, &g2, |_, _| 0.5);
        let flooded = similarity_flooding(&g1, &g2, &seed, &FloodingConfig::default());
        assert!(
            flooded.score(NodeId(0), NodeId(0)) > flooded.score(NodeId(0), NodeId(2)),
            "edge-supported pair must outrank isolated pair"
        );
    }

    #[test]
    fn empty_seed_floods_to_zero() {
        let g1 = graph_from_labels(&["a"], &[]);
        let g2 = graph_from_labels(&["b"], &[]);
        let seed = SimMatrix::label_equality(&g1, &g2);
        let flooded = similarity_flooding(&g1, &g2, &seed, &FloodingConfig::default());
        assert_eq!(flooded.score(NodeId(0), NodeId(0)), 0.0);
    }

    #[test]
    fn extract_matching_is_injective_and_greedy() {
        let mut m = SimMatrix::new(2, 2);
        m.set(NodeId(0), NodeId(0), 0.9);
        m.set(NodeId(0), NodeId(1), 0.8);
        m.set(NodeId(1), NodeId(0), 0.85);
        let matching = extract_matching(&m, 0.5);
        // 0-0 taken first (0.9); then 1-0 blocked, 1 has nothing above
        // threshold left except... 1-0 used; so only one pair plus none.
        assert_eq!(matching, vec![(NodeId(0), NodeId(0))]);
    }

    #[test]
    fn match_quality_full_on_identical() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let seed = SimMatrix::label_equality(&g, &g);
        let q = flooding_match_quality(&g, &g, &seed, 0.1, &FloodingConfig::default());
        assert!((q - 1.0).abs() < 1e-12);
    }
}
