//! Graph simulation (Henzinger, Henzinger, Kopke \[17\]) — the first
//! baseline of §6. A simulation requires *edge-to-edge* preservation: `R ⊆
//! V1 × V2` such that `(v, u) ∈ R` implies node compatibility and for every
//! edge `(v, v')` of `G1` some edge `(u, u')` of `G2` with `(v', u') ∈ R`.
//!
//! `G1` is simulated by `G2` when the (unique) maximal simulation contains
//! an image for every node of `G1` — the whole-graph matching the paper
//! found "too restrictive" on noisy Web sites.

use phom_graph::{BitSet, DiGraph, NodeId};
use phom_sim::SimMatrix;

/// The maximal simulation relation, as one candidate set per pattern node.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// `sim[v]` = data nodes that simulate pattern node `v`.
    pub sim: Vec<BitSet>,
}

impl SimulationResult {
    /// True when every pattern node has at least one simulator — the
    /// "G1 matches G2 by simulation" criterion of §6.
    pub fn simulates(&self) -> bool {
        self.sim.iter().all(|s| !s.is_zero())
    }

    /// Fraction of pattern nodes with a nonempty simulator set (an
    /// accuracy-style score aligned with `qualCard`).
    pub fn coverage(&self) -> f64 {
        if self.sim.is_empty() {
            return 0.0;
        }
        self.sim.iter().filter(|s| !s.is_zero()).count() as f64 / self.sim.len() as f64
    }

    /// Simulator set of `v`.
    pub fn simulators(&self, v: NodeId) -> &BitSet {
        &self.sim[v.index()]
    }
}

/// Computes the maximal simulation of `g1` by `g2` with node compatibility
/// `mat(v, u) ≥ xi` (use a label-equality matrix for the classical
/// notion). Worklist fixpoint, `O(|V1||V2|(|E1| + |E2|))` worst case.
///
/// ```
/// use phom_baselines::graph_simulation;
/// use phom_graph::graph_from_labels;
/// use phom_sim::SimMatrix;
///
/// // Edge (a, b) simulated directly; a 2-hop rewrite breaks simulation.
/// let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
/// let direct = graph_from_labels(&["a", "b"], &[("a", "b")]);
/// let rewired = graph_from_labels(&["a", "m", "b"], &[("a", "m"), ("m", "b")]);
/// let s1 = graph_simulation(&g1, &direct, &SimMatrix::label_equality(&g1, &direct), 1.0);
/// let s2 = graph_simulation(&g1, &rewired, &SimMatrix::label_equality(&g1, &rewired), 1.0);
/// assert!(s1.simulates());
/// assert!(!s2.simulates()); // simulation is edge-to-edge only
/// ```
pub fn graph_simulation<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mat: &SimMatrix,
    xi: f64,
) -> SimulationResult {
    let n1 = g1.node_count();
    let n2 = g2.node_count();

    // Initial candidates: node-compatible pairs.
    let mut sim: Vec<BitSet> = (0..n1)
        .map(|v| {
            let mut s = BitSet::new(n2);
            for u in mat.candidates(NodeId(v as u32), xi) {
                s.insert(u.index());
            }
            s
        })
        .collect();

    // Fixpoint: drop u from sim[v] if some child v' of v has no successor
    // of u in sim[v'].
    let mut changed = true;
    while changed {
        changed = false;
        for v in g1.nodes() {
            let children = g1.post(v);
            if children.is_empty() {
                continue;
            }
            let mut to_remove: Vec<usize> = Vec::new();
            for u in sim[v.index()].iter() {
                let u = NodeId(u as u32);
                let ok = children.iter().all(|&vc| {
                    g2.post(u)
                        .iter()
                        .any(|uc| sim[vc.index()].contains(uc.index()))
                });
                if !ok {
                    to_remove.push(u.index());
                }
            }
            if !to_remove.is_empty() {
                changed = true;
                for u in to_remove {
                    sim[v.index()].remove(u);
                }
            }
        }
    }

    SimulationResult { sim }
}

/// Classical label-equality simulation.
pub fn simulates_by_label<L: PartialEq>(g1: &DiGraph<L>, g2: &DiGraph<L>) -> bool {
    let mat = SimMatrix::label_equality(g1, g2);
    graph_simulation(g1, g2, &mat, 0.5).simulates()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    #[test]
    fn identical_graphs_simulate() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b")]);
        assert!(simulates_by_label(&g, &g));
    }

    #[test]
    fn edge_to_path_breaks_simulation_but_not_phom() {
        // The paper's motivating gap: an edge stretched to a 2-path defeats
        // simulation's edge-to-edge requirement.
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "x", "b"], &[("a", "x"), ("x", "b")]);
        assert!(!simulates_by_label(&g1, &g2));
    }

    #[test]
    fn simulation_allows_node_sharing() {
        // Unlike 1-1 p-hom, simulation is a relation: both A-parents can be
        // simulated by one A node.
        let mut g1: DiGraph<String> = DiGraph::new();
        let a1 = g1.add_node("A".into());
        let a2 = g1.add_node("A".into());
        let b = g1.add_node("B".into());
        g1.add_edge(a1, b);
        g1.add_edge(a2, b);
        let g2 = graph_from_labels(&["A", "B"], &[("A", "B")]);
        assert!(simulates_by_label(&g1, &g2));
    }

    #[test]
    fn leaf_mismatch_propagates_upward() {
        // a -> b where b has no counterpart: a loses its simulator too.
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "z"], &[("a", "z")]);
        let r = graph_simulation(&g1, &g2, &SimMatrix::label_equality(&g1, &g2), 0.5);
        assert!(!r.simulates());
        assert!(r.sim[0].is_zero(), "a's candidate dies because b has none");
        assert_eq!(r.coverage(), 0.0);
    }

    #[test]
    fn coverage_counts_partial_simulation() {
        let g1 = graph_from_labels(&["a", "ghost"], &[]);
        let g2 = graph_from_labels(&["a"], &[]);
        let r = graph_simulation(&g1, &g2, &SimMatrix::label_equality(&g1, &g2), 0.5);
        assert!(!r.simulates());
        assert!((r.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn maximal_simulation_property() {
        // Every surviving pair must satisfy the simulation condition; it is
        // a fixpoint, so one more round changes nothing.
        let g1 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        // g2 has labels a,b,c,b: build by hand to allow the duplicate.
        let mut g2b: DiGraph<String> = DiGraph::new();
        let a = g2b.add_node("a".into());
        let b1 = g2b.add_node("b".into());
        let c = g2b.add_node("c".into());
        let b2 = g2b.add_node("b".into());
        g2b.add_edge(a, b1);
        g2b.add_edge(b1, c);
        g2b.add_edge(a, b2);
        let mat = SimMatrix::label_equality(&g1, &g2b);
        let r = graph_simulation(&g1, &g2b, &mat, 0.5);
        for v in g1.nodes() {
            for u in r.sim[v.index()].iter() {
                let u = NodeId(u as u32);
                for &vc in g1.post(v) {
                    assert!(
                        g2b.post(u)
                            .iter()
                            .any(|uc| r.sim[vc.index()].contains(uc.index())),
                        "pair ({v:?},{u:?}) violates the simulation condition"
                    );
                }
            }
        }
        // b2 (dead end) cannot simulate g1's b.
        assert!(!r.sim[1].contains(b2.index()));
        assert!(r.sim[1].contains(b1.index()));
    }
}
