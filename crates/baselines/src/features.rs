//! Feature-based graph similarity (bag-of-paths, Joshi et al. \[18\]) — the
//! comparison the paper's Conclusion lists as future work: "compare the
//! accuracy and efficiency of our methods with the counterparts of the
//! feature-based approaches."
//!
//! The measure extracts all label paths up to length `k` as features and
//! compares the two feature multisets with (multiset) Jaccard. As §2
//! anticipates ("the feature-based approach does not observe global
//! structural connectivity"), it is cheap but blind to *where* the paths
//! sit — our experiments use it to demonstrate exactly that failure mode.

use phom_graph::{DiGraph, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// The bag (multiset) of path features of a graph: hashes of all label
/// sequences along directed paths of `1..=k` edges (plus single labels).
pub fn path_features<L: Hash>(g: &DiGraph<L>, k: usize) -> HashMap<u64, usize> {
    let mut bag: HashMap<u64, usize> = HashMap::new();
    // Depth-limited DFS from every node, hashing the label sequence.
    for start in g.nodes() {
        // Stack of (node, depth, running hash of the label sequence).
        let mut stack: Vec<(NodeId, usize, DefaultHasher)> = Vec::new();
        let mut h0 = DefaultHasher::new();
        g.label(start).hash(&mut h0);
        *bag.entry(h0.clone().finish()).or_insert(0) += 1;
        stack.push((start, 0, h0));
        while let Some((v, depth, h)) = stack.pop() {
            if depth == k {
                continue;
            }
            for &w in g.post(v) {
                let mut h2 = h.clone();
                g.label(w).hash(&mut h2);
                *bag.entry(h2.clone().finish()).or_insert(0) += 1;
                stack.push((w, depth + 1, h2));
            }
        }
    }
    bag
}

/// Multiset Jaccard similarity of two feature bags:
/// `Σ min(a, b) / Σ max(a, b)`. Two empty bags count as identical.
pub fn bag_jaccard(a: &HashMap<u64, usize>, b: &HashMap<u64, usize>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let mut union = 0usize;
    for (feat, &ca) in a {
        let cb = b.get(feat).copied().unwrap_or(0);
        inter += ca.min(cb);
        union += ca.max(cb);
    }
    for (feat, &cb) in b {
        if !a.contains_key(feat) {
            union += cb;
        }
    }
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// End-to-end feature-based similarity of two graphs in `[0, 1]`.
///
/// Path explosion guard: on graphs with high out-degree, `k ≤ 3` is
/// advisable (the feature count grows as `O(n · d^k)`).
pub fn feature_similarity<L: Hash>(g1: &DiGraph<L>, g2: &DiGraph<L>, k: usize) -> f64 {
    bag_jaccard(&path_features(g1, k), &path_features(g2, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    #[test]
    fn identical_graphs_have_similarity_one() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        assert!((feature_similarity(&g, &g, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_labels_have_similarity_zero() {
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["x", "y"], &[("x", "y")]);
        assert_eq!(feature_similarity(&g1, &g2, 2), 0.0);
    }

    #[test]
    fn blind_to_global_connectivity() {
        // The §2 criticism, executable: two graphs with identical local
        // path bags but different global shape (one path vs two pieces
        // overlapping in label structure) look more similar to the
        // feature measure than their topology warrants.
        let joined = graph_from_labels(
            &["a", "b", "a2", "b2"],
            &[("a", "b"), ("b", "a2"), ("a2", "b2")],
        );
        // Feature bags use labels; rename to collide.
        let mut g1: DiGraph<&str> = DiGraph::new();
        let a = g1.add_node("a");
        let b = g1.add_node("b");
        let a2 = g1.add_node("a");
        let b2 = g1.add_node("b");
        g1.add_edge(a, b);
        g1.add_edge(a2, b2); // two disconnected a->b edges
        let mut g2: DiGraph<&str> = DiGraph::new();
        let x = g2.add_node("a");
        let y = g2.add_node("b");
        let x2 = g2.add_node("a");
        let y2 = g2.add_node("b");
        g2.add_edge(x, y);
        g2.add_edge(x2, y2);
        let _ = joined;
        // k=1 features: both have {a:2, b:2, ab:2} — identical.
        assert!((feature_similarity(&g1, &g2, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_strictly_between() {
        let g1 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let g2 = graph_from_labels(&["a", "b", "z"], &[("a", "b"), ("b", "z")]);
        let s = feature_similarity(&g1, &g2, 2);
        assert!(s > 0.0 && s < 1.0, "got {s}");
    }

    #[test]
    fn k_zero_compares_label_bags_only() {
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["b", "a"], &[("b", "a")]);
        assert!((feature_similarity(&g1, &g2, 0) - 1.0).abs() < 1e-12);
        assert!(
            feature_similarity(&g1, &g2, 1) < 1.0,
            "edge direction differs"
        );
    }

    #[test]
    fn bag_jaccard_multiset_semantics() {
        let mut a = HashMap::new();
        a.insert(1u64, 3usize);
        let mut b = HashMap::new();
        b.insert(1u64, 1usize);
        // min 1 / max 3.
        assert!((bag_jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        let empty = HashMap::new();
        assert_eq!(bag_jaccard(&empty, &empty), 1.0);
        assert_eq!(bag_jaccard(&a, &empty), 0.0);
    }
}
