//! Graph edit distance (GED) — the structure-based similarity measure of
//! Zeng et al. \[31\] that §2 groups with subgraph isomorphism ("graph
//! edit distance is essentially based on subgraph isomorphism").
//!
//! Exact A* search over node-assignment prefixes with uniform edit costs:
//! node substitution costs 0 when `mat(v, u) ≥ ξ` and 1 otherwise; node
//! insertion/deletion and edge insertion/deletion cost 1. Like the MCS
//! comparator, the solver is exponential, so it carries a wall-clock
//! budget and falls back to a greedy edit path (an upper bound) on
//! timeout — reproducing the "did not run to completion" behaviour the
//! paper reports for its exact comparator.

use phom_graph::{DiGraph, NodeId};
use phom_sim::SimMatrix;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Outcome of a GED computation.
#[derive(Debug, Clone)]
pub struct EditResult {
    /// The (exact, or on timeout upper-bound) edit distance.
    pub distance: usize,
    /// True when the budget expired before the search proved optimality;
    /// `distance` is then the best upper bound found.
    pub timed_out: bool,
    /// Normalized similarity `1 - distance / (|V1|+|V2|+|E1|+|E2|)`,
    /// in `[0, 1]` and comparable across graph sizes. 1 iff the graphs
    /// are identical up to a zero-cost relabeling.
    pub similarity: f64,
}

/// One assignment decision for a pattern node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Slot {
    /// Pattern node mapped to this data node.
    To(NodeId),
    /// Pattern node deleted.
    Deleted,
}

#[derive(Clone)]
struct State {
    /// Edit cost paid so far.
    cost: usize,
    /// Decisions for pattern nodes `0..decided.len()`.
    decided: Vec<Slot>,
}

/// Priority-queue key: `f = g + h` with the node-count-difference lower
/// bound as `h` (admissible: every surplus node must be inserted or
/// deleted at cost ≥ 1 and edge costs are non-negative).
fn f_key(s: &State, n1: usize, n2: usize) -> usize {
    let remaining_pattern = n1 - s.decided.len();
    let used: usize = s
        .decided
        .iter()
        .filter(|d| matches!(d, Slot::To(_)))
        .count();
    let unused_data = n2 - used;
    s.cost + remaining_pattern.abs_diff(unused_data)
}

/// Incremental edge cost of deciding pattern node `v` (index
/// `state.decided.len()`) as `slot`, against all earlier decisions.
fn edge_delta<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    decided: &[Slot],
    v: NodeId,
    slot: Slot,
) -> usize {
    let mut cost = 0usize;
    for (j, d) in decided.iter().enumerate() {
        let vj = NodeId(j as u32);
        let fwd = g1.has_edge(v, vj); // (v, vj) in E1
        let bwd = g1.has_edge(vj, v);
        match (slot, *d) {
            (Slot::To(u), Slot::To(uj)) => {
                cost += usize::from(fwd != g2.has_edge(u, uj));
                cost += usize::from(bwd != g2.has_edge(uj, u));
            }
            // Any pattern edge touching a deleted node is deleted.
            _ => cost += usize::from(fwd) + usize::from(bwd),
        }
    }
    // Self-loops are decided together with the node itself.
    if g1.has_edge(v, v) {
        match slot {
            Slot::To(u) => cost += usize::from(!g2.has_edge(u, u)),
            Slot::Deleted => cost += 1,
        }
    } else if let Slot::To(u) = slot {
        cost += usize::from(g2.has_edge(u, u));
    }
    cost
}

/// Cost of inserting everything in `g2` not covered by the image of a
/// complete assignment: unused data nodes, plus data edges with at least
/// one unused endpoint (edges between used images were charged pairwise).
fn finalize_cost<L>(g2: &DiGraph<L>, decided: &[Slot]) -> usize {
    let mut used = vec![false; g2.node_count()];
    for d in decided {
        if let Slot::To(u) = d {
            used[u.index()] = true;
        }
    }
    let node_ins = used.iter().filter(|&&x| !x).count();
    let edge_ins = g2
        .edges()
        .filter(|&(x, y)| !used[x.index()] || !used[y.index()])
        .count();
    node_ins + edge_ins
}

/// Substitution cost: 0 when the nodes are similar enough, else 1
/// (relabeling).
fn sub_cost(mat: &SimMatrix, xi: f64, v: NodeId, u: NodeId) -> usize {
    usize::from(mat.score(v, u) < xi)
}

/// Greedy edit path: decide pattern nodes in order, taking the locally
/// cheapest slot. Always completes; yields an upper bound on GED.
fn greedy_upper_bound<L>(g1: &DiGraph<L>, g2: &DiGraph<L>, mat: &SimMatrix, xi: f64) -> usize {
    let n1 = g1.node_count();
    let mut decided: Vec<Slot> = Vec::with_capacity(n1);
    let mut used = vec![false; g2.node_count()];
    let mut cost = 0usize;
    for v in g1.nodes() {
        // Deletion option.
        let mut best_slot = Slot::Deleted;
        let mut best_cost = 1 + edge_delta(g1, g2, &decided, v, Slot::Deleted);
        for u in g2.nodes() {
            if used[u.index()] {
                continue;
            }
            let c = sub_cost(mat, xi, v, u) + edge_delta(g1, g2, &decided, v, Slot::To(u));
            if c < best_cost {
                best_cost = c;
                best_slot = Slot::To(u);
            }
        }
        cost += best_cost;
        if let Slot::To(u) = best_slot {
            used[u.index()] = true;
        }
        decided.push(best_slot);
    }
    cost + finalize_cost(g2, &decided)
}

/// Computes the graph edit distance between `g1` and `g2` under uniform
/// costs, with node compatibility given by `mat(v, u) ≥ xi`.
///
/// Exact when it finishes within `budget`; otherwise returns the best
/// upper bound seen (greedy completion or partially explored search) with
/// `timed_out = true`.
///
/// ```
/// use phom_baselines::graph_edit_distance;
/// use phom_graph::graph_from_labels;
/// use phom_sim::SimMatrix;
/// use std::time::Duration;
///
/// let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
/// let g2 = graph_from_labels(&["a", "b"], &[]);
/// let mat = SimMatrix::label_equality(&g1, &g2);
/// let r = graph_edit_distance(&g1, &g2, &mat, 1.0, Duration::from_secs(1));
/// assert_eq!(r.distance, 1); // delete the one edge
/// assert!(!r.timed_out);
/// ```
pub fn graph_edit_distance<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mat: &SimMatrix,
    xi: f64,
    budget: Duration,
) -> EditResult {
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    // phom-lint: allow(clock, "monotonic deadline for the A* time budget; no wall-clock semantics")
    let deadline = Instant::now() + budget;
    let worst = n1 + n2 + g1.edge_count() + g2.edge_count();

    let mut upper = greedy_upper_bound(g1, g2, mat, xi);
    let mut timed_out = false;

    // A* over assignment prefixes. Entries: Reverse((f, cost, decided)).
    let mut heap: BinaryHeap<Reverse<(usize, usize, Vec<Slot>)>> = BinaryHeap::new();
    heap.push(Reverse((0, 0, Vec::new())));

    while let Some(Reverse((f, cost, decided))) = heap.pop() {
        if f >= upper {
            break; // everything left is no better than the incumbent
        }
        // phom-lint: allow(clock, "monotonic deadline check for the A* time budget; no wall-clock semantics")
        if Instant::now() >= deadline {
            timed_out = true;
            break;
        }
        if decided.len() == n1 {
            let total = cost + finalize_cost(g2, &decided);
            if total < upper {
                upper = total;
            }
            continue;
        }
        let v = NodeId(decided.len() as u32);
        let push = |slot: Slot, extra: usize, heap: &mut BinaryHeap<_>| {
            let mut next = decided.clone();
            next.push(slot);
            let c = cost + extra;
            let s = State {
                cost: c,
                decided: next,
            };
            let f = f_key(&s, n1, n2);
            if f < upper {
                heap.push(Reverse((f, s.cost, s.decided)));
            }
        };
        // Deletion branch.
        push(
            Slot::Deleted,
            1 + edge_delta(g1, g2, &decided, v, Slot::Deleted),
            &mut heap,
        );
        // Substitution branches.
        let used: Vec<bool> = {
            let mut m = vec![false; n2];
            for d in &decided {
                if let Slot::To(u) = d {
                    m[u.index()] = true;
                }
            }
            m
        };
        for u in g2.nodes() {
            if used[u.index()] {
                continue;
            }
            push(
                Slot::To(u),
                sub_cost(mat, xi, v, u) + edge_delta(g1, g2, &decided, v, Slot::To(u)),
                &mut heap,
            );
        }
    }

    let similarity = if worst == 0 {
        1.0
    } else {
        1.0 - (upper.min(worst) as f64 / worst as f64)
    };
    EditResult {
        distance: upper,
        timed_out,
        similarity,
    }
}

/// Beam-search GED: like the A\* search but keeping only the `width`
/// best prefixes per depth level. Polynomial
/// (`O(n1 · width · n2 log)`-ish) instead of exponential, at the price
/// of optimality: the returned `distance` is always a valid **upper
/// bound** (never below the true GED), tight in practice for moderate
/// widths — the standard scalable GED mode in the literature \[31\].
/// `timed_out` is always `false`; approximation, not truncation.
pub fn beam_edit_distance<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mat: &SimMatrix,
    xi: f64,
    width: usize,
) -> EditResult {
    assert!(width > 0, "beam width must be positive");
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    let worst = n1 + n2 + g1.edge_count() + g2.edge_count();

    let mut level: Vec<State> = vec![State {
        cost: 0,
        decided: Vec::new(),
    }];
    for vi in 0..n1 {
        let v = NodeId(vi as u32);
        let mut next: Vec<State> = Vec::with_capacity(level.len() * (n2 + 1));
        for s in &level {
            // Deletion branch.
            next.push(State {
                cost: s.cost + 1 + edge_delta(g1, g2, &s.decided, v, Slot::Deleted),
                decided: {
                    let mut d = s.decided.clone();
                    d.push(Slot::Deleted);
                    d
                },
            });
            // Substitution branches.
            let mut used = vec![false; n2];
            for d in &s.decided {
                if let Slot::To(u) = d {
                    used[u.index()] = true;
                }
            }
            for u in g2.nodes() {
                if used[u.index()] {
                    continue;
                }
                next.push(State {
                    cost: s.cost
                        + sub_cost(mat, xi, v, u)
                        + edge_delta(g1, g2, &s.decided, v, Slot::To(u)),
                    decided: {
                        let mut d = s.decided.clone();
                        d.push(Slot::To(u));
                        d
                    },
                });
            }
        }
        next.sort_by_key(|s| f_key(s, n1, n2));
        next.truncate(width);
        level = next;
    }

    let upper = level
        .iter()
        .map(|s| s.cost + finalize_cost(g2, &s.decided))
        .min()
        .unwrap_or(worst)
        .min(worst);
    let similarity = if worst == 0 {
        1.0
    } else {
        1.0 - (upper as f64 / worst as f64)
    };
    EditResult {
        distance: upper,
        timed_out: false,
        similarity,
    }
}

/// Convenience wrapper: GED similarity with label-equality compatibility,
/// comparable to the other baselines' quality scores.
pub fn ged_similarity<L: PartialEq>(g1: &DiGraph<L>, g2: &DiGraph<L>, budget: Duration) -> f64 {
    let mat = SimMatrix::label_equality(g1, g2);
    graph_edit_distance(g1, g2, &mat, 1.0, budget).similarity
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    const BUDGET: Duration = Duration::from_secs(5);

    fn eq_mat<L: PartialEq>(g1: &DiGraph<L>, g2: &DiGraph<L>) -> SimMatrix {
        SimMatrix::label_equality(g1, g2)
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let r = graph_edit_distance(&g, &g, &eq_mat(&g, &g), 1.0, BUDGET);
        assert_eq!(r.distance, 0);
        assert!(!r.timed_out);
        assert_eq!(r.similarity, 1.0);
    }

    #[test]
    fn empty_graphs_are_identical() {
        let g: DiGraph<&str> = DiGraph::new();
        let r = graph_edit_distance(&g, &g, &SimMatrix::new(0, 0), 1.0, BUDGET);
        assert_eq!(r.distance, 0);
        assert_eq!(r.similarity, 1.0);
    }

    #[test]
    fn single_edge_deletion_costs_one() {
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "b"], &[]);
        let r = graph_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, BUDGET);
        assert_eq!(r.distance, 1);
    }

    #[test]
    fn node_insertion_costs_one() {
        let g1 = graph_from_labels(&["a"], &[]);
        let g2 = graph_from_labels(&["a", "b"], &[]);
        let r = graph_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, BUDGET);
        assert_eq!(r.distance, 1);
    }

    #[test]
    fn relabel_costs_one() {
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "c"], &[("a", "c")]);
        let r = graph_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, BUDGET);
        assert_eq!(r.distance, 1, "substitute b -> c, keep the edge");
    }

    #[test]
    fn edge_direction_matters() {
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "b"], &[("b", "a")]);
        let r = graph_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, BUDGET);
        assert_eq!(r.distance, 2, "delete one directed edge, insert the other");
    }

    #[test]
    fn self_loop_counts() {
        let mut g1: DiGraph<String> = DiGraph::new();
        let a = g1.add_node("a".to_string());
        g1.add_edge(a, a);
        let g2 = graph_from_labels(&["a"], &[]);
        let r = graph_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, BUDGET);
        assert_eq!(r.distance, 1);
    }

    #[test]
    fn distance_is_symmetric_on_small_graphs() {
        let g1 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c"), ("c", "a")]);
        let g2 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let d12 = graph_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, BUDGET).distance;
        let d21 = graph_edit_distance(&g2, &g1, &eq_mat(&g2, &g1), 1.0, BUDGET).distance;
        assert_eq!(d12, d21, "uniform costs are symmetric");
    }

    #[test]
    fn zero_budget_times_out_with_upper_bound() {
        let labels: Vec<String> = (0..8).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let mut edges = Vec::new();
        for i in 0..7usize {
            edges.push((refs[i], refs[i + 1]));
        }
        let g1 = graph_from_labels(&refs, &edges);
        let g2 = graph_from_labels(&refs[..6], &edges[..4]);
        let r = graph_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, Duration::ZERO);
        assert!(r.timed_out);
        // The greedy bound must still be a legal distance value.
        let exact = graph_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, BUDGET);
        assert!(r.distance >= exact.distance);
    }

    #[test]
    fn ged_similarity_orders_near_and_far() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let near = graph_from_labels(&["a", "b", "c"], &[("a", "b")]);
        let far = graph_from_labels(&["x", "y"], &[("y", "x")]);
        let s_near = ged_similarity(&g, &near, BUDGET);
        let s_far = ged_similarity(&g, &far, BUDGET);
        assert!(s_near > s_far, "{s_near} vs {s_far}");
        assert!(ged_similarity(&g, &g, BUDGET) == 1.0);
    }

    #[test]
    fn beam_is_exact_on_identical_graphs() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let r = beam_edit_distance(&g, &g, &eq_mat(&g, &g), 1.0, 4);
        assert_eq!(r.distance, 0);
        assert_eq!(r.similarity, 1.0);
    }

    #[test]
    fn beam_upper_bounds_exact() {
        let g1 = graph_from_labels(&["a", "b", "c", "d"], &[("a", "b"), ("b", "c"), ("c", "d")]);
        let g2 = graph_from_labels(&["a", "c", "d"], &[("a", "c"), ("c", "d")]);
        let exact = graph_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, BUDGET);
        assert!(!exact.timed_out);
        for width in [1usize, 2, 8, 64] {
            let beam = beam_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, width);
            assert!(beam.distance >= exact.distance, "width {width}");
        }
        // A wide beam on this small instance reaches the optimum.
        let wide = beam_edit_distance(&g1, &g2, &eq_mat(&g1, &g2), 1.0, 1024);
        assert_eq!(wide.distance, exact.distance);
    }

    #[test]
    fn beam_stays_within_worst_case_at_any_width() {
        let g1 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("a", "c")]);
        let g2 = graph_from_labels(&["a", "b", "x"], &[("a", "b"), ("b", "x")]);
        let mat = eq_mat(&g1, &g2);
        let worst = g1.node_count() + g2.node_count() + g1.edge_count() + g2.edge_count();
        let exact = graph_edit_distance(&g1, &g2, &mat, 1.0, BUDGET).distance;
        for width in [1usize, 4, 16, 256] {
            let r = beam_edit_distance(&g1, &g2, &mat, 1.0, width);
            assert!(r.distance >= exact, "width {width} below exact");
            assert!(r.distance <= worst, "width {width} above worst case");
            assert!((0.0..=1.0).contains(&r.similarity));
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_small_graph() -> impl Strategy<Value = DiGraph<u8>> {
            (
                1usize..5,
                proptest::collection::vec((0usize..5, 0usize..5), 0..8),
            )
                .prop_map(|(n, raw)| {
                    let mut g = DiGraph::with_capacity(n);
                    for i in 0..n {
                        g.add_node((i % 3) as u8);
                    }
                    for (a, b) in raw {
                        g.add_edge(NodeId((a % n) as u32), NodeId((b % n) as u32));
                    }
                    g
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn prop_ged_zero_on_self(g in arb_small_graph()) {
                let mat = SimMatrix::label_equality(&g, &g);
                let r = graph_edit_distance(&g, &g, &mat, 1.0, BUDGET);
                prop_assert_eq!(r.distance, 0);
            }

            #[test]
            fn prop_ged_symmetric(g1 in arb_small_graph(), g2 in arb_small_graph()) {
                let d12 = graph_edit_distance(
                    &g1, &g2, &SimMatrix::label_equality(&g1, &g2), 1.0, BUDGET);
                let d21 = graph_edit_distance(
                    &g2, &g1, &SimMatrix::label_equality(&g2, &g1), 1.0, BUDGET);
                prop_assert!(!d12.timed_out && !d21.timed_out);
                prop_assert_eq!(d12.distance, d21.distance);
            }

            #[test]
            fn prop_ged_bounded_by_worst_case(g1 in arb_small_graph(), g2 in arb_small_graph()) {
                let mat = SimMatrix::label_equality(&g1, &g2);
                let r = graph_edit_distance(&g1, &g2, &mat, 1.0, BUDGET);
                let worst = g1.node_count() + g2.node_count()
                    + g1.edge_count() + g2.edge_count();
                prop_assert!(r.distance <= worst, "{} > {}", r.distance, worst);
                prop_assert!((0.0..=1.0).contains(&r.similarity));
            }

            /// Beam search is a genuine upper bound on the exact GED at
            /// every width, and coincides with it at saturating width.
            #[test]
            fn prop_beam_upper_bounds_exact(
                g1 in arb_small_graph(),
                g2 in arb_small_graph(),
                width in 1usize..12,
            ) {
                let mat = SimMatrix::label_equality(&g1, &g2);
                let exact = graph_edit_distance(&g1, &g2, &mat, 1.0, BUDGET);
                prop_assume!(!exact.timed_out);
                let beam = beam_edit_distance(&g1, &g2, &mat, 1.0, width);
                prop_assert!(beam.distance >= exact.distance);
                // Saturating width explores every prefix: optimal.
                let wide = beam_edit_distance(&g1, &g2, &mat, 1.0, 100_000);
                prop_assert_eq!(wide.distance, exact.distance);
            }
        }
    }
}
