//! Blondel et al. vertex similarity \[6\] — the other vertex-similarity
//! measure §3.1/§6 mention (the paper reports its results were similar to
//! SF's). The similarity matrix is the fixpoint of
//!
//! ```text
//! S ← (A2 · S · A1ᵀ + A2ᵀ · S · A1) / ‖·‖F
//! ```
//!
//! where `A1`, `A2` are the adjacency matrices; convergence holds on the
//! subsequence of even iterates, so we iterate an even number of times.

use phom_graph::{DiGraph, NodeId};
use phom_sim::SimMatrix;

/// Computes the Blondel et al. vertex-similarity matrix between `g1`
/// (columns) and `g2` (rows, internally), returned as a `|V1| × |V2|`
/// [`SimMatrix`] normalized to `[0, 1]`.
///
/// `iterations` is rounded up to the next even number (the even iterates
/// converge; odd ones may oscillate).
pub fn blondel_similarity<L>(g1: &DiGraph<L>, g2: &DiGraph<L>, iterations: usize) -> SimMatrix {
    let n1 = g1.node_count();
    let n2 = g2.node_count();
    if n1 == 0 || n2 == 0 {
        return SimMatrix::new(n1, n2);
    }
    let iters = if iterations.is_multiple_of(2) {
        iterations
    } else {
        iterations + 1
    };

    // s[v][u] with v in G1, u in G2. Start from the all-ones matrix.
    let mut s = vec![1.0f64; n1 * n2];
    let mut next = vec![0.0f64; n1 * n2];

    for _ in 0..iters {
        next.fill(0.0);
        // next[v][u] = Σ_{v' ∈ post(v), u' ∈ post(u)} s[v'][u']
        //            + Σ_{v' ∈ prev(v), u' ∈ prev(u)} s[v'][u'].
        for v in g1.nodes() {
            for u in g2.nodes() {
                let mut acc = 0.0;
                for &vc in g1.post(v) {
                    for &uc in g2.post(u) {
                        acc += s[vc.index() * n2 + uc.index()];
                    }
                }
                for &vp in g1.prev(v) {
                    for &up in g2.prev(u) {
                        acc += s[vp.index() * n2 + up.index()];
                    }
                }
                next[v.index() * n2 + u.index()] = acc;
            }
        }
        // Frobenius normalization.
        let norm: f64 = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in next.iter_mut() {
                *x /= norm;
            }
        } else {
            // Graph with no edges: similarity stays uniform.
            next.fill(1.0 / ((n1 * n2) as f64).sqrt());
        }
        std::mem::swap(&mut s, &mut next);
    }

    // Scale to [0, 1] by the max entry for SimMatrix compatibility.
    let max = s.iter().cloned().fold(0.0f64, f64::max);
    let mut out = SimMatrix::new(n1, n2);
    if max > 0.0 {
        for v in 0..n1 {
            for u in 0..n2 {
                out.set(
                    NodeId(v as u32),
                    NodeId(u as u32),
                    (s[v * n2 + u] / max).clamp(0.0, 1.0),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::extract_matching;
    use phom_graph::graph_from_labels;

    #[test]
    fn identical_path_prefers_diagonal() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let s = blondel_similarity(&g, &g, 20);
        // Middle node (rich neighborhood both ways) scores highest with
        // itself.
        let mid = NodeId(1);
        for u in g.nodes() {
            assert!(s.score(mid, mid) >= s.score(mid, u));
        }
    }

    #[test]
    fn hub_matches_hub() {
        let g1 = graph_from_labels(
            &["hub", "x", "y", "z"],
            &[("hub", "x"), ("hub", "y"), ("hub", "z")],
        );
        let g2 = graph_from_labels(
            &["leaf", "hub2", "p", "q", "r"],
            &[("hub2", "p"), ("hub2", "q"), ("hub2", "r"), ("p", "leaf")],
        );
        let s = blondel_similarity(&g1, &g2, 20);
        let hub1 = NodeId(0);
        let hub2 = NodeId(1);
        for u in g2.nodes() {
            assert!(
                s.score(hub1, hub2) >= s.score(hub1, u),
                "hub should align with hub, not {u:?}"
            );
        }
    }

    #[test]
    fn edgeless_graphs_stay_uniform() {
        let g1 = graph_from_labels(&["a", "b"], &[]);
        let g2 = graph_from_labels(&["x"], &[]);
        let s = blondel_similarity(&g1, &g2, 10);
        assert!((s.score(NodeId(0), NodeId(0)) - s.score(NodeId(1), NodeId(0))).abs() < 1e-12);
    }

    #[test]
    fn works_with_matching_extraction() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let s = blondel_similarity(&g, &g, 20);
        let m = extract_matching(&s, 0.0);
        assert_eq!(m.len(), 3, "injective matching covers the graph");
    }

    #[test]
    fn empty_inputs() {
        let g1: DiGraph<String> = DiGraph::new();
        let g2 = graph_from_labels(&["a"], &[]);
        let s = blondel_similarity(&g1, &g2, 4);
        assert_eq!(s.n1(), 0);
    }
}
