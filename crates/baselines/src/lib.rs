//! # phom-baselines
//!
//! The comparison methods of §6 of *Graph Homomorphism Revisited for Graph
//! Matching* (Fan et al., VLDB 2010), reimplemented:
//!
//! * [`simulation`] — graph simulation (Henzinger–Henzinger–Kopke \[17\]),
//!   edge-to-edge relational matching;
//! * [`subiso`] — subgraph isomorphism (Ullmann-style backtracking);
//! * [`mcs`] — maximum common induced subgraph with a wall-clock budget,
//!   standing in for `cdkMCS` \[1\] (see DESIGN.md §4 for the
//!   substitution rationale);
//! * [`flooding`] — similarity flooding (Melnik et al. \[21\]), the "SF"
//!   baseline, plus the shared injective matching extractor;
//! * [`blondel`] — Blondel et al. vertex similarity \[6\];
//! * [`features`] — bag-of-paths feature similarity (Joshi et al. \[18\]),
//!   the feature-based comparison the paper's Conclusion names as future
//!   work;
//! * [`edit`] — graph edit distance (Zeng et al. \[31\]), the remaining
//!   structure-based measure of §2's survey, as a budgeted exact A\*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blondel;
pub mod edit;
pub mod features;
pub mod flooding;
pub mod mcs;
pub mod simulation;
pub mod subiso;

pub use blondel::blondel_similarity;
pub use edit::{beam_edit_distance, ged_similarity, graph_edit_distance, EditResult};
pub use features::{bag_jaccard, feature_similarity, path_features};
pub use flooding::{extract_matching, flooding_match_quality, similarity_flooding, FloodingConfig};
pub use mcs::{maximum_common_subgraph, McsResult};
pub use simulation::{graph_simulation, simulates_by_label, SimulationResult};
pub use subiso::{is_subgraph_isomorphic, subgraph_isomorphism};
