//! Subgraph isomorphism (Ullmann-style backtracking) — the classical
//! notion §3.2 compares against: a 1-1 mapping preserving *edges as
//! edges*. `G1` is isomorphic to a subgraph of `G2` iff such a mapping
//! exists (non-induced variant: only `G1`'s edges are required).

use phom_graph::{DiGraph, NodeId};
use phom_sim::SimMatrix;

/// Finds a subgraph-isomorphism embedding of `g1` into `g2` (injective,
/// edge-to-edge, node compatibility `mat(v,u) ≥ xi`), or `None`.
///
/// Exponential worst case (NP-complete); candidate lists are pruned by
/// degree and refined by 1-step arc consistency before search.
pub fn subgraph_isomorphism<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mat: &SimMatrix,
    xi: f64,
) -> Option<Vec<(NodeId, NodeId)>> {
    let n1 = g1.node_count();
    // Candidates: compatible label + sufficient degrees.
    let mut cands: Vec<Vec<NodeId>> = g1
        .nodes()
        .map(|v| {
            mat.candidates(v, xi)
                .filter(|&u| {
                    g2.out_degree(u) >= g1.out_degree(v) && g2.in_degree(u) >= g1.in_degree(v)
                })
                .collect::<Vec<NodeId>>()
        })
        .collect();

    // Arc-consistency refinement (Ullmann's refinement step, 1 round per
    // change): u stays a candidate of v only if every pattern neighbor of
    // v has a corresponding data neighbor of u.
    let mut changed = true;
    while changed {
        changed = false;
        for v in g1.nodes() {
            let before = cands[v.index()].len();
            let keep: Vec<NodeId> = cands[v.index()]
                .iter()
                .copied()
                .filter(|&u| {
                    g1.post(v)
                        .iter()
                        .all(|&vc| g2.post(u).iter().any(|uc| cands[vc.index()].contains(uc)))
                        && g1
                            .prev(v)
                            .iter()
                            .all(|&vp| g2.prev(u).iter().any(|up| cands[vp.index()].contains(up)))
                })
                .collect();
            if keep.len() != before {
                changed = true;
                cands[v.index()] = keep;
            }
        }
    }
    if n1 > 0 && cands.iter().any(|c| c.is_empty()) {
        return None;
    }

    // Fail-first variable order.
    let mut order: Vec<NodeId> = g1.nodes().collect();
    order.sort_by_key(|v| cands[v.index()].len());

    let mut assign: Vec<Option<NodeId>> = vec![None; n1];
    fn backtrack<L>(
        g1: &DiGraph<L>,
        g2: &DiGraph<L>,
        cands: &[Vec<NodeId>],
        order: &[NodeId],
        depth: usize,
        assign: &mut [Option<NodeId>],
    ) -> bool {
        let Some(&v) = order.get(depth) else {
            return true;
        };
        'cand: for &u in &cands[v.index()] {
            if assign.iter().flatten().any(|&x| x == u) {
                continue;
            }
            for &vc in g1.post(v) {
                if let Some(uc) = assign[vc.index()] {
                    if !g2.has_edge(u, uc) {
                        continue 'cand;
                    }
                }
            }
            for &vp in g1.prev(v) {
                if let Some(up) = assign[vp.index()] {
                    if !g2.has_edge(up, u) {
                        continue 'cand;
                    }
                }
            }
            assign[v.index()] = Some(u);
            if backtrack(g1, g2, cands, order, depth + 1, assign) {
                return true;
            }
            assign[v.index()] = None;
        }
        false
    }

    if backtrack(g1, g2, &cands, &order, 0, &mut assign) {
        Some(
            assign
                .iter()
                .enumerate()
                // phom-lint: allow(unwrap, "backtrack returning true means every pattern node received an assignment")
                .map(|(v, u)| (NodeId(v as u32), u.expect("full embedding")))
                .collect(),
        )
    } else {
        None
    }
}

/// Convenience: label-equality subgraph isomorphism test.
pub fn is_subgraph_isomorphic<L: PartialEq>(g1: &DiGraph<L>, g2: &DiGraph<L>) -> bool {
    let mat = SimMatrix::label_equality(g1, g2);
    subgraph_isomorphism(g1, g2, &mat, 0.5).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    #[test]
    fn triangle_in_larger_graph() {
        let g1 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c"), ("c", "a")]);
        let g2 = graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")],
        );
        let m = subgraph_isomorphism(&g1, &g2, &SimMatrix::label_equality(&g1, &g2), 0.5)
            .expect("triangle embeds");
        assert_eq!(m.len(), 3);
        // Verify edge preservation.
        for (v, u) in &m {
            for &vc in g1.post(*v) {
                let uc = m.iter().find(|(x, _)| *x == vc).expect("mapped").1;
                assert!(g2.has_edge(*u, uc));
            }
        }
    }

    #[test]
    fn edge_to_path_is_rejected() {
        // The exact gap p-hom fills: sub-iso cannot stretch edges.
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "x", "b"], &[("a", "x"), ("x", "b")]);
        assert!(!is_subgraph_isomorphic(&g1, &g2));
    }

    #[test]
    fn injectivity_enforced() {
        let mut g1: DiGraph<String> = DiGraph::new();
        g1.add_node("A".into());
        g1.add_node("A".into());
        let g2 = graph_from_labels(&["A"], &[]);
        assert!(!is_subgraph_isomorphic(&g1, &g2));
    }

    #[test]
    fn non_induced_extra_data_edges_allowed() {
        // G2 has an extra edge between the images; non-induced sub-iso
        // accepts it.
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "b"], &[("a", "b"), ("b", "a")]);
        assert!(is_subgraph_isomorphic(&g1, &g2));
    }

    #[test]
    fn degree_pruning_rejects_quickly() {
        // Hub with 3 children cannot embed into a path.
        let g1 = graph_from_labels(&["h", "a", "b", "c"], &[("h", "a"), ("h", "b"), ("h", "c")]);
        let g2 = graph_from_labels(&["h", "a", "b", "c"], &[("h", "a"), ("a", "b"), ("b", "c")]);
        let mat = phom_sim::matrix_from_label_fn(&g1, &g2, |_, _| 1.0);
        assert!(subgraph_isomorphism(&g1, &g2, &mat, 0.5).is_none());
    }

    #[test]
    fn empty_pattern_trivially_embeds() {
        let g1: DiGraph<String> = DiGraph::new();
        let g2 = graph_from_labels(&["a"], &[]);
        let m = subgraph_isomorphism(&g1, &g2, &SimMatrix::new(0, 1), 0.5);
        assert_eq!(m, Some(vec![]));
    }
}
