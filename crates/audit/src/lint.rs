//! The lint driver: walks the workspace sources, classifies each file,
//! runs the [`crate::rules`] over it, and applies the committed
//! baseline so the gate is ratchetable.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::lex;
use crate::rules::{check_file, FileClass, Finding};

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings not covered by the baseline, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings that matched a baseline entry and were suppressed.
    pub baselined: usize,
}

impl LintReport {
    /// Renders the findings one-per-line for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "{} finding(s) in {} file(s) scanned ({} baselined)\n",
            self.findings.len(),
            self.files_scanned,
            self.baselined
        ));
        out
    }

    /// Renders the findings as a JSON array (one object per finding).
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints the whole workspace rooted at `root`: `src/` plus every
/// `crates/<name>/src/` except `crates/shims` (vendored stand-ins are
/// out of scope by policy).
pub fn lint_workspace(root: &Path, baseline: Option<&Path>) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            if entry.file_name().is_some_and(|n| n == "shims") {
                continue;
            }
            collect_rs(&entry.join("src"), &mut files)?;
        }
    }
    lint_files(root, &files, baseline)
}

/// Lints an explicit set of files and/or directories (still applying
/// the baseline, if any). Paths outside the workspace layout are
/// treated as in scope for every rule.
pub fn lint_paths(
    root: &Path,
    paths: &[PathBuf],
    baseline: Option<&Path>,
) -> io::Result<LintReport> {
    let mut files = Vec::new();
    for p in paths {
        let abs = if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        };
        if abs.is_dir() {
            collect_rs(&abs, &mut files)?;
        } else {
            files.push(abs);
        }
    }
    lint_files(root, &files, baseline)
}

fn lint_files(root: &Path, files: &[PathBuf], baseline: Option<&Path>) -> io::Result<LintReport> {
    let baseline_keys: Vec<String> = match baseline {
        Some(p) if p.is_file() => fs::read_to_string(p)?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_owned)
            .collect(),
        _ => Vec::new(),
    };
    let mut report = LintReport::default();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let (crate_name, skip) = classify_crate(&rel);
        if skip {
            continue;
        }
        let src = fs::read_to_string(file)?;
        report.files_scanned += 1;
        let class = FileClass {
            path: &rel,
            crate_name: crate_name.as_deref(),
            is_bin: rel.contains("/bin/"),
        };
        for f in check_file(class, &lex(&src)) {
            if baseline_keys.iter().any(|k| *k == f.key()) {
                report.baselined += 1;
            } else {
                report.findings.push(f);
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// Maps a repo-relative path to its crate name. Returns `(None, true)`
/// for files the lint skips entirely (the vendored shims).
fn classify_crate(rel: &str) -> (Option<String>, bool) {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let name = rest.split('/').next().unwrap_or("");
        if name == "shims" {
            return (None, true);
        }
        return (Some(name.to_owned()), false);
    }
    if rel.starts_with("src/") {
        // The facade crate.
        return (Some("phom".to_owned()), false);
    }
    (None, false)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_workspace_layout() {
        assert_eq!(
            classify_crate("crates/graph/src/reach.rs"),
            (Some("graph".to_owned()), false)
        );
        assert_eq!(classify_crate("crates/shims/rand/src/lib.rs"), (None, true));
        assert_eq!(
            classify_crate("src/bin/phom.rs"),
            (Some("phom".to_owned()), false)
        );
        assert_eq!(classify_crate("tests/fixtures/x.rs"), (None, false));
    }

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
