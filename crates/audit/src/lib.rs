//! # phom-audit
//!
//! Correctness tooling for the `p-hom` workspace, in two halves:
//!
//! * a **project lint pass** — a self-contained token-level scanner over
//!   the workspace's own sources enforcing project-specific discipline
//!   that `clippy` cannot know about: no `unwrap`/`expect`/`panic!` in
//!   library code, wall-clock reads only through the injected-time
//!   seams, backend-agnostic public matching signatures, zero-alloc
//!   journal emission, and docs on public API items. Findings carry
//!   `file:line` + a stable rule id; inline waivers
//!   (`// phom-lint: allow(<rule>, "<reason>")`) require a reason, and a
//!   committed baseline makes the CI gate ratchetable. Surfaced as
//!   `phom lint`.
//! * **structural invariant validators** — the driver over the
//!   `validate()` / `validate_against()` methods every reachability
//!   backend, semi-dynamic maintainer, and the sharded registry expose,
//!   applied to serialized engine snapshots. Surfaced as `phom audit`
//!   and wired into the snapshot-restore gate
//!   (`ServiceConfig::validate_on_restore`).
//!
//! The lexer is hand-rolled (no syn/proc-macro dependency): the rules
//! only need token streams with comment and line fidelity, and the
//! workspace policy is no new external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod lexer;
pub mod lint;
pub mod rules;

pub use audit::{audit_snapshot, AuditError, AuditReport};
pub use lexer::{lex, Lexed};
pub use lint::{lint_paths, lint_workspace, LintReport};
pub use rules::{check_file, FileClass, Finding, RULE_IDS};
