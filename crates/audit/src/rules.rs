//! The project lint rules: short token-pattern matchers over
//! [`crate::lexer::Lexed`] output, with `#[cfg(test)]`-region tracking
//! and inline waivers.
//!
//! Each rule has a stable id (the waiver key and the baseline key):
//!
//! | id | enforces |
//! |---|---|
//! | `unwrap` | no `.unwrap()` / `.expect(…)` / `panic!` in library code |
//! | `clock` | no raw `Instant::now` / `SystemTime::now` outside the clock seams |
//! | `concrete-closure` | no concrete closure types in public matching signatures |
//! | `journal-alloc` | journal events constructed only inside `emit(…)` closures |
//! | `doc` | doc comments on public items in the API crates |
//! | `waiver` | waivers themselves are well-formed and carry a reason |
//!
//! A finding on line `L` is suppressed by
//! `// phom-lint: allow(<rule>, "<reason>")` on line `L` or `L-1`; the
//! reason string is mandatory.

use crate::lexer::{Comment, Lexed, TokKind, Token};

/// All rule ids, in reporting order.
pub const RULE_IDS: [&str; 6] = [
    "unwrap",
    "clock",
    "concrete-closure",
    "journal-alloc",
    "doc",
    "waiver",
];

/// Files that ARE the injected-time seams: the clock rule exempts them
/// (everything else must route time through what they export).
const CLOCK_SEAM_FILES: [&str; 2] = ["crates/trace/src/window.rs", "crates/core/src/budget.rs"];

/// Crates whose whole purpose is wall-clock measurement (the benchmark
/// harness): the clock rule does not apply inside them.
const CLOCK_EXEMPT_CRATES: [&str; 1] = ["bench"];

/// Crates whose public `fn` signatures must stay backend-agnostic
/// (`&dyn ReachabilityIndex`, never a concrete closure type).
const CONCRETE_CLOSURE_CRATES: [&str; 2] = ["core", "engine"];

/// Crates where journal events must be built only inside the journal's
/// closure-taking `emit` (the zero-alloc-when-disabled discipline).
const JOURNAL_CRATES: [&str; 2] = ["service", "engine"];

/// Crates whose public items the doc rule covers.
const DOC_CRATES: [&str; 4] = ["graph", "core", "engine", "service"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (see [`RULE_IDS`]).
    pub rule: &'static str,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The stable baseline key for this finding (`rule path:line`).
    pub fn key(&self) -> String {
        format!("{} {}:{}", self.rule, self.path, self.line)
    }
}

/// Everything the rules need to know about one source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass<'a> {
    /// Repo-relative path with forward slashes.
    pub path: &'a str,
    /// Crate the file belongs to (`"graph"`, `"service"`, …; `None`
    /// for paths outside the workspace layout, which get every rule).
    pub crate_name: Option<&'a str>,
    /// Binary target (`src/bin/…`): exempt from the code-hygiene rules.
    pub is_bin: bool,
}

/// A parsed inline waiver.
#[derive(Debug, Clone)]
struct Waiver {
    rule: String,
    /// First line the waiver covers (the comment's own line).
    line: u32,
    /// Last line the waiver covers (line after the comment).
    end_line: u32,
    used: bool,
}

/// Runs every applicable rule over one lexed file and returns the
/// unwaived findings.
pub fn check_file(class: FileClass<'_>, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    let (mut waivers, mut waiver_findings) = parse_waivers(class.path, &lexed.comments);
    findings.append(&mut waiver_findings);
    let test_ranges = test_regions(&lexed.tokens);
    let in_test = |line: u32| test_ranges.iter().any(|&(s, e)| s <= line && line <= e);
    let in_crate = |set: &[&str]| class.crate_name.is_none_or(|c| set.contains(&c));

    if !class.is_bin {
        rule_unwrap(&class, lexed, &in_test, &mut findings);
        let seam = CLOCK_SEAM_FILES.contains(&class.path);
        let bench = class
            .crate_name
            .is_some_and(|c| CLOCK_EXEMPT_CRATES.contains(&c));
        if !seam && !bench {
            rule_clock(&class, lexed, &in_test, &mut findings);
        }
        if in_crate(&CONCRETE_CLOSURE_CRATES[..]) {
            rule_concrete_closure(&class, lexed, &in_test, &mut findings);
        }
        if in_crate(&JOURNAL_CRATES[..]) {
            rule_journal_alloc(&class, lexed, &in_test, &mut findings);
        }
        if in_crate(&DOC_CRATES[..]) {
            rule_doc(&class, lexed, &in_test, &mut findings);
        }
    }

    // Apply waivers: a finding survives unless a same-rule waiver covers
    // its line.
    findings.retain(|f| {
        if f.rule == "waiver" {
            return true;
        }
        !waivers.iter_mut().any(|w| {
            let hit = w.rule == f.rule && w.line <= f.line && f.line <= w.end_line;
            if hit {
                w.used = true;
            }
            hit
        })
    });
    findings
}

/// `.unwrap()` / `.expect(` / `panic!` in non-test library code.
fn rule_unwrap(
    class: &FileClass<'_>,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident || in_test(t[i].line) {
            continue;
        }
        let name = t[i].text.as_str();
        let flagged = match name {
            "unwrap" | "expect" => {
                i > 0 && t[i - 1].text == "." && t.get(i + 1).is_some_and(|n| n.text == "(")
            }
            "panic" => t.get(i + 1).is_some_and(|n| n.text == "!"),
            _ => false,
        };
        if flagged {
            out.push(Finding {
                rule: "unwrap",
                path: class.path.to_owned(),
                line: t[i].line,
                message: format!(
                    "`{name}` in library code; return a typed error, or waive with a \
                     documented invariant"
                ),
            });
        }
    }
}

/// Raw `Instant::now` / `SystemTime::now` outside the clock seams.
fn rule_clock(
    class: &FileClass<'_>,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident || in_test(t[i].line) {
            continue;
        }
        let name = t[i].text.as_str();
        if (name == "Instant" || name == "SystemTime")
            && matches!(t.get(i + 1), Some(a) if a.text == ":")
            && matches!(t.get(i + 2), Some(b) if b.text == ":")
            && matches!(t.get(i + 3), Some(c) if c.text == "now")
        {
            out.push(Finding {
                rule: "clock",
                path: class.path.to_owned(),
                line: t[i].line,
                message: format!(
                    "raw `{name}::now` outside the Clock/MatchBudget seams; inject a \
                     `phom_trace::Clock`, or waive with a reason"
                ),
            });
        }
    }
}

/// Concrete closure types (`TransitiveClosure` / `DenseClosure`) in
/// `pub fn` signatures of the matching crates.
fn rule_concrete_closure(
    class: &FileClass<'_>,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let t = &lexed.tokens;
    let mut i = 0usize;
    while i < t.len() {
        let is_pub_fn = t[i].text == "pub"
            && !in_test(t[i].line)
            // `pub(crate)` / `pub(super)` are not public API.
            && t.get(i + 1).is_some_and(|n| n.text == "fn");
        if !is_pub_fn {
            i += 1;
            continue;
        }
        let fn_line = t[i].line;
        // Scan the signature: everything up to the body `{` or a `;`.
        let mut j = i + 2;
        let mut offender: Option<&Token> = None;
        while j < t.len() && t[j].text != "{" && t[j].text != ";" {
            if t[j].kind == TokKind::Ident
                && (t[j].text == "TransitiveClosure" || t[j].text == "DenseClosure")
            {
                offender.get_or_insert(&t[j]);
            }
            j += 1;
        }
        if let Some(o) = offender {
            out.push(Finding {
                rule: "concrete-closure",
                path: class.path.to_owned(),
                line: fn_line,
                message: format!(
                    "public fn signature names concrete `{}`; matching APIs take \
                     `&dyn ReachabilityIndex`",
                    o.text
                ),
            });
        }
        i = j;
    }
}

/// `EventKind` constructed outside the journal's closure-taking
/// `emit(…)` call (which is what keeps disabled journals zero-alloc).
fn rule_journal_alloc(
    class: &FileClass<'_>,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let t = &lexed.tokens;
    // Stack of callee names, one per open paren.
    let mut callees: Vec<String> = Vec::new();
    let mut in_use = false;
    for i in 0..t.len() {
        match t[i].text.as_str() {
            "use" if t[i].kind == TokKind::Ident => in_use = true,
            ";" => in_use = false,
            "(" => {
                let callee = if i > 0 && t[i - 1].kind == TokKind::Ident {
                    t[i - 1].text.clone()
                } else {
                    String::new()
                };
                callees.push(callee);
            }
            ")" => {
                callees.pop();
            }
            "EventKind"
                if t[i].kind == TokKind::Ident
                    && !in_use
                    && !in_test(t[i].line)
                    && !callees.iter().any(|c| c == "emit") =>
            {
                out.push(Finding {
                    rule: "journal-alloc",
                    path: class.path.to_owned(),
                    line: t[i].line,
                    message: "journal event constructed outside `emit(…)`; use the \
                              closure-taking form so disabled journals allocate nothing"
                        .to_owned(),
                });
            }
            _ => {}
        }
    }
}

/// Item keywords the doc rule requires documentation on. `use`
/// re-exports and `impl` blocks are exempt (matching `missing_docs`).
const DOC_ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
];

/// Missing doc comments on `pub` items (and `pub` fields) in the API
/// crates. Rustdoc's `missing_docs` (denied in CI) stays authoritative;
/// this rule makes the same discipline visible in `phom lint` output.
fn rule_doc(
    class: &FileClass<'_>,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident || t[i].text != "pub" || in_test(t[i].line) {
            continue;
        }
        let Some(next) = t.get(i + 1) else { continue };
        // `pub(crate)` / `pub(super)`: restricted visibility, exempt.
        if next.text == "(" {
            continue;
        }
        // `pub use` re-exports need no docs.
        if next.text == "use" || next.text == "impl" {
            continue;
        }
        let what = if DOC_ITEM_KEYWORDS.contains(&next.text.as_str()) {
            next.text.as_str()
        } else if next.kind == TokKind::Ident && t.get(i + 2).is_some_and(|c| c.text == ":") {
            "field"
        } else {
            continue;
        };
        // `pub mod name;` — the docs live as `//!` inner comments in the
        // module's own file, which a single-file token scan cannot see.
        // Rustdoc's `missing_docs` still enforces them; skip here.
        if what == "mod" && t.get(i + 3).is_some_and(|s| s.text == ";") {
            continue;
        }
        // Walk backwards over any attribute groups (`#[…]`) to the
        // item's anchor, then look for an adjacent doc comment.
        let mut a = i;
        let mut documented = false;
        while a >= 2 && t[a - 1].text == "]" {
            // Find the matching `[`.
            let mut depth = 1usize;
            let mut k = a - 1;
            while k > 0 && depth > 0 {
                k -= 1;
                match t[k].text.as_str() {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    _ => {}
                }
            }
            if k == 0 || t[k - 1].text != "#" {
                break;
            }
            // `#[doc = "…"]` counts as documentation.
            if t[k..a - 1].iter().any(|x| x.text == "doc") {
                documented = true;
            }
            a = k - 1;
        }
        let anchor_line = t[a].line;
        // An adjacent doc comment counts only when the item starts its
        // line — in `pub struct S { pub f: u32 }` the struct's doc
        // comment must not satisfy the *field's* adjacency check. Plain
        // comments (e.g. lint waivers) between the docs and the item are
        // skipped over.
        let first_on_line = a == 0 || t[a - 1].line != anchor_line;
        if first_on_line && !documented {
            let mut want = anchor_line;
            loop {
                if lexed
                    .comments
                    .iter()
                    .any(|c| c.doc && c.end_line + 1 == want)
                {
                    documented = true;
                    break;
                }
                let Some(plain) = lexed
                    .comments
                    .iter()
                    .find(|c| !c.doc && c.end_line + 1 == want)
                else {
                    break;
                };
                want = plain.line;
            }
        }
        if !documented {
            out.push(Finding {
                rule: "doc",
                path: class.path.to_owned(),
                line: t[i].line,
                message: format!("public {what} without a doc comment"),
            });
        }
    }
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items.
fn test_regions(t: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 5 < t.len() {
        let is_cfg_test = t[i].text == "#"
            && t[i + 1].text == "["
            && t[i + 2].text == "cfg"
            && t[i + 3].text == "("
            && {
                // Accept `test` anywhere inside the cfg predicate
                // (`cfg(test)`, `cfg(all(test, feature = "x"))`, …).
                let mut j = i + 4;
                let mut depth = 1usize;
                let mut seen = false;
                while j < t.len() && depth > 0 {
                    match t[j].text.as_str() {
                        "(" => depth += 1,
                        ")" => depth -= 1,
                        "test" => seen = true,
                        _ => {}
                    }
                    j += 1;
                }
                seen
            };
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = t[i].line;
        // Skip to the end of this attribute, then to the item's body.
        let mut j = i + 2;
        let mut depth = 1usize;
        while j + 1 < t.len() && depth > 0 {
            j += 1;
            match t[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
        }
        // The item ends at `;` (e.g. `#[cfg(test)] use …;`) or at the
        // close of its first brace block.
        let mut end_line = start_line;
        let mut k = j + 1;
        let mut braces = 0usize;
        while k < t.len() {
            match t[k].text.as_str() {
                ";" if braces == 0 => {
                    end_line = t[k].line;
                    break;
                }
                "{" => braces += 1,
                "}" => {
                    braces = braces.saturating_sub(1);
                    if braces == 0 {
                        end_line = t[k].line;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if k >= t.len() {
            end_line = t.last().map_or(start_line, |x| x.line);
        }
        ranges.push((start_line, end_line));
        i = k + 1;
    }
    ranges
}

/// Parses `phom-lint: allow(rule, "reason")` waivers out of the
/// comments. Malformed waivers (bad syntax, unknown rule, or a missing
/// / empty reason) become `waiver` findings so they can't silently
/// suppress anything.
fn parse_waivers(path: &str, comments: &[Comment]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        // Waivers are plain `//` comments; doc comments merely *describe*
        // the syntax (as this crate's own docs do) and never waive.
        if c.doc {
            continue;
        }
        let Some(at) = c.text.find("phom-lint:") else {
            continue;
        };
        let rest = c.text[at + "phom-lint:".len()..].trim_start();
        let mut fail = |msg: String| {
            findings.push(Finding {
                rule: "waiver",
                path: path.to_owned(),
                line: c.line,
                message: msg,
            });
        };
        let Some(args) = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('('))
            .and_then(|r| r.rfind(')').map(|e| &r[..e]))
        else {
            fail("malformed waiver; expected `phom-lint: allow(<rule>, \"<reason>\")`".to_owned());
            continue;
        };
        let Some((rule, reason)) = args.split_once(',') else {
            fail("waiver missing a reason string".to_owned());
            continue;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        if !RULE_IDS.contains(&rule) {
            fail(format!("waiver names unknown rule `{rule}`"));
            continue;
        }
        let unquoted = reason
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .unwrap_or("");
        if unquoted.trim().is_empty() {
            fail(format!(
                "waiver for `{rule}` needs a non-empty quoted reason"
            ));
            continue;
        }
        waivers.push(Waiver {
            rule: rule.to_owned(),
            line: c.line,
            end_line: c.end_line + 1,
            used: false,
        });
    }
    (waivers, findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint(path: &str, crate_name: Option<&str>, src: &str) -> Vec<Finding> {
        check_file(
            FileClass {
                path,
                crate_name,
                is_bin: false,
            },
            &lex(src),
        )
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_rule_flags_only_real_calls() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();             // flagged
                let b = x.expect("reason");     // flagged
                let c = x.unwrap_or(0);         // distinct method, fine
                let d = x.unwrap_or_else(|| 0); // fine
                if a + b + c + d > 4 { panic!("boom") } // flagged
                let s = "call .unwrap() later"; // string, fine
                s.len() as u32
            }
        "#;
        let f = lint("crates/core/src/x.rs", Some("core"), src);
        assert_eq!(
            rules_of(&f).iter().filter(|r| **r == "unwrap").count(),
            3,
            "{f:?}"
        );
    }

    #[test]
    fn unwrap_rule_skips_cfg_test_modules_and_bins() {
        let src = r#"
            fn lib() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        assert!(lint("crates/core/src/x.rs", Some("core"), src).is_empty());
        let bin = check_file(
            FileClass {
                path: "src/bin/phom.rs",
                crate_name: Some("phom"),
                is_bin: true,
            },
            &lex("fn main() { Some(1).unwrap(); }"),
        );
        assert!(bin.is_empty());
    }

    #[test]
    fn waiver_with_reason_suppresses_without_reason_fails() {
        let ok = r#"
            fn f(x: Option<u32>) -> u32 {
                // phom-lint: allow(unwrap, "invariant: caller checked is_some")
                x.unwrap()
            }
        "#;
        assert!(lint("crates/core/src/x.rs", Some("core"), ok).is_empty());
        let same_line = r#"
            fn f(x: Option<u32>) -> u32 {
                x.unwrap() // phom-lint: allow(unwrap, "checked above")
            }
        "#;
        assert!(lint("crates/core/src/x.rs", Some("core"), same_line).is_empty());
        let no_reason = r#"
            fn f(x: Option<u32>) -> u32 {
                // phom-lint: allow(unwrap)
                x.unwrap()
            }
        "#;
        let f = lint("crates/core/src/x.rs", Some("core"), no_reason);
        assert_eq!(rules_of(&f), ["waiver", "unwrap"], "{f:?}");
        let unknown = r#"
            // phom-lint: allow(made-up-rule, "reason")
            fn f() {}
        "#;
        let f = lint("crates/core/src/x.rs", Some("core"), unknown);
        assert_eq!(rules_of(&f), ["waiver"]);
    }

    #[test]
    fn clock_rule_respects_seams_and_scope() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_of(&lint("crates/engine/src/x.rs", Some("engine"), src)),
            ["clock"]
        );
        // The seam files and the bench harness are exempt.
        assert!(lint("crates/trace/src/window.rs", Some("trace"), src).is_empty());
        assert!(lint("crates/core/src/budget.rs", Some("core"), src).is_empty());
        assert!(lint("crates/bench/src/exp.rs", Some("bench"), src).is_empty());
        let sys = "fn f() { let t = std::time::SystemTime::now(); }";
        assert_eq!(
            rules_of(&lint("crates/service/src/x.rs", Some("service"), sys)),
            ["clock"]
        );
    }

    #[test]
    fn concrete_closure_rule_checks_public_signatures_only() {
        let bad = "/// D.\npub fn match_it(c: &TransitiveClosure) {}";
        assert_eq!(
            rules_of(&lint("crates/core/src/x.rs", Some("core"), bad)),
            ["concrete-closure"]
        );
        let dyn_ok = "/// D.\npub fn match_it(c: &dyn ReachabilityIndex) {}";
        assert!(lint("crates/core/src/x.rs", Some("core"), dyn_ok).is_empty());
        let body_ok = "/// D.\npub fn build() { let c = TransitiveClosure::new(&g); }";
        assert!(lint("crates/core/src/x.rs", Some("core"), body_ok).is_empty());
        let private_ok = "fn helper(c: &TransitiveClosure) {}";
        assert!(lint("crates/core/src/x.rs", Some("core"), private_ok).is_empty());
        // Out-of-scope crate: the graph crate defines the type.
        assert!(lint("crates/graph/src/x.rs", Some("graph"), bad).is_empty());
    }

    #[test]
    fn journal_rule_requires_emit_enclosure() {
        let ok = r#"
            fn f(j: &EventJournal) {
                j.emit(Severity::Info, || EventKind::GraphEvicted { graph: g() });
            }
        "#;
        assert!(lint("crates/service/src/x.rs", Some("service"), ok).is_empty());
        let bad = r#"
            fn f(j: &EventJournal) {
                let e = EventKind::GraphEvicted { graph: g() };
                j.push(e);
            }
        "#;
        assert_eq!(
            rules_of(&lint("crates/service/src/x.rs", Some("service"), bad)),
            ["journal-alloc"]
        );
        let import_ok = "use phom_trace::{EventKind, Severity};";
        assert!(lint("crates/service/src/x.rs", Some("service"), import_ok).is_empty());
    }

    #[test]
    fn doc_rule_wants_docs_on_public_items() {
        let bad = "pub fn undocumented() {}";
        assert_eq!(
            rules_of(&lint("crates/graph/src/x.rs", Some("graph"), bad)),
            ["doc"]
        );
        let ok = "/// Documented.\npub fn documented() {}";
        assert!(lint("crates/graph/src/x.rs", Some("graph"), ok).is_empty());
        let attr_ok = "/// Documented.\n#[derive(Debug, Clone)]\npub struct S { \n    /// Field.\n    pub f: u32,\n}";
        assert!(lint("crates/graph/src/x.rs", Some("graph"), attr_ok).is_empty());
        let field_bad = "/// S.\npub struct S { pub f: u32 }";
        assert_eq!(
            rules_of(&lint("crates/graph/src/x.rs", Some("graph"), field_bad)),
            ["doc"]
        );
        let crate_vis = "pub(crate) fn internal() {}";
        assert!(lint("crates/graph/src/x.rs", Some("graph"), crate_vis).is_empty());
        // Out-of-scope crate.
        assert!(lint("crates/sim/src/x.rs", Some("sim"), bad).is_empty());
    }

    #[test]
    fn fixture_paths_get_every_rule() {
        let src = "fn f() { Some(1).unwrap(); let t = Instant::now(); }";
        let f = lint("tests/fixtures/lint_negative.rs", None, src);
        assert!(rules_of(&f).contains(&"unwrap"));
        assert!(rules_of(&f).contains(&"clock"));
    }
}
