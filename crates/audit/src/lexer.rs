//! A minimal hand-rolled Rust lexer — just enough token structure for
//! the project lint rules, with no crates.io dependencies (consistent
//! with the workspace's offline-shims policy).
//!
//! The lexer's one job is to distinguish *code* from *non-code*: string
//! literals, character literals, raw strings, and comments must never
//! produce identifier tokens (a `"unwrap()"` inside a message string is
//! not a call), and lifetimes must not be confused with unterminated
//! char literals. Everything else is deliberately coarse — multi-char
//! operators come out as single punctuation tokens, and numeric
//! literals are not sub-classified — because the rules only pattern
//! match short token sequences.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident` forms, with the
    /// `r#` prefix stripped).
    Ident,
    /// A single punctuation character (`.`, `(`, `#`, …). Multi-char
    /// operators are emitted as consecutive single-char tokens.
    Punct,
    /// String, raw-string, byte-string, char, or numeric literal. The
    /// text is not preserved verbatim (rules never need it).
    Literal,
    /// A lifetime (`'a`) — kept distinct so `'a` is never half a char
    /// literal.
    Lifetime,
}

/// One lexed token: kind, 1-based source line, and text (empty for
/// [`TokKind::Literal`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token text: the identifier itself, the single punctuation
    /// character, or empty for literals.
    pub text: String,
}

/// One comment, preserved for waiver parsing and doc detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equals `line` for `//` forms).
    pub end_line: u32,
    /// Comment body without the `//` / `/*` markers.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source into tokens and comments. Unterminated constructs
/// (a string running to end-of-file) are tolerated: the remainder is
/// consumed as the open literal, which is the behavior that degrades
/// most gracefully for a linter.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let doc = start < b.len() && (b[start] == b'/' || b[start] == b'!');
                // `////…` dividers are plain comments, not docs.
                let doc = doc && !(start + 1 < b.len() && b[start] == b'/' && b[start + 1] == b'/');
                let mut j = i;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start.min(j)..j].to_owned(),
                    doc,
                });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let body_start = i + 2;
                let doc = body_start < b.len() && (b[body_start] == b'*' || b[body_start] == b'!');
                let mut depth = 1usize;
                let mut j = body_start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let body_end = j.saturating_sub(2).max(body_start);
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: src[body_start..body_end].to_owned(),
                    doc,
                });
                i = j;
            }
            b'"' => i = consume_string(b, i, &mut line),
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                i = consume_prefixed_string(b, i, &mut line)
            }
            b'\'' => {
                if is_lifetime(b, i) {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        line,
                        text: src[i + 1..j].to_owned(),
                    });
                    i = j;
                } else {
                    i = consume_char_literal(b, i, &mut line);
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        line,
                        text: String::new(),
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    line,
                    text: src[start..j].to_owned(),
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                // A fractional part: `1.5`, but not the range `1..5` or a
                // method-ish `1.max(2)` (digits only after the dot).
                if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
                    j += 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    line,
                    text: String::new(),
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    line,
                    text: (c as char).to_string(),
                });
                i += 1;
            }
        }
    }
    out
}

/// Does position `i` (at `r` or `b`) start a raw/byte string
/// (`r"`, `r#`, `b"`, `br"`, `br#`, `rb…` is not valid Rust)?
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // Only treat as a string prefix when the r/b is not part of a longer
    // identifier (e.g. `radius"x"` cannot occur, but `r2 = 1` must lex
    // `r2` as an identifier).
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'r' {
            j += 1;
        }
    } else {
        // b[j] == b'r'
        j += 1;
        if j < b.len() && b[j] == b'#' {
            // Either a raw string `r#"` / `r##"` or a raw identifier
            // `r#ident`. Peek past the hashes.
            let mut k = j;
            while k < b.len() && b[k] == b'#' {
                k += 1;
            }
            return k < b.len() && b[k] == b'"';
        }
    }
    j < b.len() && (b[j] == b'"' || b[j] == b'#') && {
        let mut k = j;
        while k < b.len() && b[k] == b'#' {
            k += 1;
        }
        k < b.len() && b[k] == b'"'
    }
}

/// Consumes a plain `"…"` string starting at `i`; returns the index
/// past the closing quote.
fn consume_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Consumes a raw or byte string (`r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`)
/// starting at `i`; returns the index past the closing delimiter.
fn consume_prefixed_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    j += 1; // opening quote
    while j < b.len() {
        match b[j] {
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'\\' if !raw => j += 2,
            b'"' => {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && k < b.len() && b[k] == b'#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Is the `'` at `i` a lifetime (`'a`, `'static`) rather than a char
/// literal (`'a'`, `'\n'`)? A lifetime is a letter/underscore run NOT
/// followed by a closing quote.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if j >= b.len() || !(b[j] == b'_' || b[j].is_ascii_alphabetic()) {
        return false;
    }
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    !(j < b.len() && b[j] == b'\'')
}

/// Consumes a char literal starting at the `'` at `i`; returns the
/// index past the closing quote.
fn consume_char_literal(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                // Malformed; don't swallow the rest of the file.
                *line += 1;
                return j + 1;
            }
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_identifiers() {
        let src = r##"
            let a = "unwrap() inside a string";
            // unwrap() inside a line comment
            /* unwrap() inside /* a nested */ block comment */
            let b = r#"raw "quoted" unwrap()"#;
            let c = b"byte unwrap()";
            call();
        "##;
        assert_eq!(idents(src), ["let", "a", "let", "b", "let", "c", "call"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        // The 'x' char literal did not swallow the closing brace.
        assert_eq!(lexed.tokens.last().map(|t| t.text.as_str()), Some("}"));
    }

    #[test]
    fn escaped_quote_chars_lex_cleanly() {
        let src = r"let q = '\''; let n = '\n'; after();";
        assert_eq!(idents(src), ["let", "q", "let", "n", "after"]);
    }

    #[test]
    fn comments_record_lines_and_doc_flags() {
        let src = "// plain\n/// doc\n//! inner doc\n//// divider\nfn f() {}\n";
        let lexed = lex(src);
        let flags: Vec<(u32, bool)> = lexed.comments.iter().map(|c| (c.line, c.doc)).collect();
        assert_eq!(flags, [(1, false), (2, true), (3, true), (4, false)]);
        assert_eq!(lexed.tokens[0].line, 5);
    }

    #[test]
    fn raw_identifiers_and_numbers() {
        let src = "let r#type = 1_000; let x = 2.5e3; let r2 = 0..10;";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.text == "type"));
        assert!(lexed.tokens.iter().any(|t| t.text == "r2"));
        // `0..10` must stay a range (two dots), not a malformed float.
        let dots = lexed.tokens.iter().filter(|t| t.text == ".").count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn multiline_strings_track_lines() {
        let src = "let s = \"line\nline\nline\";\nfinal_ident();";
        let lexed = lex(src);
        let f = lexed
            .tokens
            .iter()
            .find(|t| t.text == "final_ident")
            .expect("present");
        assert_eq!(f.line, 4);
    }
}
