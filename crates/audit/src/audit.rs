//! Snapshot auditing: load an engine prepared-graph snapshot and run
//! the structural invariant validators over the restored index.
//!
//! Two tiers, matching the validators in `phom_graph`:
//!
//! * **cheap** — internal invariants of the index alone (shape, CSR
//!   structure, composition closure / own-chain rule / 2-hop
//!   self-certificates); always runs;
//! * **deep** — the index against the graph it claims to describe
//!   (fresh Tarjan partition comparison plus a sampled BFS ground-truth
//!   sweep); opt-in, because it re-traverses the graph.

use bytes::Bytes;
use phom_engine::PreparedGraph;
use std::fmt;

/// Why an audit failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// The snapshot bytes did not parse (truncated, bad magic, or a
    /// payload the format-level checks already reject).
    Parse(String),
    /// The snapshot parsed, but the restored index violates a
    /// structural invariant (the dangerous case: without validation it
    /// would serve wrong reachability answers).
    Invalid(String),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Parse(m) => write!(f, "snapshot does not parse: {m}"),
            AuditError::Invalid(m) => write!(f, "restored index fails validation: {m}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// What a successful audit established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Reachability backend the snapshot carries
    /// (`"dense"` / `"chain"` / `"twohop"`).
    pub backend: String,
    /// Data-graph node count.
    pub nodes: usize,
    /// Data-graph edge count.
    pub edges: usize,
    /// SCC count of the restored graph.
    pub scc_count: usize,
    /// Whether the deep (graph-checked) tier ran.
    pub deep: bool,
    /// BFS sample sources the deep tier used (0 when cheap-only).
    pub samples: usize,
}

impl AuditReport {
    /// One-paragraph human-readable summary.
    pub fn render_text(&self) -> String {
        let tier = if self.deep {
            format!("cheap + deep ({} BFS samples)", self.samples)
        } else {
            "cheap".to_owned()
        };
        format!(
            "snapshot OK: {} nodes, {} edges, {} SCCs, backend {}; tiers passed: {}\n",
            self.nodes, self.edges, self.scc_count, self.backend, tier
        )
    }
}

/// Audits one engine snapshot: parse, run the cheap validator tier,
/// and — when `deep` — the sampled graph-checked tier with `samples`
/// BFS sources.
pub fn audit_snapshot(bytes: Bytes, deep: bool, samples: usize) -> Result<AuditReport, AuditError> {
    let prepared =
        PreparedGraph::load_snapshot(bytes).map_err(|e| AuditError::Parse(e.to_string()))?;
    prepared
        .validate()
        .map_err(|v| AuditError::Invalid(v.to_string()))?;
    if deep {
        prepared
            .validate_deep(samples)
            .map_err(|v| AuditError::Invalid(v.to_string()))?;
    }
    let stats = prepared.stats();
    Ok(AuditReport {
        backend: stats.closure_backend.clone(),
        nodes: stats.nodes,
        edges: stats.edges,
        scc_count: stats.scc_count,
        deep,
        samples: if deep { samples } else { 0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;
    use std::sync::Arc;

    #[test]
    fn valid_snapshots_pass_both_tiers() {
        let g = Arc::new(graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
        ));
        let prepared = PreparedGraph::new(g);
        let report = audit_snapshot(prepared.save_snapshot(), true, 8).expect("valid");
        assert_eq!(report.nodes, 4);
        assert_eq!(report.scc_count, 3);
        assert!(report.deep);
        assert!(report.render_text().contains("snapshot OK"));
    }

    #[test]
    fn garbage_is_a_parse_error() {
        let err = audit_snapshot(Bytes::from_static(b"not a snapshot"), false, 0).unwrap_err();
        assert!(matches!(err, AuditError::Parse(_)), "{err}");
    }
}
