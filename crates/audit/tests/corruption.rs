//! Corruption-injection tests for the snapshot audit surface.
//!
//! Each case flips one byte of a serialized [`PreparedGraph`] snapshot's
//! *index region* (everything after the embedded graph bytes) and
//! demands the mutation is **caught** — rejected by snapshot parsing,
//! `validate()`, or `validate_against()` — or provably **neutral**
//! (the loaded index still answers the exact same `reaches` relation,
//! e.g. a flipped padding bit that `BitSet::from_words` clears). A
//! mutation that survives all tiers *and* changes an answer is a
//! harmful miss: the audit pipeline let corrupt data through.
//!
//! Aggregate bar (per backend, 256 deterministic cases): zero harmful
//! misses, and ≥ 95% of mutations caught outright. A separate test
//! checks zero false positives: pristine snapshots across seeds and
//! backends pass both audit tiers.

use std::sync::Arc;

use bytes::Bytes;
use phom_audit::audit_snapshot;
use phom_engine::{ClosureBackend, PreparedGraph, DEFAULT_CHAIN_NODE_THRESHOLD};
use phom_graph::{DiGraph, NodeId};
use rand::{rngs::SmallRng, Rng, SeedableRng};

const CASES: usize = 256;
const DEEP_SAMPLES: usize = 16;

/// A random digraph with enough cycles to exercise nontrivial SCCs,
/// chains, and 2-hop certificates.
fn random_graph(n: usize, seed: u64) -> DiGraph<String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DiGraph::with_capacity(n);
    for i in 0..n {
        g.add_node(format!("L{}", i % 7));
    }
    let edges = n * 3;
    for _ in 0..edges {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    // A few short back-edges to force multi-node SCCs.
    for i in (0..n.saturating_sub(4)).step_by(9) {
        g.add_edge(NodeId((i + 3) as u32), NodeId(i as u32));
        g.add_edge(NodeId(i as u32), NodeId((i + 1) as u32));
        g.add_edge(NodeId((i + 1) as u32), NodeId((i + 3) as u32));
    }
    g
}

fn snapshot_for(backend: ClosureBackend, n: usize, seed: u64) -> (PreparedGraph<String>, Vec<u8>) {
    let g = Arc::new(random_graph(n, seed));
    let prepared = PreparedGraph::with_backend(g, backend, DEFAULT_CHAIN_NODE_THRESHOLD);
    let bytes = prepared.save_snapshot().to_vec();
    (prepared, bytes)
}

/// First byte of the index region: magic(4) + version(1) + tag(1) +
/// graph_len(4) + graph bytes. Mutations before this offset corrupt the
/// embedded *graph*, which is out of scope for the index validators.
fn index_region_start(snapshot: &[u8]) -> usize {
    let graph_len = u32::from_be_bytes([snapshot[6], snapshot[7], snapshot[8], snapshot[9]]);
    10 + graph_len as usize
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Some audit tier rejected the mutated snapshot.
    Caught,
    /// All tiers passed and the index answers are bit-identical.
    Neutral,
    /// All tiers passed but an answer changed — the bad case.
    HarmfulMiss,
}

fn classify(original: &PreparedGraph<String>, mutated: Vec<u8>) -> Outcome {
    let loaded = match PreparedGraph::load_snapshot(Bytes::from(mutated)) {
        Ok(p) => p,
        Err(_) => return Outcome::Caught,
    };
    // Deep tier at full sampling: every node is a BFS source, so the
    // audit pipeline is judged at its maximum-assurance setting.
    let full = original.graph().node_count();
    if loaded.validate().is_err() || loaded.validate_deep(full).is_err() {
        return Outcome::Caught;
    }
    let n = original.graph().node_count();
    let a = original.backend().as_dyn();
    let b = loaded.backend().as_dyn();
    for u in 0..n {
        for v in 0..n {
            let (u, v) = (NodeId(u as u32), NodeId(v as u32));
            if a.reaches(u, v) != b.reaches(u, v) {
                return Outcome::HarmfulMiss;
            }
        }
    }
    Outcome::Neutral
}

/// 256 single-byte index-region mutations per backend: every one is
/// caught or neutral, and at least 95% are caught outright.
fn corruption_sweep(backend: ClosureBackend, seed: u64) {
    let (original, snapshot) = snapshot_for(backend, 72, seed);
    let start = index_region_start(&snapshot);
    assert!(start < snapshot.len(), "snapshot has an index region");

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_c0de);
    let mut caught = 0usize;
    let mut neutral = Vec::new();
    let mut harmful = Vec::new();
    for _ in 0..CASES {
        let off = rng.random_range(start..snapshot.len());
        let xor = rng.random_range(1..=255u8);
        let mut mutated = snapshot.clone();
        mutated[off] ^= xor;
        match classify(&original, mutated) {
            Outcome::Caught => caught += 1,
            Outcome::Neutral => neutral.push((off, xor)),
            Outcome::HarmfulMiss => harmful.push((off, xor)),
        }
    }

    assert!(
        harmful.is_empty(),
        "{backend:?}: {} mutation(s) passed every audit tier but changed answers: {harmful:?}",
        harmful.len()
    );
    assert!(
        caught * 100 >= CASES * 95,
        "{backend:?}: only {caught}/{CASES} mutations caught (neutral: {neutral:?})"
    );
}

#[test]
fn dense_snapshot_mutations_are_caught() {
    corruption_sweep(ClosureBackend::Dense, 11);
}

#[test]
fn chain_snapshot_mutations_are_caught() {
    corruption_sweep(ClosureBackend::Chain, 12);
}

#[test]
fn twohop_snapshot_mutations_are_caught() {
    corruption_sweep(ClosureBackend::TwoHop, 13);
}

/// Zero false positives: pristine snapshots pass both audit tiers for
/// every backend across a spread of graph seeds and sizes.
#[test]
fn pristine_snapshots_always_pass() {
    for backend in [
        ClosureBackend::Dense,
        ClosureBackend::Chain,
        ClosureBackend::TwoHop,
    ] {
        for (seed, n) in [(1u64, 8usize), (2, 40), (3, 72), (4, 110)] {
            let (_, snapshot) = snapshot_for(backend, n, seed);
            let report =
                audit_snapshot(Bytes::from(snapshot), true, DEEP_SAMPLES).unwrap_or_else(|e| {
                    panic!("{backend:?} seed {seed}: pristine snapshot rejected: {e}")
                });
            assert_eq!(report.nodes, n);
            assert!(report.deep);
        }
    }
}

mod proptest_harness {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Property form of the sweep: an arbitrary single-byte
        /// index-region mutation is never a harmful miss, for whichever
        /// backend the offset seed picks.
        #[test]
        fn single_byte_mutations_never_slip_through(
            seed in 0u64..1u64 << 16,
            which in 0usize..3,
            offset_sel in any::<u32>(),
            xor in 1..=255u8,
        ) {
            let backend = [
                ClosureBackend::Dense,
                ClosureBackend::Chain,
                ClosureBackend::TwoHop,
            ][which];
            let (original, snapshot) = snapshot_for(backend, 48, seed);
            let start = index_region_start(&snapshot);
            let span = snapshot.len() - start;
            let off = start + (offset_sel as usize % span);
            let mut mutated = snapshot;
            mutated[off] ^= xor;
            prop_assert!(
                classify(&original, mutated) != Outcome::HarmfulMiss,
                "{backend:?} seed {seed}: mutation at {off} (xor {xor:#x}) changed answers undetected"
            );
        }
    }
}
