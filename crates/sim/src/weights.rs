//! Node weights `w(v)` for the maximum-overall-similarity metric
//! `qualSim` (§3.3): "indicating relative importance of v, e.g., whether v
//! is a hub, authority, or a node with a high degree."

use crate::hits::hits_scores;
use crate::pagerank::{pagerank, PageRankConfig};
use phom_graph::{DiGraph, NodeId};

/// Per-node weights of the pattern graph `G1`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeWeights {
    w: Vec<f64>,
}

impl NodeWeights {
    /// Uniform weight 1 for every node (the setting of the paper's
    /// experiments, §6).
    pub fn uniform(n: usize) -> Self {
        Self { w: vec![1.0; n] }
    }

    /// Explicit per-node weights.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite.
    pub fn from_vec(w: Vec<f64>) -> Self {
        assert!(
            w.iter().all(|x| x.is_finite() && *x >= 0.0),
            "weights must be finite and non-negative"
        );
        Self { w }
    }

    /// Degree-based weights: `1 + deg(v)` (high-degree nodes matter more).
    pub fn by_degree<L>(g: &DiGraph<L>) -> Self {
        Self {
            w: g.nodes().map(|v| 1.0 + g.degree(v) as f64).collect(),
        }
    }

    /// HITS-based weights: `1 + hub(v) + authority(v)`, normalized scores
    /// from [`hits_scores`]. Captures the "hub or authority" importance
    /// notion of §3.3 / Blondel et al. \[6\].
    pub fn by_hits<L>(g: &DiGraph<L>, iterations: usize) -> Self {
        let scores = hits_scores(g, iterations);
        Self {
            w: g.nodes()
                .map(|v| 1.0 + scores.hub[v.index()] + scores.authority[v.index()])
                .collect(),
        }
    }

    /// PageRank-based weights: `1 + n·pr(v)` (so the average weight is 2
    /// and isolated-node corpora stay uniform). The PageRank emphasis on
    /// link-endorsed pages complements the hub/authority emphasis of
    /// [`NodeWeights::by_hits`].
    pub fn by_pagerank<L>(g: &DiGraph<L>, cfg: &PageRankConfig) -> Self {
        let n = g.node_count() as f64;
        let pr = pagerank(g, cfg);
        Self {
            w: pr.into_iter().map(|x| 1.0 + n * x).collect(),
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Weight of node `v`.
    #[inline]
    pub fn get(&self, v: NodeId) -> f64 {
        self.w[v.index()]
    }

    /// Total weight `Σ_v w(v)` — the denominator of `qualSim`.
    pub fn total(&self) -> f64 {
        self.w.iter().sum()
    }

    /// Raw slice access.
    pub fn as_slice(&self) -> &[f64] {
        &self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    #[test]
    fn pagerank_weights_favor_endorsed_nodes() {
        let g = graph_from_labels(
            &["hub", "x", "y", "z"],
            &[("x", "hub"), ("y", "hub"), ("z", "hub")],
        );
        let w = NodeWeights::by_pagerank(&g, &PageRankConfig::default());
        assert_eq!(w.len(), 4);
        assert!(w.get(NodeId(0)) > w.get(NodeId(1)), "hub outweighs leaves");
        assert!(w.as_slice().iter().all(|&x| x >= 1.0));
    }

    #[test]
    fn uniform_weights() {
        let w = NodeWeights::uniform(4);
        assert_eq!(w.len(), 4);
        assert_eq!(w.get(NodeId(3)), 1.0);
        assert_eq!(w.total(), 4.0);
    }

    #[test]
    fn degree_weights_favor_hubs() {
        let g = graph_from_labels(
            &["hub", "a", "b", "c"],
            &[("hub", "a"), ("hub", "b"), ("hub", "c")],
        );
        let w = NodeWeights::by_degree(&g);
        assert_eq!(w.get(NodeId(0)), 4.0);
        assert_eq!(w.get(NodeId(1)), 2.0);
    }

    #[test]
    fn hits_weights_exceed_baseline() {
        let g = graph_from_labels(
            &["hub", "auth1", "auth2"],
            &[("hub", "auth1"), ("hub", "auth2")],
        );
        let w = NodeWeights::by_hits(&g, 20);
        assert!(w.get(NodeId(0)) > 1.0, "hub gets hub mass");
        assert!(w.get(NodeId(1)) > 1.0, "authority gets authority mass");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        NodeWeights::from_vec(vec![1.0, -0.5]);
    }

    #[test]
    fn example_3_3_weights() {
        // w(v) = 1 except w(v2) = 6; total 10 over 5 nodes.
        let w = NodeWeights::from_vec(vec![1.0, 1.0, 6.0, 1.0, 1.0]);
        assert_eq!(w.total(), 10.0);
    }
}
