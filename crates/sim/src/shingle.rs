//! w-shingling and Jaccard resemblance (Broder et al. \[8\]) — the textual
//! node-similarity measure the paper uses for Web pages: `mat(v, u)` is the
//! shingle resemblance of the pages' contents (§3.1, §6).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// The shingle set of a token stream: hashes of every `w`-token window.
///
/// A document shorter than `w` tokens contributes its single full window
/// (so non-empty documents never produce empty shingle sets).
pub fn shingles<T: Hash>(tokens: &[T], w: usize) -> HashSet<u64> {
    assert!(w > 0, "shingle width must be positive");
    let mut out = HashSet::new();
    if tokens.is_empty() {
        return out;
    }
    let width = w.min(tokens.len());
    for window in tokens.windows(width) {
        let mut h = DefaultHasher::new();
        for t in window {
            t.hash(&mut h);
        }
        out.insert(h.finish());
    }
    out
}

/// Jaccard resemblance `|A ∩ B| / |A ∪ B|` of two shingle sets.
/// Two empty sets are defined as identical (resemblance 1).
pub fn jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// End-to-end shingle similarity of two token streams with window `w`.
pub fn shingle_similarity<T: Hash>(a: &[T], b: &[T], w: usize) -> f64 {
    jaccard(&shingles(a, w), &shingles(b, w))
}

/// Tokenizes whitespace-separated text (the "page content" labels of the
/// Web-archive workloads).
pub fn tokenize(text: &str) -> Vec<&str> {
    text.split_whitespace().collect()
}

/// Shingle similarity of two whitespace-tokenized texts.
pub fn text_similarity(a: &str, b: &str, w: usize) -> f64 {
    shingle_similarity(&tokenize(a), &tokenize(b), w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_texts_have_similarity_one() {
        let s = text_similarity("the quick brown fox", "the quick brown fox", 2);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_texts_have_similarity_zero() {
        let s = text_similarity("alpha beta gamma", "one two three", 2);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn partial_overlap_is_strictly_between() {
        let s = text_similarity(
            "books categories school arts audio",
            "books categories school music video",
            2,
        );
        assert!(s > 0.0 && s < 1.0, "got {s}");
    }

    #[test]
    fn short_document_uses_full_window() {
        let sh = shingles(&["only"], 4);
        assert_eq!(sh.len(), 1);
        assert!((text_similarity("only", "only", 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_documents_are_identical() {
        assert_eq!(text_similarity("", "", 3), 1.0);
        assert_eq!(text_similarity("", "words here now", 3), 0.0);
    }

    #[test]
    fn window_size_matters() {
        // Same bag of words, different order: unigram shingles identical,
        // bigram shingles not.
        let a = "a b c d";
        let b = "d c b a";
        assert!((text_similarity(a, b, 1) - 1.0).abs() < 1e-12);
        assert!(text_similarity(a, b, 2) < 1.0);
    }

    #[test]
    #[should_panic(expected = "shingle width")]
    fn zero_width_rejected() {
        shingles(&["x"], 0);
    }

    proptest! {
        #[test]
        fn prop_similarity_in_unit_interval(
            a in proptest::collection::vec("[a-f]{1,3}", 0..20),
            b in proptest::collection::vec("[a-f]{1,3}", 0..20),
            w in 1usize..5,
        ) {
            let s = shingle_similarity(&a, &b, w);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn prop_similarity_is_symmetric(
            a in proptest::collection::vec("[a-f]{1,3}", 0..20),
            b in proptest::collection::vec("[a-f]{1,3}", 0..20),
            w in 1usize..5,
        ) {
            prop_assert_eq!(shingle_similarity(&a, &b, w), shingle_similarity(&b, &a, w));
        }

        #[test]
        fn prop_self_similarity_is_one(
            a in proptest::collection::vec("[a-f]{1,3}", 1..20),
            w in 1usize..5,
        ) {
            prop_assert!((shingle_similarity(&a, &a, w) - 1.0).abs() < 1e-12);
        }
    }
}
