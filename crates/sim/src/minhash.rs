//! MinHash sketches for shingle resemblance (Broder \[8\] — the same paper
//! the shingling of §3.1 comes from introduced min-wise hashing).
//!
//! Computing exact Jaccard between all `|V1| × |V2|` page pairs is the
//! dominant cost of the Exp-1 pipeline on large skeletons; a `k`-hash
//! sketch estimates it in `O(k)` per pair with standard error
//! `≈ 1/√k`, which is what a production deployment of the paper's
//! matcher would use.

use crate::matrix::SimMatrix;
use phom_graph::DiGraph;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A fixed-size MinHash signature of a token stream's shingle set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHashSketch {
    sig: Vec<u64>,
}

/// Mixes a shingle hash with the `i`-th hash function (splitmix finalizer
/// over a seeded lane).
#[inline]
fn lane_hash(shingle: u64, lane: u64) -> u64 {
    let mut x = shingle ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

impl MinHashSketch {
    /// Sketches the `w`-shingle set of `tokens` with `k` hash lanes.
    ///
    /// # Panics
    /// Panics if `k == 0` or `w == 0`.
    pub fn new<T: Hash>(tokens: &[T], w: usize, k: usize) -> Self {
        assert!(k > 0, "sketch needs at least one lane");
        assert!(w > 0, "shingle width must be positive");
        let mut sig = vec![u64::MAX; k];
        if tokens.is_empty() {
            return Self { sig };
        }
        let width = w.min(tokens.len());
        for window in tokens.windows(width) {
            let mut h = DefaultHasher::new();
            for t in window {
                t.hash(&mut h);
            }
            let shingle = h.finish();
            for (lane, slot) in sig.iter_mut().enumerate() {
                let v = lane_hash(shingle, lane as u64);
                if v < *slot {
                    *slot = v;
                }
            }
        }
        Self { sig }
    }

    /// Number of hash lanes.
    pub fn lanes(&self) -> usize {
        self.sig.len()
    }

    /// Estimates the Jaccard resemblance of the underlying shingle sets:
    /// the fraction of agreeing lanes. Two empty sketches estimate 1.
    ///
    /// # Panics
    /// Panics when the lane counts differ.
    pub fn estimate_jaccard(&self, other: &MinHashSketch) -> f64 {
        assert_eq!(self.sig.len(), other.sig.len(), "lane count mismatch");
        let agree = self
            .sig
            .iter()
            .zip(other.sig.iter())
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.sig.len() as f64
    }
}

/// Builds a [`SimMatrix`] from MinHash sketches of the graphs' label
/// token streams: sketch every page once (`O((n1+n2)·k)`), then estimate
/// every pair in `O(k)` — the scalable substitute for the exact shingle
/// matrix on large skeletons. `token_of` extracts each node's token
/// stream; `w` is the shingle width, `k` the sketch lanes (standard
/// error ≈ `1/√k`).
pub fn minhash_matrix<L, T: Hash>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mut tokens_of: impl FnMut(&L) -> Vec<T>,
    w: usize,
    k: usize,
) -> SimMatrix {
    let sk1: Vec<MinHashSketch> = g1
        .nodes()
        .map(|v| MinHashSketch::new(&tokens_of(g1.label(v)), w, k))
        .collect();
    let sk2: Vec<MinHashSketch> = g2
        .nodes()
        .map(|u| MinHashSketch::new(&tokens_of(g2.label(u)), w, k))
        .collect();
    SimMatrix::from_fn(g1.node_count(), g2.node_count(), |v, u| {
        sk1[v.index()].estimate_jaccard(&sk2[u.index()])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shingle::shingle_similarity;
    use proptest::prelude::*;

    #[test]
    fn identical_streams_estimate_one() {
        let t: Vec<u32> = (0..40).collect();
        let a = MinHashSketch::new(&t, 3, 64);
        let b = MinHashSketch::new(&t, 3, 64);
        assert_eq!(a.estimate_jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_streams_estimate_near_zero() {
        let a: Vec<u32> = (0..40).collect();
        let b: Vec<u32> = (1000..1040).collect();
        let sa = MinHashSketch::new(&a, 3, 128);
        let sb = MinHashSketch::new(&b, 3, 128);
        assert!(sa.estimate_jaccard(&sb) < 0.05);
    }

    #[test]
    fn empty_sketches_are_identical() {
        let e: Vec<u32> = Vec::new();
        let a = MinHashSketch::new(&e, 3, 16);
        let b = MinHashSketch::new(&e, 3, 16);
        assert_eq!(a.estimate_jaccard(&b), 1.0);
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        // Two streams sharing half their content.
        let a: Vec<u32> = (0..60).collect();
        let b: Vec<u32> = (30..90).collect();
        let exact = shingle_similarity(&a, &b, 3);
        let sa = MinHashSketch::new(&a, 3, 256);
        let sb = MinHashSketch::new(&b, 3, 256);
        let est = sa.estimate_jaccard(&sb);
        assert!(
            (est - exact).abs() < 0.12,
            "estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn minhash_matrix_tracks_exact_shingle_matrix() {
        use phom_graph::{graph_from_labels, NodeId};
        let g1 = graph_from_labels(&["books fiction novels stories tales"], &[]);
        let g2 = graph_from_labels(
            &[
                "books fiction novels stories plays",
                "cameras lenses tripods flashes bags",
            ],
            &[],
        );
        let tok = |l: &String| -> Vec<String> { l.split_whitespace().map(str::to_owned).collect() };
        let m = minhash_matrix(&g1, &g2, tok, 2, 256);
        assert_eq!(m.n1(), 1);
        assert_eq!(m.n2(), 2);
        let near = m.score(NodeId(0), NodeId(0));
        let far = m.score(NodeId(0), NodeId(1));
        // Exact Jaccard of the near pair's 2-shingle sets is 3/5.
        assert!((near - 0.6).abs() < 0.15, "near estimate {near}");
        assert!(far < 0.05, "far estimate {far}");
    }

    #[test]
    #[should_panic(expected = "lane count mismatch")]
    fn mismatched_lanes_panic() {
        let a = MinHashSketch::new(&[1u32], 2, 8);
        let b = MinHashSketch::new(&[1u32], 2, 16);
        let _ = a.estimate_jaccard(&b);
    }

    proptest! {
        #[test]
        fn prop_estimate_in_unit_interval(
            a in proptest::collection::vec(0u16..50, 0..30),
            b in proptest::collection::vec(0u16..50, 0..30),
        ) {
            let sa = MinHashSketch::new(&a, 2, 32);
            let sb = MinHashSketch::new(&b, 2, 32);
            let e = sa.estimate_jaccard(&sb);
            prop_assert!((0.0..=1.0).contains(&e));
            // Symmetry.
            prop_assert_eq!(e, sb.estimate_jaccard(&sa));
        }

        #[test]
        fn prop_self_estimate_is_one(
            a in proptest::collection::vec(0u16..50, 1..30),
        ) {
            let s = MinHashSketch::new(&a, 3, 16);
            prop_assert_eq!(s.estimate_jaccard(&s), 1.0);
        }
    }
}
