//! PageRank — an alternative source of the `w(v)` node-importance weights
//! of the `qualSim` metric (§3.3 names hubs, authorities and degree as
//! examples of "important" nodes; PageRank is the other standard
//! importance score for Web graphs and completes the family next to
//! [`crate::hits`]).
//!
//! Damped power iteration with uniform teleport. Dangling nodes (no
//! out-edges) redistribute their mass uniformly, so the scores stay a
//! probability distribution at every iteration.

use phom_graph::{DiGraph, NodeId};

/// Configuration for the PageRank power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor `d` (probability of following a link).
    pub damping: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Stop early when the L1 change between iterations drops below this.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-10,
        }
    }
}

/// Computes PageRank scores for every node. The result sums to 1 (it is
/// the stationary distribution of the damped random surfer), and is the
/// uniform distribution for an empty edge set.
///
/// ```
/// use phom_graph::graph_from_labels;
/// use phom_sim::{pagerank, PageRankConfig};
///
/// let g = graph_from_labels(
///     &["hub", "x", "y"],
///     &[("x", "hub"), ("y", "hub")],
/// );
/// let pr = pagerank(&g, &PageRankConfig::default());
/// assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// assert!(pr[0] > pr[1]); // the endorsed hub ranks highest
/// ```
pub fn pagerank<L>(g: &DiGraph<L>, cfg: &PageRankConfig) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    assert!(
        (0.0..1.0).contains(&cfg.damping) || cfg.damping == 0.0 || cfg.damping < 1.0,
        "damping must be in [0, 1)"
    );
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];

    for _ in 0..cfg.max_iterations {
        // Teleport mass plus dangling-node mass, spread uniformly.
        let dangling: f64 = g
            .nodes()
            .filter(|&v| g.out_degree(v) == 0)
            .map(|v| rank[v.index()])
            .sum();
        let base = (1.0 - cfg.damping) * uniform + cfg.damping * dangling * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for v in g.nodes() {
            let deg = g.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = cfg.damping * rank[v.index()] / deg as f64;
            for &w in g.post(v) {
                next[w.index()] += share;
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < cfg.tolerance {
            break;
        }
    }
    rank
}

/// The `k` nodes with the highest PageRank, descending (ties by id) —
/// a skeleton-selection alternative to [`crate::hits::top_hits_nodes`].
pub fn top_pagerank_nodes<L>(g: &DiGraph<L>, cfg: &PageRankConfig, k: usize) -> Vec<NodeId> {
    let scores = pagerank(g, cfg);
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by(|a, b| {
        scores[b.index()]
            .total_cmp(&scores[a.index()])
            .then(a.cmp(b))
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    fn total(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn empty_graph_yields_empty_scores() {
        let g: DiGraph<()> = DiGraph::new();
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn isolated_nodes_share_mass_uniformly() {
        let mut g: DiGraph<u32> = DiGraph::new();
        for i in 0..4 {
            g.add_node(i);
        }
        let r = pagerank(&g, &PageRankConfig::default());
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-9);
        }
        assert!((total(&r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scores_sum_to_one_with_dangling_nodes() {
        // b is dangling.
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("c", "a")]);
        let r = pagerank(&g, &PageRankConfig::default());
        assert!((total(&r) - 1.0).abs() < 1e-9, "sum = {}", total(&r));
    }

    #[test]
    fn sink_of_a_chain_outranks_its_source() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let r = pagerank(&g, &PageRankConfig::default());
        assert!(r[2] > r[0], "chain sink accumulates rank: {r:?}");
    }

    #[test]
    fn hub_pointed_to_by_everyone_ranks_first() {
        let g = graph_from_labels(
            &["hub", "x", "y", "z"],
            &[("x", "hub"), ("y", "hub"), ("z", "hub"), ("hub", "x")],
        );
        let top = top_pagerank_nodes(&g, &PageRankConfig::default(), 1);
        assert_eq!(top, vec![NodeId(0)]);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c"), ("c", "a")]);
        let r = pagerank(&g, &PageRankConfig::default());
        for &x in &r {
            assert!((x - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn top_k_truncates_and_orders() {
        let g = graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("c", "b"), ("d", "b"), ("a", "c")],
        );
        let top = top_pagerank_nodes(&g, &PageRankConfig::default(), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], NodeId(1), "b collects three links");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = DiGraph<u32>> {
            (
                1usize..15,
                proptest::collection::vec((0usize..15, 0usize..15), 0..40),
            )
                .prop_map(|(n, raw)| {
                    let mut g = DiGraph::with_capacity(n);
                    for i in 0..n {
                        g.add_node(i as u32);
                    }
                    for (a, b) in raw {
                        g.add_edge(NodeId((a % n) as u32), NodeId((b % n) as u32));
                    }
                    g
                })
        }

        proptest! {
            #[test]
            fn prop_pagerank_is_a_distribution(g in arb_graph()) {
                let r = pagerank(&g, &PageRankConfig::default());
                prop_assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
                prop_assert!(r.iter().all(|&x| x > 0.0), "teleport keeps all > 0");
            }

            #[test]
            fn prop_pagerank_deterministic(g in arb_graph()) {
                let a = pagerank(&g, &PageRankConfig::default());
                let b = pagerank(&g, &PageRankConfig::default());
                prop_assert_eq!(a, b);
            }
        }
    }
}
