//! The similarity matrix `mat()` of §3.1: for each node pair
//! `(v, u) ∈ V1 × V2`, `mat(v, u) ∈ [0, 1]` says how close the labels are.
//! A node `v` may be mapped to `u` only when `mat(v, u) ≥ ξ`.

use phom_graph::{DiGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Dense `|V1| × |V2|` similarity matrix.
///
/// The paper computes `mat()` only on graph *skeletons* (§3.1, §6), so the
/// dense representation stays small in practice; entries default to `0.0`
/// ("totally different").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimMatrix {
    n1: usize,
    n2: usize,
    data: Vec<f64>,
}

impl SimMatrix {
    /// All-zero matrix for `n1` pattern nodes and `n2` data nodes.
    pub fn new(n1: usize, n2: usize) -> Self {
        Self {
            n1,
            n2,
            data: vec![0.0; n1 * n2],
        }
    }

    /// Builds the matrix entry-wise from `f(v, u)`.
    ///
    /// # Panics
    /// Panics if `f` produces a value outside `[0, 1]`.
    pub fn from_fn(n1: usize, n2: usize, mut f: impl FnMut(NodeId, NodeId) -> f64) -> Self {
        let mut m = Self::new(n1, n2);
        for v in 0..n1 {
            for u in 0..n2 {
                m.set(
                    NodeId(v as u32),
                    NodeId(u as u32),
                    f(NodeId(v as u32), NodeId(u as u32)),
                );
            }
        }
        m
    }

    /// The label-equality matrix used throughout the paper's examples:
    /// `mat(v, u) = 1` iff the labels are equal, else `0`.
    pub fn label_equality<L: PartialEq>(g1: &DiGraph<L>, g2: &DiGraph<L>) -> Self {
        Self::from_fn(g1.node_count(), g2.node_count(), |v, u| {
            if g1.label(v) == g2.label(u) {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Number of pattern-side nodes (`|V1|`).
    pub fn n1(&self) -> usize {
        self.n1
    }

    /// Number of data-side nodes (`|V2|`).
    pub fn n2(&self) -> usize {
        self.n2
    }

    /// `mat(v, u)`.
    #[inline]
    pub fn score(&self, v: NodeId, u: NodeId) -> f64 {
        self.data[v.index() * self.n2 + u.index()]
    }

    /// Sets `mat(v, u) = s`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ s ≤ 1`.
    #[inline]
    pub fn set(&mut self, v: NodeId, u: NodeId, s: f64) {
        assert!((0.0..=1.0).contains(&s), "similarity {s} outside [0,1]");
        self.data[v.index() * self.n2 + u.index()] = s;
    }

    /// Data-side candidates of `v` at threshold `xi` — the initial
    /// `H[v].good` of algorithm `compMaxCard` (Fig. 3 line 4).
    pub fn candidates(&self, v: NodeId, xi: f64) -> impl Iterator<Item = NodeId> + '_ {
        let row = &self.data[v.index() * self.n2..(v.index() + 1) * self.n2];
        row.iter()
            .enumerate()
            .filter(move |&(_, &s)| s >= xi)
            .map(|(u, _)| NodeId(u as u32))
    }

    /// Count of `(v, u)` pairs at or above `xi` (the candidate-pair budget
    /// `P ≤ |V1||V2|` that bounds the `greedyMatch` recursion).
    pub fn candidate_pair_count(&self, xi: f64) -> usize {
        self.data.iter().filter(|&&s| s >= xi).count()
    }

    /// The transposed matrix (swaps pattern and data sides) — used by the
    /// symmetric-matching helper of §3.2's Remark.
    pub fn transposed(&self) -> SimMatrix {
        let mut t = SimMatrix::new(self.n2, self.n1);
        for v in 0..self.n1 {
            for u in 0..self.n2 {
                t.data[u * self.n1 + v] = self.data[v * self.n2 + u];
            }
        }
        t
    }
}

/// Builder for sparse hand-written matrices (paper examples set a handful of
/// pairs and default the rest to 0).
#[derive(Debug, Default)]
pub struct SimMatrixBuilder {
    entries: Vec<(NodeId, NodeId, f64)>,
}

impl SimMatrixBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `mat(v, u) = s`.
    pub fn pair(mut self, v: NodeId, u: NodeId, s: f64) -> Self {
        self.entries.push((v, u, s));
        self
    }

    /// Finishes into a dense matrix of the given dimensions.
    pub fn build(self, n1: usize, n2: usize) -> SimMatrix {
        let mut m = SimMatrix::new(n1, n2);
        for (v, u, s) in self.entries {
            m.set(v, u, s);
        }
        m
    }
}

/// Builds `mat()` over string-labeled graphs from a label-pair function —
/// convenient for encoding the paper's `mate()` tables by label.
pub fn matrix_from_label_fn(
    g1: &DiGraph<String>,
    g2: &DiGraph<String>,
    mut f: impl FnMut(&str, &str) -> f64,
) -> SimMatrix {
    SimMatrix::from_fn(g1.node_count(), g2.node_count(), |v, u| {
        f(g1.label(v), g2.label(u))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::{graph_from_labels, DiGraph};

    #[test]
    fn new_is_all_zero() {
        let m = SimMatrix::new(2, 3);
        assert_eq!(m.score(NodeId(1), NodeId(2)), 0.0);
        assert_eq!(m.n1(), 2);
        assert_eq!(m.n2(), 3);
    }

    #[test]
    fn set_and_score() {
        let mut m = SimMatrix::new(2, 2);
        m.set(NodeId(0), NodeId(1), 0.7);
        assert_eq!(m.score(NodeId(0), NodeId(1)), 0.7);
        assert_eq!(m.score(NodeId(1), NodeId(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_out_of_range() {
        let mut m = SimMatrix::new(1, 1);
        m.set(NodeId(0), NodeId(0), 1.5);
    }

    #[test]
    fn label_equality_matrix() {
        let g1 = graph_from_labels(&["A", "B"], &[]);
        let mut g2: DiGraph<String> = DiGraph::new();
        for l in ["B", "A", "A"] {
            g2.add_node(l.to_owned());
        }
        let m = SimMatrix::label_equality(&g1, &g2);
        assert_eq!(m.score(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(m.score(NodeId(0), NodeId(0)), 0.0);
        assert_eq!(m.score(NodeId(1), NodeId(0)), 1.0);
        assert_eq!(m.candidates(NodeId(0), 0.5).count(), 2);
    }

    #[test]
    fn candidates_respect_threshold() {
        let mut m = SimMatrix::new(1, 3);
        m.set(NodeId(0), NodeId(0), 0.6);
        m.set(NodeId(0), NodeId(1), 0.59);
        m.set(NodeId(0), NodeId(2), 1.0);
        let c: Vec<NodeId> = m.candidates(NodeId(0), 0.6).collect();
        assert_eq!(c, vec![NodeId(0), NodeId(2)]);
        assert_eq!(m.candidate_pair_count(0.6), 2);
        assert_eq!(m.candidate_pair_count(0.0), 3);
    }

    #[test]
    fn builder_sets_only_listed_pairs() {
        let m = SimMatrixBuilder::new()
            .pair(NodeId(0), NodeId(1), 0.8)
            .pair(NodeId(1), NodeId(0), 0.6)
            .build(2, 2);
        assert_eq!(m.score(NodeId(0), NodeId(1)), 0.8);
        assert_eq!(m.score(NodeId(0), NodeId(0)), 0.0);
    }

    #[test]
    fn transpose_swaps_sides() {
        let mut m = SimMatrix::new(2, 3);
        m.set(NodeId(1), NodeId(2), 0.4);
        let t = m.transposed();
        assert_eq!(t.n1(), 3);
        assert_eq!(t.n2(), 2);
        assert_eq!(t.score(NodeId(2), NodeId(1)), 0.4);
        assert_eq!(t.score(NodeId(0), NodeId(0)), 0.0);
    }
}
