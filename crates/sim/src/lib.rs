//! # phom-sim
//!
//! Node-similarity substrate for the `p-hom` workspace (paper §3.1):
//!
//! * [`SimMatrix`] — the `mat()` similarity matrix with threshold-`ξ`
//!   candidate queries;
//! * [`shingle`] — w-shingling + Jaccard resemblance (Broder \[8\]), the
//!   paper's textual similarity for Web pages;
//! * [`tfidf`] — tf–idf cosine, an alternative textual `mat()` generator
//!   that discounts site-wide boilerplate;
//! * [`NodeWeights`] — the `w(v)` weights of the `qualSim` metric (uniform,
//!   degree-based, HITS-based, PageRank-based);
//! * [`hits`] — hubs & authorities (Kleinberg), for weights and skeleton
//!   node selection;
//! * [`mod@pagerank`] — damped PageRank, the other standard Web importance
//!   score, for weights and skeleton selection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hits;
pub mod matrix;
pub mod minhash;
pub mod pagerank;
pub mod shingle;
pub mod tfidf;
pub mod weights;

pub use hits::{hits_scores, top_hits_nodes, HitsScores};
pub use matrix::{matrix_from_label_fn, SimMatrix, SimMatrixBuilder};
pub use minhash::{minhash_matrix, MinHashSketch};
pub use pagerank::{pagerank, top_pagerank_nodes, PageRankConfig};
pub use shingle::{jaccard, shingle_similarity, shingles, text_similarity, tokenize};
pub use tfidf::{tfidf_matrix, TfIdfCorpus};
pub use weights::NodeWeights;
