//! HITS (Kleinberg hubs & authorities) power iteration. The paper uses
//! hub/authority status in two places: as node weights for `qualSim`
//! (§3.3) and for choosing "important" skeleton nodes (§3.1).

use phom_graph::{DiGraph, NodeId};

/// Normalized hub and authority scores (each vector sums to 1 for non-empty
/// graphs with at least one edge; isolated graphs get uniform scores).
#[derive(Debug, Clone)]
pub struct HitsScores {
    /// Hub score per node (links *to* good authorities).
    pub hub: Vec<f64>,
    /// Authority score per node (linked *from* good hubs).
    pub authority: Vec<f64>,
}

/// Runs `iterations` rounds of the HITS mutual-reinforcement update with
/// L1 normalization.
pub fn hits_scores<L>(g: &DiGraph<L>, iterations: usize) -> HitsScores {
    let n = g.node_count();
    if n == 0 {
        return HitsScores {
            hub: Vec::new(),
            authority: Vec::new(),
        };
    }
    let mut hub = vec![1.0 / n as f64; n];
    let mut auth = vec![1.0 / n as f64; n];

    for _ in 0..iterations {
        // auth(v) = sum of hub(p) over predecessors p.
        for v in g.nodes() {
            auth[v.index()] = g.prev(v).iter().map(|p| hub[p.index()]).sum();
        }
        normalize(&mut auth, n);
        // hub(v) = sum of auth(s) over successors s.
        for v in g.nodes() {
            hub[v.index()] = g.post(v).iter().map(|s| auth[s.index()]).sum();
        }
        normalize(&mut hub, n);
    }

    HitsScores {
        hub,
        authority: auth,
    }
}

fn normalize(xs: &mut [f64], n: usize) {
    let sum: f64 = xs.iter().sum();
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    } else {
        xs.fill(1.0 / n as f64);
    }
}

/// The `k` nodes with the highest combined hub+authority score, descending
/// (ties broken by node id). One of the "important node" selectors for
/// skeleton construction.
pub fn top_hits_nodes<L>(g: &DiGraph<L>, iterations: usize, k: usize) -> Vec<NodeId> {
    let s = hits_scores(g, iterations);
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.sort_by(|&a, &b| {
        let sa = s.hub[a.index()] + s.authority[a.index()];
        let sb = s.hub[b.index()] + s.authority[b.index()];
        sb.total_cmp(&sa).then(a.cmp(&b))
    });
    nodes.truncate(k);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    #[test]
    fn empty_graph() {
        let g: DiGraph<()> = DiGraph::new();
        let s = hits_scores(&g, 10);
        assert!(s.hub.is_empty());
        assert!(s.authority.is_empty());
    }

    #[test]
    fn star_hub_and_authorities() {
        let g = graph_from_labels(
            &["hub", "a", "b", "c"],
            &[("hub", "a"), ("hub", "b"), ("hub", "c")],
        );
        let s = hits_scores(&g, 30);
        assert!(s.hub[0] > 0.9, "center is the dominant hub: {}", s.hub[0]);
        assert!(s.authority[0] < 1e-9, "center receives no links");
        for i in 1..4 {
            assert!(s.authority[i] > 0.3);
            assert!(s.hub[i] < 1e-9);
        }
    }

    #[test]
    fn scores_sum_to_one() {
        let g = graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")],
        );
        let s = hits_scores(&g, 25);
        let hs: f64 = s.hub.iter().sum();
        let as_: f64 = s.authority.iter().sum();
        assert!((hs - 1.0).abs() < 1e-9);
        assert!((as_ - 1.0).abs() < 1e-9);
    }

    #[test]
    fn edgeless_graph_uniform() {
        let g = graph_from_labels(&["a", "b"], &[]);
        let s = hits_scores(&g, 5);
        assert!((s.hub[0] - 0.5).abs() < 1e-12);
        assert!((s.authority[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_nodes_ranked_by_combined_score() {
        let g = graph_from_labels(&["hub", "a", "b", "iso"], &[("hub", "a"), ("hub", "b")]);
        let top = top_hits_nodes(&g, 20, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], NodeId(0), "hub first");
        assert_ne!(top[1], NodeId(3), "isolated node never ranks");
    }
}
