//! tf–idf cosine similarity — a second textual `mat()` generator next to
//! [`crate::shingle`].
//!
//! §3.1 of the paper says the similarity matrix "can be generated in a
//! variety of ways"; shingling weights all regions equally, while tf–idf
//! cosine discounts boilerplate tokens that appear on every page (site
//! chrome, navigation) and is the standard alternative for page-content
//! similarity. Both produce values in `[0, 1]`, so they are drop-in
//! interchangeable as `mat()` sources.

use crate::matrix::SimMatrix;
use phom_graph::DiGraph;
use std::collections::HashMap;

/// A tf–idf vector space over a closed corpus of documents.
///
/// Build it once over *all* documents that will be compared (idf depends
/// on the whole corpus), then ask for pairwise cosines.
#[derive(Debug, Clone)]
pub struct TfIdfCorpus {
    /// Sparse tf–idf vectors, one per document, keyed by term id.
    vectors: Vec<HashMap<u32, f64>>,
    /// Per-vector Euclidean norms (cached for cosine).
    norms: Vec<f64>,
}

impl TfIdfCorpus {
    /// Builds the corpus from whitespace-tokenized documents.
    ///
    /// Uses raw term frequency and smoothed idf
    /// `ln(1 + N / df(t))`, which keeps every weight positive so
    /// identical documents always have cosine exactly 1.
    pub fn build<S: AsRef<str>>(documents: &[S]) -> Self {
        let n_docs = documents.len();
        let mut term_ids: HashMap<String, u32> = HashMap::new();
        let mut term_counts: Vec<HashMap<u32, f64>> = Vec::with_capacity(n_docs);
        let mut doc_freq: HashMap<u32, usize> = HashMap::new();

        for doc in documents {
            let mut counts: HashMap<u32, f64> = HashMap::new();
            for token in doc.as_ref().split_whitespace() {
                let next_id = term_ids.len() as u32;
                let id = *term_ids.entry(token.to_string()).or_insert(next_id);
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
            for &t in counts.keys() {
                *doc_freq.entry(t).or_insert(0) += 1;
            }
            term_counts.push(counts);
        }

        let mut vectors = Vec::with_capacity(n_docs);
        let mut norms = Vec::with_capacity(n_docs);
        for counts in term_counts {
            let mut vec: HashMap<u32, f64> = HashMap::with_capacity(counts.len());
            for (t, tf) in counts {
                let df = doc_freq[&t] as f64;
                let idf = (1.0 + n_docs as f64 / df).ln();
                vec.insert(t, tf * idf);
            }
            let norm = vec.values().map(|w| w * w).sum::<f64>().sqrt();
            vectors.push(vec);
            norms.push(norm);
        }
        Self { vectors, norms }
    }

    /// Number of documents in the corpus.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Cosine similarity of documents `i` and `j`, in `[0, 1]`.
    /// Two empty documents are defined as identical (1.0); an empty and a
    /// non-empty document are dissimilar (0.0).
    pub fn cosine(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (&self.vectors[i], &self.vectors[j]);
        let (na, nb) = (self.norms[i], self.norms[j]);
        if na == 0.0 && nb == 0.0 {
            return 1.0;
        }
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        // Iterate the smaller vector.
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let dot: f64 = small
            .iter()
            .filter_map(|(t, wa)| large.get(t).map(|wb| wa * wb))
            .sum();
        (dot / (na * nb)).clamp(0.0, 1.0)
    }
}

/// Builds a [`SimMatrix`] between two graphs whose labels are page text,
/// using tf–idf cosine over the joint corpus (pattern pages first, data
/// pages second, so idf reflects both sites).
///
/// ```
/// use phom_graph::{graph_from_labels, NodeId};
/// use phom_sim::tfidf_matrix;
///
/// let g1 = graph_from_labels(&["nav books sale"], &[]);
/// let g2 = graph_from_labels(&["nav books discount", "nav cameras"], &[]);
/// let mat = tfidf_matrix(&g1, &g2);
/// // The book pages share a distinctive term; the camera page only
/// // shares the site-wide "nav" boilerplate.
/// assert!(mat.score(NodeId(0), NodeId(0)) > mat.score(NodeId(0), NodeId(1)));
/// ```
pub fn tfidf_matrix<L: AsRef<str>>(g1: &DiGraph<L>, g2: &DiGraph<L>) -> SimMatrix {
    let n1 = g1.node_count();
    let docs: Vec<&str> = g1
        .nodes()
        .map(|v| g1.label(v).as_ref())
        .chain(g2.nodes().map(|u| g2.label(u).as_ref()))
        .collect();
    let corpus = TfIdfCorpus::build(&docs);
    SimMatrix::from_fn(n1, g2.node_count(), |v, u| {
        corpus.cosine(v.index(), n1 + u.index())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    #[test]
    fn identical_documents_have_cosine_one() {
        let c = TfIdfCorpus::build(&["books and music", "books and music"]);
        assert!((c.cosine(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_documents_have_cosine_zero() {
        let c = TfIdfCorpus::build(&["alpha beta", "gamma delta"]);
        assert_eq!(c.cosine(0, 1), 0.0);
    }

    #[test]
    fn empty_documents_edge_cases() {
        let c = TfIdfCorpus::build(&["", "", "words here"]);
        assert_eq!(c.cosine(0, 1), 1.0, "two empty docs are identical");
        assert_eq!(c.cosine(0, 2), 0.0, "empty vs non-empty");
    }

    #[test]
    fn shared_boilerplate_is_discounted() {
        // "menu" appears everywhere (low idf); the distinctive terms decide.
        let c = TfIdfCorpus::build(&[
            "menu books fiction",
            "menu books novels",
            "menu cameras lenses",
        ]);
        assert!(
            c.cosine(0, 1) > c.cosine(0, 2),
            "book pages more alike than book vs camera"
        );
    }

    #[test]
    fn cosine_is_symmetric() {
        let c = TfIdfCorpus::build(&["a b c d", "c d e", "a e"]);
        for i in 0..3 {
            for j in 0..3 {
                assert!((c.cosine(i, j) - c.cosine(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tfidf_matrix_spans_both_graphs() {
        let g1 = graph_from_labels(
            &["books fiction", "music cds"],
            &[("books fiction", "music cds")],
        );
        let g2 = graph_from_labels(
            &["books fiction", "cameras", "music cds vinyl"],
            &[("books fiction", "cameras")],
        );
        let m = tfidf_matrix(&g1, &g2);
        assert_eq!(m.n1(), 2);
        assert_eq!(m.n2(), 3);
        assert!((m.score(phom_graph::NodeId(0), phom_graph::NodeId(0)) - 1.0).abs() < 1e-12);
        assert!(m.score(phom_graph::NodeId(1), phom_graph::NodeId(2)) > 0.3);
        assert_eq!(m.score(phom_graph::NodeId(0), phom_graph::NodeId(1)), 0.0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_docs() -> impl Strategy<Value = Vec<String>> {
            proptest::collection::vec(
                proptest::collection::vec(0u8..6, 0..10).prop_map(|toks| {
                    toks.iter()
                        .map(|t| format!("t{t}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                }),
                2..8,
            )
        }

        proptest! {
            #[test]
            fn prop_cosine_in_unit_interval(docs in arb_docs()) {
                let c = TfIdfCorpus::build(&docs);
                for i in 0..docs.len() {
                    for j in 0..docs.len() {
                        let s = c.cosine(i, j);
                        prop_assert!((0.0..=1.0).contains(&s));
                    }
                }
            }

            #[test]
            fn prop_self_cosine_is_one(docs in arb_docs()) {
                let c = TfIdfCorpus::build(&docs);
                for i in 0..docs.len() {
                    prop_assert!((c.cosine(i, i) - 1.0).abs() < 1e-9);
                }
            }
        }
    }
}
