//! Breadth-first / depth-first traversal helpers shared by the matching
//! algorithms, the baselines, and the workload generators.

use crate::bitset::BitSet;
use crate::digraph::{DiGraph, NodeId};

/// Nodes reachable from `start` by a (possibly empty) path, as a bitset.
pub fn reachable_from<L>(g: &DiGraph<L>, start: NodeId) -> BitSet {
    let mut seen = BitSet::new(g.node_count());
    let mut stack = vec![start];
    seen.insert(start.index());
    while let Some(v) = stack.pop() {
        for &w in g.post(v) {
            if seen.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    seen
}

/// True when a **nonempty** path `from ⇝ to` exists (the edge-to-path
/// condition of p-hom); `from == to` requires a cycle through `from`.
pub fn has_nonempty_path<L>(g: &DiGraph<L>, from: NodeId, to: NodeId) -> bool {
    let mut seen = BitSet::new(g.node_count());
    let mut stack: Vec<NodeId> = g.post(from).to_vec();
    for &w in g.post(from) {
        seen.insert(w.index());
    }
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        for &w in g.post(v) {
            if seen.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    false
}

/// BFS order from `start` (ties broken by adjacency order).
pub fn bfs_order<L>(g: &DiGraph<L>, start: NodeId) -> Vec<NodeId> {
    let mut seen = BitSet::new(g.node_count());
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    seen.insert(start.index());
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.post(v) {
            if seen.insert(w.index()) {
                queue.push_back(w);
            }
        }
    }
    order
}

/// One shortest (fewest edges) nonempty path `from ⇝ to`, as the node list
/// `[from, .., to]`, or `None`. Used by examples to *exhibit* the witness
/// path behind an edge-to-path mapping.
pub fn shortest_nonempty_path<L>(g: &DiGraph<L>, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = BitSet::new(n);
    let mut queue = std::collections::VecDeque::new();
    for &w in g.post(from) {
        if seen.insert(w.index()) {
            parent[w.index()] = Some(from);
            queue.push_back(w);
        }
    }
    // Direct edge fast path (covers from == to with a self-loop).
    if g.has_edge(from, to) {
        return Some(vec![from, to]);
    }
    while let Some(v) = queue.pop_front() {
        if v == to {
            let mut path = vec![v];
            let mut cur = v;
            while let Some(p) = parent[cur.index()] {
                path.push(p);
                if p == from {
                    break;
                }
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &w in g.post(v) {
            if seen.insert(w.index()) {
                parent[w.index()] = Some(v);
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::graph_from_labels;

    fn sample() -> DiGraph<String> {
        graph_from_labels(
            &["a", "b", "c", "d", "x"],
            &[("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")],
        )
    }

    #[test]
    fn reachable_from_includes_start() {
        let g = sample();
        let r = reachable_from(&g, NodeId(0));
        assert!(r.contains(0));
        assert!(r.contains(3));
        assert!(!r.contains(4), "x is unreachable");
    }

    #[test]
    fn nonempty_path_excludes_trivial_self() {
        let g = sample();
        assert!(!has_nonempty_path(&g, NodeId(0), NodeId(0)));
        assert!(has_nonempty_path(&g, NodeId(0), NodeId(3)));
        assert!(!has_nonempty_path(&g, NodeId(3), NodeId(0)));
    }

    #[test]
    fn nonempty_path_via_cycle_to_self() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b"), ("b", "a")]);
        assert!(has_nonempty_path(&g, NodeId(0), NodeId(0)));
    }

    #[test]
    fn bfs_order_visits_level_by_level() {
        let g = sample();
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(order[0], NodeId(0));
        assert_eq!(order.len(), 4);
        let pos_b = order.iter().position(|&v| v == NodeId(1)).unwrap();
        let pos_d = order.iter().position(|&v| v == NodeId(3)).unwrap();
        assert!(pos_b < pos_d);
    }

    #[test]
    fn shortest_path_found_and_minimal() {
        let g = sample();
        let p = shortest_nonempty_path(&g, NodeId(0), NodeId(3)).expect("path exists");
        assert_eq!(p.first(), Some(&NodeId(0)));
        assert_eq!(p.last(), Some(&NodeId(3)));
        assert_eq!(p.len(), 3, "a -> c -> d beats a -> b -> c -> d");
    }

    #[test]
    fn shortest_path_none_when_unreachable() {
        let g = sample();
        assert!(shortest_nonempty_path(&g, NodeId(3), NodeId(0)).is_none());
        assert!(shortest_nonempty_path(&g, NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn shortest_path_self_loop() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a);
        assert_eq!(shortest_nonempty_path(&g, a, a), Some(vec![a, a]));
    }
}
