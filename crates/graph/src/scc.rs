//! Strongly connected components via Tarjan's algorithm (iterative).
//!
//! Used by the transitive-closure computation (Nuutila \[22\] computes closures
//! through SCC condensation) and by the `G2*` compression of Appendix B,
//! where every SCC of `G2` becomes a clique of `G2+` and is collapsed to one
//! bag-of-labels node.

use crate::digraph::{DiGraph, NodeId};

/// The strongly connected components of a graph.
///
/// Components are numbered `0..count` in **reverse topological order of
/// discovery**: Tarjan emits each component only after all components
/// reachable from it, so `comp[v] <= comp[w]` never holds for an edge
/// `v -> w` between distinct components... more precisely, for any edge
/// `v -> w` with `comp(v) != comp(w)`, `comp(v) > comp(w)`. Equivalently,
/// component ids form a reverse topological order of the condensation.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// `comp[v]` = component id of node `v`.
    comp: Vec<u32>,
    /// `members[c]` = nodes of component `c`.
    members: Vec<Vec<NodeId>>,
}

impl SccResult {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Component id of `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> usize {
        self.comp[v.index()] as usize
    }

    /// Nodes of component `c`.
    pub fn members(&self, c: usize) -> &[NodeId] {
        &self.members[c]
    }

    /// Iterator over components (slices of member nodes).
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.members.iter().map(|m| m.as_slice())
    }

    /// True when `a` and `b` are mutually reachable (same SCC).
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.comp[a.index()] == self.comp[b.index()]
    }

    /// Component ids listed in topological order of the condensation
    /// (sources first). Tarjan numbering is reverse-topological, so this is
    /// simply `count-1, .., 0`.
    pub fn topological_order(&self) -> impl Iterator<Item = usize> {
        (0..self.members.len()).rev()
    }
}

/// Computes the strongly connected components of `g`.
///
/// Iterative Tarjan: linear in `|V| + |E|`, no recursion (safe for the deep
/// path graphs the workload generator produces).
pub fn tarjan_scc<L>(g: &DiGraph<L>) -> SccResult {
    const UNVISITED: u32 = u32::MAX;
    let n = g.node_count();
    let mut index = vec![UNVISITED; n]; // discovery index
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut next_index = 0u32;

    // Explicit DFS frame: (node, next child position).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();

    for root in g.nodes() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root.index()] = next_index;
        lowlink[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let succs = g.post(v);
            if *child < succs.len() {
                let w = succs[*child];
                *child += 1;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    lowlink[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    frames.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    lowlink[p.index()] = lowlink[p.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    // v is the root of a component: pop it off the stack.
                    let cid = members.len() as u32;
                    let mut group = Vec::new();
                    loop {
                        // phom-lint: allow(unwrap, "Tarjan invariant: a root's component members are on the stack above it")
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        comp[w.index()] = cid;
                        group.push(w);
                        if w == v {
                            break;
                        }
                    }
                    group.reverse();
                    members.push(group);
                }
            }
        }
    }

    SccResult { comp, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::graph_from_labels;

    #[test]
    fn singleton_components_for_dag() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c"), ("a", "c")]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 3);
        for c in 0..3 {
            assert_eq!(scc.members(c).len(), 1);
        }
    }

    #[test]
    fn cycle_is_one_component() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c"), ("c", "a")]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.members(0).len(), 3);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // a<->b  ->  c<->d
        let g = graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")],
        );
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 2);
        assert!(scc.same_component(NodeId(0), NodeId(1)));
        assert!(scc.same_component(NodeId(2), NodeId(3)));
        assert!(!scc.same_component(NodeId(0), NodeId(2)));
        // Edge between components goes from higher comp id to lower
        // (reverse topological numbering).
        assert!(scc.component_of(NodeId(0)) > scc.component_of(NodeId(2)));
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<()> = DiGraph::new();
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 0);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 200k-node path; recursive Tarjan would blow the stack.
        let mut g: DiGraph<()> = DiGraph::with_capacity(200_000);
        let mut prev = g.add_node(());
        for _ in 1..200_000 {
            let v = g.add_node(());
            g.add_edge(prev, v);
            prev = v;
        }
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 200_000);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")],
        );
        let scc = tarjan_scc(&g);
        let order: Vec<usize> = scc.topological_order().collect();
        let pos = |c: usize| order.iter().position(|&x| x == c).expect("present");
        for (u, v) in g.edges() {
            let cu = scc.component_of(u);
            let cv = scc.component_of(v);
            if cu != cv {
                assert!(pos(cu) < pos(cv), "edge {u:?}->{v:?} violates topo order");
            }
        }
    }
}
