//! SCC condensation and the `G2*` compression of Appendix B.
//!
//! Each strongly connected component of `G2` forms a clique in the closure
//! `G2+`. Appendix B replaces each such clique by a *single node with a
//! self-loop* whose label is the **bag of all node labels** in the clique;
//! matching against the compressed graph is equivalent (with bag-aware node
//! similarity) and often much cheaper.

use crate::digraph::{DiGraph, NodeId};
use crate::scc::{tarjan_scc, SccResult};

/// The condensation DAG: one node per SCC, labeled with its member list;
/// an edge `c1 -> c2` iff some member of `c1` has an edge to a member of
/// `c2` in the original graph.
pub fn condensation<L>(g: &DiGraph<L>, scc: &SccResult) -> DiGraph<Vec<NodeId>> {
    let mut dag: DiGraph<Vec<NodeId>> = DiGraph::with_capacity(scc.count());
    for c in 0..scc.count() {
        dag.add_node(scc.members(c).to_vec());
    }
    for (u, v) in g.edges() {
        let cu = scc.component_of(u);
        let cv = scc.component_of(v);
        if cu != cv {
            dag.add_edge(NodeId(cu as u32), NodeId(cv as u32));
        }
    }
    dag
}

/// A graph compressed per Appendix B, plus the node correspondence needed to
/// translate mappings back to the original graph.
#[derive(Debug, Clone)]
pub struct CompressedGraph<L> {
    /// `G2*`: one node per SCC. Cyclic components carry a self-loop.
    /// Node labels are the bags of original labels.
    pub graph: DiGraph<Vec<L>>,
    /// `members[c]` = original nodes collapsed into compressed node `c`.
    pub members: Vec<Vec<NodeId>>,
    /// `rep_of[v]` = compressed node holding original node `v`.
    pub rep_of: Vec<NodeId>,
}

impl<L> CompressedGraph<L> {
    /// The compressed node that original node `v` collapsed into.
    pub fn representative(&self, v: NodeId) -> NodeId {
        self.rep_of[v.index()]
    }

    /// Original nodes represented by compressed node `c`.
    pub fn expand(&self, c: NodeId) -> &[NodeId] {
        &self.members[c.index()]
    }
}

/// Builds `G2*` from `g` (Appendix B, Fig. 10(b)).
///
/// Compressed edges follow original edges between distinct SCCs; a cyclic
/// SCC (size > 1, or a single node with a self-loop) gets a self-loop so
/// that paths may "stay" inside the clique, exactly as in `G2+`.
pub fn compress_closure<L: Clone>(g: &DiGraph<L>) -> CompressedGraph<L> {
    compress_closure_with(g, &tarjan_scc(g))
}

/// [`compress_closure`] reusing an existing SCC decomposition of `g`
/// (callers that already ran Tarjan — the engine's prepare/update paths —
/// skip the second pass).
pub fn compress_closure_with<L: Clone>(g: &DiGraph<L>, scc: &SccResult) -> CompressedGraph<L> {
    let mut cg: DiGraph<Vec<L>> = DiGraph::with_capacity(scc.count());
    let mut members = Vec::with_capacity(scc.count());
    let mut rep_of = vec![NodeId(0); g.node_count()];

    for c in 0..scc.count() {
        let bag: Vec<L> = scc.members(c).iter().map(|&v| g.label(v).clone()).collect();
        let cid = cg.add_node(bag);
        for &v in scc.members(c) {
            rep_of[v.index()] = cid;
        }
        members.push(scc.members(c).to_vec());
    }
    for (u, v) in g.edges() {
        let cu = rep_of[u.index()];
        let cv = rep_of[v.index()];
        if cu != cv {
            cg.add_edge(cu, cv);
        } else if scc.members(cu.index()).len() > 1 || u == v {
            cg.add_edge(cu, cu); // cyclic component keeps a self-loop
        }
    }

    CompressedGraph {
        graph: cg,
        members,
        rep_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::TransitiveClosure;
    use crate::digraph::graph_from_labels;

    #[test]
    fn condensation_of_dag_is_isomorphic() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let scc = tarjan_scc(&g);
        let dag = condensation(&g, &scc);
        assert_eq!(dag.node_count(), 3);
        assert_eq!(dag.edge_count(), 2);
    }

    #[test]
    fn condensation_collapses_cycle() {
        let g = graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
        );
        let scc = tarjan_scc(&g);
        let dag = condensation(&g, &scc);
        assert_eq!(dag.node_count(), 3);
        assert_eq!(dag.edge_count(), 2);
        // The condensation is acyclic.
        let dag_scc = tarjan_scc(&dag);
        assert_eq!(dag_scc.count(), dag.node_count());
    }

    #[test]
    fn fig_10b_compression_example() {
        // G2 of Fig. 10(b): A -> {B,C,D cycle}. Compressed: A -> BCD*.
        let g = graph_from_labels(
            &["A", "B", "C", "D"],
            &[("A", "B"), ("B", "C"), ("C", "D"), ("D", "B")],
        );
        let c = compress_closure(&g);
        assert_eq!(c.graph.node_count(), 2);
        let a_rep = c.representative(NodeId(0));
        let b_rep = c.representative(NodeId(1));
        assert_ne!(a_rep, b_rep);
        assert_eq!(c.representative(NodeId(2)), b_rep);
        assert_eq!(c.representative(NodeId(3)), b_rep);
        assert!(c.graph.has_edge(a_rep, b_rep));
        assert!(c.graph.has_self_loop(b_rep), "clique keeps a self-loop");
        assert!(!c.graph.has_self_loop(a_rep));
        let mut bag = c.graph.label(b_rep).clone();
        bag.sort();
        assert_eq!(bag, vec!["B".to_owned(), "C".into(), "D".into()]);
    }

    #[test]
    fn self_loop_survives_compression() {
        let mut g: DiGraph<&str> = DiGraph::new();
        let a = g.add_node("a");
        g.add_edge(a, a);
        let c = compress_closure(&g);
        assert_eq!(c.graph.node_count(), 1);
        assert!(c.graph.has_self_loop(NodeId(0)));
    }

    #[test]
    fn compression_preserves_reachability() {
        // Reachability between compressed representatives must mirror
        // reachability between the original nodes (the Appendix-B claim
        // that matching on G2* is equivalent rests on this).
        let g = graph_from_labels(
            &["a", "b", "c", "d", "e"],
            &[
                ("a", "b"),
                ("b", "c"),
                ("c", "b"),
                ("c", "d"),
                ("d", "e"),
                ("e", "d"),
            ],
        );
        let tc = TransitiveClosure::new(&g);
        let comp = compress_closure(&g);
        let ctc = TransitiveClosure::new(&comp.graph);
        for u in g.nodes() {
            for v in g.nodes() {
                let cu = comp.representative(u);
                let cv = comp.representative(v);
                let orig = tc.reaches(u, v);
                // Same-component pairs rely on the compressed self-loop.
                let compressed = ctc.reaches(cu, cv);
                assert_eq!(orig, compressed, "{u:?}->{v:?}");
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = DiGraph<u32>> {
            (
                1usize..15,
                proptest::collection::vec((0usize..15, 0usize..15), 0..50),
            )
                .prop_map(|(n, raw)| {
                    let mut g = DiGraph::with_capacity(n);
                    for i in 0..n {
                        g.add_node(i as u32);
                    }
                    for (a, b) in raw {
                        g.add_edge(NodeId((a % n) as u32), NodeId((b % n) as u32));
                    }
                    g
                })
        }

        proptest! {
            #[test]
            fn prop_compression_preserves_proper_reachability(g in arb_graph()) {
                let tc = TransitiveClosure::new(&g);
                let comp = compress_closure(&g);
                let ctc = TransitiveClosure::new(&comp.graph);
                for u in g.nodes() {
                    for v in g.nodes() {
                        prop_assert_eq!(
                            tc.reaches(u, v),
                            ctc.reaches(comp.representative(u), comp.representative(v)),
                            "{:?}->{:?}", u, v
                        );
                    }
                }
            }

            #[test]
            fn prop_condensation_is_acyclic(g in arb_graph()) {
                let scc = tarjan_scc(&g);
                let dag = condensation(&g, &scc);
                let scc2 = tarjan_scc(&dag);
                prop_assert_eq!(scc2.count(), dag.node_count());
                for c in dag.nodes() {
                    prop_assert!(!dag.has_self_loop(c));
                }
            }
        }
    }
}
