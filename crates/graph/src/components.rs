//! Weakly connected components (Appendix B, "Partitioning graph G1").
//!
//! After dropping pattern nodes with no candidate match, `G1` may fall apart
//! into pairwise disconnected components; Proposition 1 lets the matcher run
//! on each component independently and union the results.

use crate::digraph::{DiGraph, NodeId};

/// Weakly connected components of `g`.
///
/// Returns one `Vec<NodeId>` per component, members in ascending id order,
/// components ordered by their smallest member.
pub fn weakly_connected_components<L>(g: &DiGraph<L>) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    let mut stack: Vec<NodeId> = Vec::new();

    for root in g.nodes() {
        if comp[root.index()] != usize::MAX {
            continue;
        }
        comp[root.index()] = count;
        stack.push(root);
        while let Some(v) = stack.pop() {
            for &w in g.post(v).iter().chain(g.prev(v).iter()) {
                if comp[w.index()] == usize::MAX {
                    comp[w.index()] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }

    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for v in g.nodes() {
        out[comp[v.index()]].push(v);
    }
    out
}

/// True when `g` is weakly connected (or empty).
pub fn is_weakly_connected<L>(g: &DiGraph<L>) -> bool {
    weakly_connected_components(g).len() <= 1
}

/// Balances the weakly connected components of `g` into at most
/// `max_groups` node groups — the shard layout a serving registry splits
/// a multi-WCC data graph along (no edge, and therefore no p-hom witness
/// path, ever crosses a group boundary).
///
/// Deterministic: components are assigned largest-first (ties by smallest
/// member) to the currently lightest group (ties by lowest group index),
/// every group's node list is ascending, and the groups themselves are
/// ordered by their smallest member — so node-id order is preserved
/// *within* each group, which keeps id-based tie-breaking in the matching
/// kernels consistent between a shard and the full graph.
///
/// Returns one group when `max_groups <= 1`, the graph is weakly
/// connected, or the graph is empty (then: zero groups).
pub fn component_groups<L>(g: &DiGraph<L>, max_groups: usize) -> Vec<Vec<NodeId>> {
    let comps = weakly_connected_components(g);
    if comps.is_empty() {
        return Vec::new();
    }
    if max_groups <= 1 || comps.len() == 1 {
        return vec![g.nodes().collect()];
    }
    let groups = comps.len().min(max_groups);
    // Largest component first; equal sizes keep their smallest-member
    // order (weakly_connected_components already orders by it).
    let mut order: Vec<usize> = (0..comps.len()).collect();
    order.sort_by_key(|&i| (usize::MAX - comps[i].len(), comps[i][0].index()));
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); groups];
    let mut load = vec![0usize; groups];
    for i in order {
        let lightest = (0..groups)
            .min_by_key(|&b| (load[b], b))
            // phom-lint: allow(unwrap, "groups = comps.len().min(max_groups) with both > 1 on this path")
            .expect("groups > 0");
        load[lightest] += comps[i].len();
        bins[lightest].push(i);
    }
    let mut out: Vec<Vec<NodeId>> = bins
        .into_iter()
        .filter(|b| !b.is_empty())
        .map(|b| {
            let mut nodes: Vec<NodeId> = b.iter().flat_map(|&i| comps[i].iter().copied()).collect();
            nodes.sort_unstable();
            nodes
        })
        .collect();
    out.sort_by_key(|nodes| nodes[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::graph_from_labels;

    #[test]
    fn empty_graph_has_no_components() {
        let g: DiGraph<()> = DiGraph::new();
        assert!(weakly_connected_components(&g).is_empty());
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn direction_is_ignored() {
        // a -> b, c -> b : weakly one component despite no directed path a~c.
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("c", "b")]);
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn fig_10a_partition() {
        // Fig. 10(a): removing C from G1 leaves components {A,B,D},
        // {E} and {F,G}. We build the already-reduced graph here.
        let g = graph_from_labels(
            &["A", "B", "D", "E", "F", "G"],
            &[("A", "B"), ("B", "D"), ("F", "G")],
        );
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 1, "singleton component E");
        assert_eq!(comps[2].len(), 2);
    }

    #[test]
    fn component_groups_balance_and_preserve_order() {
        // Components: {0,1,2} (path), {3,4} (edge), {5} — 6 nodes.
        let g = graph_from_labels(
            &["a", "b", "c", "d", "e", "f"],
            &[("a", "b"), ("b", "c"), ("d", "e")],
        );
        let two = component_groups(&g, 2);
        assert_eq!(two.len(), 2);
        // Largest-first into lightest bin: {0,1,2} -> g0, {3,4} -> g1,
        // {5} -> g1; groups reordered by smallest member.
        assert_eq!(two[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(two[1], vec![NodeId(3), NodeId(4), NodeId(5)]);
        // Every group ascending, all nodes covered exactly once.
        let mut all: Vec<NodeId> = two.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, g.nodes().collect::<Vec<_>>());
        // More groups than components: one group per component.
        assert_eq!(component_groups(&g, 10).len(), 3);
        // max_groups <= 1 collapses to a single group.
        assert_eq!(component_groups(&g, 1).len(), 1);
        assert_eq!(component_groups(&g, 0).len(), 1);
        // Empty graph: no groups.
        let empty: DiGraph<()> = DiGraph::new();
        assert!(component_groups(&empty, 4).is_empty());
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut g: DiGraph<u8> = DiGraph::new();
        for i in 0..4 {
            g.add_node(i);
        }
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 4);
        assert!(!is_weakly_connected(&g));
    }
}
