//! Weakly connected components (Appendix B, "Partitioning graph G1").
//!
//! After dropping pattern nodes with no candidate match, `G1` may fall apart
//! into pairwise disconnected components; Proposition 1 lets the matcher run
//! on each component independently and union the results.

use crate::digraph::{DiGraph, NodeId};

/// Weakly connected components of `g`.
///
/// Returns one `Vec<NodeId>` per component, members in ascending id order,
/// components ordered by their smallest member.
pub fn weakly_connected_components<L>(g: &DiGraph<L>) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    let mut stack: Vec<NodeId> = Vec::new();

    for root in g.nodes() {
        if comp[root.index()] != usize::MAX {
            continue;
        }
        comp[root.index()] = count;
        stack.push(root);
        while let Some(v) = stack.pop() {
            for &w in g.post(v).iter().chain(g.prev(v).iter()) {
                if comp[w.index()] == usize::MAX {
                    comp[w.index()] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }

    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for v in g.nodes() {
        out[comp[v.index()]].push(v);
    }
    out
}

/// True when `g` is weakly connected (or empty).
pub fn is_weakly_connected<L>(g: &DiGraph<L>) -> bool {
    weakly_connected_components(g).len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::graph_from_labels;

    #[test]
    fn empty_graph_has_no_components() {
        let g: DiGraph<()> = DiGraph::new();
        assert!(weakly_connected_components(&g).is_empty());
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn direction_is_ignored() {
        // a -> b, c -> b : weakly one component despite no directed path a~c.
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("c", "b")]);
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn fig_10a_partition() {
        // Fig. 10(a): removing C from G1 leaves components {A,B,D},
        // {E} and {F,G}. We build the already-reduced graph here.
        let g = graph_from_labels(
            &["A", "B", "D", "E", "F", "G"],
            &[("A", "B"), ("B", "D"), ("F", "G")],
        );
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 1, "singleton component E");
        assert_eq!(comps[2].len(), 2);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut g: DiGraph<u8> = DiGraph::new();
        for i in 0..4 {
            g.add_node(i);
        }
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 4);
        assert!(!is_weakly_connected(&g));
    }
}
