//! Random and structured graph generators shared by tests, property
//! strategies, and benches (`G(n, m)` digraphs, DAGs, paths, cycles,
//! preferential-attachment graphs).

use crate::digraph::{DiGraph, NodeId};

/// Minimal xorshift64* RNG so the substrate crate stays dependency-free;
/// good enough for workload generation, not for cryptography.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator (zero is mapped to a fixed nonzero seed).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// `G(n, m)`: `n` nodes labeled `0..n`, `m` distinct random edges
/// (no self-loops; `m` is capped at `n(n-1)`).
pub fn gnm_random(n: usize, m: usize, seed: u64) -> DiGraph<u32> {
    let mut rng = XorShift64::new(seed);
    let mut g = DiGraph::with_capacity(n);
    for i in 0..n {
        g.add_node(i as u32);
    }
    if n < 2 {
        return g;
    }
    let target = m.min(n * (n - 1));
    let mut guard = 0usize;
    while g.edge_count() < target && guard < 100 * target.max(1) {
        guard += 1;
        let a = rng.below(n);
        let b = rng.below(n);
        if a != b {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    g
}

/// Random DAG: like `G(n, m)` but every edge goes from a lower to a higher
/// node id (the paper's hardness results already hold on DAGs).
pub fn random_dag(n: usize, m: usize, seed: u64) -> DiGraph<u32> {
    let mut rng = XorShift64::new(seed);
    let mut g = DiGraph::with_capacity(n);
    for i in 0..n {
        g.add_node(i as u32);
    }
    if n < 2 {
        return g;
    }
    let target = m.min(n * (n - 1) / 2);
    let mut guard = 0usize;
    while g.edge_count() < target && guard < 100 * target.max(1) {
        guard += 1;
        let a = rng.below(n);
        let b = rng.below(n);
        if a != b {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            g.add_edge(NodeId(lo as u32), NodeId(hi as u32));
        }
    }
    g
}

/// Directed path `0 -> 1 -> .. -> n-1`.
pub fn path(n: usize) -> DiGraph<u32> {
    let mut g = DiGraph::with_capacity(n);
    for i in 0..n {
        g.add_node(i as u32);
    }
    for i in 1..n {
        g.add_edge(NodeId((i - 1) as u32), NodeId(i as u32));
    }
    g
}

/// Directed cycle over `n ≥ 1` nodes (a self-loop when `n == 1`).
pub fn cycle(n: usize) -> DiGraph<u32> {
    let mut g = path(n);
    if n >= 1 {
        g.add_edge(NodeId((n - 1) as u32), NodeId(0));
    }
    g
}

/// Directed `rows × cols` grid DAG: node `(r, c)` has id `r·cols + c`
/// and edges right `(r, c) -> (r, c+1)` and down `(r, c) -> (r+1, c)`.
/// Shortest-path distance between reachable cells equals Manhattan
/// distance, which makes grids the canonical fixture for hop-bounded
/// reachability tests.
pub fn grid(rows: usize, cols: usize) -> DiGraph<u32> {
    let mut g = DiGraph::with_capacity(rows * cols);
    for i in 0..rows * cols {
        g.add_node(i as u32);
    }
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// Preferential attachment: each new node links to `k` existing nodes
/// chosen with probability proportional to their current degree — yields
/// the heavy-tailed hub structure of Web graphs.
pub fn preferential_attachment(n: usize, k: usize, seed: u64) -> DiGraph<u32> {
    let mut rng = XorShift64::new(seed);
    let mut g = DiGraph::with_capacity(n);
    if n == 0 {
        return g;
    }
    g.add_node(0);
    // Endpoint pool: node id appears once per incident edge + once flat.
    let mut pool: Vec<u32> = vec![0];
    for i in 1..n {
        let v = g.add_node(i as u32);
        for _ in 0..k.min(i) {
            let target = pool[rng.below(pool.len())];
            if g.add_edge(v, NodeId(target)) {
                pool.push(target);
                pool.push(v.0);
            }
        }
        pool.push(v.0);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::tarjan_scc;

    #[test]
    fn grid_shape_and_edge_count() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // right edges: 3 rows × 3, down edges: 2 × 4.
        assert_eq!(g.edge_count(), 9 + 8);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 12, "grid is a DAG");
        // Corner degrees.
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.out_degree(NodeId(11)), 0);
    }

    #[test]
    fn grid_bounded_reachability_is_manhattan_distance() {
        // On the grid DAG a cell (r2, c2) is ≤k-hop reachable from
        // (r1, c1) iff r2 ≥ r1, c2 ≥ c1, and the Manhattan distance is
        // in [1, k] — the closed form the bounded closure must match.
        let (rows, cols) = (4usize, 5usize);
        let g = grid(rows, cols);
        for k in 0..=(rows + cols) {
            let tc = crate::closure::TransitiveClosure::bounded(&g, k);
            for r1 in 0..rows {
                for c1 in 0..cols {
                    for r2 in 0..rows {
                        for c2 in 0..cols {
                            let from = NodeId((r1 * cols + c1) as u32);
                            let to = NodeId((r2 * cols + c2) as u32);
                            let dist = (r2 as isize - r1 as isize) + (c2 as isize - c1 as isize);
                            let expected = r2 >= r1 && c2 >= c1 && dist >= 1 && dist as usize <= k;
                            assert_eq!(
                                tc.reaches(from, to),
                                expected,
                                "({r1},{c1})->({r2},{c2}) at k={k}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gnm_respects_counts() {
        let g = gnm_random(50, 200, 7);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 200);
        for (a, b) in g.edges() {
            assert_ne!(a, b, "no self-loops");
        }
    }

    #[test]
    fn gnm_is_deterministic() {
        let a = gnm_random(30, 100, 5);
        let b = gnm_random(30, 100, 5);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn gnm_caps_impossible_edge_counts() {
        let g = gnm_random(3, 100, 1);
        assert_eq!(g.edge_count(), 6, "3 nodes host at most 6 directed edges");
    }

    #[test]
    fn random_dag_is_acyclic() {
        let g = random_dag(40, 150, 11);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), g.node_count(), "every SCC is a singleton");
        for (a, b) in g.edges() {
            assert!(a < b);
        }
    }

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5);
        assert_eq!(p.edge_count(), 4);
        let c = cycle(5);
        assert_eq!(c.edge_count(), 5);
        assert_eq!(tarjan_scc(&c).count(), 1);
        let loop1 = cycle(1);
        assert!(loop1.has_self_loop(NodeId(0)));
    }

    #[test]
    fn preferential_attachment_grows_hubs() {
        let g = preferential_attachment(300, 2, 3);
        assert_eq!(g.node_count(), 300);
        // Heavy tail: the max degree should far exceed the mean.
        let max = g.max_degree() as f64;
        assert!(
            max >= 3.0 * g.avg_degree(),
            "max {max} vs avg {}",
            g.avg_degree()
        );
    }

    #[test]
    fn xorshift_unit_in_range() {
        let mut rng = XorShift64::new(42);
        for _ in 0..1000 {
            let x = rng.unit();
            assert!((0.0..1.0).contains(&x));
        }
        // Zero seed does not lock up.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), z.next_u64());
    }
}
