//! Graph (de)serialization: a human-readable text format for examples and
//! test fixtures, plus a compact binary snapshot (via `bytes`) used by the
//! benchmark harness to cache generated workloads between runs.
//!
//! Text format (one record per line, `#` comments allowed):
//! ```text
//! node <id> <label>
//! edge <from> <to>
//! ```
//! Node ids must be dense and appear in order (0, 1, 2, ...).

use crate::digraph::{DiGraph, NodeId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when parsing the text or binary formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not match `node`/`edge` syntax.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Node ids were not dense/in order.
    NonDenseId {
        /// 1-based line number.
        line: usize,
        /// The id that should have appeared.
        expected: u32,
        /// The id that actually appeared.
        found: u32,
    },
    /// An edge referenced an undeclared node.
    UnknownNode {
        /// 1-based line number.
        line: usize,
        /// The out-of-range node id.
        id: u32,
    },
    /// Binary snapshot was truncated or had a bad magic value.
    Corrupt(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::NonDenseId {
                line,
                expected,
                found,
            } => {
                write!(f, "line {line}: expected node id {expected}, found {found}")
            }
            ParseError::UnknownNode { line, id } => {
                write!(f, "line {line}: edge references unknown node {id}")
            }
            ParseError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a string-labeled graph to the text format.
pub fn to_text(g: &DiGraph<String>) -> String {
    let mut s = String::with_capacity(16 * (g.node_count() + g.edge_count()));
    for v in g.nodes() {
        s.push_str("node ");
        s.push_str(&v.0.to_string());
        s.push(' ');
        s.push_str(g.label(v));
        s.push('\n');
    }
    for (a, b) in g.edges() {
        s.push_str(&format!("edge {} {}\n", a.0, b.0));
    }
    s
}

/// Parses the text format produced by [`to_text`].
pub fn from_text(text: &str) -> Result<DiGraph<String>, ParseError> {
    let mut g = DiGraph::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let kind = parts.next().unwrap_or("");
        match kind {
            "node" => {
                let id: u32 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                    ParseError::Syntax {
                        line: line_no,
                        message: "node needs a numeric id".into(),
                    }
                })?;
                let label = parts.next().unwrap_or("").to_owned();
                let expected = g.node_count() as u32;
                if id != expected {
                    return Err(ParseError::NonDenseId {
                        line: line_no,
                        expected,
                        found: id,
                    });
                }
                g.add_node(label);
            }
            "edge" => {
                let a: u32 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                    ParseError::Syntax {
                        line: line_no,
                        message: "edge needs two numeric ids".into(),
                    }
                })?;
                let b: u32 = parts
                    .next()
                    .and_then(|t| t.trim().parse().ok())
                    .ok_or_else(|| ParseError::Syntax {
                        line: line_no,
                        message: "edge needs two numeric ids".into(),
                    })?;
                for id in [a, b] {
                    if id as usize >= g.node_count() {
                        return Err(ParseError::UnknownNode { line: line_no, id });
                    }
                }
                g.add_edge(NodeId(a), NodeId(b));
            }
            other => {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: format!("unknown record kind {other:?}"),
                })
            }
        }
    }
    Ok(g)
}

const SNAPSHOT_MAGIC: u32 = 0x7048_6f6d; // "pHom"

/// Serializes a string-labeled graph into a compact binary snapshot.
pub fn to_snapshot(g: &DiGraph<String>) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + 8 * g.edge_count() + 16 * g.node_count());
    buf.put_u32(SNAPSHOT_MAGIC);
    buf.put_u32(g.node_count() as u32);
    buf.put_u32(g.edge_count() as u32);
    for v in g.nodes() {
        let label = g.label(v).as_bytes();
        buf.put_u32(label.len() as u32);
        buf.put_slice(label);
    }
    for (a, b) in g.edges() {
        buf.put_u32(a.0);
        buf.put_u32(b.0);
    }
    buf.freeze()
}

/// Restores a graph from a binary snapshot produced by [`to_snapshot`].
pub fn from_snapshot(mut data: Bytes) -> Result<DiGraph<String>, ParseError> {
    let need = |data: &Bytes, n: usize| -> Result<(), ParseError> {
        if data.remaining() < n {
            Err(ParseError::Corrupt(format!("need {n} more bytes")))
        } else {
            Ok(())
        }
    };
    need(&data, 12)?;
    let magic = data.get_u32();
    if magic != SNAPSHOT_MAGIC {
        return Err(ParseError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let n = data.get_u32() as usize;
    let m = data.get_u32() as usize;
    let mut g = DiGraph::with_capacity(n);
    for _ in 0..n {
        need(&data, 4)?;
        let len = data.get_u32() as usize;
        need(&data, len)?;
        let label = String::from_utf8(data.split_to(len).to_vec())
            .map_err(|e| ParseError::Corrupt(e.to_string()))?;
        g.add_node(label);
    }
    for _ in 0..m {
        need(&data, 8)?;
        let a = data.get_u32();
        let b = data.get_u32();
        if a as usize >= n || b as usize >= n {
            return Err(ParseError::Corrupt(format!("edge ({a},{b}) out of range")));
        }
        g.add_edge(NodeId(a), NodeId(b));
    }
    Ok(g)
}

/// A serde-friendly record mirroring a string-labeled graph, used by the
/// experiment harness to persist workload configs/results.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct GraphRecord {
    /// Node labels in id order.
    pub labels: Vec<String>,
    /// Directed edges as `(from, to)` index pairs.
    pub edges: Vec<(u32, u32)>,
}

impl From<&DiGraph<String>> for GraphRecord {
    fn from(g: &DiGraph<String>) -> Self {
        GraphRecord {
            labels: g.nodes().map(|v| g.label(v).clone()).collect(),
            edges: g.edges().map(|(a, b)| (a.0, b.0)).collect(),
        }
    }
}

impl From<&GraphRecord> for DiGraph<String> {
    fn from(r: &GraphRecord) -> Self {
        let mut g = DiGraph::with_capacity(r.labels.len());
        for l in &r.labels {
            g.add_node(l.clone());
        }
        for &(a, b) in &r.edges {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::graph_from_labels;

    fn sample() -> DiGraph<String> {
        graph_from_labels(
            &["books", "text books", "audio"],
            &[("books", "text books"), ("books", "audio")],
        )
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let text = to_text(&g);
        let h = from_text(&text).expect("parse");
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.edge_count(), 2);
        assert_eq!(
            h.label(NodeId(1)),
            "text books",
            "labels may contain spaces"
        );
        assert!(h.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let g = from_text("# header\n\nnode 0 a\nnode 1 b\nedge 0 1\n").expect("parse");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn text_rejects_sparse_ids() {
        let err = from_text("node 1 a\n").unwrap_err();
        assert!(matches!(
            err,
            ParseError::NonDenseId {
                expected: 0,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn text_rejects_unknown_edge_target() {
        let err = from_text("node 0 a\nedge 0 5\n").unwrap_err();
        assert!(matches!(err, ParseError::UnknownNode { id: 5, .. }));
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            from_text("vertex 0 a\n"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            from_text("node x a\n"),
            Err(ParseError::Syntax { .. })
        ));
    }

    #[test]
    fn snapshot_roundtrip() {
        let g = sample();
        let snap = to_snapshot(&g);
        let h = from_snapshot(snap).expect("restore");
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        assert_eq!(h.label(NodeId(2)), "audio");
    }

    #[test]
    fn snapshot_rejects_bad_magic() {
        let err = from_snapshot(Bytes::from_static(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]));
        assert!(matches!(err, Err(ParseError::Corrupt(_))));
    }

    #[test]
    fn snapshot_rejects_truncation() {
        let g = sample();
        let snap = to_snapshot(&g);
        let cut = snap.slice(0..snap.len() - 3);
        assert!(matches!(from_snapshot(cut), Err(ParseError::Corrupt(_))));
    }

    #[test]
    fn record_roundtrip() {
        let g = sample();
        let rec = GraphRecord::from(&g);
        let h: DiGraph<String> = (&rec).into();
        assert_eq!(GraphRecord::from(&h), rec);
    }
}
