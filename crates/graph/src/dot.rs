//! Graphviz DOT export and import, used by the examples to visualize
//! patterns, data graphs, and the mappings found between them, and by
//! the CLI to interoperate with Graphviz-producing tools.

use crate::digraph::{DiGraph, NodeId};
use std::collections::HashMap;
use std::fmt::Display;
use std::fmt::Write as _;

/// Renders `g` in DOT format with `label(v)` as the node label.
pub fn to_dot<L: Display>(name: &str, g: &DiGraph<L>) -> String {
    to_dot_with(name, g, |v, l| format!("{l} ({v})"), |_, _| None)
}

/// Renders `g` in DOT with custom node text and optional edge attributes.
///
/// `node_text(v, label)` produces the displayed text; `edge_attr(a, b)`
/// may return e.g. `Some("style=dashed".into())`.
pub fn to_dot_with<L>(
    name: &str,
    g: &DiGraph<L>,
    node_text: impl Fn(NodeId, &L) -> String,
    edge_attr: impl Fn(NodeId, NodeId) -> Option<String>,
) -> String {
    let mut s = String::with_capacity(64 + 32 * (g.node_count() + g.edge_count()));
    let _ = writeln!(s, "digraph {name} {{");
    let _ = writeln!(s, "  rankdir=TB; node [shape=box];");
    for v in g.nodes() {
        let text = node_text(v, g.label(v)).replace('"', "\\\"");
        let _ = writeln!(s, "  n{} [label=\"{}\"];", v.0, text);
    }
    for (a, b) in g.edges() {
        match edge_attr(a, b) {
            Some(attr) => {
                let _ = writeln!(s, "  n{} -> n{} [{attr}];", a.0, b.0);
            }
            None => {
                let _ = writeln!(s, "  n{} -> n{};", a.0, b.0);
            }
        }
    }
    s.push_str("}\n");
    s
}

/// Error from [`from_dot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DotParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl Display for DotParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DOT parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DotParseError {}

/// Parses the line-oriented DOT subset that [`to_dot`] emits (and that
/// most generators produce): one `digraph` block with one statement per
/// line — `id [label="text"];` node lines and `a -> b;` edge lines
/// (edge attributes are ignored). Nodes first referenced by an edge get
/// their id as their label. Not a general DOT parser: subgraphs,
/// multi-statement lines, and HTML labels are rejected or ignored.
pub fn from_dot(text: &str) -> Result<DiGraph<String>, DotParseError> {
    let mut g: DiGraph<String> = DiGraph::new();
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut seen_header = false;

    let err = |line: usize, message: &str| DotParseError {
        line,
        message: message.to_owned(),
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") || line.starts_with('#') {
            continue;
        }
        if !seen_header {
            if line.starts_with("digraph") && line.ends_with('{') {
                seen_header = true;
                continue;
            }
            return Err(err(line_no, "expected `digraph <name> {`"));
        }
        if line == "}" {
            break;
        }
        // Global attribute lines like `rankdir=TB; node [shape=box];`.
        if line.starts_with("rankdir")
            || line.starts_with("node [")
            || line.starts_with("edge [")
            || line.starts_with("graph [")
        {
            continue;
        }
        let stmt = line.trim_end_matches(';').trim();
        if let Some((a, b)) = stmt.split_once("->") {
            let a = a.trim();
            // Strip optional edge attributes: `b [color=red]`.
            let b = b.split('[').next().unwrap_or("").trim();
            if a.is_empty() || b.is_empty() {
                return Err(err(line_no, "malformed edge statement"));
            }
            let mut node_of = |name: &str, g: &mut DiGraph<String>| -> NodeId {
                *ids.entry(name.to_owned())
                    .or_insert_with(|| g.add_node(name.to_owned()))
            };
            let ia = node_of(a, &mut g);
            let ib = node_of(b, &mut g);
            g.add_edge(ia, ib);
        } else {
            // Node statement: `id` or `id [label="text" ...]`.
            let (name, attrs) = match stmt.split_once('[') {
                Some((n, rest)) => (n.trim(), Some(rest)),
                None => (stmt, None),
            };
            if name.is_empty() {
                return Err(err(line_no, "empty node id"));
            }
            let label = attrs
                .and_then(|a| a.split("label=\"").nth(1))
                .and_then(|rest| {
                    // Take up to the first unescaped quote.
                    let mut out = String::new();
                    let mut chars = rest.chars();
                    while let Some(c) = chars.next() {
                        match c {
                            '\\' => {
                                if let Some(n) = chars.next() {
                                    out.push(n);
                                }
                            }
                            '"' => return Some(out),
                            _ => out.push(c),
                        }
                    }
                    None
                })
                .unwrap_or_else(|| name.to_owned());
            match ids.get(name) {
                Some(&id) => *g.label_mut(id) = label,
                None => {
                    let id = g.add_node(label);
                    ids.insert(name.to_owned(), id);
                }
            }
        }
    }
    if !seen_header {
        return Err(err(1, "no digraph block found"));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::graph_from_labels;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let dot = to_dot("t", &g);
        assert!(dot.starts_with("digraph t {"));
        assert!(dot.contains("n0 [label=\"a (0)\"];"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut g: DiGraph<String> = DiGraph::new();
        g.add_node("say \"hi\"".into());
        let dot = to_dot("q", &g);
        assert!(dot.contains("say \\\"hi\\\""));
    }

    #[test]
    fn custom_edge_attributes_rendered() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let dot = to_dot_with("t", &g, |_, l| l.clone(), |_, _| Some("color=red".into()));
        assert!(dot.contains("n0 -> n1 [color=red];"));
    }

    #[test]
    fn from_dot_round_trips_to_dot_topology() {
        let g = graph_from_labels(
            &["hub", "a", "b", "c"],
            &[("hub", "a"), ("hub", "b"), ("a", "c"), ("b", "c")],
        );
        let parsed = from_dot(&to_dot_with("t", &g, |_, l| l.clone(), |_, _| None))
            .expect("parses own output");
        assert_eq!(parsed.node_count(), g.node_count());
        assert_eq!(parsed.edge_count(), g.edge_count());
        // Labels survive (node ids are renumbered by first reference).
        let labels: std::collections::BTreeSet<&str> =
            parsed.nodes().map(|v| parsed.label(v).as_str()).collect();
        assert_eq!(labels, ["hub", "a", "b", "c"].into_iter().collect());
        // Topology survives: hub reaches c in 2 hops in both.
        let tc = crate::closure::TransitiveClosure::new(&parsed);
        let hub = parsed.nodes().find(|&v| parsed.label(v) == "hub").unwrap();
        let c = parsed.nodes().find(|&v| parsed.label(v) == "c").unwrap();
        assert!(tc.reaches(hub, c));
    }

    #[test]
    fn from_dot_parses_bare_edge_list() {
        let g = from_dot("digraph g {\n  a -> b;\n  b -> c;\n}\n").expect("parses");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.label(NodeId(0)), "a", "edge-referenced ids become labels");
    }

    #[test]
    fn from_dot_handles_edge_attributes_and_escapes() {
        let text = "digraph g {\n  n0 [label=\"say \\\"hi\\\"\"];\n  n0 -> n1 [style=dashed];\n}";
        let g = from_dot(text).expect("parses");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.label(NodeId(0)), "say \"hi\"");
    }

    #[test]
    fn from_dot_rejects_garbage() {
        assert!(
            from_dot("graph g { a -- b; }").is_err(),
            "undirected rejected"
        );
        assert!(from_dot("").is_err(), "no block");
        let err = from_dot("not dot at all").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }
}
