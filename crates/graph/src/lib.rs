//! # phom-graph
//!
//! Directed, node-labeled graph substrate for the `p-hom` workspace — the
//! graph model of *Graph Homomorphism Revisited for Graph Matching*
//! (Fan et al., VLDB 2010), §3.1, together with the graph algorithms the
//! matching algorithms lean on:
//!
//! * [`DiGraph`]: adjacency-list digraph with labels and reverse edges;
//! * [`BitSet`]: fixed-capacity bitset (reachability rows, candidate sets);
//! * [`tarjan_scc`]: strongly connected components (iterative Tarjan);
//! * [`ReachabilityIndex`]: the pluggable reachability-backend trait the
//!   matching kernels consume (`reaches`, successor enumeration, memory
//!   accounting);
//! * [`TransitiveClosure`] (alias [`DenseClosure`]): the dense proper
//!   closure `G+` (Nuutila-style via SCC condensation), i.e. the `H2`
//!   adjacency matrix of algorithm `compMaxCard`;
//! * [`ChainIndex`]: the compressed chain-decomposition backend
//!   (`O(n·w)` words instead of `O(n²)` bits);
//! * [`TwoHopIndex`]: the pruned-landmark 2-hop-labeling backend for
//!   dense-reach shapes (probe = label intersection, hub masks for the
//!   top 64 landmarks);
//! * structural invariant validators on every backend
//!   (`validate()` / `validate_against()`, see [`validate`]) — the
//!   machine-checkable form of the invariants above, used by the
//!   `phom-audit` crate and the snapshot-restore gate;
//! * [`compress_closure`]: the `G2*` compression of Appendix B;
//! * [`weakly_connected_components`]: the `G1` partitioning of Appendix B;
//! * traversal helpers, DOT export, and text/binary serialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod closure;
pub mod components;
pub mod condense;
pub mod digraph;
pub mod dot;
pub mod generators;
pub mod metrics;
pub mod reach;
pub mod scc;
pub mod serialize;
pub mod traversal;
pub mod validate;

pub use bitset::BitSet;
pub use closure::{DenseClosure, DynamicClosure, TransitiveClosure, UpdateEffect};
pub use components::{component_groups, is_weakly_connected, weakly_connected_components};
pub use condense::{compress_closure, compress_closure_with, condensation, CompressedGraph};
pub use digraph::{graph_from_labels, DiGraph, NodeId};
pub use dot::{from_dot, to_dot, DotParseError};
pub use generators::{
    cycle, gnm_random, grid, path, preferential_attachment, random_dag, XorShift64,
};
pub use metrics::{degree_histogram, graph_metrics, top_degree_nodes, GraphMetrics};
pub use reach::{
    reach_density_sample, ChainIndex, ChainIndexParts, ReachabilityIndex, TwoHopIndex,
    TwoHopIndexParts,
};
pub use scc::{tarjan_scc, SccResult};
pub use validate::{proper_reach_set, sample_indices, Violation};
