//! Graph statistics used by the experiment harness (Table 2 columns) and
//! the `phom stats` CLI: degree distributions, density, reciprocity.

use crate::digraph::{DiGraph, NodeId};

/// Summary statistics of a digraph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// `|V|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// `avgDeg` (total degree).
    pub avg_degree: f64,
    /// `maxDeg` (total degree).
    pub max_degree: usize,
    /// Edge density `|E| / (|V|·(|V|-1))` (0 for graphs with < 2 nodes).
    pub density: f64,
    /// Fraction of edges whose reverse edge also exists.
    pub reciprocity: f64,
    /// Nodes with no incident edges.
    pub isolated: usize,
}

/// Computes [`GraphMetrics`] in one pass.
pub fn graph_metrics<L>(g: &DiGraph<L>) -> GraphMetrics {
    let n = g.node_count();
    let m = g.edge_count();
    let density = if n < 2 {
        0.0
    } else {
        m as f64 / (n * (n - 1)) as f64
    };
    let reciprocal = g.edges().filter(|&(a, b)| g.has_edge(b, a)).count();
    let reciprocity = if m == 0 {
        0.0
    } else {
        reciprocal as f64 / m as f64
    };
    let isolated = g.nodes().filter(|&v| g.degree(v) == 0).count();
    GraphMetrics {
        nodes: n,
        edges: m,
        avg_degree: g.avg_degree(),
        max_degree: g.max_degree(),
        density,
        reciprocity,
        isolated,
    }
}

/// Degree histogram in logarithmic buckets: `hist[k]` counts nodes with
/// total degree in `[2^k, 2^{k+1})`; bucket 0 additionally holds degree-0
/// and degree-1 nodes.
pub fn degree_histogram<L>(g: &DiGraph<L>) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for v in g.nodes() {
        let d = g.degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - 1 - d.leading_zeros()) as usize
        };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// The `k` highest-total-degree nodes, descending (ties by id) — the
/// selector behind the top-k skeletons of §6.
pub fn top_degree_nodes<L>(g: &DiGraph<L>, k: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    nodes.truncate(k);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::graph_from_labels;

    fn sample() -> DiGraph<String> {
        graph_from_labels(
            &["hub", "a", "b", "iso"],
            &[("hub", "a"), ("hub", "b"), ("a", "hub")],
        )
    }

    #[test]
    fn metrics_basics() {
        let m = graph_metrics(&sample());
        assert_eq!(m.nodes, 4);
        assert_eq!(m.edges, 3);
        assert_eq!(m.max_degree, 3, "hub: out-degree 2 + in-degree 1");
        assert_eq!(m.isolated, 1);
        // 1 reciprocal pair (hub->a, a->hub): 2 of 3 edges reciprocated.
        assert!((m.reciprocity - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.density - 3.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_metrics() {
        let g: DiGraph<String> = DiGraph::new();
        let m = graph_metrics(&g);
        assert_eq!(m.nodes, 0);
        assert_eq!(m.density, 0.0);
        assert_eq!(m.reciprocity, 0.0);
    }

    #[test]
    fn histogram_buckets_by_log_degree() {
        let g = sample();
        let h = degree_histogram(&g);
        // iso: degree 0 -> bucket 0; a: degree 2 -> bucket 1; b: 1 -> 0;
        // hub: 3 -> bucket 1.
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 2);
        assert_eq!(h.iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn top_degree_selects_hub_first() {
        let g = sample();
        let top = top_degree_nodes(&g, 2);
        assert_eq!(top[0], NodeId(0));
        assert_eq!(top.len(), 2);
        assert_eq!(top_degree_nodes(&g, 100).len(), 4, "k larger than |V|");
    }
}
