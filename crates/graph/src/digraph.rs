//! The node-labeled directed graph `G = (V, E, L)` of the paper (§3.1).
//!
//! Nodes are dense `u32` indices wrapped in [`NodeId`]; each node carries a
//! label of type `L` (the paper uses page content / URL strings). Both
//! forward and reverse adjacency are maintained because the matching
//! algorithms need `prev` and `post` lists (algorithm `compMaxCard`,
//! data structure *(c)*).

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a node inside one [`DiGraph`]. Dense: `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize`, for direct slice addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A node-labeled directed graph.
///
/// Self-loops are allowed (the product-graph reduction of Theorem 5.1 cares
/// about them); parallel edges are collapsed.
#[derive(Clone)]
pub struct DiGraph<L> {
    labels: Vec<L>,
    out: Vec<Vec<NodeId>>,
    inc: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl<L> Default for DiGraph<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L> DiGraph<L> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self {
            labels: Vec::new(),
            out: Vec::new(),
            inc: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            labels: Vec::with_capacity(n),
            out: Vec::with_capacity(n),
            inc: Vec::with_capacity(n),
            edge_count: 0,
        }
    }

    /// Adds a node with `label`, returning its id.
    pub fn add_node(&mut self, label: L) -> NodeId {
        // phom-lint: allow(unwrap, "node ids are u32 by design; > 4 billion nodes is a documented capacity limit")
        let id = NodeId(u32::try_from(self.labels.len()).expect("more than u32::MAX nodes"));
        self.labels.push(label);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Adds the edge `(from, to)` if absent. Returns `true` when inserted.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        assert!(from.index() < self.labels.len(), "from out of range");
        assert!(to.index() < self.labels.len(), "to out of range");
        if self.out[from.index()].contains(&to) {
            return false;
        }
        self.out[from.index()].push(to);
        self.inc[to.index()].push(from);
        self.edge_count += 1;
        true
    }

    /// Removes the edge `(from, to)` if present, preserving the relative
    /// order of the remaining adjacency entries (matching algorithms
    /// iterate `post`/`prev` in insertion order, so a removal must not
    /// perturb the order of unrelated edges). Returns `true` when removed.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        assert!(from.index() < self.labels.len(), "from out of range");
        assert!(to.index() < self.labels.len(), "to out of range");
        let Some(pos) = self.out[from.index()].iter().position(|&w| w == to) else {
            return false;
        };
        self.out[from.index()].remove(pos);
        let rpos = self.inc[to.index()]
            .iter()
            .position(|&w| w == from)
            // phom-lint: allow(unwrap, "out/inc adjacency lists are mutated in lockstep; the forward entry was found above")
            .expect("reverse adjacency out of sync");
        self.inc[to.index()].remove(rpos);
        self.edge_count -= 1;
        true
    }

    /// Number of nodes, `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges, `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterator over all node ids, `0..n`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Iterator over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(v, succs)| succs.iter().map(move |&u| (NodeId(v as u32), u)))
    }

    /// The label `L(v)`.
    #[inline]
    pub fn label(&self, v: NodeId) -> &L {
        &self.labels[v.index()]
    }

    /// Mutable access to the label `L(v)`.
    pub fn label_mut(&mut self, v: NodeId) -> &mut L {
        &mut self.labels[v.index()]
    }

    /// Successors of `v` ("children": nodes with an edge from `v`).
    #[inline]
    pub fn post(&self, v: NodeId) -> &[NodeId] {
        &self.out[v.index()]
    }

    /// Predecessors of `v` ("parents": nodes with an edge to `v`).
    #[inline]
    pub fn prev(&self, v: NodeId) -> &[NodeId] {
        &self.inc[v.index()]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inc[v.index()].len()
    }

    /// Total degree (in + out) of `v`, as used by the skeleton rule of §6.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// True when the edge `(from, to)` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.out[from.index()].contains(&to)
    }

    /// True when `v` has an edge to itself.
    pub fn has_self_loop(&self, v: NodeId) -> bool {
        self.has_edge(v, v)
    }

    /// Average total degree `avgDeg(G)` (0.0 for the empty graph). §6 uses
    /// `2|E|/|V|` since each edge contributes to one in- and one out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.labels.len() as f64
        }
    }

    /// Maximum total degree `maxDeg(G)` (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Maps labels, preserving structure.
    pub fn map_labels<M, F: FnMut(NodeId, &L) -> M>(&self, mut f: F) -> DiGraph<M> {
        let mut g = DiGraph::with_capacity(self.node_count());
        for v in self.nodes() {
            g.add_node(f(v, self.label(v)));
        }
        for (a, b) in self.edges() {
            g.add_edge(a, b);
        }
        g
    }

    /// The subgraph induced by `keep` (nodes are renumbered densely in
    /// ascending order of their old ids). Returns the subgraph and the map
    /// `new -> old`.
    pub fn induced_subgraph(&self, keep: &BTreeSet<NodeId>) -> (DiGraph<L>, Vec<NodeId>)
    where
        L: Clone,
    {
        let mut old_of_new: Vec<NodeId> = Vec::with_capacity(keep.len());
        let mut new_of_old: Vec<Option<NodeId>> = vec![None; self.node_count()];
        let mut g = DiGraph::with_capacity(keep.len());
        for &v in keep {
            let nv = g.add_node(self.label(v).clone());
            new_of_old[v.index()] = Some(nv);
            old_of_new.push(v);
        }
        for &v in keep {
            // phom-lint: allow(unwrap, "new_of_old[v] was populated for every v in keep by the loop above")
            let nv = new_of_old[v.index()].expect("just inserted");
            for &w in self.post(v) {
                if let Some(nw) = new_of_old[w.index()] {
                    g.add_edge(nv, nw);
                }
            }
        }
        (g, old_of_new)
    }

    /// Reverses every edge, preserving labels.
    pub fn reversed(&self) -> DiGraph<L>
    where
        L: Clone,
    {
        let mut g = DiGraph::with_capacity(self.node_count());
        for v in self.nodes() {
            g.add_node(self.label(v).clone());
        }
        for (a, b) in self.edges() {
            g.add_edge(b, a);
        }
        g
    }
}

impl<L: fmt::Debug> fmt::Debug for DiGraph<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DiGraph(|V|={}, |E|={})",
            self.node_count(),
            self.edge_count()
        )?;
        for v in self.nodes() {
            writeln!(f, "  {v:?} [{:?}] -> {:?}", self.label(v), self.post(v))?;
        }
        Ok(())
    }
}

/// Convenience constructor used pervasively in tests and examples: builds a
/// graph from string labels and label-pair edges.
///
/// # Panics
/// Panics if an edge mentions an unknown label or labels are duplicated.
pub fn graph_from_labels(labels: &[&str], edges: &[(&str, &str)]) -> DiGraph<String> {
    let mut g = DiGraph::with_capacity(labels.len());
    let mut ids = std::collections::HashMap::with_capacity(labels.len());
    for &l in labels {
        let id = g.add_node(l.to_owned());
        let dup = ids.insert(l.to_owned(), id);
        assert!(dup.is_none(), "duplicate label {l:?}");
    }
    for &(a, b) in edges {
        // phom-lint: allow(unwrap, "test/example helper whose doc contract is `# Panics` on unknown labels")
        let &ia = ids.get(a).unwrap_or_else(|| panic!("unknown label {a:?}"));
        // phom-lint: allow(unwrap, "test/example helper whose doc contract is `# Panics` on unknown labels")
        let &ib = ids.get(b).unwrap_or_else(|| panic!("unknown label {b:?}"));
        g.add_edge(ia, ib);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<String> {
        graph_from_labels(
            &["A", "B", "C", "D"],
            &[("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
        )
    }

    #[test]
    fn add_node_assigns_dense_ids() {
        let mut g: DiGraph<&str> = DiGraph::new();
        assert_eq!(g.add_node("x"), NodeId(0));
        assert_eq!(g.add_node("y"), NodeId(1));
        assert_eq!(g.node_count(), 2);
        assert_eq!(*g.label(NodeId(1)), "y");
    }

    #[test]
    fn add_edge_deduplicates() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b), "parallel edge collapsed");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn post_and_prev_are_consistent() {
        let g = diamond();
        let a = NodeId(0);
        let d = NodeId(3);
        assert_eq!(g.post(a), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.prev(d), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
    }

    #[test]
    fn remove_edge_keeps_adjacency_order_and_counts() {
        let g0 = diamond();
        let mut g = g0.clone();
        assert!(g.remove_edge(NodeId(0), NodeId(1)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)), "already gone");
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.post(NodeId(0)), &[NodeId(2)]);
        assert_eq!(g.prev(NodeId(3)), &[NodeId(1), NodeId(2)], "order kept");
        // Re-adding restores the edge (at the end of the adjacency list).
        assert!(g.add_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), g0.edge_count());
    }

    #[test]
    fn remove_self_loop() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a);
        assert!(g.remove_edge(a, a));
        assert!(!g.has_self_loop(a));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn self_loops_allowed() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        assert!(g.add_edge(a, a));
        assert!(g.has_self_loop(a));
        assert_eq!(g.degree(a), 2, "self loop counts once in and once out");
    }

    #[test]
    fn edges_iterator_lists_all() {
        let g = diamond();
        let mut e: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn degree_statistics_match_section6_definitions() {
        let g = diamond();
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
        let empty: DiGraph<()> = DiGraph::new();
        assert_eq!(empty.avg_degree(), 0.0);
        assert_eq!(empty.max_degree(), 0);
    }

    #[test]
    fn induced_subgraph_renumbers_and_keeps_internal_edges() {
        let g = diamond();
        let keep: BTreeSet<NodeId> = [NodeId(0), NodeId(1), NodeId(3)].into_iter().collect();
        let (h, old) = g.induced_subgraph(&keep);
        assert_eq!(h.node_count(), 3);
        assert_eq!(old, vec![NodeId(0), NodeId(1), NodeId(3)]);
        // Edges A->B and B->D survive; A->C and C->D are dropped.
        assert_eq!(h.edge_count(), 2);
        assert!(h.has_edge(NodeId(0), NodeId(1)));
        assert!(h.has_edge(NodeId(1), NodeId(2)));
        assert_eq!(h.label(NodeId(2)), "D");
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = diamond();
        let r = g.reversed();
        assert!(r.has_edge(NodeId(1), NodeId(0)));
        assert!(!r.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(r.edge_count(), g.edge_count());
    }

    #[test]
    fn map_labels_preserves_structure() {
        let g = diamond();
        let h = g.map_labels(|_, l| l.len());
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        assert_eq!(*h.label(NodeId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "unknown label")]
    fn graph_from_labels_rejects_unknown_edge_endpoint() {
        graph_from_labels(&["A"], &[("A", "Z")]);
    }
}
