//! A fixed-capacity bitset used throughout the crate for reachability
//! matrices, visited sets, and candidate sets.
//!
//! The set is backed by a boxed slice of `u64` words. Capacity is fixed at
//! construction; all indices must be `< len()`. This is deliberately a small,
//! dependency-free substrate (the reachability matrix `H2` of the paper's
//! algorithm `compMaxCard` stores one `BitSet` row per node of `G2+`).

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-size set of bits.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Box<[u64]>,
    /// Number of addressable bits.
    len: usize,
}

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitSet {
    /// Creates a bitset able to hold `len` bits, all initially zero.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; word_count(len)].into_boxed_slice(),
            len,
        }
    }

    /// Creates a bitset of `len` bits with every bit set.
    pub fn full(len: usize) -> Self {
        let mut s = Self {
            words: vec![!0u64; word_count(len)].into_boxed_slice(),
            len,
        };
        s.clear_tail();
        s
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds zero addressable bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zeroes any bits beyond `len` in the last word (keeps counts honest).
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Sets bit `i`; returns whether the bit was previously unset.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Clears bit `i`; returns whether the bit was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Sets all bits to zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// In-place difference: removes every bit set in `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// True when `self` and `other` share at least one set bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// True when every bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The backing `u64` words, least-significant bit first. Exposed for
    /// compact serialization (prepared-graph snapshots); bits at or past
    /// `len()` are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitset of `len` bits from backing words produced by
    /// [`BitSet::words`]. Missing trailing words are treated as zero; any
    /// bits beyond `len` are cleared.
    ///
    /// # Panics
    /// Panics if more words are supplied than `len` bits require.
    pub fn from_words(len: usize, words: &[u64]) -> Self {
        assert!(
            words.len() <= word_count(len),
            "{} words exceed capacity for {len} bits",
            words.len()
        );
        let mut buf = vec![0u64; word_count(len)];
        buf[..words.len()].copy_from_slice(words);
        let mut s = Self {
            words: buf.into_boxed_slice(),
            len,
        };
        s.clear_tail();
        s
    }

    /// Index of the lowest set bit, if any.
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// Iterator over set bit indices.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a bitset sized to the maximum index + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_all_zero() {
        let s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count(), 0);
        assert!(s.is_zero());
        assert!(!s.contains(0));
        assert!(!s.contains(129));
    }

    #[test]
    fn full_sets_exactly_len_bits() {
        for len in [0, 1, 63, 64, 65, 128, 130] {
            let s = BitSet::full(len);
            assert_eq!(s.count(), len, "len={len}");
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = BitSet::new(100);
        assert!(s.insert(7));
        assert!(!s.insert(7), "second insert reports not fresh");
        assert!(s.contains(7));
        assert!(s.remove(7));
        assert!(!s.remove(7), "second remove reports absent");
        assert!(!s.contains(7));
    }

    #[test]
    fn insert_across_word_boundary() {
        let mut s = BitSet::new(200);
        for i in [0, 63, 64, 65, 127, 128, 199] {
            s.insert(i);
        }
        assert_eq!(s.count(), 7);
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_out_of_range_panics() {
        let s = BitSet::new(10);
        s.contains(10);
    }

    #[test]
    fn union_intersect_difference() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(65);
        b.insert(2);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 65]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![65]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn subset_and_intersects() {
        let a: BitSet = [1usize, 5, 9].into_iter().collect();
        let b: BitSet = [1usize, 3, 5, 9].into_iter().collect();
        // from_iter sizes differ; resize via explicit construction instead.
        let mut a2 = BitSet::new(10);
        for i in a.iter() {
            a2.insert(i);
        }
        assert!(a2.is_subset(&b));
        assert!(!b.is_subset(&a2));
        assert!(a2.intersects(&b));
        let empty = BitSet::new(10);
        assert!(!empty.intersects(&b));
        assert!(empty.is_subset(&b));
    }

    #[test]
    fn first_returns_lowest() {
        let mut s = BitSet::new(300);
        assert_eq!(s.first(), None);
        s.insert(250);
        assert_eq!(s.first(), Some(250));
        s.insert(70);
        assert_eq!(s.first(), Some(70));
    }

    #[test]
    fn words_roundtrip() {
        let mut s = BitSet::new(130);
        for i in [0, 63, 64, 100, 129] {
            s.insert(i);
        }
        let back = BitSet::from_words(130, s.words());
        assert_eq!(back, s);
        // Short word slices are zero-extended.
        let sparse = BitSet::from_words(130, &[0b10]);
        assert_eq!(sparse.iter().collect::<Vec<_>>(), vec![1]);
        // Out-of-range tail bits are cleared.
        let trimmed = BitSet::from_words(3, &[!0u64]);
        assert_eq!(trimmed.count(), 3);
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::full(100);
        s.clear();
        assert!(s.is_zero());
    }

    proptest! {
        #[test]
        fn prop_iter_matches_contains(indices in proptest::collection::vec(0usize..256, 0..64)) {
            let mut s = BitSet::new(256);
            for &i in &indices {
                s.insert(i);
            }
            let from_iter: Vec<usize> = s.iter().collect();
            let from_scan: Vec<usize> = (0..256).filter(|&i| s.contains(i)).collect();
            prop_assert_eq!(from_iter, from_scan);
            prop_assert_eq!(s.count(), s.iter().count());
        }

        #[test]
        fn prop_union_is_commutative_and_superset(
            xs in proptest::collection::vec(0usize..128, 0..40),
            ys in proptest::collection::vec(0usize..128, 0..40),
        ) {
            let mut a = BitSet::new(128);
            let mut b = BitSet::new(128);
            for &x in &xs { a.insert(x); }
            for &y in &ys { b.insert(y); }
            let mut ab = a.clone();
            ab.union_with(&b);
            let mut ba = b.clone();
            ba.union_with(&a);
            prop_assert_eq!(&ab, &ba);
            prop_assert!(a.is_subset(&ab));
            prop_assert!(b.is_subset(&ab));
        }

        #[test]
        fn prop_demorgan_difference(
            xs in proptest::collection::vec(0usize..128, 0..40),
            ys in proptest::collection::vec(0usize..128, 0..40),
        ) {
            let mut a = BitSet::new(128);
            let mut b = BitSet::new(128);
            for &x in &xs { a.insert(x); }
            for &y in &ys { b.insert(y); }
            // |a| = |a ∩ b| + |a \ b|
            let mut inter = a.clone();
            inter.intersect_with(&b);
            let mut diff = a.clone();
            diff.difference_with(&b);
            prop_assert_eq!(a.count(), inter.count() + diff.count());
            prop_assert!(!inter.intersects(&diff));
        }
    }
}
