//! Shared vocabulary for the structural invariant validators: the
//! [`Violation`] error type plus the brute-force reachability and
//! sampling helpers the per-backend `validate()` / `validate_against()`
//! methods build on.
//!
//! Every reachability backend ([`crate::closure::TransitiveClosure`],
//! [`crate::reach::ChainIndex`], [`crate::reach::TwoHopIndex`]) exposes
//! two validation tiers:
//!
//! * **`validate()`** — cheap, self-contained: structural well-formedness
//!   of the index's own arrays (the same checks its `from_parts`
//!   constructor runs) plus internal cross-table consistency. No graph
//!   needed; suitable for snapshot-restore gating.
//! * **`validate_against(g, samples)`** — deep: the index's `reaches`
//!   relation is compared against brute-force proper-path BFS from a
//!   deterministic sample of source nodes, and condensation-level
//!   structure (component partition, cyclic flags) is compared against a
//!   fresh Tarjan pass.
//!
//! Both tiers apply to **full** (unbounded) closures; hop-bounded
//! closures from [`crate::closure::TransitiveClosure::bounded`] are not
//! composition-closed and are out of scope.

use crate::bitset::BitSet;
use crate::digraph::{DiGraph, NodeId};
use std::fmt;

/// A violated structural invariant: which check failed, and the first
/// offending detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the failed check (e.g. `"closure-composition"`).
    pub check: &'static str,
    /// Human-readable description of the first violation found.
    pub detail: String,
}

impl Violation {
    /// Builds a violation for `check` with the given detail.
    pub fn new(check: &'static str, detail: impl Into<String>) -> Self {
        Self {
            check,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.check, self.detail)
    }
}

impl std::error::Error for Violation {}

/// Brute-force **proper** reachability: the set of nodes reachable from
/// `from` via a nonempty path (so `from` itself only if it lies on a
/// cycle). The ground truth the deep validators compare against.
pub fn proper_reach_set<L>(g: &DiGraph<L>, from: NodeId) -> BitSet {
    let mut seen = BitSet::new(g.node_count());
    let mut stack: Vec<NodeId> = g.post(from).to_vec();
    while let Some(v) = stack.pop() {
        if seen.insert(v.index()) {
            stack.extend_from_slice(g.post(v));
        }
    }
    seen
}

/// Up to `samples` indices evenly spaced over `0..n`, deduplicated —
/// the deterministic source-node sample the deep validators BFS from
/// (no RNG, so audits are reproducible byte-for-byte).
pub fn sample_indices(n: usize, samples: usize) -> Vec<usize> {
    if n == 0 || samples == 0 {
        return Vec::new();
    }
    let take = samples.min(n);
    let mut out: Vec<usize> = (0..take).map(|i| i * n / take).collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::graph_from_labels;

    #[test]
    fn proper_reach_excludes_self_off_cycle() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let r = proper_reach_set(&g, NodeId(0));
        assert!(!r.contains(0));
        assert!(r.contains(1) && r.contains(2));
        let cyc = graph_from_labels(&["a", "b"], &[("a", "b"), ("b", "a")]);
        assert!(proper_reach_set(&cyc, NodeId(0)).contains(0));
    }

    #[test]
    fn sample_indices_are_unique_and_bounded() {
        assert_eq!(sample_indices(0, 8), Vec::<usize>::new());
        assert_eq!(sample_indices(3, 8), vec![0, 1, 2]);
        let s = sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 100));
    }
}
