//! Pluggable reachability backends: the [`ReachabilityIndex`] trait every
//! matching kernel consumes, and the compressed [`ChainIndex`] backend.
//!
//! The paper's algorithms only ever ask one question of the data graph:
//! *is there a nonempty path `u ⇝ v`?* (`H2[u1][u2]`, Fig. 3 line 7).
//! Historically that question was answered by the dense
//! [`TransitiveClosure`] — one bitset row per SCC, `O(n²)` bits — which is
//! unbeatable per query but caps prepared graphs well below web scale.
//! Abstracting the question behind a trait lets each deployment pick the
//! representation its graphs afford:
//!
//! * [`TransitiveClosure`] (the *dense* backend): `O(1)` queries,
//!   `O(n²/64)` words.
//! * [`ChainIndex`] (the *chain* backend): a path/chain decomposition of
//!   the SCC condensation in the style of Jagadish's transitive-closure
//!   compression — per component, only the **minimal reachable position
//!   on each chain** is stored, so space is `O(n·w)` words for chain
//!   width `w` (and far less on shallow-reach graphs), with
//!   `O(log w)` queries.
//! * [`TwoHopIndex`] (the *twohop* backend): pruned-landmark 2-hop
//!   labeling over the condensation — each component stores the sorted
//!   sets of landmarks it reaches (out-labels) and that reach it
//!   (in-labels); `u ⇝ v` iff the label sets intersect. The 64
//!   highest-degree landmarks live in per-component bitmasks, so the
//!   common probe is a single `AND`. Dense-reach DAGs (where the chain
//!   cover degenerates into many short chains) compress far below the
//!   dense rows because a handful of hubs covers most reachable pairs.
//!
//! All backends answer **identical** `reaches` relations (property-tested
//! below); they differ only in space/time trade-offs.

use crate::bitset::BitSet;
use crate::closure::TransitiveClosure;
use crate::digraph::{DiGraph, NodeId};
use crate::scc::{tarjan_scc, SccResult};
use crate::validate::{proper_reach_set, sample_indices, Violation};
use std::fmt;

/// The reachability question the matching kernels ask of a data graph,
/// abstracted over the index representation.
///
/// The relation is the **proper** closure: `reaches(u, v)` holds iff there
/// is a *nonempty* path `u ⇝ v` (a node reaches itself only on a cycle or
/// self-loop). Implementations must be consistent: `successors_iter(v)`
/// enumerates exactly `{ w | reaches(v, w) }` (order unspecified, no
/// duplicates) and `reachable_count(v)` is its cardinality.
pub trait ReachabilityIndex: fmt::Debug + Send + Sync {
    /// Number of nodes of the indexed graph.
    fn node_count(&self) -> usize;

    /// True iff there is a nonempty path `from ⇝ to`.
    fn reaches(&self, from: NodeId, to: NodeId) -> bool;

    /// `|{ w | reaches(from, w) }|`.
    fn reachable_count(&self, from: NodeId) -> usize;

    /// Enumerates the nodes reachable from `from` via nonempty paths
    /// (unspecified order, no duplicates).
    fn successors_iter(&self, from: NodeId) -> Box<dyn Iterator<Item = NodeId> + '_>;

    /// Approximate heap footprint of the index in bytes (the basis of the
    /// engine's backend policy and capacity reporting).
    fn memory_bytes(&self) -> usize;

    /// Total reachable pairs `|E+|` (the closure-edge count reported in
    /// prepare statistics). Implementations with shared per-component
    /// structure should override the per-node default.
    fn pair_count(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.reachable_count(NodeId(v as u32)))
            .sum()
    }
}

impl ReachabilityIndex for TransitiveClosure {
    fn node_count(&self) -> usize {
        TransitiveClosure::node_count(self)
    }

    #[inline]
    fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        TransitiveClosure::reaches(self, from, to)
    }

    fn reachable_count(&self, from: NodeId) -> usize {
        self.reachable_set(from).count()
    }

    fn successors_iter(&self, from: NodeId) -> Box<dyn Iterator<Item = NodeId> + '_> {
        Box::new(self.reachable_set(from).iter().map(|i| NodeId(i as u32)))
    }

    fn memory_bytes(&self) -> usize {
        let comp_bytes = TransitiveClosure::node_count(self) * std::mem::size_of::<u32>();
        let row_bytes: usize = (0..self.component_count())
            .map(|c| self.component_row(c).words().len() * 8)
            .sum();
        comp_bytes + row_bytes + self.component_count() * std::mem::size_of::<usize>()
    }

    fn pair_count(&self) -> usize {
        self.edge_count()
    }
}

/// Compressed reachability via a chain decomposition of the SCC
/// condensation (Jagadish-style transitive-closure compression).
///
/// Construction: the condensation DAG is covered by **chains** — paths in
/// topological order, grown greedily source-to-sink — and every component
/// stores, per chain it can reach, the *minimal* reachable position on
/// that chain. Because consecutive chain elements are connected by
/// condensation edges, reachability along a chain is suffix-closed, so
/// one `(chain, min-position)` pair summarizes every reachable component
/// on that chain. Queries binary-search the component's sorted entry
/// list: `u ⇝ v` iff the entry for `v`'s chain exists with
/// `min-position ≤ position(v)` (same-component queries reduce to the
/// component's cyclic flag).
///
/// Space: `Σ_c |entries(c)|` pairs — at most `O(C·w)` for chain count
/// `w`, and on shallow-reach graphs (hierarchies, citation-style DAGs)
/// closer to `O(C·depth)`, orders of magnitude below the dense `O(C·n)`
/// bits.
#[derive(Debug, Clone)]
pub struct ChainIndex {
    node_count: usize,
    /// `comp[v]` = condensation component of node `v`.
    comp: Vec<u32>,
    /// CSR: nodes grouped by component (`members_off.len() == C + 1`).
    members_off: Vec<u32>,
    members: Vec<NodeId>,
    /// Components lying on a cycle (size > 1 or a self-loop).
    cyclic: BitSet,
    /// `chain_of[c]` / `pos_of[c]`: the chain and position of component `c`.
    chain_of: Vec<u32>,
    pos_of: Vec<u32>,
    /// `chains[j]` = component ids along chain `j` in topological order.
    chains: Vec<Vec<u32>>,
    /// `suffix_nodes[j][p]` = total member nodes of `chains[j][p..]`
    /// (one trailing 0), for O(entries) reachable counts.
    suffix_nodes: Vec<Vec<u32>>,
    /// CSR over components: sorted `(chain, min reachable position)`
    /// pairs (`entry_off.len() == C + 1`).
    entry_off: Vec<u32>,
    entries: Vec<(u32, u32)>,
}

/// Borrowed views of a [`ChainIndex`]'s defining arrays — the
/// serialization boundary (`members`, `chains`, and suffix counts are
/// derived and rebuilt by [`ChainIndex::from_parts`]).
#[derive(Debug, Clone, Copy)]
pub struct ChainIndexParts<'a> {
    /// Node-to-component assignment.
    pub comp: &'a [u32],
    /// Cyclic-component flags.
    pub cyclic: &'a BitSet,
    /// Per-component chain ids.
    pub chain_of: &'a [u32],
    /// Per-component chain positions.
    pub pos_of: &'a [u32],
    /// CSR offsets into `entries`.
    pub entry_off: &'a [u32],
    /// `(chain, min position)` reachability entries.
    pub entries: &'a [(u32, u32)],
}

impl ChainIndex {
    /// Builds the chain index of `g` (one Tarjan pass plus the chain
    /// cover and entry propagation).
    pub fn new<L>(g: &DiGraph<L>) -> Self {
        let scc = tarjan_scc(g);
        Self::from_scc(g, &scc)
    }

    /// Builds the chain index reusing an existing SCC decomposition
    /// (Tarjan ids are reverse-topological, which both the chain cover
    /// and the entry propagation below rely on).
    pub fn from_scc<L>(g: &DiGraph<L>, scc: &SccResult) -> Self {
        let n = g.node_count();
        let c_count = scc.count();
        let comp: Vec<u32> = (0..n)
            .map(|v| scc.component_of(NodeId(v as u32)) as u32)
            .collect();

        // Condensation adjacency (deduplicated) + cyclic flags.
        let mut cyclic = BitSet::new(c_count);
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); c_count];
        for (cid, out_c) in out.iter_mut().enumerate() {
            let mut self_cyclic = scc.members(cid).len() > 1;
            for &v in scc.members(cid) {
                for &w in g.post(v) {
                    let d = scc.component_of(w);
                    if d == cid {
                        self_cyclic = true;
                    } else {
                        debug_assert!(d < cid, "tarjan numbering invariant");
                        out_c.push(d as u32);
                    }
                }
            }
            out_c.sort_unstable();
            out_c.dedup();
            if self_cyclic {
                cyclic.insert(cid);
            }
        }
        let mut rin: Vec<Vec<u32>> = vec![Vec::new(); c_count];
        for (c, outs) in out.iter().enumerate() {
            for &d in outs {
                rin[d as usize].push(c as u32);
            }
        }

        // Greedy chain cover in topological order (descending Tarjan id =
        // sources first): extend a chain whose current tail is an
        // in-neighbor, else start a new chain.
        let mut chain_of = vec![0u32; c_count];
        let mut pos_of = vec![0u32; c_count];
        let mut chains: Vec<Vec<u32>> = Vec::new();
        let mut tail_of_chain: Vec<u32> = Vec::new();
        for c in (0..c_count).rev() {
            let extended = rin[c].iter().find_map(|&p| {
                let j = chain_of[p as usize] as usize;
                (tail_of_chain[j] == p).then_some(j)
            });
            match extended {
                Some(j) => {
                    chain_of[c] = j as u32;
                    pos_of[c] = chains[j].len() as u32;
                    chains[j].push(c as u32);
                    tail_of_chain[j] = c as u32;
                }
                None => {
                    chain_of[c] = chains.len() as u32;
                    pos_of[c] = 0;
                    chains.push(vec![c as u32]);
                    tail_of_chain.push(c as u32);
                }
            }
        }

        // Entry propagation in reverse topological order (ascending id =
        // sinks first, so successors' entries are already final): the
        // reachable set of `c` is the union over out-edges `c -> d` of
        // `{d} ∪ reach(d)`, folded chain-wise as minimum positions.
        let width = chains.len();
        let mut entry_off = vec![0u32; c_count + 1];
        let mut entries: Vec<(u32, u32)> = Vec::new();
        let mut best: Vec<u32> = vec![u32::MAX; width];
        let mut touched: Vec<u32> = Vec::new();
        for c in 0..c_count {
            for &d in &out[c] {
                let d = d as usize;
                let (dj, dp) = (chain_of[d] as usize, pos_of[d]);
                if best[dj] == u32::MAX {
                    touched.push(dj as u32);
                    best[dj] = dp;
                } else if dp < best[dj] {
                    best[dj] = dp;
                }
                let (s, e) = (entry_off[d] as usize, entry_off[d + 1] as usize);
                for &(ej, ep) in &entries[s..e] {
                    let ej = ej as usize;
                    if best[ej] == u32::MAX {
                        touched.push(ej as u32);
                        best[ej] = ep;
                    } else if ep < best[ej] {
                        best[ej] = ep;
                    }
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                entries.push((j, best[j as usize]));
                best[j as usize] = u32::MAX;
            }
            touched.clear();
            entry_off[c + 1] = entries.len() as u32;
        }

        Self::finish(
            n, comp, cyclic, chain_of, pos_of, chains, entry_off, entries,
        )
    }

    /// Reassembles a chain index from its defining arrays (see
    /// [`ChainIndex::parts`]), revalidating structural invariants and
    /// rebuilding the derived tables — the snapshot-restore constructor.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant (length
    /// mismatches, out-of-range ids, non-bijective chain positions,
    /// unsorted entry lists).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        node_count: usize,
        comp: Vec<u32>,
        cyclic: BitSet,
        mut chain_of: Vec<u32>,
        pos_of: Vec<u32>,
        entry_off: Vec<u32>,
        mut entries: Vec<(u32, u32)>,
    ) -> Result<Self, String> {
        compact_chain_ids(&mut chain_of, &mut entries);
        let chains = check_chain_parts(
            node_count,
            ChainIndexParts {
                comp: &comp,
                cyclic: &cyclic,
                chain_of: &chain_of,
                pos_of: &pos_of,
                entry_off: &entry_off,
                entries: &entries,
            },
        )?;
        Ok(Self::finish(
            node_count, comp, cyclic, chain_of, pos_of, chains, entry_off, entries,
        ))
    }

    /// Shared tail of the constructors: derives the member CSR and the
    /// per-chain suffix node counts.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        node_count: usize,
        comp: Vec<u32>,
        cyclic: BitSet,
        chain_of: Vec<u32>,
        pos_of: Vec<u32>,
        chains: Vec<Vec<u32>>,
        entry_off: Vec<u32>,
        entries: Vec<(u32, u32)>,
    ) -> Self {
        let c_count = chain_of.len();
        let mut members_off = vec![0u32; c_count + 1];
        for &c in &comp {
            members_off[c as usize + 1] += 1;
        }
        for i in 0..c_count {
            members_off[i + 1] += members_off[i];
        }
        let mut cursor = members_off.clone();
        let mut members = vec![NodeId(0); node_count];
        for (v, &c) in comp.iter().enumerate() {
            let slot = &mut cursor[c as usize];
            members[*slot as usize] = NodeId(v as u32);
            *slot += 1;
        }
        let member_len = |c: usize| (members_off[c + 1] - members_off[c]) as u32;
        let suffix_nodes: Vec<Vec<u32>> = chains
            .iter()
            .map(|chain| {
                let mut suffix = vec![0u32; chain.len() + 1];
                for p in (0..chain.len()).rev() {
                    suffix[p] = suffix[p + 1] + member_len(chain[p] as usize);
                }
                suffix
            })
            .collect();
        Self {
            node_count,
            comp,
            members_off,
            members,
            cyclic,
            chain_of,
            pos_of,
            chains,
            suffix_nodes,
            entry_off,
            entries,
        }
    }

    /// Number of condensation components.
    pub fn component_count(&self) -> usize {
        self.chain_of.len()
    }

    /// Number of chains in the cover (the decomposition width actually
    /// achieved by the greedy cover).
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// The component node `v` belongs to.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> usize {
        self.comp[v.index()] as usize
    }

    /// Borrowed views of the defining arrays for serialization.
    pub fn parts(&self) -> ChainIndexParts<'_> {
        ChainIndexParts {
            comp: &self.comp,
            cyclic: &self.cyclic,
            chain_of: &self.chain_of,
            pos_of: &self.pos_of,
            entry_off: &self.entry_off,
            entries: &self.entries,
        }
    }

    fn entry_slice(&self, c: usize) -> &[(u32, u32)] {
        &self.entries[self.entry_off[c] as usize..self.entry_off[c + 1] as usize]
    }

    fn members_of(&self, c: usize) -> &[NodeId] {
        &self.members[self.members_off[c] as usize..self.members_off[c + 1] as usize]
    }

    /// Cheap structural self-check (no graph needed): the
    /// [`ChainIndex::from_parts`] invariants over the defining arrays,
    /// plus consistency of every derived table (stored chains vs
    /// `(chain_of, pos_of)`, member CSR vs `comp`, suffix node counts).
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), Violation> {
        let chains = check_chain_parts(self.node_count, self.parts())
            .map_err(|e| Violation::new("chain-structure", e))?;
        if chains != self.chains {
            return Err(Violation::new(
                "chain-derived",
                "stored chains disagree with (chain_of, pos_of)",
            ));
        }
        let c_count = self.component_count();
        check_member_csr(
            self.node_count,
            c_count,
            &self.comp,
            &self.members_off,
            &self.members,
        )
        .map_err(|e| Violation::new("chain-derived", e))?;
        let member_len = |c: usize| self.members_off[c + 1] - self.members_off[c];
        for (j, chain) in self.chains.iter().enumerate() {
            let suffix = &self.suffix_nodes[j];
            if suffix.len() != chain.len() + 1 || suffix.last() != Some(&0) {
                return Err(Violation::new(
                    "chain-derived",
                    format!("suffix table of chain {j} has the wrong shape"),
                ));
            }
            for p in (0..chain.len()).rev() {
                if suffix[p] != suffix[p + 1] + member_len(chain[p] as usize) {
                    return Err(Violation::new(
                        "chain-derived",
                        format!("suffix count of chain {j} position {p} is stale"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Deep check against the graph the index claims to cover: runs
    /// [`ChainIndex::validate`], compares the component partition and
    /// cyclic flags against a fresh Tarjan pass, verifies that
    /// consecutive chain elements are genuine condensation edges (the
    /// property that makes chain reachability suffix-closed), and
    /// compares `reaches` from up to `samples` evenly-spaced source
    /// nodes against brute-force proper-path BFS.
    pub fn validate_against<L>(&self, g: &DiGraph<L>, samples: usize) -> Result<(), Violation> {
        self.validate()?;
        if g.node_count() != self.node_count {
            return Err(Violation::new(
                "chain-structure",
                format!(
                    "index covers {} nodes, graph has {}",
                    self.node_count,
                    g.node_count()
                ),
            ));
        }
        check_condensation(g, &self.comp, &self.cyclic)?;
        // Condensation out-adjacency under the index's own numbering.
        let mut cond_edges: Vec<(u32, u32)> = g
            .edges()
            .filter_map(|(a, b)| {
                let (ca, cb) = (self.comp[a.index()], self.comp[b.index()]);
                (ca != cb).then_some((ca, cb))
            })
            .collect();
        cond_edges.sort_unstable();
        cond_edges.dedup();
        for (j, chain) in self.chains.iter().enumerate() {
            for w in chain.windows(2) {
                if cond_edges.binary_search(&(w[0], w[1])).is_err() {
                    return Err(Violation::new(
                        "chain-edges",
                        format!(
                            "chain {j} links components {} -> {} with no condensation edge",
                            w[0], w[1]
                        ),
                    ));
                }
            }
        }
        check_sampled_reaches(g, self, samples, "chain-reaches")
    }

    /// Reachable nodes of component `c` (shared by every member).
    fn component_reachable_count(&self, c: usize) -> usize {
        let via_chains: usize = self
            .entry_slice(c)
            .iter()
            .map(|&(j, p)| self.suffix_nodes[j as usize][p as usize] as usize)
            .sum();
        via_chains
            + if self.cyclic.contains(c) {
                self.members_of(c).len()
            } else {
                0
            }
    }
}

impl ReachabilityIndex for ChainIndex {
    fn node_count(&self) -> usize {
        self.node_count
    }

    fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let cf = self.comp[from.index()] as usize;
        let ct = self.comp[to.index()];
        if cf == ct as usize {
            return self.cyclic.contains(cf);
        }
        let (tj, tp) = (self.chain_of[ct as usize], self.pos_of[ct as usize]);
        match self.entry_slice(cf).binary_search_by_key(&tj, |&(j, _)| j) {
            Ok(i) => self.entry_slice(cf)[i].1 <= tp,
            Err(_) => false,
        }
    }

    fn reachable_count(&self, from: NodeId) -> usize {
        self.component_reachable_count(self.comp[from.index()] as usize)
    }

    fn successors_iter(&self, from: NodeId) -> Box<dyn Iterator<Item = NodeId> + '_> {
        let c = self.comp[from.index()] as usize;
        let own = self.cyclic.contains(c).then_some(c as u32);
        Box::new(
            self.entry_slice(c)
                .iter()
                .flat_map(move |&(j, p)| self.chains[j as usize][p as usize..].iter().copied())
                .chain(own)
                .flat_map(move |d| self.members_of(d as usize).iter().copied()),
        )
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.comp.len() * size_of::<u32>()
            + self.members_off.len() * size_of::<u32>()
            + self.members.len() * size_of::<NodeId>()
            + self.cyclic.words().len() * 8
            + self.chain_of.len() * size_of::<u32>()
            + self.pos_of.len() * size_of::<u32>()
            + self
                .chains
                .iter()
                .map(|c| c.len() * size_of::<u32>() + size_of::<Vec<u32>>())
                .sum::<usize>()
            + self
                .suffix_nodes
                .iter()
                .map(|s| s.len() * size_of::<u32>() + size_of::<Vec<u32>>())
                .sum::<usize>()
            + self.entry_off.len() * size_of::<u32>()
            + self.entries.len() * size_of::<(u32, u32)>()
    }

    fn pair_count(&self) -> usize {
        (0..self.component_count())
            .map(|c| self.members_of(c).len() * self.component_reachable_count(c))
            .sum()
    }
}

/// Renumbers chain ids onto the dense range `0..k`, preserving order.
///
/// The semi-dynamic maintainer parks absorbed slots on fresh tombstone
/// chains and splits suffixes onto fresh ids, so round-tripped indexes
/// carry sparse, ever-growing chain ids. Compacting at restore keeps
/// every id-indexed table proportional to the component count — and
/// keeps a corrupted id from inflating the rebuild allocations in
/// [`check_chain_parts`]. The remap is order-preserving, so strictly
/// sorted entry lists stay sorted; an entry naming an id that no slot
/// occupies maps to `k` (out of range), which the structural check then
/// rejects as a dangling chain reference.
fn compact_chain_ids(chain_of: &mut [u32], entries: &mut [(u32, u32)]) {
    let mut ids: Vec<u32> = chain_of.to_vec();
    ids.sort_unstable();
    ids.dedup();
    let rank = |j: u32| ids.binary_search(&j).map_or(ids.len(), |i| i) as u32;
    for j in chain_of.iter_mut() {
        *j = rank(*j);
    }
    for e in entries.iter_mut() {
        e.0 = rank(e.0);
    }
}

/// Structural well-formedness of the chain-index defining arrays —
/// shared by [`ChainIndex::from_parts`] (the snapshot-restore gate) and
/// [`ChainIndex::validate`]. On success returns the chains rebuilt from
/// `(chain_of, pos_of)`.
///
/// Expects compact chain ids: fresh builds number chains densely and
/// [`ChainIndex::from_parts`] renumbers via [`compact_chain_ids`], so
/// any id at or beyond the component count is corruption.
fn check_chain_parts(node_count: usize, p: ChainIndexParts<'_>) -> Result<Vec<Vec<u32>>, String> {
    let c_count = p.chain_of.len();
    if p.comp.len() != node_count {
        return Err(format!(
            "comp covers {} of {node_count} nodes",
            p.comp.len()
        ));
    }
    if p.pos_of.len() != c_count || p.cyclic.len() != c_count {
        return Err("pos_of/cyclic length mismatch".into());
    }
    if p.entry_off.len() != c_count + 1
        || p.entry_off.first() != Some(&0)
        || p.entry_off
            .last()
            .is_none_or(|&e| e as usize != p.entries.len())
    {
        return Err("entry_off does not span entries".into());
    }
    if p.comp.iter().any(|&c| c as usize >= c_count) {
        return Err("component id out of range".into());
    }
    // With compact ids, chains partition the components, so no chain id
    // or position can reach c_count. Checking *before* sizing any
    // allocation off these values keeps a corrupt snapshot from
    // requesting gigabytes here.
    if p.chain_of.iter().any(|&j| j as usize >= c_count) {
        return Err("chain id out of range".into());
    }
    if p.pos_of.iter().any(|&pos| pos as usize >= c_count) {
        return Err("chain position out of range".into());
    }
    // Rebuild chains from (chain_of, pos_of) and verify bijectivity.
    let width = p
        .chain_of
        .iter()
        .map(|&j| j as usize + 1)
        .max()
        .unwrap_or(0);
    let mut lens = vec![0usize; width];
    for (&j, &pos) in p.chain_of.iter().zip(p.pos_of) {
        lens[j as usize] = lens[j as usize].max(pos as usize + 1);
    }
    // A bijective assignment needs exactly one slot per component; sum
    // first so the per-chain buffers are never over-allocated.
    if lens.iter().sum::<usize>() != c_count {
        return Err("chain slots do not partition the components".into());
    }
    let mut chains: Vec<Vec<u32>> = lens.iter().map(|&l| vec![u32::MAX; l]).collect();
    for c in 0..c_count {
        let slot = &mut chains[p.chain_of[c] as usize][p.pos_of[c] as usize];
        if *slot != u32::MAX {
            return Err(format!("chain position claimed twice by {} and {c}", *slot));
        }
        *slot = c as u32;
    }
    if chains.iter().flatten().any(|&c| c == u32::MAX) {
        return Err("chain has an unassigned position".into());
    }
    for c in 0..c_count {
        let (s, e) = (p.entry_off[c] as usize, p.entry_off[c + 1] as usize);
        if s > e || e > p.entries.len() {
            return Err("entry_off not monotone".into());
        }
        let slice = &p.entries[s..e];
        for w in slice.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err("entry chains not strictly sorted".into());
            }
        }
        for &(j, pos) in slice {
            if (j as usize) >= width || (pos as usize) >= chains[j as usize].len() {
                return Err(format!("entry ({j}, {pos}) out of range"));
            }
            // Chain positions follow topological order and the
            // condensation is acyclic, so a component can never reach a
            // position at or before its own slot on its own chain (its
            // self-reachability is carried by the cyclic flag alone).
            if j == p.chain_of[c] && pos <= p.pos_of[c] {
                return Err(format!(
                    "component {c} claims its own chain at position {pos} \
                     (its slot is {})",
                    p.pos_of[c]
                ));
            }
        }
    }
    Ok(chains)
}

/// Structural well-formedness of the 2-hop defining arrays — shared by
/// [`TwoHopIndex::from_parts`] (the snapshot-restore gate) and
/// [`TwoHopIndex::validate`].
fn check_twohop_parts(node_count: usize, p: TwoHopIndexParts<'_>) -> Result<(), String> {
    let c_count = p.out_mask.len();
    if p.comp.len() != node_count {
        return Err(format!(
            "comp covers {} of {node_count} nodes",
            p.comp.len()
        ));
    }
    if p.in_mask.len() != c_count || p.cyclic.len() != c_count {
        return Err("in_mask/cyclic length mismatch".into());
    }
    if p.comp.iter().any(|&c| c as usize >= c_count) {
        return Err("component id out of range".into());
    }
    for (name, off, lab) in [("out", p.out_off, p.out_lab), ("in", p.in_off, p.in_lab)] {
        if off.len() != c_count + 1
            || off.first() != Some(&0)
            || off.last().is_none_or(|&e| e as usize != lab.len())
        {
            return Err(format!("{name}_off does not span {name}_lab"));
        }
        for c in 0..c_count {
            let (s, e) = (off[c] as usize, off[c + 1] as usize);
            if s > e || e > lab.len() {
                return Err(format!("{name}_off not monotone"));
            }
            let slice = &lab[s..e];
            for w in slice.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("{name} label tail not strictly sorted"));
                }
            }
            if slice
                .iter()
                .any(|&r| (r as usize) < 64 || (r as usize) >= c_count)
            {
                return Err(format!("{name} label rank out of range"));
            }
        }
    }
    // Every component carries its own landmark rank in both label sets
    // (the self-labels added first during construction), so its out/in
    // labels must intersect.
    for c in 0..c_count {
        let out_tail = &p.out_lab[p.out_off[c] as usize..p.out_off[c + 1] as usize];
        let in_tail = &p.in_lab[p.in_off[c] as usize..p.in_off[c + 1] as usize];
        if p.out_mask[c] & p.in_mask[c] == 0 && !intersects_sorted(out_tail, in_tail) {
            return Err(format!("component {c} lacks its self-certificate label"));
        }
    }
    Ok(())
}

/// Checks that a member CSR groups exactly the nodes of each component
/// (shared by the chain and 2-hop validators).
fn check_member_csr(
    node_count: usize,
    c_count: usize,
    comp: &[u32],
    members_off: &[u32],
    members: &[NodeId],
) -> Result<(), String> {
    if members_off.len() != c_count + 1
        || members_off.first() != Some(&0)
        || members_off.last().is_none_or(|&e| e as usize != node_count)
        || members.len() != node_count
    {
        return Err("member CSR has the wrong shape".into());
    }
    let mut seen = BitSet::new(node_count);
    for c in 0..c_count {
        let (s, e) = (members_off[c] as usize, members_off[c + 1] as usize);
        if s > e {
            return Err("member offsets not monotone".into());
        }
        for &v in &members[s..e] {
            if v.index() >= node_count || comp[v.index()] as usize != c {
                return Err(format!("node {} filed under component {c}", v.0));
            }
            if !seen.insert(v.index()) {
                return Err(format!("node {} listed twice", v.0));
            }
        }
    }
    Ok(())
}

/// Compares an index's component partition and cyclic flags against a
/// fresh Tarjan pass over `g` (numbering-agnostic: the two partitions
/// must induce the same equivalence relation).
fn check_condensation<L>(g: &DiGraph<L>, comp: &[u32], cyclic: &BitSet) -> Result<(), Violation> {
    let scc = tarjan_scc(g);
    let c_count = cyclic.len();
    let mut fwd = vec![u32::MAX; c_count];
    let mut bwd = vec![u32::MAX; scc.count()];
    for v in g.nodes() {
        let a = comp[v.index()] as usize;
        let b = scc.component_of(v);
        if fwd[a] == u32::MAX {
            fwd[a] = b as u32;
        } else if fwd[a] != b as u32 {
            return Err(Violation::new(
                "condensation-partition",
                format!("component {a} spans multiple SCCs (node {})", v.0),
            ));
        }
        if bwd[b] == u32::MAX {
            bwd[b] = a as u32;
        } else if bwd[b] != a as u32 {
            return Err(Violation::new(
                "condensation-partition",
                format!("SCC {b} split across components (node {})", v.0),
            ));
        }
    }
    for (b, &mapped) in bwd.iter().enumerate() {
        let is_cyclic =
            scc.members(b).len() > 1 || scc.members(b).iter().any(|&v| g.has_edge(v, v));
        let a = mapped as usize;
        if cyclic.contains(a) != is_cyclic {
            return Err(Violation::new(
                "condensation-cyclic",
                format!("component {a} cyclic flag is {}", cyclic.contains(a)),
            ));
        }
    }
    Ok(())
}

/// Compares `reaches` from up to `samples` evenly-spaced source nodes
/// against brute-force proper-path BFS over `g`.
fn check_sampled_reaches<L, I: ReachabilityIndex>(
    g: &DiGraph<L>,
    index: &I,
    samples: usize,
    check: &'static str,
) -> Result<(), Violation> {
    for v in sample_indices(g.node_count(), samples) {
        let v = NodeId(v as u32);
        let truth = proper_reach_set(g, v);
        for w in g.nodes() {
            if index.reaches(v, w) != truth.contains(w.index()) {
                return Err(Violation::new(
                    check,
                    format!(
                        "reaches({}, {}) = {}, BFS says {}",
                        v.0,
                        w.0,
                        index.reaches(v, w),
                        truth.contains(w.index())
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// True iff the strictly ascending slices share an element (merge scan).
#[inline]
fn intersects_sorted(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Pruned-landmark 2-hop reachability labeling over the SCC condensation.
///
/// Construction processes condensation components as landmarks in
/// **descending degree order** (Akiba-style pruned labeling, reachability
/// variant): landmark `h`'s forward BFS adds `h` to the in-label of every
/// component it reaches whose pair is not already covered by an
/// earlier-ranked landmark (pruned subtrees are never expanded), and its
/// backward BFS symmetrically fills out-labels. The resulting labels form
/// a 2-hop cover: `u ⇝ v` (for distinct components) iff
/// `out(u) ∩ in(v) ≠ ∅`.
///
/// Labels store landmark **ranks**, so lists are naturally sorted and a
/// probe is a sorted-list intersection. The 64 highest-ranked landmarks
/// are additionally held in per-component `u64` masks (`out_mask` /
/// `in_mask`), making the common probe — hub-covered pairs — one `AND`;
/// only pairs not covered by the top hubs fall through to the merge scan
/// of the tail lists.
///
/// The index also keeps the (deduplicated) condensation out-adjacency,
/// which serves successor enumeration and the exact per-component
/// reachable-node counts; it is O(condensation edges), negligible next to
/// the labels.
#[derive(Debug, Clone)]
pub struct TwoHopIndex {
    node_count: usize,
    /// `comp[v]` = condensation component of node `v`.
    comp: Vec<u32>,
    /// CSR: nodes grouped by component (`members_off.len() == C + 1`).
    members_off: Vec<u32>,
    members: Vec<NodeId>,
    /// Components lying on a cycle (size > 1 or a self-loop).
    cyclic: BitSet,
    /// Bit `r` set iff landmark rank `r < 64` is in the component's
    /// out-label (reachable from the component).
    out_mask: Vec<u64>,
    /// Bit `r` set iff landmark rank `r < 64` is in the component's
    /// in-label (reaches the component).
    in_mask: Vec<u64>,
    /// CSR of out-label tails (ranks ≥ 64, strictly ascending).
    out_off: Vec<u32>,
    out_lab: Vec<u32>,
    /// CSR of in-label tails (ranks ≥ 64, strictly ascending).
    in_off: Vec<u32>,
    in_lab: Vec<u32>,
    /// CSR of the deduplicated condensation out-adjacency.
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    /// Exact reachable-node count per component.
    reach_nodes: Vec<u32>,
    /// Cached `Σ members(c) · reach_nodes(c)`.
    pairs: usize,
}

/// Borrowed views of a [`TwoHopIndex`]'s defining arrays — the
/// serialization boundary. The member CSR, condensation adjacency, and
/// reachable counts are derived and rebuilt by
/// [`TwoHopIndex::from_parts`] (which takes the graph for exactly that
/// purpose).
#[derive(Debug, Clone, Copy)]
pub struct TwoHopIndexParts<'a> {
    /// Node-to-component assignment.
    pub comp: &'a [u32],
    /// Cyclic-component flags.
    pub cyclic: &'a BitSet,
    /// Hub-rank (< 64) out-label masks.
    pub out_mask: &'a [u64],
    /// Hub-rank (< 64) in-label masks.
    pub in_mask: &'a [u64],
    /// CSR offsets into `out_lab`.
    pub out_off: &'a [u32],
    /// Out-label tail ranks (≥ 64).
    pub out_lab: &'a [u32],
    /// CSR offsets into `in_lab`.
    pub in_off: &'a [u32],
    /// In-label tail ranks (≥ 64).
    pub in_lab: &'a [u32],
}

/// A label set under construction: hub mask plus tail list.
#[inline]
fn add_label(rank: u32, mask: &mut u64, tail: &mut Vec<u32>) {
    if rank < 64 {
        *mask |= 1u64 << rank;
    } else {
        tail.push(rank);
    }
}

/// Label-only covering query used during construction pruning.
#[inline]
fn labels_cover(
    from: usize,
    to: usize,
    out_mask: &[u64],
    in_mask: &[u64],
    out_tail: &[Vec<u32>],
    in_tail: &[Vec<u32>],
) -> bool {
    out_mask[from] & in_mask[to] != 0 || intersects_sorted(&out_tail[from], &in_tail[to])
}

impl TwoHopIndex {
    /// Builds the 2-hop index of `g` (one Tarjan pass plus the pruned
    /// labeling sweeps).
    pub fn new<L>(g: &DiGraph<L>) -> Self {
        let scc = tarjan_scc(g);
        Self::from_scc(g, &scc)
    }

    /// Builds the 2-hop index reusing an existing SCC decomposition.
    pub fn from_scc<L>(g: &DiGraph<L>, scc: &SccResult) -> Self {
        let n = g.node_count();
        let c_count = scc.count();
        let comp: Vec<u32> = (0..n)
            .map(|v| scc.component_of(NodeId(v as u32)) as u32)
            .collect();

        // Condensation adjacency (deduplicated, both directions) + cyclic.
        let mut cyclic = BitSet::new(c_count);
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); c_count];
        for (cid, out_c) in out.iter_mut().enumerate() {
            let mut self_cyclic = scc.members(cid).len() > 1;
            for &v in scc.members(cid) {
                for &w in g.post(v) {
                    let d = scc.component_of(w);
                    if d == cid {
                        self_cyclic = true;
                    } else {
                        out_c.push(d as u32);
                    }
                }
            }
            out_c.sort_unstable();
            out_c.dedup();
            if self_cyclic {
                cyclic.insert(cid);
            }
        }
        let mut rin: Vec<Vec<u32>> = vec![Vec::new(); c_count];
        for (c, outs) in out.iter().enumerate() {
            for &d in outs {
                rin[d as usize].push(c as u32);
            }
        }

        // Landmark order: descending condensation degree, id tiebreak.
        // High-degree components are the hubs most shortest "2-hop"
        // certificates route through; ranking them first keeps labels
        // short and concentrates coverage in the rank-<64 masks.
        let mut order: Vec<u32> = (0..c_count as u32).collect();
        order.sort_unstable_by_key(|&c| {
            let deg = out[c as usize].len() + rin[c as usize].len();
            (std::cmp::Reverse(deg), c)
        });

        let mut out_mask = vec![0u64; c_count];
        let mut in_mask = vec![0u64; c_count];
        let mut out_tail: Vec<Vec<u32>> = vec![Vec::new(); c_count];
        let mut in_tail: Vec<Vec<u32>> = vec![Vec::new(); c_count];

        // Pruned BFS sweeps. `seen` is epoch-stamped so neither sweep
        // clears it; `queue` doubles as the BFS frontier.
        let mut seen = vec![u32::MAX; c_count];
        let mut queue: Vec<u32> = Vec::new();
        for (r, &v) in order.iter().enumerate() {
            let rank = r as u32;
            let v = v as usize;
            // Self-labels first: they are the certificates later queries
            // intersect on when `v` itself is the hub of a pair.
            add_label(rank, &mut out_mask[v], &mut out_tail[v]);
            add_label(rank, &mut in_mask[v], &mut in_tail[v]);
            // Forward sweep: `rank` enters the in-label of everything `v`
            // reaches whose pair is not already hub-covered. A pruned
            // component's subtree is never expanded (the earlier hub
            // covers its descendants through the same certificate).
            let epoch = (2 * r) as u32;
            seen[v] = epoch;
            queue.clear();
            queue.push(v as u32);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                for &w in &out[u] {
                    let w = w as usize;
                    if seen[w] == epoch {
                        continue;
                    }
                    seen[w] = epoch;
                    if labels_cover(v, w, &out_mask, &in_mask, &out_tail, &in_tail) {
                        continue;
                    }
                    add_label(rank, &mut in_mask[w], &mut in_tail[w]);
                    queue.push(w as u32);
                }
            }
            // Backward sweep: symmetric, filling out-labels of everything
            // that reaches `v`.
            let epoch = (2 * r + 1) as u32;
            seen[v] = epoch;
            queue.clear();
            queue.push(v as u32);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                for &w in &rin[u] {
                    let w = w as usize;
                    if seen[w] == epoch {
                        continue;
                    }
                    seen[w] = epoch;
                    if labels_cover(w, v, &out_mask, &in_mask, &out_tail, &in_tail) {
                        continue;
                    }
                    add_label(rank, &mut out_mask[w], &mut out_tail[w]);
                    queue.push(w as u32);
                }
            }
        }

        let (out_off, out_lab) = flatten_csr(&out_tail);
        let (in_off, in_lab) = flatten_csr(&in_tail);
        let (adj_off, adj) = flatten_csr(&out);
        Self::finish(
            n, comp, cyclic, out_mask, in_mask, out_off, out_lab, in_off, in_lab, adj_off, adj,
        )
    }

    /// Reassembles a 2-hop index from its defining arrays (see
    /// [`TwoHopIndex::parts`]), revalidating structural invariants and
    /// rederiving the member CSR, condensation adjacency, and reachable
    /// counts from `g` — the snapshot-restore constructor.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant (length
    /// mismatches, out-of-range component or rank ids, unsorted label
    /// tails).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts<L>(
        g: &DiGraph<L>,
        comp: Vec<u32>,
        cyclic: BitSet,
        out_mask: Vec<u64>,
        in_mask: Vec<u64>,
        out_off: Vec<u32>,
        out_lab: Vec<u32>,
        in_off: Vec<u32>,
        in_lab: Vec<u32>,
    ) -> Result<Self, String> {
        let n = g.node_count();
        let c_count = out_mask.len();
        check_twohop_parts(
            n,
            TwoHopIndexParts {
                comp: &comp,
                cyclic: &cyclic,
                out_mask: &out_mask,
                in_mask: &in_mask,
                out_off: &out_off,
                out_lab: &out_lab,
                in_off: &in_off,
                in_lab: &in_lab,
            },
        )?;
        // Rederive the condensation adjacency from the graph under the
        // given component assignment.
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); c_count];
        for (a, b) in g.edges() {
            let (ca, cb) = (comp[a.index()], comp[b.index()]);
            if ca != cb {
                out[ca as usize].push(cb);
            }
        }
        for out_c in &mut out {
            out_c.sort_unstable();
            out_c.dedup();
        }
        let (adj_off, adj) = flatten_csr(&out);
        Ok(Self::finish(
            n, comp, cyclic, out_mask, in_mask, out_off, out_lab, in_off, in_lab, adj_off, adj,
        ))
    }

    /// Shared tail of the constructors: derives the member CSR and the
    /// exact per-component reachable counts (one adjacency BFS per
    /// component, epoch-stamped).
    #[allow(clippy::too_many_arguments)]
    fn finish(
        node_count: usize,
        comp: Vec<u32>,
        cyclic: BitSet,
        out_mask: Vec<u64>,
        in_mask: Vec<u64>,
        out_off: Vec<u32>,
        out_lab: Vec<u32>,
        in_off: Vec<u32>,
        in_lab: Vec<u32>,
        adj_off: Vec<u32>,
        adj: Vec<u32>,
    ) -> Self {
        let c_count = out_mask.len();
        let mut members_off = vec![0u32; c_count + 1];
        for &c in &comp {
            members_off[c as usize + 1] += 1;
        }
        for i in 0..c_count {
            members_off[i + 1] += members_off[i];
        }
        let mut cursor = members_off.clone();
        let mut members = vec![NodeId(0); node_count];
        for (v, &c) in comp.iter().enumerate() {
            let slot = &mut cursor[c as usize];
            members[*slot as usize] = NodeId(v as u32);
            *slot += 1;
        }
        let member_len = |c: usize| (members_off[c + 1] - members_off[c]) as usize;
        let mut reach_nodes = vec![0u32; c_count];
        let mut seen = vec![u32::MAX; c_count];
        let mut queue: Vec<u32> = Vec::new();
        for c in 0..c_count {
            let epoch = c as u32;
            seen[c] = epoch;
            queue.clear();
            queue.push(c as u32);
            let mut head = 0;
            let mut count = if cyclic.contains(c) { member_len(c) } else { 0 };
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                for &w in &adj[adj_off[u] as usize..adj_off[u + 1] as usize] {
                    let w = w as usize;
                    if seen[w] == epoch {
                        continue;
                    }
                    seen[w] = epoch;
                    count += member_len(w);
                    queue.push(w as u32);
                }
            }
            reach_nodes[c] = count as u32;
        }
        let pairs = (0..c_count)
            .map(|c| member_len(c) * reach_nodes[c] as usize)
            .sum();
        Self {
            node_count,
            comp,
            members_off,
            members,
            cyclic,
            out_mask,
            in_mask,
            out_off,
            out_lab,
            in_off,
            in_lab,
            adj_off,
            adj,
            reach_nodes,
            pairs,
        }
    }

    /// Number of condensation components.
    pub fn component_count(&self) -> usize {
        self.out_mask.len()
    }

    /// Total label entries (hub-mask bits plus tail-list entries) — the
    /// quantity the pruning minimizes.
    pub fn label_entries(&self) -> usize {
        let mask_bits: u32 = self
            .out_mask
            .iter()
            .chain(&self.in_mask)
            .map(|m| m.count_ones())
            .sum();
        mask_bits as usize + self.out_lab.len() + self.in_lab.len()
    }

    /// The component node `v` belongs to.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> usize {
        self.comp[v.index()] as usize
    }

    /// Borrowed views of the defining arrays for serialization.
    pub fn parts(&self) -> TwoHopIndexParts<'_> {
        TwoHopIndexParts {
            comp: &self.comp,
            cyclic: &self.cyclic,
            out_mask: &self.out_mask,
            in_mask: &self.in_mask,
            out_off: &self.out_off,
            out_lab: &self.out_lab,
            in_off: &self.in_off,
            in_lab: &self.in_lab,
        }
    }

    /// Cheap structural self-check (no graph needed): the
    /// [`TwoHopIndex::from_parts`] invariants over the defining arrays,
    /// member-CSR and adjacency-CSR consistency, and — on a
    /// deterministic sample of components — soundness *and* completeness
    /// of the 2-hop labels against BFS over the stored condensation
    /// adjacency, including the cached reachable-node counts. Returns
    /// the first violated invariant.
    pub fn validate(&self) -> Result<(), Violation> {
        check_twohop_parts(self.node_count, self.parts())
            .map_err(|e| Violation::new("twohop-structure", e))?;
        let c_count = self.component_count();
        check_member_csr(
            self.node_count,
            c_count,
            &self.comp,
            &self.members_off,
            &self.members,
        )
        .map_err(|e| Violation::new("twohop-derived", e))?;
        if self.adj_off.len() != c_count + 1
            || self.adj_off.first() != Some(&0)
            || self
                .adj_off
                .last()
                .is_none_or(|&e| e as usize != self.adj.len())
        {
            return Err(Violation::new(
                "twohop-derived",
                "adjacency CSR has the wrong shape",
            ));
        }
        for c in 0..c_count {
            let (s, e) = (self.adj_off[c] as usize, self.adj_off[c + 1] as usize);
            if s > e {
                return Err(Violation::new(
                    "twohop-derived",
                    "adjacency offsets not monotone",
                ));
            }
            if self.adj[s..e].iter().any(|&d| d as usize >= c_count) {
                return Err(Violation::new(
                    "twohop-derived",
                    format!("adjacency of component {c} points out of range"),
                ));
            }
        }
        let member_len = |c: usize| (self.members_off[c + 1] - self.members_off[c]) as usize;
        // Label soundness + completeness vs BFS over the stored
        // condensation adjacency, on a deterministic component sample.
        let mut reached = BitSet::new(c_count);
        for c in sample_indices(c_count, 16) {
            reached.clear();
            let mut queue = vec![c as u32];
            let mut head = 0;
            let mut nodes = if self.cyclic.contains(c) {
                member_len(c)
            } else {
                0
            };
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                for &w in &self.adj[self.adj_off[u] as usize..self.adj_off[u + 1] as usize] {
                    if w as usize != c && reached.insert(w as usize) {
                        nodes += member_len(w as usize);
                        queue.push(w);
                    }
                }
            }
            for d in 0..c_count {
                if d == c {
                    continue;
                }
                let covered = self.comp_covered(c, d);
                if covered != reached.contains(d) {
                    return Err(Violation::new(
                        "twohop-labels",
                        format!(
                            "labels say {c} -> {d} is {covered}, adjacency BFS says {}",
                            reached.contains(d)
                        ),
                    ));
                }
            }
            if self.reach_nodes[c] as usize != nodes {
                return Err(Violation::new(
                    "twohop-derived",
                    format!(
                        "component {c} caches {} reachable nodes, BFS counts {nodes}",
                        self.reach_nodes[c]
                    ),
                ));
            }
        }
        let pairs: usize = (0..c_count)
            .map(|c| member_len(c) * self.reach_nodes[c] as usize)
            .sum();
        if pairs != self.pairs {
            return Err(Violation::new(
                "twohop-derived",
                format!("cached pair count {} disagrees with {pairs}", self.pairs),
            ));
        }
        Ok(())
    }

    /// Deep check against the graph the index claims to cover: runs
    /// [`TwoHopIndex::validate`], compares the component partition and
    /// cyclic flags against a fresh Tarjan pass, verifies the stored
    /// condensation adjacency against one rederived from `g`, compares
    /// `reaches` from up to `samples` evenly-spaced source nodes against
    /// brute-force proper-path BFS, and finally compares the labeling
    /// against a fresh deterministic rebuild. The last step makes the
    /// deep tier reject *non-canonical* labelings — e.g. a corrupted
    /// mask bit that injects a redundant-but-true hub certificate, which
    /// no purely semantic check can distinguish from the pruned optimum.
    pub fn validate_against<L>(&self, g: &DiGraph<L>, samples: usize) -> Result<(), Violation> {
        self.validate()?;
        if g.node_count() != self.node_count {
            return Err(Violation::new(
                "twohop-structure",
                format!(
                    "index covers {} nodes, graph has {}",
                    self.node_count,
                    g.node_count()
                ),
            ));
        }
        check_condensation(g, &self.comp, &self.cyclic)?;
        let c_count = self.component_count();
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); c_count];
        for (a, b) in g.edges() {
            let (ca, cb) = (self.comp[a.index()], self.comp[b.index()]);
            if ca != cb {
                out[ca as usize].push(cb);
            }
        }
        for (c, out_c) in out.iter_mut().enumerate() {
            out_c.sort_unstable();
            out_c.dedup();
            let stored = &self.adj[self.adj_off[c] as usize..self.adj_off[c + 1] as usize];
            if stored != out_c.as_slice() {
                return Err(Violation::new(
                    "twohop-adjacency",
                    format!("stored adjacency of component {c} disagrees with the graph"),
                ));
            }
        }
        check_sampled_reaches(g, self, samples, "twohop-reaches")?;
        // The pruned-landmark construction is deterministic (degree
        // order with id tiebreaks), so a loaded index must match a
        // rebuild bit for bit.
        let fresh = Self::new(g);
        if self.out_mask != fresh.out_mask
            || self.in_mask != fresh.in_mask
            || self.out_off != fresh.out_off
            || self.out_lab != fresh.out_lab
            || self.in_off != fresh.in_off
            || self.in_lab != fresh.in_lab
        {
            return Err(Violation::new(
                "twohop-canonical",
                "labeling differs from a fresh deterministic rebuild",
            ));
        }
        Ok(())
    }

    fn out_tail(&self, c: usize) -> &[u32] {
        &self.out_lab[self.out_off[c] as usize..self.out_off[c + 1] as usize]
    }

    /// Component-level label probe (`reaches` without the node lookup).
    fn comp_covered(&self, cf: usize, ct: usize) -> bool {
        self.out_mask[cf] & self.in_mask[ct] != 0
            || intersects_sorted(self.out_tail(cf), self.in_tail(ct))
    }

    fn in_tail(&self, c: usize) -> &[u32] {
        &self.in_lab[self.in_off[c] as usize..self.in_off[c + 1] as usize]
    }

    fn members_of(&self, c: usize) -> &[NodeId] {
        &self.members[self.members_off[c] as usize..self.members_off[c + 1] as usize]
    }
}

/// Flattens per-component vectors into a CSR (offsets + values).
fn flatten_csr(lists: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
    let mut off = Vec::with_capacity(lists.len() + 1);
    off.push(0u32);
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut flat = Vec::with_capacity(total);
    for list in lists {
        flat.extend_from_slice(list);
        off.push(flat.len() as u32);
    }
    (off, flat)
}

impl ReachabilityIndex for TwoHopIndex {
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let cf = self.comp[from.index()] as usize;
        let ct = self.comp[to.index()] as usize;
        if cf == ct {
            return self.cyclic.contains(cf);
        }
        self.out_mask[cf] & self.in_mask[ct] != 0
            || intersects_sorted(self.out_tail(cf), self.in_tail(ct))
    }

    fn reachable_count(&self, from: NodeId) -> usize {
        self.reach_nodes[self.comp[from.index()] as usize] as usize
    }

    fn successors_iter(&self, from: NodeId) -> Box<dyn Iterator<Item = NodeId> + '_> {
        // Enumerate reached components by BFS over the stored condensation
        // adjacency (the labels answer membership, not enumeration).
        let c = self.comp[from.index()] as usize;
        let mut seen = BitSet::new(self.component_count());
        seen.insert(c);
        let mut reached: Vec<u32> = Vec::new();
        let mut queue = vec![c as u32];
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &w in &self.adj[self.adj_off[u] as usize..self.adj_off[u + 1] as usize] {
                if seen.insert(w as usize) {
                    reached.push(w);
                    queue.push(w);
                }
            }
        }
        let own = self.cyclic.contains(c).then_some(c as u32);
        Box::new(
            reached
                .into_iter()
                .chain(own)
                .flat_map(move |d| self.members_of(d as usize).iter().copied()),
        )
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.comp.len() * size_of::<u32>()
            + self.members_off.len() * size_of::<u32>()
            + self.members.len() * size_of::<NodeId>()
            + self.cyclic.words().len() * 8
            + (self.out_mask.len() + self.in_mask.len()) * size_of::<u64>()
            + (self.out_off.len() + self.in_off.len()) * size_of::<u32>()
            + (self.out_lab.len() + self.in_lab.len()) * size_of::<u32>()
            + (self.adj_off.len() + self.adj.len()) * size_of::<u32>()
            + self.reach_nodes.len() * size_of::<u32>()
    }

    fn pair_count(&self) -> usize {
        self.pairs
    }
}

/// Mean fraction of condensation components reachable from a
/// deterministic sample of components — the *reach density* the `Auto`
/// backend policy uses to tell dense-reach shapes (where 2-hop labels
/// beat the chain cover) from shallow-reach ones (where chains win).
///
/// Samples up to `samples` components evenly spaced across the id range
/// and BFS-walks the condensation from each; cost is
/// `O(samples · (C + E_c))`, negligible next to any index build.
pub fn reach_density_sample<L>(g: &DiGraph<L>, scc: &SccResult, samples: usize) -> f64 {
    let c_count = scc.count();
    if c_count == 0 {
        return 0.0;
    }
    // Condensation out-adjacency (deduplicated per source on the fly).
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); c_count];
    for (a, b) in g.edges() {
        let (ca, cb) = (scc.component_of(a), scc.component_of(b));
        if ca != cb {
            out[ca].push(cb as u32);
        }
    }
    for out_c in &mut out {
        out_c.sort_unstable();
        out_c.dedup();
    }
    let take = samples.clamp(1, c_count);
    let mut seen = vec![u32::MAX; c_count];
    let mut queue: Vec<u32> = Vec::new();
    let mut total = 0usize;
    for i in 0..take {
        let start = i * c_count / take;
        let epoch = i as u32;
        seen[start] = epoch;
        queue.clear();
        queue.push(start as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &w in &out[u] {
                let w = w as usize;
                if seen[w] != epoch {
                    seen[w] = epoch;
                    total += 1;
                    queue.push(w as u32);
                }
            }
        }
    }
    total as f64 / (take as f64 * c_count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::graph_from_labels;
    use crate::generators::{gnm_random, grid, preferential_attachment, random_dag};

    fn assert_equiv<L>(g: &DiGraph<L>, label: &str) {
        let dense = TransitiveClosure::new(g);
        let others: [(&str, Box<dyn ReachabilityIndex>); 2] = [
            ("chain", Box::new(ChainIndex::new(g))),
            ("twohop", Box::new(TwoHopIndex::new(g))),
        ];
        for (name, other) in &others {
            assert_eq!(
                ReachabilityIndex::node_count(&dense),
                other.node_count(),
                "{label}/{name}: node_count"
            );
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        ReachabilityIndex::reaches(&dense, u, v),
                        other.reaches(u, v),
                        "{label}/{name}: reaches {u:?}->{v:?}"
                    );
                }
                assert_eq!(
                    ReachabilityIndex::reachable_count(&dense, u),
                    other.reachable_count(u),
                    "{label}/{name}: count from {u:?}"
                );
                let mut ds: Vec<u32> = dense.successors_iter(u).map(|n| n.0).collect();
                let mut os: Vec<u32> = other.successors_iter(u).map(|n| n.0).collect();
                ds.sort_unstable();
                os.sort_unstable();
                assert_eq!(ds, os, "{label}/{name}: successors of {u:?}");
            }
            assert_eq!(
                ReachabilityIndex::pair_count(&dense),
                other.pair_count(),
                "{label}/{name}: pair_count"
            );
        }
    }

    #[test]
    fn backends_match_dense_on_fixed_shapes() {
        assert_equiv(
            &graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]),
            "path",
        );
        assert_equiv(
            &graph_from_labels(
                &["a", "b", "c", "d"],
                &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
            ),
            "cycle+tail",
        );
        assert_equiv(
            &graph_from_labels(
                &["a", "b", "c", "d", "e", "f", "iso"],
                &[
                    ("a", "b"),
                    ("b", "c"),
                    ("c", "a"),
                    ("c", "d"),
                    ("d", "e"),
                    ("e", "d"),
                    ("e", "f"),
                ],
            ),
            "two interlocking cycles",
        );
        let mut selfloop: DiGraph<()> = DiGraph::new();
        let a = selfloop.add_node(());
        let b = selfloop.add_node(());
        selfloop.add_edge(a, a);
        selfloop.add_edge(a, b);
        assert_equiv(&selfloop, "self-loop");
    }

    #[test]
    fn backends_match_dense_on_generated_families() {
        assert_equiv(&grid(5, 6), "grid 5x6");
        assert_equiv(&random_dag(60, 150, 11), "random dag");
        assert_equiv(&gnm_random(40, 120, 7), "gnm cyclic");
        assert_equiv(&preferential_attachment(80, 2, 3), "pref attach");
    }

    #[test]
    fn twohop_parts_roundtrip_reconstructs_equal_index() {
        let g = gnm_random(30, 90, 5);
        let idx = TwoHopIndex::new(&g);
        let p = idx.parts();
        let back = TwoHopIndex::from_parts(
            &g,
            p.comp.to_vec(),
            p.cyclic.clone(),
            p.out_mask.to_vec(),
            p.in_mask.to_vec(),
            p.out_off.to_vec(),
            p.out_lab.to_vec(),
            p.in_off.to_vec(),
            p.in_lab.to_vec(),
        )
        .expect("valid parts");
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(idx.reaches(u, v), back.reaches(u, v), "{u:?}->{v:?}");
            }
            assert_eq!(back.reachable_count(u), idx.reachable_count(u));
        }
        assert_eq!(back.memory_bytes(), idx.memory_bytes());
        assert_eq!(back.pair_count(), idx.pair_count());
    }

    #[test]
    fn twohop_from_parts_rejects_malformed_input() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let idx = TwoHopIndex::new(&g);
        let p = idx.parts();
        // comp id out of range
        assert!(TwoHopIndex::from_parts(
            &g,
            vec![0, 9],
            p.cyclic.clone(),
            p.out_mask.to_vec(),
            p.in_mask.to_vec(),
            p.out_off.to_vec(),
            p.out_lab.to_vec(),
            p.in_off.to_vec(),
            p.in_lab.to_vec(),
        )
        .is_err());
        // offsets not spanning the label array
        assert!(TwoHopIndex::from_parts(
            &g,
            p.comp.to_vec(),
            p.cyclic.clone(),
            p.out_mask.to_vec(),
            p.in_mask.to_vec(),
            vec![0, 0, 7],
            p.out_lab.to_vec(),
            p.in_off.to_vec(),
            p.in_lab.to_vec(),
        )
        .is_err());
        // tail rank below the hub-mask range
        assert!(TwoHopIndex::from_parts(
            &g,
            p.comp.to_vec(),
            p.cyclic.clone(),
            p.out_mask.to_vec(),
            p.in_mask.to_vec(),
            vec![0, 1, 1],
            vec![3],
            p.in_off.to_vec(),
            p.in_lab.to_vec(),
        )
        .is_err());
    }

    #[test]
    fn twohop_compresses_dense_reach_dags() {
        // A wide random DAG reaches a large fraction of the graph from
        // every node — the family where ChainIndex *loses* to dense
        // (entry lists grow with chain count) and 2-hop labels win: the
        // hub masks cover most certificates in O(1) words per component.
        let g = random_dag(3000, 12_000, 13);
        let dense = TransitiveClosure::new(&g);
        let twohop = TwoHopIndex::new(&g);
        assert!(
            twohop.memory_bytes() * 2 <= ReachabilityIndex::memory_bytes(&dense),
            "twohop {} vs dense {}",
            twohop.memory_bytes(),
            ReachabilityIndex::memory_bytes(&dense)
        );
        for v in [0u32, 1, 57, 999, 2999] {
            let v = NodeId(v);
            for w in [0u32, 3, 500, 2998] {
                let w = NodeId(w);
                assert_eq!(
                    ReachabilityIndex::reaches(&dense, v, w),
                    twohop.reaches(v, w)
                );
            }
        }
    }

    #[test]
    fn reach_density_separates_shapes() {
        // Dense-reach DAG: most pairs connected — density well above the
        // Auto cutoff. Deep sparse tree: ancestors only — well below.
        let dense_shape = random_dag(400, 1600, 13);
        let scc = crate::scc::tarjan_scc(&dense_shape);
        let hi = reach_density_sample(&dense_shape, &scc, 48);
        let sparse_shape = preferential_attachment(400, 1, 9);
        let scc = crate::scc::tarjan_scc(&sparse_shape);
        let lo = reach_density_sample(&sparse_shape, &scc, 48);
        assert!(hi > 0.10, "dense-reach density {hi}");
        assert!(lo < 0.05, "sparse density {lo}");
    }

    #[test]
    fn parts_roundtrip_reconstructs_equal_index() {
        let g = gnm_random(30, 90, 5);
        let chain = ChainIndex::new(&g);
        let p = chain.parts();
        let back = ChainIndex::from_parts(
            g.node_count(),
            p.comp.to_vec(),
            p.cyclic.clone(),
            p.chain_of.to_vec(),
            p.pos_of.to_vec(),
            p.entry_off.to_vec(),
            p.entries.to_vec(),
        )
        .expect("valid parts");
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(chain.reaches(u, v), back.reaches(u, v), "{u:?}->{v:?}");
            }
            assert_eq!(back.reachable_count(u), chain.reachable_count(u));
        }
        assert_eq!(back.memory_bytes(), chain.memory_bytes());
    }

    #[test]
    fn from_parts_rejects_malformed_input() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let chain = ChainIndex::new(&g);
        let p = chain.parts();
        // comp id out of range
        assert!(ChainIndex::from_parts(
            2,
            vec![0, 9],
            p.cyclic.clone(),
            p.chain_of.to_vec(),
            p.pos_of.to_vec(),
            p.entry_off.to_vec(),
            p.entries.to_vec(),
        )
        .is_err());
        // duplicated chain position
        assert!(ChainIndex::from_parts(
            2,
            p.comp.to_vec(),
            p.cyclic.clone(),
            vec![0, 0],
            vec![0, 0],
            p.entry_off.to_vec(),
            p.entries.to_vec(),
        )
        .is_err());
        // entry_off not spanning entries
        assert!(ChainIndex::from_parts(
            2,
            p.comp.to_vec(),
            p.cyclic.clone(),
            p.chain_of.to_vec(),
            p.pos_of.to_vec(),
            vec![0, 0, 7],
            p.entries.to_vec(),
        )
        .is_err());
    }

    #[test]
    fn chain_compresses_deep_sparse_graphs() {
        // A 10⁴-node preferential-attachment tree (k = 1): every node's
        // reachable set is its ancestor path, so entries stay near the
        // depth while the dense closure burns a full row per node
        // (measured: ~7% of the dense footprint).
        let g = preferential_attachment(10_000, 1, 9);
        let dense = TransitiveClosure::new(&g);
        let chain = ChainIndex::new(&g);
        assert!(
            chain.memory_bytes() * 4 <= ReachabilityIndex::memory_bytes(&dense),
            "chain {} vs dense {}",
            chain.memory_bytes(),
            ReachabilityIndex::memory_bytes(&dense)
        );
        for v in [0u32, 1, 57, 999, 9999] {
            let v = NodeId(v);
            for w in [0u32, 3, 500, 9998] {
                let w = NodeId(w);
                assert_eq!(
                    ReachabilityIndex::reaches(&dense, v, w),
                    chain.reaches(v, w)
                );
            }
        }
    }

    #[test]
    fn validators_accept_fresh_indexes() {
        for g in [
            gnm_random(40, 120, 7),
            random_dag(60, 150, 11),
            preferential_attachment(80, 2, 3),
        ] {
            let chain = ChainIndex::new(&g);
            chain.validate().expect("fresh chain index is valid");
            chain
                .validate_against(&g, g.node_count())
                .expect("fresh chain index matches BFS");
            let twohop = TwoHopIndex::new(&g);
            twohop.validate().expect("fresh 2-hop index is valid");
            twohop
                .validate_against(&g, g.node_count())
                .expect("fresh 2-hop index matches BFS");
        }
    }

    #[test]
    fn chain_validator_rejects_own_chain_claims_and_wrong_partitions() {
        let g = gnm_random(30, 90, 5);
        let chain = ChainIndex::new(&g);
        let p = chain.parts();
        // Seed an entry claiming the component's own chain slot: rejected
        // by the structural tier (and by from_parts at load time).
        let mut entries = p.entries.to_vec();
        let mut entry_off = p.entry_off.to_vec();
        // Give component 0 an entry for its own (chain, position).
        let own = (p.chain_of[0], p.pos_of[0]);
        entries.insert(entry_off[0] as usize, own);
        for off in &mut entry_off[1..] {
            *off += 1;
        }
        assert!(ChainIndex::from_parts(
            g.node_count(),
            p.comp.to_vec(),
            p.cyclic.clone(),
            p.chain_of.to_vec(),
            p.pos_of.to_vec(),
            entry_off,
            entries,
        )
        .is_err());
        // A comp permutation that keeps ids in range passes the cheap
        // structural tier's range checks but fails the deep partition
        // comparison (two nodes of different SCCs swapped).
        let mut comp = p.comp.to_vec();
        if let Some((i, j)) = (0..comp.len())
            .flat_map(|i| ((i + 1)..comp.len()).map(move |j| (i, j)))
            .find(|&(i, j)| comp[i] != comp[j])
        {
            comp.swap(i, j);
            let tampered = ChainIndex::from_parts(
                g.node_count(),
                comp,
                p.cyclic.clone(),
                p.chain_of.to_vec(),
                p.pos_of.to_vec(),
                p.entry_off.to_vec(),
                p.entries.to_vec(),
            )
            .expect("swap keeps ids in range");
            assert!(tampered.validate_against(&g, g.node_count()).is_err());
        }
    }

    #[test]
    fn twohop_validator_rejects_dropped_and_stray_labels() {
        let g = gnm_random(30, 90, 5);
        let idx = TwoHopIndex::new(&g);
        let p = idx.parts();
        // Clearing a component's hub mask drops its self-certificate (or
        // a covering label): the structural tier or the label-vs-BFS
        // sample must notice.
        let mut out_mask = p.out_mask.to_vec();
        let victim = (0..out_mask.len())
            .find(|&c| out_mask[c] != 0)
            .expect("some component has hub labels");
        out_mask[victim] = 0;
        let tampered = TwoHopIndex::from_parts(
            &g,
            p.comp.to_vec(),
            p.cyclic.clone(),
            out_mask,
            p.in_mask.to_vec(),
            p.out_off.to_vec(),
            p.out_lab.to_vec(),
            p.in_off.to_vec(),
            p.in_lab.to_vec(),
        );
        match tampered {
            Err(_) => {}
            Ok(t) => {
                assert!(
                    t.validate().is_err() || t.validate_against(&g, g.node_count()).is_err(),
                    "dropped labels must not validate"
                );
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = DiGraph<u32>> {
            (
                1usize..24,
                proptest::collection::vec((0usize..24, 0usize..24), 0..80),
            )
                .prop_map(|(n, raw_edges)| {
                    let mut g = DiGraph::with_capacity(n);
                    for i in 0..n {
                        g.add_node(i as u32);
                    }
                    for (a, b) in raw_edges {
                        g.add_edge(NodeId((a % n) as u32), NodeId((b % n) as u32));
                    }
                    g
                })
        }

        proptest! {
            /// The tentpole invariant: both compressed backends answer
            /// the identical `reaches` relation on arbitrary (cyclic)
            /// graphs.
            #[test]
            fn prop_chain_equals_dense(g in arb_graph()) {
                let dense = TransitiveClosure::new(&g);
                let chain = ChainIndex::new(&g);
                for u in g.nodes() {
                    for v in g.nodes() {
                        prop_assert_eq!(
                            ReachabilityIndex::reaches(&dense, u, v),
                            chain.reaches(u, v),
                            "mismatch {:?}->{:?}", u, v
                        );
                    }
                    prop_assert_eq!(
                        ReachabilityIndex::reachable_count(&dense, u),
                        chain.reachable_count(u)
                    );
                }
                prop_assert_eq!(
                    ReachabilityIndex::pair_count(&dense),
                    chain.pair_count()
                );
            }

            /// Same invariant for the 2-hop-label backend, on the same
            /// grid of random cyclic graphs and DAGs.
            #[test]
            fn prop_twohop_equals_dense(g in arb_graph()) {
                let dense = TransitiveClosure::new(&g);
                let twohop = TwoHopIndex::new(&g);
                for u in g.nodes() {
                    for v in g.nodes() {
                        prop_assert_eq!(
                            ReachabilityIndex::reaches(&dense, u, v),
                            twohop.reaches(u, v),
                            "mismatch {:?}->{:?}", u, v
                        );
                    }
                    prop_assert_eq!(
                        ReachabilityIndex::reachable_count(&dense, u),
                        twohop.reachable_count(u)
                    );
                }
                prop_assert_eq!(
                    ReachabilityIndex::pair_count(&dense),
                    twohop.pair_count()
                );
            }

            /// 2-hop serialization parts round-trip losslessly.
            #[test]
            fn prop_twohop_parts_roundtrip(g in arb_graph()) {
                let idx = TwoHopIndex::new(&g);
                let p = idx.parts();
                let back = TwoHopIndex::from_parts(
                    &g,
                    p.comp.to_vec(),
                    p.cyclic.clone(),
                    p.out_mask.to_vec(),
                    p.in_mask.to_vec(),
                    p.out_off.to_vec(),
                    p.out_lab.to_vec(),
                    p.in_off.to_vec(),
                    p.in_lab.to_vec(),
                ).expect("valid parts");
                for u in g.nodes() {
                    for v in g.nodes() {
                        prop_assert_eq!(idx.reaches(u, v), back.reaches(u, v));
                    }
                    prop_assert_eq!(
                        idx.reachable_count(u),
                        back.reachable_count(u)
                    );
                }
            }

            /// Successor enumeration is exactly the set of reached nodes.
            #[test]
            fn prop_successors_consistent_with_reaches(g in arb_graph()) {
                let chain = ChainIndex::new(&g);
                for u in g.nodes() {
                    let mut listed: Vec<u32> =
                        chain.successors_iter(u).map(|n| n.0).collect();
                    listed.sort_unstable();
                    let mut dup = listed.clone();
                    dup.dedup();
                    prop_assert_eq!(dup.len(), listed.len(), "duplicates from {:?}", u);
                    let expected: Vec<u32> = g
                        .nodes()
                        .filter(|&v| chain.reaches(u, v))
                        .map(|v| v.0)
                        .collect();
                    prop_assert_eq!(listed, expected, "from {:?}", u);
                }
            }

            /// Freshly built indexes always pass both validation tiers
            /// (the zero-false-positive half of the audit contract).
            #[test]
            fn prop_fresh_indexes_validate(g in arb_graph()) {
                let chain = ChainIndex::new(&g);
                prop_assert!(chain.validate().is_ok());
                prop_assert!(chain.validate_against(&g, g.node_count()).is_ok());
                let twohop = TwoHopIndex::new(&g);
                prop_assert!(twohop.validate().is_ok());
                prop_assert!(twohop.validate_against(&g, g.node_count()).is_ok());
            }

            /// Serialization parts round-trip losslessly.
            #[test]
            fn prop_parts_roundtrip(g in arb_graph()) {
                let chain = ChainIndex::new(&g);
                let p = chain.parts();
                let back = ChainIndex::from_parts(
                    g.node_count(),
                    p.comp.to_vec(),
                    p.cyclic.clone(),
                    p.chain_of.to_vec(),
                    p.pos_of.to_vec(),
                    p.entry_off.to_vec(),
                    p.entries.to_vec(),
                ).expect("valid parts");
                for u in g.nodes() {
                    for v in g.nodes() {
                        prop_assert_eq!(chain.reaches(u, v), back.reaches(u, v));
                    }
                }
            }
        }
    }
}
