//! Transitive closure `G+` of a directed graph (Nuutila-style \[22\]):
//! SCC condensation first, then one bitset union pass over the condensation
//! DAG in reverse-topological component order.
//!
//! The closure is **proper**: `reaches(u, v)` holds iff there is a
//! *nonempty* path from `u` to `v` — exactly the `H2[u1][u2]` adjacency
//! matrix of algorithm `compMaxCard` (Fig. 3, lines 5–7). In particular a
//! node reaches itself only when it lies on a cycle (or has a self-loop).

use crate::bitset::BitSet;
use crate::digraph::{DiGraph, NodeId};
use crate::scc::{tarjan_scc, SccResult};
use crate::validate::{proper_reach_set, sample_indices, Violation};
use std::sync::Arc;

/// The dense closure under its backend-family name: the
/// [`crate::reach::ReachabilityIndex`] implementor with `O(1)` queries
/// and `O(n²)`-bit rows, as opposed to the compressed
/// [`crate::reach::ChainIndex`].
pub type DenseClosure = TransitiveClosure;

/// Reachability matrix of `G+`, stored as one bitset row per SCC
/// (all members of an SCC reach the same node set).
#[derive(Debug, Clone)]
pub struct TransitiveClosure {
    /// `comp[v]` = SCC id of node `v`.
    comp: Vec<u32>,
    /// `rows[c]` = nodes reachable from any member of component `c` via a
    /// nonempty path. Rows sit behind `Arc` so closure *versions* can
    /// share unchanged rows (the semi-dynamic maintenance path copies a
    /// row only when an update actually touches it).
    rows: Vec<Arc<BitSet>>,
    node_count: usize,
}

impl TransitiveClosure {
    /// Computes the closure of `g`.
    pub fn new<L>(g: &DiGraph<L>) -> Self {
        let scc = tarjan_scc(g);
        Self::from_scc(g, &scc)
    }

    /// Computes the **hop-bounded** closure of `g`: `reaches(u, v)` holds
    /// iff there is a nonempty path `u ⇝ v` of length at most `k` edges.
    ///
    /// Matching against a bounded closure yields the fixed-length
    /// path-matching semantics of Zou et al. \[32\] (§2 of the paper):
    /// `k = 1` degenerates to plain edge-to-edge graph homomorphism, and
    /// any `k ≥ n` coincides with the full closure. Unlike the unbounded
    /// closure, SCC members do *not* share reachable sets under a hop
    /// bound, so rows are stored per node (one breadth-first layering per
    /// source, `O(k·(n + m))` each with early exit on a stable frontier).
    pub fn bounded<L>(g: &DiGraph<L>, k: usize) -> Self {
        let n = g.node_count();
        let comp: Vec<u32> = (0..n as u32).collect();
        let mut rows = Vec::with_capacity(n);
        let mut frontier: Vec<NodeId> = Vec::new();
        let mut next: Vec<NodeId> = Vec::new();
        for v in g.nodes() {
            let mut row = BitSet::new(n);
            frontier.clear();
            frontier.push(v);
            for _ in 0..k {
                next.clear();
                for &x in &frontier {
                    for &w in g.post(x) {
                        if row.insert(w.index()) {
                            next.push(w);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                std::mem::swap(&mut frontier, &mut next);
            }
            rows.push(Arc::new(row));
        }
        Self {
            comp,
            rows,
            node_count: n,
        }
    }

    /// Computes the closure of `g` reusing an existing SCC decomposition.
    pub fn from_scc<L>(g: &DiGraph<L>, scc: &SccResult) -> Self {
        let n = g.node_count();
        let c = scc.count();
        let comp: Vec<u32> = (0..n)
            .map(|v| scc.component_of(NodeId(v as u32)) as u32)
            .collect();

        // Tarjan ids are reverse-topological: every cross edge goes from a
        // higher component id to a lower one, so ascending order visits
        // sinks first and each row only depends on already-finished rows.
        let mut rows: Vec<Arc<BitSet>> = Vec::with_capacity(c);
        for cid in 0..c {
            let mut row = BitSet::new(n);
            let mut cyclic = scc.members(cid).len() > 1;
            for &v in scc.members(cid) {
                for &w in g.post(v) {
                    let d = scc.component_of(w);
                    if d == cid {
                        cyclic = true; // self-loop or intra-SCC edge
                    } else {
                        debug_assert!(d < cid, "tarjan numbering invariant");
                        row.insert(w.index());
                        row.union_with(&rows[d]);
                        // Include all members of d (an acyclic component's
                        // own row does not contain its members).
                        for &m in scc.members(d) {
                            row.insert(m.index());
                        }
                    }
                }
            }
            if cyclic {
                for &m in scc.members(cid) {
                    row.insert(m.index());
                }
            }
            rows.push(Arc::new(row));
        }

        Self {
            comp,
            rows,
            node_count: n,
        }
    }

    /// Assembles a closure from a component assignment and per-component
    /// reachability rows — the constructor for **closure maintainers**
    /// (see [`DynamicClosure`]) that keep `comp`/`rows` consistent
    /// themselves rather than recomputing from a graph.
    ///
    /// Requirements (checked by [`TransitiveClosure::validate`], which
    /// maintainers should run in their own tests): `comp.len() ==
    /// node_count`, every `comp[v] < rows.len()`, and every row has
    /// `node_count` bits. Unlike [`TransitiveClosure::from_scc`], the
    /// component numbering need **not** be topological — nothing in the
    /// query path depends on row order.
    pub fn from_parts(comp: Vec<u32>, rows: Vec<BitSet>, node_count: usize) -> Self {
        Self::from_shared_parts(comp, rows.into_iter().map(Arc::new).collect(), node_count)
    }

    /// [`TransitiveClosure::from_parts`] taking rows that are already
    /// `Arc`-shared — the zero-copy handoff from a closure maintainer,
    /// where untouched rows keep pointing at the previous version's
    /// storage.
    pub fn from_shared_parts(comp: Vec<u32>, rows: Vec<Arc<BitSet>>, node_count: usize) -> Self {
        Self {
            comp,
            rows,
            node_count,
        }
    }

    /// Number of nodes in the underlying graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The component (row) index node `v` is assigned to.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> usize {
        self.comp[v.index()] as usize
    }

    /// Number of reachability rows (components).
    pub fn component_count(&self) -> usize {
        self.rows.len()
    }

    /// The reachability row of component `c` (all members of `c` share it).
    pub fn component_row(&self, c: usize) -> &BitSet {
        &self.rows[c]
    }

    /// The shared handle to component `c`'s row (a pointer bump — used to
    /// seed closure maintainers without copying any row data).
    pub fn component_row_shared(&self, c: usize) -> Arc<BitSet> {
        Arc::clone(&self.rows[c])
    }

    /// True iff there is a nonempty path `from ⇝ to`.
    #[inline]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.rows[self.comp[from.index()] as usize].contains(to.index())
    }

    /// The full set of nodes reachable from `v` via nonempty paths.
    pub fn reachable_set(&self, v: NodeId) -> &BitSet {
        &self.rows[self.comp[v.index()] as usize]
    }

    /// Number of `(u, v)` pairs with a nonempty path — `|E+|`.
    /// Each distinct row is popcounted once and multiplied by its
    /// component's membership (rows are shared across SCC members).
    pub fn edge_count(&self) -> usize {
        let mut row_counts: Vec<Option<usize>> = vec![None; self.rows.len()];
        (0..self.node_count)
            .map(|v| {
                let c = self.comp[v] as usize;
                *row_counts[c].get_or_insert_with(|| self.rows[c].count())
            })
            .sum()
    }

    /// Cheap structural self-check (no graph needed): component
    /// assignments in range, rows sized to the node count, and every
    /// referenced row **closed under composition** — if `v ∈ row(c)`
    /// then `row(comp(v)) ⊆ row(c)`, the defining property of a
    /// transitive relation stored row-per-component. Returns the first
    /// violated invariant.
    ///
    /// Applies to full closures only; hop-bounded closures from
    /// [`TransitiveClosure::bounded`] are intentionally not
    /// composition-closed.
    pub fn validate(&self) -> Result<(), Violation> {
        if self.comp.len() != self.node_count {
            return Err(Violation::new(
                "closure-shape",
                format!(
                    "comp covers {} of {} nodes",
                    self.comp.len(),
                    self.node_count
                ),
            ));
        }
        if let Some((v, &c)) = self
            .comp
            .iter()
            .enumerate()
            .find(|&(_, &c)| c as usize >= self.rows.len())
        {
            return Err(Violation::new(
                "closure-shape",
                format!("node {v} assigned out-of-range component {c}"),
            ));
        }
        if let Some((c, row)) = self
            .rows
            .iter()
            .enumerate()
            .find(|(_, row)| row.len() != self.node_count)
        {
            return Err(Violation::new(
                "closure-shape",
                format!(
                    "row {c} holds {} bits for {} nodes",
                    row.len(),
                    self.node_count
                ),
            ));
        }
        // Composition closure over the rows actually referenced by comp.
        let mut used = BitSet::new(self.rows.len());
        for &c in &self.comp {
            used.insert(c as usize);
        }
        let mut checked = BitSet::new(self.rows.len());
        for c in used.iter() {
            checked.clear();
            for v in self.rows[c].iter() {
                let d = self.comp[v] as usize;
                if checked.insert(d) && !self.rows[d].is_subset(&self.rows[c]) {
                    return Err(Violation::new(
                        "closure-composition",
                        format!(
                            "row {c} reaches node {v} (component {d}) but not all of \
                             component {d}'s reachable set"
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Deep check against the graph the closure claims to index: runs
    /// [`TransitiveClosure::validate`], then compares the reachable set
    /// of up to `samples` evenly-spaced source nodes against brute-force
    /// proper-path BFS on `g` (pass `samples >= n` for an exhaustive
    /// comparison).
    pub fn validate_against<L>(&self, g: &DiGraph<L>, samples: usize) -> Result<(), Violation> {
        self.validate()?;
        if g.node_count() != self.node_count {
            return Err(Violation::new(
                "closure-shape",
                format!(
                    "closure indexes {} nodes, graph has {}",
                    self.node_count,
                    g.node_count()
                ),
            ));
        }
        for v in sample_indices(self.node_count, samples) {
            let v = NodeId(v as u32);
            let truth = proper_reach_set(g, v);
            if *self.reachable_set(v) != truth {
                return Err(Violation::new(
                    "closure-reaches",
                    format!(
                        "row of node {} disagrees with BFS ({} vs {} reachable)",
                        v.0,
                        self.reachable_set(v).count(),
                        truth.count()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Materializes the closure graph `G+` (same nodes/labels, one edge per
    /// reachable pair). Quadratic output; intended for small graphs
    /// (the symmetric-matching Remark of §3.2 applies it to patterns).
    pub fn to_graph<L: Clone>(&self, g: &DiGraph<L>) -> DiGraph<L> {
        let mut h = DiGraph::with_capacity(g.node_count());
        for v in g.nodes() {
            h.add_node(g.label(v).clone());
        }
        for v in g.nodes() {
            for w in self.reachable_set(v).iter() {
                h.add_edge(v, NodeId(w as u32));
            }
        }
        h
    }
}

/// How an edge update changed a maintained closure — the return value of
/// the [`DynamicClosure`] mutation methods, used by callers (the engine's
/// update path) for accounting and damage-threshold decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateEffect {
    /// The graph itself did not change (duplicate insert, missing delete).
    NoOp,
    /// The graph changed but the closure was already consistent (e.g. an
    /// inserted edge whose endpoints were already connected).
    Unchanged,
    /// The closure was patched in place, touching this many components.
    Incremental {
        /// Components whose rows were created, merged, or rewritten.
        affected_components: usize,
    },
    /// The damage exceeded the maintainer's threshold (or split SCC
    /// structure beyond repair) and the closure was rebuilt from scratch.
    Rebuilt,
}

/// The semi-dynamic closure maintenance boundary: a type that keeps the
/// transitive closure of an evolving graph consistent under single-edge
/// insertions and deletions, without recomputing from scratch on every
/// update.
///
/// The contract: after any sequence of `insert_edge`/`remove_edge` calls,
/// [`DynamicClosure::snapshot`] must equal `TransitiveClosure::new` of the
/// identically mutated graph (same `reaches` relation; internal component
/// numbering is free). The canonical implementation lives in the
/// `phom-dynamic` crate; this trait sits in `graph::closure` so the engine
/// can consume maintainers without depending on a concrete one.
pub trait DynamicClosure {
    /// Number of nodes of the maintained graph (fixed; updates are
    /// edge-level).
    fn node_count(&self) -> usize;

    /// True iff there is currently a nonempty path `from ⇝ to`.
    fn reaches(&self, from: NodeId, to: NodeId) -> bool;

    /// Inserts the edge `(from, to)` and patches the closure.
    fn insert_edge(&mut self, from: NodeId, to: NodeId) -> UpdateEffect;

    /// Removes the edge `(from, to)` and patches the closure.
    fn remove_edge(&mut self, from: NodeId, to: NodeId) -> UpdateEffect;

    /// An immutable [`TransitiveClosure`] equal to the current state —
    /// what a consumer hands to the (closure-agnostic) matching kernels.
    fn snapshot(&self) -> TransitiveClosure;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::graph_from_labels;

    /// Brute-force nonempty-path reachability by DFS from each successor.
    fn slow_reaches<L>(g: &DiGraph<L>, from: NodeId, to: NodeId) -> bool {
        let mut seen = vec![false; g.node_count()];
        let mut stack: Vec<NodeId> = g.post(from).to_vec();
        while let Some(v) = stack.pop() {
            if v == to {
                return true;
            }
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.extend_from_slice(g.post(v));
            }
        }
        false
    }

    #[test]
    fn path_graph_closure() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let tc = TransitiveClosure::new(&g);
        assert!(tc.reaches(NodeId(0), NodeId(1)));
        assert!(tc.reaches(NodeId(0), NodeId(2)));
        assert!(tc.reaches(NodeId(1), NodeId(2)));
        assert!(!tc.reaches(NodeId(2), NodeId(0)));
        assert!(!tc.reaches(NodeId(0), NodeId(0)), "closure is proper");
        assert_eq!(tc.edge_count(), 3);
    }

    #[test]
    fn cycle_members_reach_themselves() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b"), ("b", "a")]);
        let tc = TransitiveClosure::new(&g);
        for i in 0..2 {
            for j in 0..2 {
                assert!(tc.reaches(NodeId(i), NodeId(j)), "{i}->{j}");
            }
        }
    }

    #[test]
    fn self_loop_reaches_itself() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, a);
        g.add_edge(a, b);
        let tc = TransitiveClosure::new(&g);
        assert!(tc.reaches(a, a));
        assert!(tc.reaches(a, b));
        assert!(!tc.reaches(b, b));
    }

    #[test]
    fn cycle_reaching_tail() {
        // cycle {a,b} -> c -> d
        let g = graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
        );
        let tc = TransitiveClosure::new(&g);
        assert!(tc.reaches(NodeId(0), NodeId(3)));
        assert!(tc.reaches(NodeId(0), NodeId(0)));
        assert!(!tc.reaches(NodeId(2), NodeId(2)));
        assert!(!tc.reaches(NodeId(3), NodeId(0)));
    }

    #[test]
    fn from_parts_reconstructs_equal_closure() {
        let g = graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
        );
        let tc = TransitiveClosure::new(&g);
        let comp: Vec<u32> = g.nodes().map(|v| tc.component_of(v) as u32).collect();
        let rows: Vec<BitSet> = (0..tc.component_count())
            .map(|c| tc.component_row(c).clone())
            .collect();
        let back = TransitiveClosure::from_parts(comp, rows, g.node_count());
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(tc.reaches(u, v), back.reaches(u, v), "{u:?}->{v:?}");
            }
        }
        assert_eq!(tc.edge_count(), back.edge_count());
    }

    #[test]
    fn to_graph_materializes_closure_edges() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let tc = TransitiveClosure::new(&g);
        let gp = tc.to_graph(&g);
        assert_eq!(gp.edge_count(), 3);
        assert!(gp.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(gp.label(NodeId(2)), "c");
    }

    #[test]
    fn closure_matches_dfs_on_fixed_tricky_graph() {
        // Two interlocking cycles plus a DAG tail and an isolated node.
        let g = graph_from_labels(
            &["a", "b", "c", "d", "e", "f", "iso"],
            &[
                ("a", "b"),
                ("b", "c"),
                ("c", "a"),
                ("c", "d"),
                ("d", "e"),
                ("e", "d"),
                ("e", "f"),
            ],
        );
        let tc = TransitiveClosure::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    tc.reaches(u, v),
                    slow_reaches(&g, u, v),
                    "mismatch {u:?}->{v:?}"
                );
            }
        }
    }

    /// Brute-force ≤k-hop nonempty-path reachability by depth-limited BFS.
    fn slow_reaches_bounded<L>(g: &DiGraph<L>, from: NodeId, to: NodeId, k: usize) -> bool {
        let mut dist = vec![usize::MAX; g.node_count()];
        let mut frontier = vec![from];
        for d in 1..=k {
            let mut next = Vec::new();
            for x in frontier {
                for &w in g.post(x) {
                    if w == to {
                        return true;
                    }
                    if dist[w.index()] > d {
                        dist[w.index()] = d;
                        next.push(w);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        false
    }

    #[test]
    fn bounded_one_hop_is_edge_relation() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let tc = TransitiveClosure::bounded(&g, 1);
        assert!(tc.reaches(NodeId(0), NodeId(1)));
        assert!(!tc.reaches(NodeId(0), NodeId(2)), "two hops exceed k=1");
        assert!(tc.reaches(NodeId(1), NodeId(2)));
        assert_eq!(tc.edge_count(), g.edge_count());
    }

    #[test]
    fn bounded_zero_hops_reaches_nothing() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b"), ("b", "a")]);
        let tc = TransitiveClosure::bounded(&g, 0);
        for u in g.nodes() {
            for v in g.nodes() {
                assert!(!tc.reaches(u, v));
            }
        }
    }

    #[test]
    fn bounded_cycle_self_reach_needs_cycle_length() {
        // 3-cycle: a node reaches itself only once k >= 3.
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c"), ("c", "a")]);
        assert!(!TransitiveClosure::bounded(&g, 2).reaches(NodeId(0), NodeId(0)));
        assert!(TransitiveClosure::bounded(&g, 3).reaches(NodeId(0), NodeId(0)));
    }

    #[test]
    fn bounded_large_k_equals_full_closure() {
        let g = graph_from_labels(
            &["a", "b", "c", "d", "e"],
            &[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("d", "e")],
        );
        let full = TransitiveClosure::new(&g);
        let bounded = TransitiveClosure::bounded(&g, g.node_count());
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(full.reaches(u, v), bounded.reaches(u, v), "{u:?}->{v:?}");
            }
        }
    }

    #[test]
    fn validate_accepts_fresh_closures() {
        let g = graph_from_labels(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
        );
        let tc = TransitiveClosure::new(&g);
        tc.validate().expect("fresh closure is valid");
        tc.validate_against(&g, g.node_count())
            .expect("fresh closure matches BFS");
    }

    #[test]
    fn validate_rejects_tampered_rows() {
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let tc = TransitiveClosure::new(&g);
        let comp: Vec<u32> = g.nodes().map(|v| tc.component_of(v) as u32).collect();
        let mut rows: Vec<BitSet> = (0..tc.component_count())
            .map(|c| tc.component_row(c).clone())
            .collect();
        // Claim c reaches a without granting it a's reachable set: breaks
        // composition (a reaches b and c; the tampered row lacks b).
        let c_comp = tc.component_of(NodeId(2));
        rows[c_comp].insert(0);
        let bad = TransitiveClosure::from_parts(comp.clone(), rows, g.node_count());
        let err = bad.validate().expect_err("composition break detected");
        assert_eq!(err.check, "closure-composition");

        // A composition-consistent but wrong relation (an extra edge's
        // worth of reachability) passes the cheap tier and is caught by
        // the deep tier.
        let mut rows: Vec<BitSet> = (0..tc.component_count())
            .map(|c| tc.component_row(c).clone())
            .collect();
        let b_comp = tc.component_of(NodeId(1));
        let a_comp = tc.component_of(NodeId(0));
        rows[c_comp] = rows[b_comp].clone();
        rows[b_comp] = rows[a_comp].clone();
        let plausible = TransitiveClosure::from_parts(comp, rows, g.node_count());
        plausible
            .validate()
            .expect("cheap tier cannot see the shift");
        let err = plausible
            .validate_against(&g, g.node_count())
            .expect_err("deep tier compares against BFS");
        assert_eq!(err.check, "closure-reaches");
    }

    #[test]
    fn validate_rejects_malformed_shapes() {
        let g = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let tc = TransitiveClosure::new(&g);
        let rows: Vec<BitSet> = (0..tc.component_count())
            .map(|c| tc.component_row(c).clone())
            .collect();
        let bad_comp = TransitiveClosure::from_parts(vec![0, 99], rows.clone(), 2);
        assert_eq!(
            bad_comp.validate().expect_err("comp range").check,
            "closure-shape"
        );
        let comp: Vec<u32> = g.nodes().map(|v| tc.component_of(v) as u32).collect();
        let bad_rows = TransitiveClosure::from_parts(comp, vec![BitSet::new(5); rows.len()], 2);
        assert_eq!(
            bad_rows.validate().expect_err("row width").check,
            "closure-shape"
        );
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = DiGraph<u32>> {
            (
                1usize..20,
                proptest::collection::vec((0usize..20, 0usize..20), 0..60),
            )
                .prop_map(|(n, raw_edges)| {
                    let mut g = DiGraph::with_capacity(n);
                    for i in 0..n {
                        g.add_node(i as u32);
                    }
                    for (a, b) in raw_edges {
                        g.add_edge(NodeId((a % n) as u32), NodeId((b % n) as u32));
                    }
                    g
                })
        }

        proptest! {
            #[test]
            fn prop_closure_equals_dfs_reachability(g in arb_graph()) {
                let tc = TransitiveClosure::new(&g);
                for u in g.nodes() {
                    for v in g.nodes() {
                        prop_assert_eq!(
                            tc.reaches(u, v),
                            slow_reaches(&g, u, v),
                            "mismatch {:?}->{:?}", u, v
                        );
                    }
                }
            }

            #[test]
            fn prop_bounded_matches_depth_limited_bfs(g in arb_graph(), k in 0usize..6) {
                let tc = TransitiveClosure::bounded(&g, k);
                for u in g.nodes() {
                    for v in g.nodes() {
                        prop_assert_eq!(
                            tc.reaches(u, v),
                            slow_reaches_bounded(&g, u, v, k),
                            "mismatch {:?}->{:?} k={}", u, v, k
                        );
                    }
                }
            }

            #[test]
            fn prop_bounded_is_monotone_in_k(g in arb_graph(), k in 0usize..5) {
                let lo = TransitiveClosure::bounded(&g, k);
                let hi = TransitiveClosure::bounded(&g, k + 1);
                for u in g.nodes() {
                    for v in g.nodes() {
                        if lo.reaches(u, v) {
                            prop_assert!(hi.reaches(u, v), "k+1 lost {:?}->{:?}", u, v);
                        }
                    }
                }
            }

            #[test]
            fn prop_bounded_at_n_equals_full(g in arb_graph()) {
                let full = TransitiveClosure::new(&g);
                let bounded = TransitiveClosure::bounded(&g, g.node_count());
                for u in g.nodes() {
                    for v in g.nodes() {
                        prop_assert_eq!(full.reaches(u, v), bounded.reaches(u, v));
                    }
                }
            }

            #[test]
            fn prop_fresh_closures_validate(g in arb_graph()) {
                let tc = TransitiveClosure::new(&g);
                prop_assert!(tc.validate().is_ok());
                prop_assert!(tc.validate_against(&g, g.node_count()).is_ok());
            }

            #[test]
            fn prop_closure_is_transitive(g in arb_graph()) {
                let tc = TransitiveClosure::new(&g);
                for u in g.nodes() {
                    for v in g.nodes() {
                        if !tc.reaches(u, v) { continue; }
                        for w in g.nodes() {
                            if tc.reaches(v, w) {
                                prop_assert!(tc.reaches(u, w));
                            }
                        }
                    }
                }
            }
        }
    }
}
