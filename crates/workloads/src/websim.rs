//! Simulated Web-site archives — the substitute for the Stanford WebBase
//! crawls of §6, Exp-1 (see DESIGN.md §4 for the substitution rationale).
//!
//! A *site* is a hierarchical page graph (home page → hub/category pages →
//! content pages, plus cross links) whose pages carry token streams for
//! shingle similarity. An *archive* is a sequence of versions of the same
//! site, each derived from the previous one with category-specific churn:
//! online newspapers (site 3) churn hardest, international organizations
//! (site 2) barely move, online stores (site 1) sit in between — matching
//! the accuracy ordering the paper observed (site 2 ≥ site 1 > site 3).

use phom_graph::{DiGraph, NodeId};
use phom_sim::{shingle_similarity, SimMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three real-life site categories of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteCategory {
    /// Site 1: online store (20k pages, 42k links in the paper).
    OnlineStore,
    /// Site 2: international organization (5.4k pages, 33.1k links).
    Organization,
    /// Site 3: online newspaper (7k pages, 16.8k links) — fast churn.
    Newspaper,
}

impl SiteCategory {
    /// All three categories in Table 2 order.
    pub const ALL: [SiteCategory; 3] = [
        SiteCategory::OnlineStore,
        SiteCategory::Organization,
        SiteCategory::Newspaper,
    ];

    /// Short display name ("site 1" .. "site 3").
    pub fn site_name(self) -> &'static str {
        match self {
            SiteCategory::OnlineStore => "site 1",
            SiteCategory::Organization => "site 2",
            SiteCategory::Newspaper => "site 3",
        }
    }
}

/// Per-version churn rates.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Churn {
    /// Probability a page's content is rewritten between versions.
    pub content: f64,
    /// Fraction of a rewritten page's specific tokens that change.
    pub rewrite: f64,
    /// Probability an edge is replaced by a path via a redirect page.
    pub edge_to_path: f64,
    /// Probability a page sprouts a new small subtree.
    pub attach: f64,
    /// Probability a leaf page is deleted.
    pub delete_leaf: f64,
}

impl Churn {
    /// Category-specific churn (newspapers change fastest — §6: "a typical
    /// feature of site 3 ... is its timeliness").
    pub fn for_category(cat: SiteCategory) -> Self {
        match cat {
            SiteCategory::OnlineStore => Self {
                content: 0.12,
                rewrite: 0.10,
                edge_to_path: 0.030,
                attach: 0.020,
                delete_leaf: 0.010,
            },
            SiteCategory::Organization => Self {
                content: 0.04,
                rewrite: 0.10,
                edge_to_path: 0.010,
                attach: 0.010,
                delete_leaf: 0.004,
            },
            SiteCategory::Newspaper => Self {
                content: 0.16,
                rewrite: 0.10,
                edge_to_path: 0.060,
                attach: 0.050,
                delete_leaf: 0.040,
            },
        }
    }
}

/// Specification of one simulated site archive.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Category (drives churn and naming).
    pub category: SiteCategory,
    /// Page count of the initial version.
    pub nodes: usize,
    /// Link count target of the initial version.
    pub edges: usize,
    /// Fanout of the biggest hub, the home page (drives `maxDeg`).
    pub hub_fanout: usize,
    /// Number of section hubs (drives the skeleton-1 size: hubs are the
    /// nodes whose degree clears the `avgDeg + α·maxDeg` bar).
    pub hub_count: usize,
    /// Links from each hub into the hub core (drives skeleton-1 density).
    pub hub_core_out: usize,
    /// Probability a content page links back to its section hub
    /// (lifts hub in-degree above the skeleton threshold).
    pub backlink_prob: f64,
    /// Number of archived versions (the paper keeps 11).
    pub versions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SiteSpec {
    /// Table 2 scale: the node/edge/degree envelope of the paper's crawls.
    pub fn paper_scale(category: SiteCategory, seed: u64) -> Self {
        match category {
            SiteCategory::OnlineStore => Self {
                category,
                nodes: 20_000,
                edges: 42_000,
                hub_fanout: 500,
                hub_count: 250,
                hub_core_out: 42,
                backlink_prob: 0.10,
                versions: 11,
                seed,
            },
            SiteCategory::Organization => Self {
                category,
                nodes: 5_400,
                edges: 33_114,
                hub_fanout: 640,
                hub_count: 44,
                hub_core_out: 5,
                backlink_prob: 0.60,
                versions: 11,
                seed,
            },
            SiteCategory::Newspaper => Self {
                category,
                nodes: 7_000,
                edges: 16_800,
                hub_fanout: 495,
                hub_count: 142,
                hub_core_out: 22,
                backlink_prob: 0.30,
                versions: 11,
                seed,
            },
        }
    }

    /// A scaled-down spec (~1/20) for tests and quick runs, preserving the
    /// degree structure.
    pub fn test_scale(category: SiteCategory, seed: u64) -> Self {
        let full = Self::paper_scale(category, seed);
        Self {
            nodes: full.nodes / 20,
            edges: full.edges / 20,
            hub_fanout: full.hub_fanout / 10,
            hub_count: (full.hub_count / 10).max(4),
            hub_core_out: (full.hub_core_out / 3).max(2),
            versions: 5,
            ..full
        }
    }
}

/// A Web page: stable URL-ish identity plus a token stream (its content).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Page {
    /// Stable page id across versions (for diagnostics only — matching
    /// never looks at it).
    pub id: u32,
    /// Content tokens (topic prefix + page-specific suffix).
    pub tokens: Vec<u32>,
}

impl std::fmt::Display for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page{}", self.id)
    }
}

/// One site version.
pub type SiteGraph = DiGraph<Page>;

/// A simulated archive: version 0 is the oldest (the pattern in Exp-1).
#[derive(Debug, Clone)]
pub struct SiteArchive {
    /// The spec that produced this archive.
    pub spec: SiteSpec,
    /// The versions, oldest first.
    pub versions: Vec<SiteGraph>,
}

const TOPIC_TOKENS: usize = 20;
const PAGE_TOKENS: usize = 30;

struct Gen {
    rng: SmallRng,
    next_token: u32,
    next_page: u32,
}

impl Gen {
    fn fresh_token(&mut self) -> u32 {
        self.next_token += 1;
        self.next_token
    }
    fn fresh_page_id(&mut self) -> u32 {
        self.next_page += 1;
        self.next_page
    }
}

/// Generates the full archive for `spec`.
pub fn generate_archive(spec: &SiteSpec) -> SiteArchive {
    let mut g = Gen {
        rng: SmallRng::seed_from_u64(spec.seed),
        next_token: 0,
        next_page: 0,
    };
    let churn = Churn::for_category(spec.category);
    let v0 = generate_initial(spec, &mut g);
    let mut versions = Vec::with_capacity(spec.versions);
    versions.push(v0);
    for _ in 1..spec.versions {
        // phom-lint: allow(unwrap, "versions holds v0 before the loop starts and grows each iteration")
        let next = evolve(versions.last().expect("nonempty"), &churn, &mut g);
        versions.push(next);
    }
    SiteArchive {
        spec: *spec,
        versions,
    }
}

/// Builds version 0 with an explicit two-tier degree structure:
/// node 0 is the home page (`hub_fanout` out-links), nodes `1..=hub_count`
/// are section hubs (one topic each; dense hub core of `hub_core_out`
/// links; backlinks from their pages), and the rest are content pages.
/// The hub tier is exactly what the α-rule skeleton of §6 extracts.
fn generate_initial(spec: &SiteSpec, g: &mut Gen) -> SiteGraph {
    let n = spec.nodes.max(4);
    let hub_count = spec.hub_count.clamp(1, n - 2);
    let topic_prefix: Vec<Vec<u32>> = (0..hub_count)
        .map(|_| (0..TOPIC_TOKENS).map(|_| g.fresh_token()).collect())
        .collect();

    let mut site = DiGraph::with_capacity(n);
    let mut topic_of: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        // Home gets topic 0; hub i (1..=hub_count) owns topic i-1; pages
        // are assigned randomly.
        let topic = if i == 0 {
            0
        } else if i <= hub_count {
            i - 1
        } else {
            // Round-robin: equal topic sizes keep hub degrees deterministic,
            // so the top-20 degree ranking stays stable across versions.
            (i - hub_count - 1) % hub_count
        };
        let mut tokens = topic_prefix[topic].clone();
        for _ in 0..PAGE_TOKENS {
            tokens.push(g.fresh_token());
        }
        site.add_node(Page {
            id: g.fresh_page_id(),
            tokens,
        });
        topic_of.push(topic);
    }

    let home = NodeId(0);
    let hub_of_topic = |t: usize| NodeId((t + 1) as u32);

    // (a) Every content page hangs off its section hub; backlinks with
    // probability `backlink_prob` lift hub in-degree.
    for (i, &topic) in topic_of.iter().enumerate().skip(hub_count + 1) {
        let page = NodeId(i as u32);
        let hub = hub_of_topic(topic);
        site.add_edge(hub, page);
        if g.rng.random::<f64>() < spec.backlink_prob {
            site.add_edge(page, hub);
        }
    }

    // (b) Home links to all hubs, then to random pages up to its fanout.
    for k in 0..hub_count {
        site.add_edge(home, hub_of_topic(k));
    }
    let mut guard = 0usize;
    while site.out_degree(home) < spec.hub_fanout.min(n - 1) && guard < 20 * n {
        guard += 1;
        let p = NodeId(g.rng.random_range(1..n) as u32);
        site.add_edge(home, p);
    }

    // (c) Dense hub core (nav bars): each hub links to `hub_core_out`
    // random other hubs — this is what keeps the skeleton connected when
    // individual links churn into redirect paths.
    if hub_count > 1 {
        for k in 0..hub_count {
            let h = hub_of_topic(k);
            let mut added = 0usize;
            let mut guard = 0usize;
            while added < spec.hub_core_out.min(hub_count - 1) && guard < 50 * spec.hub_core_out {
                guard += 1;
                let other = hub_of_topic(g.rng.random_range(0..hub_count));
                if other != h && site.add_edge(h, other) {
                    added += 1;
                }
            }
        }
    }

    // (d) Super-hub tier: the first ~30 hubs get extra fanout with a
    // clear rank separation (~hub_fanout·0.6/30 per rank). Real sites'
    // top-degree pages (home, main sections, archives) are far apart in
    // degree, which is what keeps the top-20 skeleton *stable* across
    // versions; without this tier the top-20 membership reshuffles under
    // churn and Exp-1 accuracy on skeletons 2 collapses.
    let superhub_count = hub_count.min(30);
    let nominal: usize = (0..superhub_count)
        .map(|k| {
            (spec.hub_fanout * 3 * (superhub_count - k)) / (5 * superhub_count)
                + spec.hub_fanout / 10
        })
        .sum();
    let remaining = spec.edges.saturating_sub(site.edge_count());
    // Scale the tier down when the edge budget cannot host it in full.
    let scale_num = (remaining * 9 / 10).min(nominal.max(1));
    for k in 0..superhub_count {
        let h = hub_of_topic(k);
        let raw = (spec.hub_fanout * 3 * (superhub_count - k)) / (5 * superhub_count)
            + spec.hub_fanout / 10;
        let extra = raw * scale_num / nominal.max(1);
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < extra && guard < 30 * extra.max(1) {
            guard += 1;
            let p = NodeId(g.rng.random_range(1..n) as u32);
            if p != h && site.add_edge(h, p) {
                added += 1;
            }
        }
    }

    // (e) Random cross links fill the remaining edge budget.
    let mut attempts = 0usize;
    while site.edge_count() < spec.edges && attempts < 50 * spec.edges {
        attempts += 1;
        let a = g.rng.random_range(0..n) as u32;
        let b = g.rng.random_range(0..n) as u32;
        if a != b {
            site.add_edge(NodeId(a), NodeId(b));
        }
    }
    site
}

/// Derives the next version: content rewrites, leaf deletions, edge→path
/// redirects, and freshly attached subtrees.
fn evolve(prev: &SiteGraph, churn: &Churn, g: &mut Gen) -> SiteGraph {
    let n = prev.node_count();
    // Decide deletions (leaves only, never the home page).
    let deleted: Vec<bool> = prev
        .nodes()
        .map(|v| {
            v.index() != 0 && prev.out_degree(v) == 0 && g.rng.random::<f64>() < churn.delete_leaf
        })
        .collect();

    let mut next = DiGraph::with_capacity(n);
    let mut new_id: Vec<Option<NodeId>> = vec![None; n];
    for v in prev.nodes() {
        if deleted[v.index()] {
            continue;
        }
        let page = prev.label(v);
        let mut tokens = page.tokens.clone();
        if g.rng.random::<f64>() < churn.content {
            // Rewrite a *contiguous block* of the page-specific suffix —
            // the edit pattern of real page updates, and what keeps
            // shingle similarity a smooth function of edit volume.
            let suffix_start = tokens.len().saturating_sub(PAGE_TOKENS);
            let block = ((churn.rewrite * PAGE_TOKENS as f64).ceil() as usize).max(1);
            let span = tokens.len() - suffix_start;
            if span > 0 {
                let offset = g.rng.random_range(0..span);
                for k in 0..block.min(span - offset) {
                    tokens[suffix_start + offset + k] = g.fresh_token();
                }
            }
        }
        new_id[v.index()] = Some(next.add_node(Page {
            id: page.id,
            tokens,
        }));
    }

    // Copy edges, occasionally via a redirect page.
    for (a, b) in prev.edges() {
        let (Some(na), Some(nb)) = (new_id[a.index()], new_id[b.index()]) else {
            continue;
        };
        if g.rng.random::<f64>() < churn.edge_to_path {
            let hops = g.rng.random_range(1..=2usize);
            let mut cur = na;
            for _ in 0..hops {
                let tokens: Vec<u32> = (0..PAGE_TOKENS).map(|_| g.fresh_token()).collect();
                let mid = next.add_node(Page {
                    id: g.fresh_page_id(),
                    tokens,
                });
                next.add_edge(cur, mid);
                cur = mid;
            }
            next.add_edge(cur, nb);
        } else {
            next.add_edge(na, nb);
        }
    }

    // Attach new subtrees.
    for v in prev.nodes() {
        let Some(nv) = new_id[v.index()] else {
            continue;
        };
        if g.rng.random::<f64>() < churn.attach {
            let size = g.rng.random_range(1..=4usize);
            let mut parent = nv;
            for _ in 0..size {
                let tokens: Vec<u32> = (0..PAGE_TOKENS).map(|_| g.fresh_token()).collect();
                let child = next.add_node(Page {
                    id: g.fresh_page_id(),
                    tokens,
                });
                next.add_edge(parent, child);
                parent = child;
            }
        }
    }
    next
}

/// Shingle-similarity matrix between two site (sub)graphs (§3.1: `mat` is
/// the textual similarity of page contents based on shingles \[8\]).
pub fn shingle_matrix(g1: &SiteGraph, g2: &SiteGraph, window: usize) -> SimMatrix {
    SimMatrix::from_fn(g1.node_count(), g2.node_count(), |v, u| {
        shingle_similarity(&g1.label(v).tokens, &g2.label(u).tokens, window)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(cat: SiteCategory) -> SiteSpec {
        SiteSpec {
            category: cat,
            nodes: 300,
            edges: 700,
            hub_fanout: 40,
            hub_count: 8,
            hub_core_out: 4,
            backlink_prob: 0.2,
            versions: 4,
            seed: 11,
        }
    }

    #[test]
    fn archive_has_requested_versions() {
        let a = generate_archive(&tiny_spec(SiteCategory::OnlineStore));
        assert_eq!(a.versions.len(), 4);
        assert_eq!(a.versions[0].node_count(), 300);
    }

    #[test]
    fn initial_version_hits_edge_target_and_hub_degree() {
        let spec = tiny_spec(SiteCategory::OnlineStore);
        let a = generate_archive(&spec);
        let v0 = &a.versions[0];
        assert!(
            v0.edge_count() >= spec.edges * 9 / 10,
            "{}",
            v0.edge_count()
        );
        assert!(v0.max_degree() >= spec.hub_fanout, "{}", v0.max_degree());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_archive(&tiny_spec(SiteCategory::Newspaper));
        let b = generate_archive(&tiny_spec(SiteCategory::Newspaper));
        for (va, vb) in a.versions.iter().zip(b.versions.iter()) {
            assert_eq!(va.node_count(), vb.node_count());
            assert_eq!(va.edge_count(), vb.edge_count());
        }
    }

    #[test]
    fn newspaper_churns_more_than_organization() {
        let news = generate_archive(&tiny_spec(SiteCategory::Newspaper));
        let org = generate_archive(&tiny_spec(SiteCategory::Organization));
        // Compare content drift of the home page's topic block between the
        // first and last versions via average per-page similarity of
        // surviving pages.
        let drift = |a: &SiteArchive| -> f64 {
            let first = &a.versions[0];
            let last = a.versions.last().expect("versions");
            // Match by stable page id.
            let mut sum = 0.0;
            let mut count = 0usize;
            for v in first.nodes().take(100) {
                let pid = first.label(v).id;
                if let Some(u) = last.nodes().find(|&u| last.label(u).id == pid) {
                    sum += shingle_similarity(&first.label(v).tokens, &last.label(u).tokens, 3);
                    count += 1;
                }
            }
            if count == 0 {
                0.0
            } else {
                sum / count as f64
            }
        };
        let news_sim = drift(&news);
        let org_sim = drift(&org);
        assert!(
            news_sim < org_sim,
            "newspaper must drift more: news {news_sim} vs org {org_sim}"
        );
    }

    #[test]
    fn versions_preserve_most_pages() {
        let a = generate_archive(&tiny_spec(SiteCategory::OnlineStore));
        let first = a.versions[0].node_count() as f64;
        let last = a.versions.last().expect("versions").node_count() as f64;
        assert!(
            last > first * 0.8,
            "site does not collapse: {last} vs {first}"
        );
    }

    #[test]
    fn shingle_matrix_diagonal_high_for_same_version() {
        let a = generate_archive(&tiny_spec(SiteCategory::Organization));
        let v0 = &a.versions[0];
        let m = shingle_matrix(v0, v0, 3);
        for v in v0.nodes().take(20) {
            assert_eq!(m.score(v, v), 1.0);
        }
    }

    #[test]
    fn paper_scale_specs_match_table2() {
        let s1 = SiteSpec::paper_scale(SiteCategory::OnlineStore, 1);
        assert_eq!((s1.nodes, s1.edges), (20_000, 42_000));
        let s2 = SiteSpec::paper_scale(SiteCategory::Organization, 1);
        assert_eq!((s2.nodes, s2.edges), (5_400, 33_114));
        let s3 = SiteSpec::paper_scale(SiteCategory::Newspaper, 1);
        assert_eq!((s3.nodes, s3.edges), (7_000, 16_800));
    }
}
