//! Email-structure workloads for spam detection — the third application
//! domain the paper's introduction motivates (eMailSift \[3\]: "email
//! classification based on structure and content").
//!
//! An *email* is a DAG of structural parts (headers, MIME sections,
//! paragraphs, links, attachments) labeled with token streams; edges are
//! containment/order. A *spam campaign* mass-mails variants of one
//! template, disguised to evade signature filters:
//!
//! * **wrapper insertion** — a containment edge becomes a **path**
//!   through inserted wrapper parts (nested multiparts, forwarded
//!   envelopes) — exactly p-hom's edge-to-path case;
//! * **token churn** — part contents are paraphrased, so label equality
//!   fails but shingle similarity stays high;
//! * **junk attachment** — random extra parts bolted on to dilute
//!   signatures.
//!
//! Legitimate mail ("ham") has its own structure, unrelated to the
//! template. Detection = a high-`qualCard` p-hom mapping from the
//! campaign template into the message.

use phom_graph::{DiGraph, NodeId};
use phom_sim::{shingle_similarity, SimMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A structural email part: a kind tag plus a content token stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Part {
    /// Structural role ("subject", "para", "link", ...).
    pub kind: &'static str,
    /// Content tokens (synthetic word ids).
    pub tokens: Vec<u32>,
}

/// An email as a containment/order DAG of [`Part`]s.
pub type EmailGraph = DiGraph<Part>;

/// Parameters for campaign generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Paragraphs in the template body.
    pub paragraphs: usize,
    /// Links embedded in the template (the payload a filter hunts).
    pub links: usize,
    /// Probability a containment edge gains a wrapper part per variant.
    pub wrapper_rate: f64,
    /// Fraction of each part's tokens rewritten per variant.
    pub churn: f64,
    /// Junk parts attached per variant, as a fraction of template size.
    pub junk: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            paragraphs: 4,
            links: 2,
            wrapper_rate: 0.4,
            churn: 0.1,
            junk: 0.3,
            seed: 3,
        }
    }
}

/// One generated spam-detection instance: a campaign template plus a
/// labeled mailbox of spam variants and ham messages.
#[derive(Debug, Clone)]
pub struct CampaignInstance {
    /// The campaign template (the pattern `G1`).
    pub template: EmailGraph,
    /// Messages with ground-truth labels: `true` = spam variant.
    pub mailbox: Vec<(EmailGraph, bool)>,
}

fn fresh_tokens(rng: &mut SmallRng, n: usize, vocab: u32) -> Vec<u32> {
    (0..n).map(|_| rng.random_range(0..vocab)).collect()
}

/// Builds the campaign template: root → subject + body; body → paragraphs
/// in order; some paragraphs carry links.
fn build_template(cfg: &CampaignConfig, rng: &mut SmallRng) -> EmailGraph {
    let mut g: EmailGraph = DiGraph::new();
    let root = g.add_node(Part {
        kind: "root",
        tokens: fresh_tokens(rng, 4, 500),
    });
    let subject = g.add_node(Part {
        kind: "subject",
        tokens: fresh_tokens(rng, 8, 500),
    });
    let body = g.add_node(Part {
        kind: "body",
        tokens: fresh_tokens(rng, 4, 500),
    });
    g.add_edge(root, subject);
    g.add_edge(root, body);
    let mut paras = Vec::new();
    for _ in 0..cfg.paragraphs {
        let p = g.add_node(Part {
            kind: "para",
            tokens: fresh_tokens(rng, 16, 500),
        });
        g.add_edge(body, p);
        paras.push(p);
    }
    // Order edges chain the paragraphs (reading order).
    for w in paras.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    for i in 0..cfg.links {
        let carrier = paras[i % paras.len()];
        let l = g.add_node(Part {
            kind: "link",
            tokens: fresh_tokens(rng, 6, 500),
        });
        g.add_edge(carrier, l);
    }
    g
}

/// Derives one disguised spam variant from the template.
fn spam_variant(template: &EmailGraph, cfg: &CampaignConfig, rng: &mut SmallRng) -> EmailGraph {
    let mut g: EmailGraph = DiGraph::with_capacity(template.node_count());
    // Copy nodes with token churn.
    for v in template.nodes() {
        let mut part = template.label(v).clone();
        for t in part.tokens.iter_mut() {
            if rng.random::<f64>() < cfg.churn {
                *t = rng.random_range(0..500u32);
            }
        }
        g.add_node(part);
    }
    // Copy edges, sometimes through an inserted wrapper part.
    for (a, b) in template.edges() {
        if rng.random::<f64>() < cfg.wrapper_rate {
            let w = g.add_node(Part {
                kind: "wrapper",
                tokens: fresh_tokens(rng, 3, 500),
            });
            g.add_edge(a, w);
            g.add_edge(w, b);
        } else {
            g.add_edge(a, b);
        }
    }
    // Junk attachments hang off random parts.
    let junk_count = ((template.node_count() as f64) * cfg.junk).round() as usize;
    let n0 = template.node_count() as u32;
    for _ in 0..junk_count {
        let host = NodeId(rng.random_range(0..n0));
        let j = g.add_node(Part {
            kind: "junk",
            tokens: fresh_tokens(rng, 10, 500),
        });
        g.add_edge(host, j);
    }
    g
}

/// Generates a legitimate message of comparable size: same part kinds
/// (every mailbox message has a root, subject, body, paragraphs) but a
/// disjoint vocabulary range, so structural roles align while content
/// similarity stays low — the realistic hard case for a filter.
fn ham_email(cfg: &CampaignConfig, rng: &mut SmallRng) -> EmailGraph {
    let vocab_base = 10_000u32; // disjoint from campaign vocabulary
    let mut fresh = |n: usize| -> Vec<u32> {
        (0..n)
            .map(|_| vocab_base + rng.random_range(0..500u32))
            .collect()
    };
    let mut g: EmailGraph = DiGraph::new();
    let root = g.add_node(Part {
        kind: "root",
        tokens: fresh(4),
    });
    let subject = g.add_node(Part {
        kind: "subject",
        tokens: fresh(8),
    });
    let body = g.add_node(Part {
        kind: "body",
        tokens: fresh(4),
    });
    g.add_edge(root, subject);
    g.add_edge(root, body);
    let n_paras = cfg.paragraphs.max(1);
    let mut prev: Option<NodeId> = None;
    for _ in 0..n_paras {
        let p = g.add_node(Part {
            kind: "para",
            tokens: fresh(16),
        });
        g.add_edge(body, p);
        if let Some(q) = prev {
            g.add_edge(q, p);
        }
        prev = Some(p);
    }
    g
}

/// Generates a campaign instance: the template, `spam` disguised
/// variants, and `ham` unrelated messages, shuffled deterministically.
///
/// ```
/// use phom_workloads::{generate_campaign, CampaignConfig};
///
/// let inst = generate_campaign(&CampaignConfig::default(), 3, 2);
/// assert_eq!(inst.mailbox.len(), 5);
/// assert_eq!(inst.mailbox.iter().filter(|(_, spam)| *spam).count(), 3);
/// ```
pub fn generate_campaign(cfg: &CampaignConfig, spam: usize, ham: usize) -> CampaignInstance {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let template = build_template(cfg, &mut rng);
    let mut mailbox = Vec::with_capacity(spam + ham);
    for _ in 0..spam {
        mailbox.push((spam_variant(&template, cfg, &mut rng), true));
    }
    for _ in 0..ham {
        mailbox.push((ham_email(cfg, &mut rng), false));
    }
    // Deterministic interleave so consumers cannot rely on ordering.
    mailbox.sort_by_key(|(g, _)| g.node_count());
    CampaignInstance { template, mailbox }
}

/// The `mat()` for template-vs-message matching: same-kind parts are
/// compared by 2-shingle resemblance of their token streams; different
/// kinds score 0 (a subject never matches a link). Wrapper parts are
/// transparent to matching because they only appear *inside* image
/// paths, never as images of template parts.
pub fn email_matrix(template: &EmailGraph, message: &EmailGraph) -> SimMatrix {
    SimMatrix::from_fn(template.node_count(), message.node_count(), |v, u| {
        let a = template.label(v);
        let b = message.label(u);
        if a.kind != b.kind {
            return 0.0;
        }
        shingle_similarity(&a.tokens, &b.tokens, 2)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_core::{comp_max_card, AlgoConfig};

    fn classify(template: &EmailGraph, msg: &EmailGraph, xi: f64, threshold: f64) -> bool {
        let mat = email_matrix(template, msg);
        let cfg = AlgoConfig {
            xi,
            ..Default::default()
        };
        comp_max_card(template, msg, &mat, &cfg).qual_card() >= threshold
    }

    #[test]
    fn template_is_a_dag_with_expected_parts() {
        let cfg = CampaignConfig::default();
        let inst = generate_campaign(&cfg, 1, 0);
        let t = &inst.template;
        assert_eq!(
            t.nodes().filter(|&v| t.label(v).kind == "para").count(),
            cfg.paragraphs
        );
        assert_eq!(
            t.nodes().filter(|&v| t.label(v).kind == "link").count(),
            cfg.links
        );
        let scc = phom_graph::tarjan_scc(t);
        assert_eq!(scc.count(), t.node_count(), "acyclic");
    }

    #[test]
    fn spam_variants_match_the_template() {
        // Seed chosen so every variant clears the 0.75 threshold with
        // margin under the workspace RNG stream (crates/shims/rand).
        let cfg = CampaignConfig {
            seed: 7,
            ..Default::default()
        };
        let inst = generate_campaign(&cfg, 8, 0);
        for (msg, is_spam) in &inst.mailbox {
            assert!(is_spam);
            assert!(
                classify(&inst.template, msg, 0.4, 0.75),
                "a campaign variant must be flagged"
            );
        }
    }

    #[test]
    fn ham_does_not_match_the_template() {
        let cfg = CampaignConfig::default();
        let inst = generate_campaign(&cfg, 0, 8);
        for (msg, is_spam) in &inst.mailbox {
            assert!(!is_spam);
            assert!(
                !classify(&inst.template, msg, 0.4, 0.75),
                "legitimate mail must not be flagged"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CampaignConfig::default();
        let a = generate_campaign(&cfg, 3, 3);
        let b = generate_campaign(&cfg, 3, 3);
        assert_eq!(a.template.node_count(), b.template.node_count());
        for ((ga, la), (gb, lb)) in a.mailbox.iter().zip(b.mailbox.iter()) {
            assert_eq!(la, lb);
            assert_eq!(ga.node_count(), gb.node_count());
            assert_eq!(ga.edge_count(), gb.edge_count());
        }
    }

    #[test]
    fn wrappers_force_edge_to_path_matching() {
        // With wrapper_rate = 1 every containment edge is stretched, so
        // edge-to-edge matching (bounded k = 1) must fail while p-hom
        // still flags the variant.
        let cfg = CampaignConfig {
            wrapper_rate: 1.0,
            churn: 0.0,
            junk: 0.0,
            ..Default::default()
        };
        let inst = generate_campaign(&cfg, 1, 0);
        let (msg, _) = &inst.mailbox[0];
        let mat = email_matrix(&inst.template, msg);
        let acfg = AlgoConfig {
            xi: 0.5,
            ..Default::default()
        };
        let k1 = phom_core::comp_max_card_bounded(&inst.template, msg, &mat, &acfg, 1);
        let unb = comp_max_card(&inst.template, msg, &mat, &acfg);
        assert!(unb.qual_card() >= 0.99, "p-hom sees through wrappers");
        assert!(
            k1.qual_card() < unb.qual_card(),
            "edge-to-edge must lose nodes to wrappers"
        );
    }
}
