//! # phom-workloads
//!
//! Workload generators reproducing the experimental inputs of §6 of
//! *Graph Homomorphism Revisited for Graph Matching* (Fan et al., VLDB
//! 2010):
//!
//! * [`synthetic`] — the Exp-2 generator: pattern `G1` (`m` nodes, `4m`
//!   edges), noisy `G2` (edge→path and attached-subgraph noise), and the
//!   grouped label-similarity model;
//! * [`websim`] — simulated Web-site archives standing in for the Stanford
//!   WebBase crawls of Exp-1 (three site categories with
//!   category-specific churn across 11 versions);
//! * [`skeleton`] — the `α`-rule and top-k skeleton extraction of §6;
//! * [`plagiarism`] — program-dependence-graph workloads for the
//!   plagiarism-detection application the paper's introduction motivates
//!   (GPlag \[20\]);
//! * [`email`] — email-structure workloads for the spam-detection
//!   application (eMailSift \[3\]): campaign templates, disguised
//!   variants, ham.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod email;
pub mod plagiarism;
pub mod skeleton;
pub mod synthetic;
pub mod websim;

pub use email::{email_matrix, generate_campaign, CampaignConfig, CampaignInstance, EmailGraph};
pub use plagiarism::{PdgConfig, PlagiarismInstance, Stmt};
pub use skeleton::{skeleton_alpha, skeleton_top_k, Skeleton};
pub use synthetic::{
    derive_data_graph, generate_batch, generate_instance, generate_pattern, LabelPool,
    SyntheticConfig, SyntheticInstance,
};
pub use websim::{
    generate_archive, shingle_matrix, Churn, Page, SiteArchive, SiteCategory, SiteGraph, SiteSpec,
};
