//! Skeleton extraction (§6, Exp-1): real site graphs are too large to
//! match directly, so the paper matches *skeletons* — subgraphs induced by
//! "important" nodes:
//!
//! * **Skeletons 1** (`α`-rule): keep `v` with
//!   `deg(v) ≥ avgDeg(G) + α · maxDeg(G)` (the paper fixes `α = 0.2`);
//! * **Skeletons 2** (top-k): keep the `k` highest-degree nodes (the paper
//!   uses `k = 20` to accommodate `cdkMCS`).

use phom_graph::{DiGraph, NodeId};
use std::collections::BTreeSet;

/// A skeleton: the induced subgraph plus the original ids of its nodes.
#[derive(Debug, Clone)]
pub struct Skeleton<L> {
    /// The induced subgraph.
    pub graph: DiGraph<L>,
    /// `original[new]` = id of the node in the source graph.
    pub original: Vec<NodeId>,
}

/// The `α`-rule skeleton of §6.
pub fn skeleton_alpha<L: Clone>(g: &DiGraph<L>, alpha: f64) -> Skeleton<L> {
    let threshold = g.avg_degree() + alpha * g.max_degree() as f64;
    let keep: BTreeSet<NodeId> = g
        .nodes()
        .filter(|&v| g.degree(v) as f64 >= threshold)
        .collect();
    let (graph, original) = g.induced_subgraph(&keep);
    Skeleton { graph, original }
}

/// The top-`k`-degree skeleton of §6 (ties broken by node id).
pub fn skeleton_top_k<L: Clone>(g: &DiGraph<L>, k: usize) -> Skeleton<L> {
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    nodes.truncate(k);
    let keep: BTreeSet<NodeId> = nodes.into_iter().collect();
    let (graph, original) = g.induced_subgraph(&keep);
    Skeleton { graph, original }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    fn hub_graph() -> DiGraph<String> {
        // hub has degree 5; chain nodes have degree <= 2.
        graph_from_labels(
            &["hub", "a", "b", "c", "d", "e", "t1", "t2"],
            &[
                ("hub", "a"),
                ("hub", "b"),
                ("hub", "c"),
                ("hub", "d"),
                ("hub", "e"),
                ("t1", "t2"),
            ],
        )
    }

    #[test]
    fn alpha_rule_keeps_high_degree_nodes() {
        let g = hub_graph();
        // avgDeg = 2*6/8 = 1.5; maxDeg = 5; alpha 0.5 -> threshold 4.
        let s = skeleton_alpha(&g, 0.5);
        assert_eq!(s.graph.node_count(), 1);
        assert_eq!(s.original, vec![NodeId(0)]);
    }

    #[test]
    fn alpha_zero_keeps_above_average() {
        let g = hub_graph();
        let s = skeleton_alpha(&g, 0.0);
        // threshold = avgDeg = 1.5: keeps hub only (leaves have degree 1,
        // t1/t2 degree 1).
        assert_eq!(s.graph.node_count(), 1);
    }

    #[test]
    fn top_k_selects_highest_degrees() {
        let g = hub_graph();
        let s = skeleton_top_k(&g, 3);
        assert_eq!(s.graph.node_count(), 3);
        assert_eq!(s.original[0], NodeId(0), "hub kept");
    }

    #[test]
    fn top_k_larger_than_graph_keeps_all() {
        let g = hub_graph();
        let s = skeleton_top_k(&g, 100);
        assert_eq!(s.graph.node_count(), g.node_count());
        assert_eq!(s.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn skeleton_preserves_induced_edges() {
        let g = graph_from_labels(
            &["a", "b", "c"],
            &[("a", "b"), ("b", "c"), ("a", "c"), ("c", "a")],
        );
        // All nodes have degree >= 2; top-2 keeps a and c (degree 3 each).
        let s = skeleton_top_k(&g, 2);
        assert_eq!(s.graph.node_count(), 2);
        assert_eq!(s.graph.edge_count(), 2, "a<->c edges survive");
    }

    #[test]
    fn empty_graph_skeletons() {
        let g: DiGraph<String> = DiGraph::new();
        assert_eq!(skeleton_alpha(&g, 0.2).graph.node_count(), 0);
        assert_eq!(skeleton_top_k(&g, 5).graph.node_count(), 0);
    }
}
