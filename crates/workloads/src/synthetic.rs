//! The synthetic workload generator of §6, Exp-2:
//!
//! * pattern `G1`: `m` nodes, `4m` random edges;
//! * data `G2`: a copy of `G1` with noise — each edge replaced, with
//!   probability `noise%`, by a path of 1–5 fresh nodes; each node, with
//!   probability `noise%`, sprouting an attached subgraph of ≤ 10 nodes;
//! * labels: drawn from a pool of `5m` distinct labels split into
//!   `√(5m)` groups; labels in different groups are totally different,
//!   labels in the same group get a random similarity in `[0, 1]`
//!   (a label is identical to itself: similarity 1).
//!
//! Instances are fully determined by `(m, noise, seed)` so every
//! experiment is reproducible.

use phom_graph::{DiGraph, NodeId};
use phom_sim::SimMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A label from the synthetic pool: just an index into `0..5m`.
pub type Label = u32;

/// Parameters of one synthetic instance (§6 Exp-2 defaults:
/// `noise = 0.10`, 15 data graphs per pattern).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// `m`: number of pattern nodes.
    pub m: usize,
    /// Noise rate in `[0, 1]` (the paper's `noise%`).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The label-similarity model of §6: `5m` labels in `√(5m)` groups.
#[derive(Debug, Clone)]
pub struct LabelPool {
    pool_size: u32,
    group_count: u32,
    seed: u64,
}

impl LabelPool {
    /// Pool for pattern size `m`.
    pub fn new(m: usize, seed: u64) -> Self {
        let pool_size = (5 * m).max(1) as u32;
        let group_count = (pool_size as f64).sqrt().ceil().max(1.0) as u32;
        Self {
            pool_size,
            group_count,
            seed,
        }
    }

    /// Number of distinct labels (`5m`).
    pub fn len(&self) -> u32 {
        self.pool_size
    }

    /// True when the pool is trivial.
    pub fn is_empty(&self) -> bool {
        self.pool_size == 0
    }

    /// The group of a label.
    pub fn group(&self, label: Label) -> u32 {
        label % self.group_count
    }

    /// Similarity of two labels: 1 for equal labels, a deterministic
    /// pseudo-random value in `[0, 1]` within a group, 0 across groups.
    pub fn similarity(&self, a: Label, b: Label) -> f64 {
        if a == b {
            return 1.0;
        }
        if self.group(a) != self.group(b) {
            return 0.0;
        }
        // Symmetric deterministic hash -> [0, 1).
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((lo as u64) << 32 | hi as u64);
        // SplitMix64 finalizer.
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Random label.
    pub fn sample(&self, rng: &mut SmallRng) -> Label {
        rng.random_range(0..self.pool_size)
    }
}

/// One generated instance: the pattern, one noisy data graph, and the pool
/// that scores their labels.
#[derive(Debug, Clone)]
pub struct SyntheticInstance {
    /// The pattern `G1`.
    pub g1: DiGraph<Label>,
    /// The noisy data graph `G2`.
    pub g2: DiGraph<Label>,
    /// The shared label pool.
    pub pool: LabelPool,
}

impl SyntheticInstance {
    /// The similarity matrix `mat()` between `g1` and `g2` under the
    /// pool's label model.
    pub fn similarity_matrix(&self) -> SimMatrix {
        SimMatrix::from_fn(self.g1.node_count(), self.g2.node_count(), |v, u| {
            self.pool.similarity(*self.g1.label(v), *self.g2.label(u))
        })
    }
}

/// Generates the pattern `G1`: `m` nodes, `4m` distinct random edges
/// (no self-loops; fewer edges when `m` is too small to host `4m`).
pub fn generate_pattern(cfg: &SyntheticConfig) -> (DiGraph<Label>, LabelPool) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let pool = LabelPool::new(cfg.m, cfg.seed ^ 0x00C0_FFEE);
    let mut g = DiGraph::with_capacity(cfg.m);
    for _ in 0..cfg.m {
        let l = pool.sample(&mut rng);
        g.add_node(l);
    }
    let max_edges = cfg.m.saturating_mul(cfg.m.saturating_sub(1));
    let target = (4 * cfg.m).min(max_edges);
    let mut attempts = 0usize;
    while g.edge_count() < target && attempts < 100 * target.max(1) {
        attempts += 1;
        let a = rng.random_range(0..cfg.m) as u32;
        let b = rng.random_range(0..cfg.m) as u32;
        if a != b {
            g.add_edge(NodeId(a), NodeId(b));
        }
    }
    (g, pool)
}

/// Derives one noisy `G2` from the pattern per §6's construction.
/// `variant` diversifies the 15 data graphs generated per pattern.
pub fn derive_data_graph(
    g1: &DiGraph<Label>,
    pool: &LabelPool,
    cfg: &SyntheticConfig,
    variant: u64,
) -> DiGraph<Label> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (variant.wrapping_mul(0x5851_F42D)));
    // Start as a copy of G1 (same labels, same node ids).
    let mut g2 = DiGraph::with_capacity(g1.node_count() * 2);
    for v in g1.nodes() {
        g2.add_node(*g1.label(v));
    }

    // (a) Edge noise: with prob noise, replace the edge by a path through
    // 1..=5 fresh nodes; otherwise copy the edge.
    for (a, b) in g1.edges() {
        if rng.random::<f64>() < cfg.noise {
            let hops = rng.random_range(1..=5usize);
            let mut prev = a;
            for _ in 0..hops {
                let mid = g2.add_node(pool.sample(&mut rng));
                g2.add_edge(prev, mid);
                prev = mid;
            }
            g2.add_edge(prev, b);
        } else {
            g2.add_edge(a, b);
        }
    }

    // (b) Node noise: with prob noise, attach a random subgraph of at most
    // 10 nodes (a small random tree with extra edges).
    for v in g1.nodes() {
        if rng.random::<f64>() < cfg.noise {
            let size = rng.random_range(1..=10usize);
            let mut members = Vec::with_capacity(size);
            for _ in 0..size {
                members.push(g2.add_node(pool.sample(&mut rng)));
            }
            g2.add_edge(v, members[0]);
            for i in 1..members.len() {
                let parent = members[rng.random_range(0..i)];
                g2.add_edge(parent, members[i]);
            }
            // A couple of extra internal edges.
            for _ in 0..(size / 3) {
                let x = members[rng.random_range(0..size)];
                let y = members[rng.random_range(0..size)];
                if x != y {
                    g2.add_edge(x, y);
                }
            }
        }
    }
    g2
}

/// Generates a full instance (pattern + one data graph).
pub fn generate_instance(cfg: &SyntheticConfig, variant: u64) -> SyntheticInstance {
    let (g1, pool) = generate_pattern(cfg);
    let g2 = derive_data_graph(&g1, &pool, cfg, variant);
    SyntheticInstance { g1, g2, pool }
}

/// Generates the paper's per-setting batch: one pattern and `count` data
/// graphs (the paper uses 15).
pub fn generate_batch(cfg: &SyntheticConfig, count: usize) -> Vec<SyntheticInstance> {
    let (g1, pool) = generate_pattern(cfg);
    (0..count)
        .map(|i| SyntheticInstance {
            g1: g1.clone(),
            g2: derive_data_graph(&g1, &pool, cfg, i as u64 + 1),
            pool: pool.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(m: usize, noise: f64) -> SyntheticConfig {
        SyntheticConfig { m, noise, seed: 42 }
    }

    #[test]
    fn pattern_has_m_nodes_and_4m_edges() {
        let (g1, _) = generate_pattern(&cfg(50, 0.1));
        assert_eq!(g1.node_count(), 50);
        assert_eq!(g1.edge_count(), 200);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_instance(&cfg(30, 0.1), 3);
        let b = generate_instance(&cfg(30, 0.1), 3);
        assert_eq!(a.g1.node_count(), b.g1.node_count());
        assert_eq!(a.g2.node_count(), b.g2.node_count());
        let ea: Vec<_> = a.g2.edges().collect();
        let eb: Vec<_> = b.g2.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn variants_differ() {
        let a = generate_instance(&cfg(30, 0.2), 1);
        let b = generate_instance(&cfg(30, 0.2), 2);
        let ea: Vec<_> = a.g2.edges().collect();
        let eb: Vec<_> = b.g2.edges().collect();
        assert_ne!(ea, eb, "different variants produce different noise");
    }

    #[test]
    fn zero_noise_copies_pattern() {
        let inst = generate_instance(&cfg(40, 0.0), 1);
        assert_eq!(inst.g2.node_count(), inst.g1.node_count());
        assert_eq!(inst.g2.edge_count(), inst.g1.edge_count());
        for v in inst.g1.nodes() {
            assert_eq!(inst.g1.label(v), inst.g2.label(v));
        }
    }

    #[test]
    fn noise_grows_data_graph() {
        let inst = generate_instance(&cfg(100, 0.2), 1);
        assert!(inst.g2.node_count() > inst.g1.node_count());
        // Paper's envelope: m=500, noise 2..20% gave |V2| in [650, 2100];
        // proportionally m=100 noise 20% lands roughly in [150, 450].
        assert!(inst.g2.node_count() < 5 * inst.g1.node_count());
    }

    #[test]
    fn label_pool_properties() {
        let pool = LabelPool::new(100, 7);
        assert_eq!(pool.len(), 500);
        // Self-similarity 1.
        assert_eq!(pool.similarity(3, 3), 1.0);
        // Symmetry.
        assert_eq!(pool.similarity(3, 25), pool.similarity(25, 3));
        // Cross-group zero.
        let (a, b) = (0u32, 1u32);
        if pool.group(a) != pool.group(b) {
            assert_eq!(pool.similarity(a, b), 0.0);
        }
        // In-range.
        for x in 0..40u32 {
            for y in 0..40u32 {
                let s = pool.similarity(x, y);
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn identity_copy_matches_at_full_quality() {
        // With zero noise the data graph equals the pattern, so the
        // matcher must achieve qualCard 1 (sanity link to phom-core once
        // integrated; here: similarity matrix diagonal is 1).
        let inst = generate_instance(&cfg(20, 0.0), 1);
        let mat = inst.similarity_matrix();
        for v in inst.g1.nodes() {
            assert_eq!(mat.score(v, v), 1.0);
        }
    }

    #[test]
    fn batch_shares_pattern() {
        let batch = generate_batch(&cfg(20, 0.1), 4);
        assert_eq!(batch.len(), 4);
        let e0: Vec<_> = batch[0].g1.edges().collect();
        for inst in &batch {
            let e: Vec<_> = inst.g1.edges().collect();
            assert_eq!(e, e0);
        }
    }

    #[test]
    fn tiny_m_does_not_hang() {
        let (g1, _) = generate_pattern(&cfg(1, 0.5));
        assert_eq!(g1.node_count(), 1);
        assert_eq!(g1.edge_count(), 0, "no self-loops possible");
    }
}
