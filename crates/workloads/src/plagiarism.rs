//! Program-dependence-graph (PDG) workloads for plagiarism detection —
//! the second application domain the paper's introduction motivates
//! (GPlag \[20\]: "plagiarism detection by program dependence graph
//! analysis").
//!
//! A *program* is a DAG of statements labeled with their kind
//! (assignment, branch, loop, call, return...); edges are data/control
//! dependences. A *plagiarized copy* applies the classic disguises:
//!
//! * statement insertion — a dependence edge becomes a **path** through
//!   inserted no-op statements (exactly p-hom's edge-to-path case);
//! * statement splitting — one assignment becomes a chain of two;
//! * dead-code attachment — unrelated subgraphs bolted on;
//! * identifier renaming — harmless here, since matching is by statement
//!   kind + fuzzy similarity, not by name.
//!
//! Detection = a high-`qualCard` (1-1) p-hom mapping from the original
//! into the suspect.

use phom_graph::{DiGraph, NodeId};
use phom_sim::SimMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Statement kinds labeling PDG nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stmt {
    /// Entry node of the procedure.
    Entry,
    /// Assignment / arithmetic.
    Assign,
    /// Conditional branch.
    Branch,
    /// Loop header.
    Loop,
    /// Procedure call.
    Call,
    /// Return.
    Return,
}

impl Stmt {
    const BODY: [Stmt; 4] = [Stmt::Assign, Stmt::Branch, Stmt::Loop, Stmt::Call];

    /// Similarity between statement kinds: identical kinds are 1,
    /// "computational" kinds are mildly confusable, others 0. Mirrors a
    /// token-level code similarity a real detector would plug in.
    pub fn similarity(self, other: Stmt) -> f64 {
        use Stmt::*;
        if self == other {
            return 1.0;
        }
        match (self, other) {
            (Assign, Call) | (Call, Assign) => 0.5,
            (Branch, Loop) | (Loop, Branch) => 0.5,
            _ => 0.0,
        }
    }
}

/// Parameters for PDG generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PdgConfig {
    /// Statements in the original program.
    pub statements: usize,
    /// Fraction of edges disguised (insertion/splitting) in the copy.
    pub disguise: f64,
    /// Dead statements attached to the copy, as a fraction of `statements`.
    pub dead_code: f64,
    /// RNG seed.
    pub seed: u64,
}

/// A generated plagiarism instance.
#[derive(Debug, Clone)]
pub struct PlagiarismInstance {
    /// The original program PDG (the pattern).
    pub original: DiGraph<Stmt>,
    /// The disguised copy (the suspect).
    pub suspect: DiGraph<Stmt>,
}

impl PlagiarismInstance {
    /// The kind-similarity matrix between original and suspect.
    pub fn similarity_matrix(&self) -> SimMatrix {
        SimMatrix::from_fn(
            self.original.node_count(),
            self.suspect.node_count(),
            |v, u| self.original.label(v).similarity(*self.suspect.label(u)),
        )
    }
}

/// Generates the original PDG: an entry node, a DAG of body statements
/// (each depending on 1–3 earlier ones), and a return depending on a few
/// tail statements.
pub fn generate_original(cfg: &PdgConfig) -> DiGraph<Stmt> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.statements.max(3);
    let mut g = DiGraph::with_capacity(n);
    let entry = g.add_node(Stmt::Entry);
    let body_count = n - 2;
    for i in 0..body_count {
        let kind = Stmt::BODY[rng.random_range(0..Stmt::BODY.len())];
        let v = g.add_node(kind);
        // Depend on 1..=3 earlier statements (or the entry).
        let deps = rng.random_range(1..=3usize).min(i + 1);
        for _ in 0..deps {
            let d = rng.random_range(0..=i) as u32; // node 0 is entry
            g.add_edge(NodeId(d), v);
        }
        let _ = entry;
    }
    let ret = g.add_node(Stmt::Return);
    for _ in 0..3usize.min(body_count) {
        let d = rng.random_range(1..(n - 1)) as u32;
        g.add_edge(NodeId(d), ret);
    }
    g
}

/// Derives a disguised copy of `original`.
pub fn disguise(original: &DiGraph<Stmt>, cfg: &PdgConfig) -> DiGraph<Stmt> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x00D1_56D1);
    let mut copy = DiGraph::with_capacity(original.node_count() * 2);
    for v in original.nodes() {
        copy.add_node(*original.label(v));
    }
    // Statement insertion / splitting: edge -> path through fresh no-ops.
    for (a, b) in original.edges() {
        if rng.random::<f64>() < cfg.disguise {
            let hops = rng.random_range(1..=2usize);
            let mut prev = a;
            for _ in 0..hops {
                let filler = copy.add_node(Stmt::Assign);
                copy.add_edge(prev, filler);
                prev = filler;
            }
            copy.add_edge(prev, b);
        } else {
            copy.add_edge(a, b);
        }
    }
    // Dead-code attachment.
    let dead = (original.node_count() as f64 * cfg.dead_code) as usize;
    for _ in 0..dead {
        let host = NodeId(rng.random_range(0..original.node_count()) as u32);
        let kind = Stmt::BODY[rng.random_range(0..Stmt::BODY.len())];
        let d = copy.add_node(kind);
        copy.add_edge(host, d);
    }
    copy
}

/// Generates a full instance.
pub fn generate_instance(cfg: &PdgConfig) -> PlagiarismInstance {
    let original = generate_original(cfg);
    let suspect = disguise(&original, cfg);
    PlagiarismInstance { original, suspect }
}

/// Generates an *innocent* program of similar size (fresh structure) —
/// the negative case a detector must not flag.
pub fn generate_innocent(cfg: &PdgConfig) -> DiGraph<Stmt> {
    generate_original(&PdgConfig {
        seed: cfg.seed ^ 0x1AB0_41E5,
        ..*cfg
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::tarjan_scc;

    fn cfg() -> PdgConfig {
        PdgConfig {
            statements: 60,
            disguise: 0.3,
            dead_code: 0.2,
            seed: 9,
        }
    }

    #[test]
    fn original_is_a_dag_with_entry_and_return() {
        let g = generate_original(&cfg());
        assert_eq!(g.node_count(), 60);
        assert_eq!(*g.label(NodeId(0)), Stmt::Entry);
        assert_eq!(*g.label(NodeId(59)), Stmt::Return);
        assert_eq!(tarjan_scc(&g).count(), g.node_count(), "acyclic");
    }

    #[test]
    fn disguise_grows_the_suspect() {
        let inst = generate_instance(&cfg());
        assert!(inst.suspect.node_count() > inst.original.node_count());
        assert_eq!(tarjan_scc(&inst.suspect).count(), inst.suspect.node_count());
    }

    #[test]
    fn zero_disguise_copies_structure() {
        let c = PdgConfig {
            disguise: 0.0,
            dead_code: 0.0,
            ..cfg()
        };
        let inst = generate_instance(&c);
        assert_eq!(inst.suspect.node_count(), inst.original.node_count());
        assert_eq!(inst.suspect.edge_count(), inst.original.edge_count());
    }

    #[test]
    fn kind_similarity_is_symmetric_and_bounded() {
        for a in [
            Stmt::Entry,
            Stmt::Assign,
            Stmt::Branch,
            Stmt::Loop,
            Stmt::Call,
            Stmt::Return,
        ] {
            for b in [
                Stmt::Entry,
                Stmt::Assign,
                Stmt::Branch,
                Stmt::Loop,
                Stmt::Call,
                Stmt::Return,
            ] {
                let s = a.similarity(b);
                assert!((0.0..=1.0).contains(&s));
                assert_eq!(s, b.similarity(a));
                if a == b {
                    assert_eq!(s, 1.0);
                }
            }
        }
    }

    #[test]
    fn detector_flags_plagiarism_but_not_innocent() {
        use phom_core::{match_graphs, MatcherConfig};
        use phom_sim::NodeWeights;
        // Seed chosen so the disguised copy clears the detection threshold
        // and the innocent program stays clearly below it under the
        // workspace RNG stream (crates/shims/rand).
        let c = PdgConfig { seed: 1, ..cfg() };
        let inst = generate_instance(&c);
        let mat = inst.similarity_matrix();
        let w = NodeWeights::uniform(inst.original.node_count());
        let mcfg = MatcherConfig {
            xi: 0.5,
            ..Default::default()
        };
        let hit = match_graphs(&inst.original, &inst.suspect, &mat, &w, &mcfg);
        assert!(
            hit.qual_card >= 0.75,
            "disguised copy must be detected: {}",
            hit.qual_card
        );

        let innocent = generate_innocent(&c);
        let mat2 = SimMatrix::from_fn(inst.original.node_count(), innocent.node_count(), |v, u| {
            inst.original.label(v).similarity(*innocent.label(u))
        });
        let miss = match_graphs(&inst.original, &innocent, &mat2, &w, &mcfg);
        // Innocent code shares statement kinds, so some partial match is
        // expected — but the dependence structure differs. The detector's
        // signal is the *gap*.
        assert!(
            hit.qual_card > miss.qual_card,
            "plagiarized {} vs innocent {}",
            hit.qual_card,
            miss.qual_card
        );
    }
}
