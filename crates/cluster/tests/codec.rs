//! Wire-codec acceptance tests: round-trips across the whole envelope
//! (including live service responses with traces, stats, and
//! snapshots), plus the fuzz-hardening satellite — frame caps, declared
//! lengths past the budget, and byte-level corruption injection must
//! yield typed [`CodecError`]s, never a panic or an unbounded
//! allocation.

use phom_cluster::codec::{self, CodecError, FrameConfig, WireMessage, WIRE_MAGIC, WIRE_VERSION};
use phom_core::Algorithm;
use phom_dynamic::GraphUpdate;
use phom_engine::{EngineConfig, PlanKind, Query, QueryConfig};
use phom_graph::{DiGraph, NodeId};
use phom_service::{Request, Response, Service, ServiceConfig, ServiceError, ShardingConfig};
use phom_sim::{NodeWeights, SimMatrix};
use std::sync::Arc;
use std::time::Duration;

fn cfg() -> FrameConfig {
    FrameConfig::default()
}

/// Encodes, checks the frame layout, strips the prefix, and decodes.
fn round_trip(msg: &WireMessage) -> WireMessage {
    let frame = codec::encode(msg, &cfg()).expect("encode");
    let declared = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    assert_eq!(declared + 4, frame.len(), "prefix covers the payload");
    let magic = u32::from_be_bytes([frame[4], frame[5], frame[6], frame[7]]);
    assert_eq!(magic, WIRE_MAGIC);
    assert_eq!(frame[8], WIRE_VERSION);
    codec::decode(&frame[4..], &cfg()).expect("decode")
}

fn payload(msg: &WireMessage) -> Vec<u8> {
    codec::encode(msg, &cfg()).expect("encode")[4..].to_vec()
}

fn data_graph() -> Arc<DiGraph<String>> {
    let mut g: DiGraph<String> = DiGraph::new();
    for i in 0..6 {
        g.add_node(format!("l{}", i % 3));
    }
    for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)] {
        g.add_edge(NodeId(a), NodeId(b));
    }
    Arc::new(g)
}

fn pattern_graph() -> Arc<DiGraph<String>> {
    let mut p: DiGraph<String> = DiGraph::new();
    p.add_node("l0".to_owned());
    p.add_node("l1".to_owned());
    p.add_edge(NodeId(0), NodeId(1));
    Arc::new(p)
}

fn rich_query() -> Query<String> {
    let pattern = pattern_graph();
    let data = data_graph();
    let matrix = SimMatrix::label_equality(&pattern, &data);
    let mut query = Query::new(pattern, matrix);
    query.weights = Some(NodeWeights::from_vec(vec![0.25, 1.5]));
    query.config = QueryConfig {
        xi: 0.5,
        algorithm: Algorithm::MaxSim1to1,
        max_stretch: Some(2),
        restarts: Some(3),
        force_plan: Some(PlanKind::Approx),
        timeout: Some(Duration::new(1, 250)),
        intra_workers: Some(2),
        partition: true,
        compress: false,
    };
    query
}

/// A live service whose responses exercise every payload the codec
/// carries (answers with traces, update summaries, snapshots, info,
/// stats).
fn live_service() -> Service<String> {
    let service = Service::new(
        ServiceConfig::builder()
            .sharding(ShardingConfig {
                max_shards: 2,
                min_shard_nodes: 0,
            })
            .engine(EngineConfig::default())
            .build(),
    );
    service
        .register("g".into(), data_graph())
        .expect("register");
    service
}

#[test]
fn heartbeats_round_trip() {
    for seq in [0u64, 1, u64::MAX] {
        match round_trip(&WireMessage::Ping { seq }) {
            WireMessage::Ping { seq: got } => assert_eq!(got, seq),
            other => panic!("ping decoded as {other:?}"),
        }
        match round_trip(&WireMessage::Pong { seq }) {
            WireMessage::Pong { seq: got } => assert_eq!(got, seq),
            other => panic!("pong decoded as {other:?}"),
        }
    }
}

#[test]
fn every_service_error_round_trips() {
    let errors = vec![
        ServiceError::NotFound { graph: "g".into() },
        ServiceError::AlreadyRegistered {
            graph: "a\"b".into(),
        },
        ServiceError::Overloaded {
            in_flight: 8,
            queue_depth: 4,
        },
        ServiceError::InvalidRequest("dims mismatch".into()),
        ServiceError::Timeout { micros: 123_456 },
        ServiceError::SnapshotVersion {
            found: 9,
            supported: 1,
        },
        ServiceError::SnapshotCorrupt("truncated".into()),
        ServiceError::Unsupported("prepared-graph snapshots require String-labeled graphs"),
    ];
    for e in errors {
        match round_trip(&WireMessage::Err(e.clone())) {
            WireMessage::Err(got) => assert_eq!(got, e),
            other => panic!("error decoded as {other:?}"),
        }
    }
}

#[test]
fn query_request_round_trips_field_by_field() {
    let query = rich_query();
    let msg = WireMessage::Request(Request::Query {
        graph: "g".into(),
        query: query.clone(),
        trace: true,
    });
    let WireMessage::Request(Request::Query {
        graph,
        query: got,
        trace,
    }) = round_trip(&msg)
    else {
        panic!("query request decoded as a different variant");
    };
    assert_eq!(graph, "g");
    assert!(trace);
    assert_eq!(got.pattern.node_count(), query.pattern.node_count());
    assert_eq!(got.pattern.edge_count(), query.pattern.edge_count());
    for v in query.pattern.nodes() {
        assert_eq!(got.pattern.label(v), query.pattern.label(v));
    }
    assert_eq!(got.matrix.n1(), query.matrix.n1());
    assert_eq!(got.matrix.n2(), query.matrix.n2());
    for v in 0..query.matrix.n1() as u32 {
        for u in 0..query.matrix.n2() as u32 {
            assert_eq!(
                got.matrix.score(NodeId(v), NodeId(u)),
                query.matrix.score(NodeId(v), NodeId(u))
            );
        }
    }
    let (ww, gw) = (
        query.weights.expect("weights"),
        got.weights.expect("weights"),
    );
    for v in 0..2u32 {
        assert_eq!(gw.get(NodeId(v)), ww.get(NodeId(v)));
    }
    assert_eq!(format!("{:?}", got.config), format!("{:?}", query.config));
}

#[test]
fn updates_and_registration_requests_round_trip() {
    let updates = vec![
        GraphUpdate::InsertEdge(NodeId(0), NodeId(5)),
        GraphUpdate::RemoveEdge(NodeId(3), NodeId(4)),
    ];
    let msg = WireMessage::Request(Request::ApplyUpdates {
        graph: "g".into(),
        updates: updates.clone(),
    });
    let WireMessage::Request(Request::ApplyUpdates {
        graph,
        updates: got,
    }) = round_trip(&msg)
    else {
        panic!("update request decoded as a different variant");
    };
    assert_eq!(graph, "g");
    assert_eq!(got, updates);

    let snapshot = phom_graph::serialize::to_snapshot(&data_graph());
    let msg = WireMessage::RegisterPinned {
        name: "g#1".into(),
        graph: snapshot.clone(),
        compression: Some(phom_engine::CompressionPolicy::Always),
    };
    let WireMessage::RegisterPinned {
        name,
        graph,
        compression,
    } = round_trip(&msg)
    else {
        panic!("pinned registration decoded as a different variant");
    };
    assert_eq!(name, "g#1");
    assert_eq!(graph.to_vec(), snapshot.to_vec());
    assert_eq!(compression, Some(phom_engine::CompressionPolicy::Always));
    let restored = phom_graph::serialize::from_snapshot(graph).expect("nested snapshot");
    assert_eq!(restored.node_count(), 6);
}

#[test]
fn live_responses_round_trip() {
    let service = live_service();
    let mut query = rich_query();
    // Full-width matrix over the registered graph; default config so the
    // worker plans for itself (the reason string interning path).
    query.config = QueryConfig::builder().xi(0.5).restarts(1).build();

    // Answer without a trace: field-by-field.
    let answer = service.query("g", &query).expect("query");
    let WireMessage::Ok(Response::Answer(got)) =
        round_trip(&WireMessage::Ok(Response::Answer(answer.clone())))
    else {
        panic!("answer decoded as a different variant");
    };
    assert_eq!(
        got.mapping.pairs().collect::<Vec<_>>(),
        answer.mapping.pairs().collect::<Vec<_>>()
    );
    assert_eq!(got.qual_card, answer.qual_card);
    assert_eq!(got.qual_sim, answer.qual_sim);
    assert_eq!(
        got.plan, answer.plan,
        "plan reason must intern back to the static"
    );
    assert_eq!(got.shards_consulted, answer.shards_consulted);
    assert_eq!(got.timed_out, answer.timed_out);
    assert_eq!(got.micros, answer.micros);
    assert!(got.trace.is_none());

    // Traced answer: spans and counters survive via their JSON surface.
    let traced = service.query_traced("g", &query, true).expect("traced");
    let WireMessage::Ok(Response::Answer(got)) =
        round_trip(&WireMessage::Ok(Response::Answer(traced.clone())))
    else {
        panic!("traced answer decoded as a different variant");
    };
    let (want_tr, got_tr) = (traced.trace.expect("trace"), got.trace.expect("trace"));
    assert_eq!(got_tr.to_json(), want_tr.to_json());

    // Update summary.
    let summary = service
        .apply_updates("g", &[GraphUpdate::InsertEdge(NodeId(0), NodeId(2))])
        .expect("updates");
    let WireMessage::Ok(Response::Updated(got)) =
        round_trip(&WireMessage::Ok(Response::Updated(summary.clone())))
    else {
        panic!("summary decoded as a different variant");
    };
    assert_eq!(format!("{got:?}"), format!("{summary:?}"));

    // Info, snapshot, stats, evicted, batch.
    let Ok(Response::Info(info)) = service.handle(Request::GraphInfo { graph: "g".into() }) else {
        panic!("info request failed");
    };
    let WireMessage::Ok(Response::Info(got)) =
        round_trip(&WireMessage::Ok(Response::Info(info.clone())))
    else {
        panic!("info decoded as a different variant");
    };
    assert_eq!(got, info);

    let Ok(Response::Snapshot(snap)) = service.handle(Request::Snapshot { graph: "g".into() })
    else {
        panic!("snapshot request failed");
    };
    let WireMessage::Ok(Response::Snapshot(got)) =
        round_trip(&WireMessage::Ok(Response::Snapshot(snap.clone())))
    else {
        panic!("snapshot decoded as a different variant");
    };
    assert_eq!(got.to_vec(), snap.to_vec());

    let stats = Box::new(service.stats());
    let WireMessage::Ok(Response::Stats(got)) =
        round_trip(&WireMessage::Ok(Response::Stats(stats.clone())))
    else {
        panic!("stats decoded as a different variant");
    };
    assert_eq!(got.to_json(), stats.to_json());

    let batch = vec![answer.clone(), answer];
    let WireMessage::Ok(Response::Batch(got)) =
        round_trip(&WireMessage::Ok(Response::Batch(batch.clone())))
    else {
        panic!("batch decoded as a different variant");
    };
    assert_eq!(got.len(), batch.len());

    let WireMessage::Ok(Response::Evicted { graph }) =
        round_trip(&WireMessage::Ok(Response::Evicted { graph: "g".into() }))
    else {
        panic!("evicted decoded as a different variant");
    };
    assert_eq!(graph, "g");
}

#[test]
fn encode_rejects_frames_over_the_cap() {
    let msg = WireMessage::Request(Request::Query {
        graph: "g".into(),
        query: rich_query(),
        trace: false,
    });
    let tiny = FrameConfig {
        max_frame_bytes: 16,
    };
    match codec::encode(&msg, &tiny) {
        Err(CodecError::FrameTooLarge { declared, cap }) => {
            assert_eq!(cap, 16);
            assert!(declared > 16);
        }
        other => panic!("oversized encode must fail typed, got {other:?}"),
    }
}

#[test]
fn decode_rejects_bad_magic_version_and_kind() {
    let good = payload(&WireMessage::Ping { seq: 7 });

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        codec::decode(&bad_magic, &cfg()),
        Err(CodecError::BadMagic(_))
    ));

    let mut bad_version = good.clone();
    bad_version[4] = WIRE_VERSION + 1;
    assert!(matches!(
        codec::decode(&bad_version, &cfg()),
        Err(CodecError::UnsupportedVersion(_))
    ));

    let mut bad_kind = good.clone();
    bad_kind[5] = 0xEE;
    assert!(matches!(
        codec::decode(&bad_kind, &cfg()),
        Err(CodecError::BadTag { .. })
    ));

    let mut trailing = good;
    trailing.push(0);
    assert!(
        codec::decode(&trailing, &cfg()).is_err(),
        "trailing bytes must be rejected"
    );
}

#[test]
fn declared_lengths_past_the_budget_are_typed_errors() {
    // A string request whose inner length field claims far more bytes
    // than the payload holds: must fail as Truncated before allocating.
    let good = payload(&WireMessage::Request(Request::EvictGraph {
        name: "abc".into(),
    }));
    let mut lying = good;
    // Payload layout: magic(4) version(1) kind(1) req-tag(1) strlen(4)…
    lying[7..11].copy_from_slice(&u32::MAX.to_be_bytes());
    match codec::decode(&lying, &cfg()) {
        Err(CodecError::Truncated { needed, remaining }) => {
            assert!(needed > remaining);
        }
        other => panic!("hostile length must fail typed, got {other:?}"),
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let service = live_service();
    let mut query = rich_query();
    query.config = QueryConfig::builder().xi(0.5).restarts(1).build();
    let traced = service.query_traced("g", &query, true).expect("traced");
    let rich = vec![
        payload(&WireMessage::Request(Request::Query {
            graph: "g".into(),
            query: rich_query(),
            trace: true,
        })),
        payload(&WireMessage::Ok(Response::Answer(traced))),
        payload(&WireMessage::Ok(Response::Stats(Box::new(service.stats())))),
    ];
    for p in rich {
        for len in 0..p.len() {
            assert!(
                codec::decode(&p[..len], &cfg()).is_err(),
                "a {len}-byte prefix of a {}-byte payload must not decode",
                p.len()
            );
        }
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round-trip over randomized query envelopes: every decoded
        /// field agrees with the source.
        #[test]
        fn prop_query_round_trips(
            seed in any::<u64>(),
            xi in 0.0f64..1.0,
            partition in any::<bool>(),
            compress in any::<bool>(),
            trace in any::<bool>(),
        ) {
            let mut rng = phom_graph::XorShift64::new(seed);
            let mut data: DiGraph<String> = DiGraph::new();
            let n = 2 + rng.below(8);
            for i in 0..n {
                data.add_node(format!("l{}", i % 3));
            }
            for _ in 0..rng.below(2 * n) {
                data.add_edge(
                    NodeId(rng.below(n) as u32),
                    NodeId(rng.below(n) as u32),
                );
            }
            let data = Arc::new(data);
            let mut pattern: DiGraph<String> = DiGraph::new();
            let m = 1 + rng.below(4);
            for i in 0..m {
                pattern.add_node(format!("l{}", i % 4));
            }
            for _ in 0..rng.below(m + 1) {
                pattern.add_edge(
                    NodeId(rng.below(m) as u32),
                    NodeId(rng.below(m) as u32),
                );
            }
            let pattern = Arc::new(pattern);
            let matrix = SimMatrix::label_equality(&pattern, &data);
            let mut query = Query::new(Arc::clone(&pattern), matrix);
            query.config.xi = xi;
            query.config.partition = partition;
            query.config.compress = compress;
            let msg = WireMessage::Request(Request::Query {
                graph: format!("g{seed}"),
                query,
                trace,
            });
            let WireMessage::Request(Request::Query { graph, query: got, trace: got_trace }) =
                round_trip(&msg)
            else {
                panic!("decoded as a different variant");
            };
            prop_assert_eq!(graph, format!("g{seed}"));
            prop_assert_eq!(got_trace, trace);
            prop_assert_eq!(got.pattern.node_count(), m);
            prop_assert_eq!(got.matrix.n2(), n);
            prop_assert_eq!(got.config.xi, xi);
            for v in 0..m as u32 {
                for u in 0..n as u32 {
                    prop_assert_eq!(
                        got.matrix.score(NodeId(v), NodeId(u)),
                        xi_free_score(&pattern, &data, v, u)
                    );
                }
            }
        }

        /// Corruption injection: flipping any single byte of a valid
        /// payload decodes to a typed result — Ok (the flip hit a
        /// don't-care bit) or a CodecError — but never panics and never
        /// misreports the frame as a different valid message silently
        /// growing memory.
        #[test]
        fn prop_single_byte_corruption_never_panics(
            pos_seed in any::<u64>(),
            flip in 1u8..=255,
        ) {
            let p = payload(&WireMessage::Request(Request::Query {
                graph: "g".into(),
                query: rich_query(),
                trace: true,
            }));
            let pos = (pos_seed as usize) % p.len();
            let mut corrupt = p;
            corrupt[pos] ^= flip;
            // Typed outcome either way; the assertion is "returns".
            let _ = codec::decode(&corrupt, &cfg());
        }

        /// Random garbage never panics the decoder.
        #[test]
        fn prop_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = codec::decode(&bytes, &cfg());
        }
    }

    fn xi_free_score(
        pattern: &Arc<DiGraph<String>>,
        data: &Arc<DiGraph<String>>,
        v: u32,
        u: u32,
    ) -> f64 {
        if pattern.label(NodeId(v)) == data.label(NodeId(u)) {
            1.0
        } else {
            0.0
        }
    }
}
