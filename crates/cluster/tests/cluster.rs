//! End-to-end cluster acceptance tests over the hermetic in-process
//! channel transport: routed multi-process answers must be
//! *bit-identical* to a single-process [`Service`] run across
//! partition × compress × backend — including after dynamic updates —
//! a kill-one-worker failover must promote a replica with zero wrong
//! answers, and every router error path must surface a typed error
//! (never a hang, never a partial merge reported as success).

use phom_cluster::codec::FrameConfig;
use phom_cluster::transport::{ChannelHub, TransportTimeouts};
use phom_cluster::worker::{self, WorkerOptions};
use phom_cluster::{Router, RouterConfig, RouterError, WorkerServer};
use phom_core::Algorithm;
use phom_dynamic::GraphUpdate;
use phom_engine::{ClosureBackend, EngineConfig, PlannerConfig, Query, QueryConfig};
use phom_graph::{DiGraph, NodeId, XorShift64};
use phom_service::{QueryResponse, Request, Service, ServiceConfig, ServiceError, ShardingConfig};
use phom_sim::SimMatrix;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Harness: a fleet of worker services on a channel hub plus a router.

struct Fleet {
    hub: Arc<ChannelHub>,
    addrs: Vec<String>,
    workers: Vec<(Arc<Service<String>>, WorkerServer)>,
}

/// Spawns `n` worker services on one in-process hub. Workers poll reads
/// at 50 ms so `WorkerServer::stop` (and so test teardown) is fast.
fn spawn_fleet(n: usize, planner: PlannerConfig) -> Fleet {
    let hub = ChannelHub::new();
    let timeouts = TransportTimeouts {
        read: Duration::from_millis(50),
        write: Duration::from_millis(50),
    };
    let mut addrs = Vec::new();
    let mut workers = Vec::new();
    for i in 0..n {
        let addr = format!("worker-{i}");
        let listener = hub.bind(&addr, timeouts, FrameConfig::default());
        let config = ServiceConfig::builder()
            .engine(EngineConfig::builder().planner(planner).build())
            .sharding(ShardingConfig::disabled())
            .build();
        let (service, server) =
            worker::spawn_service(config, Box::new(listener), WorkerOptions::default());
        addrs.push(addr);
        workers.push((service, server));
    }
    Fleet {
        hub,
        addrs,
        workers,
    }
}

impl Fleet {
    /// Kills worker `w` the way a process death looks to the router: the
    /// accept loop stops and the address disappears from the hub, so
    /// both live connections and redials fail.
    fn kill(&mut self, w: usize) {
        self.hub.unbind(&self.addrs[w]);
        self.workers[w].1.stop();
    }
}

fn router_for(fleet: &Fleet, planner: PlannerConfig, max_shards: usize, replicas: usize) -> Router {
    let transport = Arc::new(fleet.hub.transport(
        TransportTimeouts {
            read: Duration::from_secs(2),
            write: Duration::from_secs(2),
        },
        FrameConfig::default(),
    ));
    Router::connect(
        transport,
        &fleet.addrs,
        RouterConfig {
            planner,
            sharding: ShardingConfig {
                max_shards,
                min_shard_nodes: 0,
            },
            replicas,
            frame: FrameConfig::default(),
            redials: 1,
            retry_backoff: Duration::from_millis(1),
            journal_capacity: 128,
        },
    )
}

/// The single-process oracle: same planner, same sharding thresholds.
fn reference_service(planner: PlannerConfig, max_shards: usize) -> Service<String> {
    Service::new(
        ServiceConfig::builder()
            .engine(EngineConfig::builder().planner(planner).build())
            .sharding(ShardingConfig {
                max_shards,
                min_shard_nodes: 0,
            })
            .build(),
    )
}

// ---------------------------------------------------------------------
// Instance generation (the tests/service.rs family, String-labeled).

struct Instance {
    data: Arc<DiGraph<String>>,
    pattern: Arc<DiGraph<String>>,
    updates: Vec<GraphUpdate>,
}

/// A data graph of `parts` disconnected parts (so component-group
/// sharding actually splits it), a pattern drawing labels from a random
/// subset of parts, and intra-part updates that never bridge shards.
fn instance(seed: u64, parts: usize) -> Instance {
    let mut rng = XorShift64::new(seed);
    let mut data: DiGraph<String> = DiGraph::new();
    let mut part_nodes: Vec<Vec<NodeId>> = Vec::new();
    for p in 0..parts {
        let n = 4 + rng.below(4);
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| data.add_node(format!("l{}", (p * 8 + i) % 3)))
            .collect();
        for w in nodes.windows(2) {
            data.add_edge(w[0], w[1]);
        }
        for _ in 0..rng.below(n) {
            data.add_edge(nodes[rng.below(n)], nodes[rng.below(n)]);
        }
        part_nodes.push(nodes);
    }
    let mut pattern: DiGraph<String> = DiGraph::new();
    for p in 0..parts {
        if p > 0 && rng.below(4) < 3 {
            continue;
        }
        let m = 2 + rng.below(2);
        let nodes: Vec<NodeId> = (0..m)
            .map(|i| pattern.add_node(format!("l{}", (p * 8 + i) % 4)))
            .collect();
        for w in nodes.windows(2) {
            pattern.add_edge(w[0], w[1]);
        }
    }
    if pattern.node_count() == 0 {
        pattern.add_node("l0".to_owned());
    }
    let mut updates = Vec::new();
    for _ in 0..rng.below(6) {
        let nodes = &part_nodes[rng.below(parts)];
        let a = nodes[rng.below(nodes.len())];
        let b = nodes[rng.below(nodes.len())];
        updates.push(if rng.below(2) == 0 {
            GraphUpdate::InsertEdge(a, b)
        } else {
            GraphUpdate::RemoveEdge(a, b)
        });
    }
    Instance {
        data: Arc::new(data),
        pattern: Arc::new(pattern),
        updates,
    }
}

/// The full partition × compress × algorithm grid at one restart (the
/// deterministic greedy run both sides must reproduce bit-for-bit).
fn queries_for(inst: &Instance) -> Vec<Query<String>> {
    let matrix = SimMatrix::label_equality(&inst.pattern, &inst.data);
    let mut out = Vec::new();
    for algorithm in [
        Algorithm::MaxCard,
        Algorithm::MaxCard1to1,
        Algorithm::MaxSim,
        Algorithm::MaxSim1to1,
    ] {
        for partition in [false, true] {
            for compress in [false, true] {
                let mut q = Query::new(Arc::clone(&inst.pattern), matrix.clone());
                q.config = QueryConfig::builder()
                    .xi(0.5)
                    .algorithm(algorithm)
                    .restarts(1)
                    .build();
                q.config.partition = partition;
                q.config.compress = compress;
                out.push(q);
            }
        }
    }
    out
}

/// [`phom_engine::UpdateStats`] minus its wall-clock fields — the
/// deterministic part both sides must agree on.
fn stats_fingerprint(stats: &phom_engine::UpdateStats) -> String {
    let mut s = stats.clone();
    s.apply_micros = 0;
    s.closure_maintain_micros = 0;
    s.bounded_refresh_micros = 0;
    format!("{s:?}")
}

/// [`phom_service::GraphInfo`] minus its wall-clock field.
fn info_fingerprint(info: &phom_service::GraphInfo) -> String {
    let mut i = info.clone();
    i.prepare_micros = 0;
    format!("{i:?}")
}

fn assert_identical(label: &str, got: &QueryResponse, want: &QueryResponse) {
    assert_eq!(
        got.mapping.pairs().collect::<Vec<_>>(),
        want.mapping.pairs().collect::<Vec<_>>(),
        "{label}: mapping diverged"
    );
    assert_eq!(got.qual_card, want.qual_card, "{label}: qual_card diverged");
    assert_eq!(got.qual_sim, want.qual_sim, "{label}: qual_sim diverged");
    assert_eq!(got.plan, want.plan, "{label}: plan diverged");
    assert_eq!(
        got.shards_consulted, want.shards_consulted,
        "{label}: shards_consulted diverged"
    );
    assert_eq!(got.timed_out, want.timed_out, "{label}: timed_out diverged");
}

fn check_all(label: &str, router: &Router, reference: &Service<String>, inst: &Instance) {
    for (qi, q) in queries_for(inst).iter().enumerate() {
        let got = router
            .query("g", q, false)
            .unwrap_or_else(|e| panic!("{label}: routed query {qi} failed: {e}"));
        let want = reference
            .query("g", q)
            .unwrap_or_else(|e| panic!("{label}: reference query {qi} failed: {e}"));
        assert_identical(&format!("{label} q{qi}"), &got, &want);
    }
}

// ---------------------------------------------------------------------
// Acceptance: routed == single-process, across the whole grid.

mod identity {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The headline acceptance property: every routed answer —
        /// before and after updates — is bit-identical to the
        /// single-process service, across partition × compress ×
        /// closure backend, shard counts, and fleet sizes.
        #[test]
        fn prop_routed_identical_to_single_process(
            seed in any::<u64>(),
            parts in 2usize..5,
            max_shards in 2usize..5,
            nworkers in 2usize..5,
        ) {
            for backend in [ClosureBackend::Dense, ClosureBackend::Chain, ClosureBackend::TwoHop] {
                let planner = PlannerConfig {
                    closure_backend: backend,
                    ..PlannerConfig::default()
                };
                let inst = instance(seed, parts);
                let fleet = spawn_fleet(nworkers, planner);
                let router = router_for(&fleet, planner, max_shards, 1);
                let reference = reference_service(planner, max_shards);
                let got_info = router
                    .register("g".into(), Arc::clone(&inst.data))
                    .expect("routed register");
                let want_info = reference
                    .register("g".into(), Arc::clone(&inst.data))
                    .expect("reference register");
                prop_assert_eq!(
                    info_fingerprint(&got_info),
                    info_fingerprint(&want_info),
                    "registration info diverged"
                );
                prop_assert_eq!(
                    info_fingerprint(&router.graph_info("g").expect("info")),
                    info_fingerprint(&want_info)
                );
                let label = format!("seed={seed} backend={backend:?}");
                check_all(&label, &router, &reference, &inst);
                if !inst.updates.is_empty() {
                    let got_sum = router
                        .apply_updates("g", &inst.updates)
                        .expect("routed updates");
                    let want_sum = reference
                        .apply_updates("g", &inst.updates)
                        .expect("reference updates");
                    prop_assert_eq!(
                        stats_fingerprint(&got_sum.stats),
                        stats_fingerprint(&want_sum.stats),
                        "update stats diverged ({})", label
                    );
                    check_all(&format!("{label} post-update"), &router, &reference, &inst);
                }
            }
        }
    }
}

/// A cross-shard edge insert forces a reshard on both sides, and the
/// answers stay identical through it.
#[test]
fn cross_shard_insert_reshards_and_stays_identical() {
    let planner = PlannerConfig::default();
    let inst = instance(11, 3);
    let fleet = spawn_fleet(3, planner);
    let router = router_for(&fleet, planner, 3, 1);
    let reference = reference_service(planner, 3);
    router
        .register("g".into(), Arc::clone(&inst.data))
        .expect("routed register");
    reference
        .register("g".into(), Arc::clone(&inst.data))
        .expect("reference register");
    assert!(
        router.graph_info("g").expect("info").shards > 1,
        "instance must actually shard for this test to bite"
    );

    // Bridge the first two parts: nodes 0 and (part-0 size .. +1) are in
    // different component groups by construction.
    let bridge = GraphUpdate::InsertEdge(NodeId(0), NodeId(inst.data.node_count() as u32 - 1));
    let got = router.apply_updates("g", &[bridge]).expect("routed bridge");
    let want = reference
        .apply_updates("g", &[bridge])
        .expect("reference bridge");
    assert!(got.resharded, "cross-shard insert must reshard the router");
    assert_eq!(
        stats_fingerprint(&got.stats),
        stats_fingerprint(&want.stats)
    );
    check_all("post-reshard", &router, &reference, &inst);
}

// ---------------------------------------------------------------------
// Failover: kill a worker mid-replay; zero wrong answers.

/// A deterministic 3-part instance whose pattern has one component per
/// part, so every query consults every shard (the failover must be
/// exercised on the query path, not routed around).
fn failover_instance() -> Instance {
    let mut data: DiGraph<String> = DiGraph::new();
    let mut updates = Vec::new();
    for p in 0..3u32 {
        let base = data.node_count() as u32;
        for i in 0..5 {
            data.add_node(format!("p{p}n{}", i % 2));
        }
        for i in 0..4 {
            data.add_edge(NodeId(base + i), NodeId(base + i + 1));
        }
        updates.push(GraphUpdate::InsertEdge(NodeId(base), NodeId(base + 3)));
    }
    let mut pattern: DiGraph<String> = DiGraph::new();
    for p in 0..3u32 {
        let a = pattern.add_node(format!("p{p}n0"));
        let b = pattern.add_node(format!("p{p}n1"));
        pattern.add_edge(a, b);
    }
    Instance {
        data: Arc::new(data),
        pattern: Arc::new(pattern),
        updates,
    }
}

#[test]
fn killing_a_worker_mid_replay_promotes_a_replica_with_zero_wrong_answers() {
    let planner = PlannerConfig::default();
    let inst = failover_instance();
    let mut fleet = spawn_fleet(3, planner);
    let router = router_for(&fleet, planner, 3, 1);
    let reference = reference_service(planner, 3);
    router
        .register("g".into(), Arc::clone(&inst.data))
        .expect("routed register");
    reference
        .register("g".into(), Arc::clone(&inst.data))
        .expect("reference register");
    let info = router.graph_info("g").expect("info");
    assert_eq!(info.shards, 3, "three parts must become three shards");

    // Replay: the same query grid three times over; kill worker 0 (the
    // primary of shard 0) halfway through.
    let grid = queries_for(&inst);
    let total = grid.len() * 3;
    let mut wrong = 0usize;
    let mut completed = 0usize;
    for i in 0..total {
        if i == total / 2 {
            fleet.kill(0);
        }
        let q = &grid[i % grid.len()];
        let got = router
            .query("g", q, false)
            .unwrap_or_else(|e| panic!("query {i} failed during failover: {e}"));
        let want = reference.query("g", q).expect("reference query");
        if got.mapping.pairs().collect::<Vec<_>>() != want.mapping.pairs().collect::<Vec<_>>()
            || got.qual_card != want.qual_card
            || got.qual_sim != want.qual_sim
        {
            wrong += 1;
        }
        completed += 1;
    }
    assert_eq!(wrong, 0, "failover produced wrong answers");
    assert_eq!(completed, total, "replay must complete");

    // The loss and the promotion are observable: counters...
    let stats = router.stats();
    assert!(
        stats.workers_lost >= 1,
        "lost worker not counted: {stats:?}"
    );
    assert!(
        stats.replicas_promoted >= 1,
        "no replica promotion counted: {stats:?}"
    );
    assert_eq!(stats.workers_alive, 2);
    assert!(!router.worker_alive(0));

    // ...and journaled.
    let journal: Vec<String> = router
        .journal()
        .snapshot()
        .iter()
        .map(|e| e.to_json())
        .collect();
    assert!(
        journal
            .iter()
            .any(|e| e.contains("\"event\":\"WorkerLost\"")),
        "journal missing WorkerLost: {journal:?}"
    );
    assert!(
        journal
            .iter()
            .any(|e| e.contains("\"event\":\"ReplicaPromoted\"")),
        "journal missing ReplicaPromoted: {journal:?}"
    );

    // Writes keep working against the promoted primaries, and answers
    // stay identical afterwards.
    let got_sum = router
        .apply_updates("g", &inst.updates)
        .expect("post-failover updates");
    let want_sum = reference
        .apply_updates("g", &inst.updates)
        .expect("reference updates");
    assert_eq!(
        stats_fingerprint(&got_sum.stats),
        stats_fingerprint(&want_sum.stats)
    );
    check_all("post-failover-update", &router, &reference, &inst);

    // Cluster stats still answer from a surviving worker and carry the
    // router's failover counters.
    let cluster = router.cluster_stats().expect("cluster stats");
    assert!(cluster.workers_lost >= 1);
    assert!(cluster.replicas_promoted >= 1);
}

// ---------------------------------------------------------------------
// Error paths: typed errors, bounded time, no partial merges.

#[test]
fn worker_side_service_error_mid_batch_is_typed() {
    let planner = PlannerConfig::default();
    let inst = failover_instance();
    let fleet = spawn_fleet(2, planner);
    let router = router_for(&fleet, planner, 3, 0);
    router
        .register("g".into(), Arc::clone(&inst.data))
        .expect("register");

    // Sabotage: evict shard 0 directly on its owning worker (shard 0 of
    // a replica-less ring lives on worker 0). The router's next fan-out
    // must surface the worker's typed ServiceError, not a partial merge.
    fleet.workers[0]
        .0
        .handle(Request::EvictGraph { name: "g#0".into() })
        .expect("worker-side evict");
    let grid = queries_for(&inst);
    match router.query_batch("g", &grid) {
        Err(RouterError::Service(ServiceError::NotFound { graph })) => {
            assert_eq!(graph, "g#0");
        }
        other => panic!("expected the worker's NotFound, got {other:?}"),
    }
}

#[test]
fn dead_fleet_yields_no_quorum_not_a_hang() {
    let planner = PlannerConfig::default();
    let inst = failover_instance();
    let mut fleet = spawn_fleet(1, planner);
    let router = router_for(&fleet, planner, 2, 1);
    router
        .register("g".into(), Arc::clone(&inst.data))
        .expect("register");
    let grid = queries_for(&inst);
    let probe = &grid[0];
    router.query("g", probe, false).expect("pre-kill query");

    fleet.kill(0);
    let started = std::time::Instant::now();
    match router.query("g", probe, false) {
        Err(RouterError::NoQuorum { .. }) => {}
        other => panic!("expected NoQuorum, got {other:?}"),
    }
    match router.apply_updates("g", &inst.updates) {
        Err(RouterError::NoQuorum { .. }) => {}
        other => panic!("expected NoQuorum for writes, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "dead-fleet errors must be bounded"
    );
    assert_eq!(router.heartbeat(), 0);
    assert!(!router.worker_alive(0));

    // A fresh worker rebinding the address is picked back up by the next
    // heartbeat (journaled as WorkerConnected) — new registrations can
    // use it again.
    let listener = fleet.hub.bind(
        &fleet.addrs[0],
        TransportTimeouts {
            read: Duration::from_millis(50),
            write: Duration::from_millis(50),
        },
        FrameConfig::default(),
    );
    let config = ServiceConfig::builder()
        .engine(EngineConfig::builder().planner(planner).build())
        .sharding(ShardingConfig::disabled())
        .build();
    let (_svc, _server) =
        worker::spawn_service(config, Box::new(listener), WorkerOptions::default());
    assert_eq!(router.heartbeat(), 1);
    assert!(router.worker_alive(0));
    let journal: Vec<String> = router
        .journal()
        .snapshot()
        .iter()
        .map(|e| e.to_json())
        .collect();
    assert!(
        journal
            .iter()
            .any(|e| e.contains("\"event\":\"WorkerConnected\"")),
        "journal missing WorkerConnected: {journal:?}"
    );
}

#[test]
fn registry_error_paths_are_typed() {
    let planner = PlannerConfig::default();
    let inst = failover_instance();
    let fleet = spawn_fleet(2, planner);
    let router = router_for(&fleet, planner, 2, 1);
    let grid = queries_for(&inst);
    let probe = &grid[0];

    match router.query("nope", probe, false) {
        Err(RouterError::Service(ServiceError::NotFound { graph })) => assert_eq!(graph, "nope"),
        other => panic!("expected NotFound, got {other:?}"),
    }
    router
        .register("g".into(), Arc::clone(&inst.data))
        .expect("register");
    match router.register("g".into(), Arc::clone(&inst.data)) {
        Err(RouterError::Service(ServiceError::AlreadyRegistered { graph })) => {
            assert_eq!(graph, "g");
        }
        other => panic!("expected AlreadyRegistered, got {other:?}"),
    }

    // Mismatched matrix dimensions are rejected before any fan-out.
    let mut bad = probe.clone();
    bad.matrix = SimMatrix::new(bad.pattern.node_count(), 1);
    match router.query("g", &bad, false) {
        Err(RouterError::Service(ServiceError::InvalidRequest(_))) => {}
        other => panic!("expected InvalidRequest, got {other:?}"),
    }

    router.evict("g").expect("evict");
    match router.evict("g") {
        Err(RouterError::Service(ServiceError::NotFound { .. })) => {}
        other => panic!("expected NotFound after evict, got {other:?}"),
    }
    assert!(router.graph_names().is_empty());
}
