//! Observability satellites: routed traces must tile the response time
//! with worker-tagged `worker_match` spans, and the router's transport
//! metrics must surface through the Prometheus renderer under their
//! documented names.

use phom_cluster::codec::FrameConfig;
use phom_cluster::transport::{ChannelHub, TransportTimeouts};
use phom_cluster::worker::{self, WorkerOptions};
use phom_cluster::{Router, RouterConfig, WorkerServer};
use phom_engine::{EngineConfig, PlannerConfig, Query, QueryConfig};
use phom_graph::{DiGraph, NodeId};
use phom_service::{Service, ServiceConfig, ShardingConfig};
use phom_sim::SimMatrix;
use phom_trace::render_prometheus;
use std::sync::Arc;
use std::time::Duration;

struct Fleet {
    hub: Arc<ChannelHub>,
    addrs: Vec<String>,
    workers: Vec<(Arc<Service<String>>, WorkerServer)>,
}

fn spawn_fleet(n: usize, planner: PlannerConfig) -> Fleet {
    let hub = ChannelHub::new();
    let timeouts = TransportTimeouts {
        read: Duration::from_millis(50),
        write: Duration::from_millis(50),
    };
    let mut addrs = Vec::new();
    let mut workers = Vec::new();
    for i in 0..n {
        let addr = format!("worker-{i}");
        let listener = hub.bind(&addr, timeouts, FrameConfig::default());
        let config = ServiceConfig::builder()
            .engine(EngineConfig::builder().planner(planner).build())
            .sharding(ShardingConfig::disabled())
            .build();
        let (service, server) =
            worker::spawn_service(config, Box::new(listener), WorkerOptions::default());
        addrs.push(addr);
        workers.push((service, server));
    }
    Fleet {
        hub,
        addrs,
        workers,
    }
}

fn router_for(fleet: &Fleet, planner: PlannerConfig, max_shards: usize) -> Router {
    let transport = Arc::new(fleet.hub.transport(
        TransportTimeouts {
            read: Duration::from_secs(2),
            write: Duration::from_secs(2),
        },
        FrameConfig::default(),
    ));
    Router::connect(
        transport,
        &fleet.addrs,
        RouterConfig {
            planner,
            sharding: ShardingConfig {
                max_shards,
                min_shard_nodes: 0,
            },
            replicas: 1,
            frame: FrameConfig::default(),
            redials: 1,
            retry_backoff: Duration::from_millis(1),
            journal_capacity: 128,
        },
    )
}

/// Three disconnected parts; the pattern has one component per part so
/// every shard is consulted.
fn three_part_setup() -> (Arc<DiGraph<String>>, Query<String>) {
    let mut data: DiGraph<String> = DiGraph::new();
    for p in 0..3u32 {
        let base = data.node_count() as u32;
        for i in 0..5 {
            data.add_node(format!("p{p}n{}", i % 2));
        }
        for i in 0..4 {
            data.add_edge(NodeId(base + i), NodeId(base + i + 1));
        }
    }
    let mut pattern: DiGraph<String> = DiGraph::new();
    for p in 0..3u32 {
        let a = pattern.add_node(format!("p{p}n0"));
        let b = pattern.add_node(format!("p{p}n1"));
        pattern.add_edge(a, b);
    }
    let data = Arc::new(data);
    let pattern = Arc::new(pattern);
    let matrix = SimMatrix::label_equality(&pattern, &data);
    let mut query = Query::new(Arc::clone(&pattern), matrix);
    query.config = QueryConfig::builder().xi(0.5).restarts(1).build();
    (data, query)
}

#[test]
fn routed_traces_tile_and_tag_workers() {
    let planner = PlannerConfig::default();
    let (data, query) = three_part_setup();
    let fleet = spawn_fleet(2, planner);
    let router = router_for(&fleet, planner, 3);
    router.register("g".into(), data).expect("register");

    let response = router.query("g", &query, true).expect("traced query");
    let trace = response.trace.as_ref().expect("trace requested");

    // Span shape: plan, route, one worker_match per consulted shard (in
    // shard order), merge — nothing nested on the routed path.
    let names: Vec<&str> = trace.spans.iter().map(|s| s.kind.name()).collect();
    assert_eq!(names.first(), Some(&"plan"), "spans: {names:?}");
    assert_eq!(names.get(1), Some(&"route"), "spans: {names:?}");
    assert_eq!(names.last(), Some(&"merge"), "spans: {names:?}");
    let worker_spans: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.kind.name() == "worker_match")
        .collect();
    assert_eq!(
        worker_spans.len(),
        response.shards_consulted,
        "one worker_match span per consulted shard"
    );
    assert_eq!(response.shards_consulted, 3, "all three shards consulted");
    for s in &worker_spans {
        let worker = s.kind.worker().expect("worker-tagged span");
        assert!((worker as usize) < fleet.workers.len());
        assert!(s.kind.index().is_some(), "shard-indexed span");
    }
    assert!(trace.spans.iter().all(|s| !s.kind.nested()));

    // Counters agree with the response envelope.
    assert_eq!(trace.counters.shards_consulted, response.shards_consulted);

    // Tiling: top-level spans cover end-to-end time within 10% (+100 µs
    // slack for timer granularity) — the explain surface must not lose
    // routed time in the gaps.
    let sum = trace.top_level_micros() as f64;
    let total = response.micros as f64;
    assert!(
        (sum - total).abs() <= 0.10 * total + 100.0,
        "span tiling off: spans sum to {sum} µs over {total} µs end-to-end"
    );
    assert!(trace.micros_of("worker_match") > 0 || total < 1000.0);

    // The JSON rendering carries the worker tags.
    let json = trace.to_json();
    assert!(json.contains("worker_match"), "missing span kind: {json}");
    assert!(json.contains("\"worker\":"), "missing worker tag: {json}");
}

#[test]
fn transport_metrics_render_under_documented_names() {
    let planner = PlannerConfig::default();
    let (data, query) = three_part_setup();
    let mut fleet = spawn_fleet(2, planner);
    let router = router_for(&fleet, planner, 3);
    router.register("g".into(), data).expect("register");
    router.query("g", &query, false).expect("query");

    let text = render_prometheus(&router.metrics().export(), &[]);
    for family in [
        "phom_cluster_bytes_sent_total",
        "phom_cluster_bytes_received_total",
        "phom_worker_0_request_micros",
        "phom_worker_1_request_micros",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    let stats = router.stats();
    assert!(stats.bytes_sent > 0, "bytes_sent not counted: {stats:?}");
    assert!(
        stats.bytes_received > 0,
        "bytes_received not counted: {stats:?}"
    );
    assert!(stats.queries_routed >= 1);
    let json = stats.to_json();
    assert!(json.contains("\"bytes_sent\":"), "stats json: {json}");

    // A killed worker forces the redial path on the next call, which is
    // what the reconnect counter measures.
    fleet.kill_first();
    let _ = router.query("g", &query, false);
    let text = render_prometheus(&router.metrics().export(), &[]);
    assert!(
        text.contains("phom_worker_reconnects_total"),
        "missing reconnect counter in:\n{text}"
    );
    assert!(router.stats().reconnects >= 1);
}

impl Fleet {
    fn kill_first(&mut self) {
        self.hub.unbind(&self.addrs[0]);
        self.workers[0].1.stop();
    }
}
