//! The wire codec: a length-prefixed, versioned binary encoding of the
//! full service envelope ([`Request`] / [`Response`] / [`ServiceError`])
//! plus the cluster-control messages (heartbeats, pinned registration)
//! over the `bytes` seam.
//!
//! Layout of one frame on the wire:
//!
//! ```text
//! [u32 payload_len] [u32 WIRE_MAGIC] [u8 WIRE_VERSION] [u8 kind] [body…]
//! ```
//!
//! All integers are big-endian; `usize` travels as `u64`, `u128` as two
//! `u64` halves, `f64` as its IEEE-754 bit pattern. Decoding is
//! **budget-checked**: every declared length and count is validated
//! against the remaining payload (and the configurable
//! [`FrameConfig::max_frame_bytes`] cap) before any allocation, so a
//! truncated, corrupt, or hostile frame yields a typed [`CodecError`] —
//! never a panic, never an unbounded allocation.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use phom_core::{Algorithm, PHomMapping};
use phom_dynamic::GraphUpdate;
use phom_engine::{
    CompressionPolicy, Plan, PlanKind, Query, QueryConfig, QueryTrace, Span, SpanKind,
    TraceCounters, UpdateStats,
};
use phom_graph::{DiGraph, NodeId};
use phom_service::{
    GraphInfo, LatencyHistogram, PlanHistograms, QueryResponse, Request, Response, ServiceError,
    ServiceStats, UpdateSummary, HISTOGRAM_BUCKETS,
};
use phom_sim::{NodeWeights, SimMatrix};
use phom_trace::{ObjectiveStatus, SloStatus};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Magic tag leading every payload (`"pHC1"`).
pub const WIRE_MAGIC: u32 = 0x7048_4331;

/// Wire format version this build reads and writes.
pub const WIRE_VERSION: u8 = 1;

/// Default frame cap: 64 MiB, far above any realistic envelope but low
/// enough that a hostile length prefix cannot balloon memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 << 20;

/// Codec limits shared by both ends of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameConfig {
    /// Frames whose declared payload length exceeds this are rejected
    /// before any payload byte is read or allocated.
    pub max_frame_bytes: usize,
}

impl Default for FrameConfig {
    fn default() -> Self {
        FrameConfig {
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// Every way a frame can fail to decode (or exceed limits on encode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before a declared field.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A frame declared (or would produce) a payload over the cap.
    FrameTooLarge {
        /// Declared / produced payload length.
        declared: usize,
        /// The configured [`FrameConfig::max_frame_bytes`].
        cap: usize,
    },
    /// The payload did not start with [`WIRE_MAGIC`].
    BadMagic(u32),
    /// The payload's version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// An enum tag byte had no meaning for its field.
    BadTag {
        /// Which field was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A structurally invalid value (out-of-range float, inconsistent
    /// counts, nested snapshot garbage, …).
    Corrupt(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated frame: needed {needed} bytes, {remaining} left"
                )
            }
            CodecError::FrameTooLarge { declared, cap } => {
                write!(f, "frame of {declared} bytes exceeds the {cap}-byte cap")
            }
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
                )
            }
            CodecError::BadTag { what, tag } => write!(f, "bad tag {tag} decoding {what}"),
            CodecError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Everything that travels between a router and a worker.
#[derive(Debug, Clone)]
pub enum WireMessage {
    /// A service request (the worker answers with `Ok` or `Err`).
    Request(Request<String>),
    /// A successful response.
    Ok(Response),
    /// A failed response.
    Err(ServiceError),
    /// Heartbeat probe; the worker echoes `seq` back in a `Pong`.
    Ping {
        /// Echo token matching probes to answers.
        seq: u64,
    },
    /// Heartbeat answer.
    Pong {
        /// The probed sequence number, echoed.
        seq: u64,
    },
    /// Cluster-control registration: register the serialized graph under
    /// `name` with an explicit compression override, so a worker-held
    /// shard prepares under the *graph-wide* pinned decision and routed
    /// answers stay bit-identical to a single-process run.
    RegisterPinned {
        /// Registry name on the worker.
        name: String,
        /// `phom_graph::serialize::to_snapshot` bytes of the shard graph.
        graph: Bytes,
        /// The pinned policy; `None` keeps the worker's engine default.
        compression: Option<CompressionPolicy>,
    },
}

// ---------------------------------------------------------------------
// Primitive writers.
// ---------------------------------------------------------------------

fn put_usize(buf: &mut BytesMut, v: usize) {
    buf.put_u64(v as u64);
}

fn put_u128(buf: &mut BytesMut, v: u128) {
    buf.put_u64((v >> 64) as u64);
    buf.put_u64(v as u64);
}

fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_u64(v.to_bits());
}

fn put_bool(buf: &mut BytesMut, v: bool) {
    buf.put_u8(u8::from(v));
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

fn put_opt_usize(buf: &mut BytesMut, v: Option<usize>) {
    match v {
        Some(v) => {
            buf.put_u8(1);
            put_usize(buf, v);
        }
        None => buf.put_u8(0),
    }
}

fn put_opt_duration(buf: &mut BytesMut, v: Option<Duration>) {
    match v {
        Some(d) => {
            buf.put_u8(1);
            buf.put_u64(d.as_secs());
            buf.put_u32(d.subsec_nanos());
        }
        None => buf.put_u8(0),
    }
}

// ---------------------------------------------------------------------
// The budget-checked reader.
// ---------------------------------------------------------------------

/// A cursor over one payload that refuses to read past the end.
struct Dec {
    buf: Bytes,
}

impl Dec {
    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.buf.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.buf.remaining(),
            });
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    fn usize_(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?)
            .map_err(|_| CodecError::Corrupt("usize field exceeds this platform".into()))
    }

    fn u128_(&mut self) -> Result<u128, CodecError> {
        let hi = self.u64()?;
        let lo = self.u64()?;
        Ok(((hi as u128) << 64) | lo as u128)
    }

    fn f64_(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool_(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what: "bool", tag }),
        }
    }

    /// A declared-length string, validated against the remaining budget
    /// before allocation.
    fn str_(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let raw = self.buf.split_to(len).to_vec();
        String::from_utf8(raw).map_err(|_| CodecError::Corrupt("string is not UTF-8".into()))
    }

    /// A declared-length byte blob, validated against the remaining
    /// budget before allocation.
    fn bytes_(&mut self) -> Result<Bytes, CodecError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        Ok(self.buf.split_to(len))
    }

    /// A declared element count whose elements occupy at least
    /// `min_elem_bytes` each; rejects counts the remaining payload
    /// cannot possibly hold, so `Vec::with_capacity` stays bounded.
    fn count(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, CodecError> {
        let n = self.usize_()?;
        let floor = n
            .checked_mul(min_elem_bytes)
            .ok_or_else(|| CodecError::Corrupt(format!("{what}: count overflows")))?;
        self.need(floor)?;
        Ok(n)
    }

    fn opt_usize(&mut self) -> Result<Option<usize>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.usize_()?)),
            tag => Err(CodecError::BadTag {
                what: "option",
                tag,
            }),
        }
    }

    fn opt_duration(&mut self) -> Result<Option<Duration>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let secs = self.u64()?;
                let nanos = self.u32()?;
                if nanos >= 1_000_000_000 {
                    return Err(CodecError::Corrupt("duration nanos out of range".into()));
                }
                Ok(Some(Duration::new(secs, nanos)))
            }
            tag => Err(CodecError::BadTag {
                what: "duration",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Interning for `&'static str` fields.
// ---------------------------------------------------------------------

/// The planner's closed set of plan rationales (see
/// `phom_engine::plan_query_with`); decoding maps wire strings back to
/// these statics, with a marked fallback for strings minted by a newer
/// peer.
const KNOWN_PLAN_REASONS: [&str; 5] = [
    "forced by query config",
    "stretch bound requires the hop-bounded closure",
    "edgeless pattern: no path constraints to satisfy",
    "tiny candidate set: exact branch-and-bound is affordable",
    "greedy approximation with the Theorem 5.1 guarantee",
];

/// Fallback rationale for wire strings outside [`KNOWN_PLAN_REASONS`].
const DECODED_PLAN_REASON: &str = "decoded from wire";

/// Known `ServiceError::Unsupported` payloads (see `phom_service`).
const KNOWN_UNSUPPORTED: [&str; 1] = ["prepared-graph snapshots require String-labeled graphs"];

/// Fallback for unknown `Unsupported` payloads.
const DECODED_UNSUPPORTED: &str = "unsupported operation (decoded from wire)";

fn intern(s: &str, table: &[&'static str], fallback: &'static str) -> &'static str {
    table.iter().find(|k| **k == s).copied().unwrap_or(fallback)
}

// ---------------------------------------------------------------------
// Frame entry points.
// ---------------------------------------------------------------------

/// Encodes `msg` into a full frame (4-byte length prefix included),
/// rejecting payloads over the cap.
pub fn encode(msg: &WireMessage, cfg: &FrameConfig) -> Result<Vec<u8>, CodecError> {
    let mut buf = BytesMut::with_capacity(256);
    buf.put_u32(WIRE_MAGIC);
    buf.put_u8(WIRE_VERSION);
    match msg {
        WireMessage::Request(req) => {
            buf.put_u8(0);
            encode_request(&mut buf, req)?;
        }
        WireMessage::Ok(resp) => {
            buf.put_u8(1);
            encode_response(&mut buf, resp);
        }
        WireMessage::Err(err) => {
            buf.put_u8(2);
            encode_error(&mut buf, err);
        }
        WireMessage::Ping { seq } => {
            buf.put_u8(3);
            buf.put_u64(*seq);
        }
        WireMessage::Pong { seq } => {
            buf.put_u8(4);
            buf.put_u64(*seq);
        }
        WireMessage::RegisterPinned {
            name,
            graph,
            compression,
        } => {
            buf.put_u8(5);
            put_str(&mut buf, name);
            put_bytes(&mut buf, graph.as_ref());
            match compression {
                None => buf.put_u8(0),
                Some(c) => {
                    buf.put_u8(1);
                    buf.put_u8(compression_tag(*c));
                }
            }
        }
    }
    let payload = buf.freeze().to_vec();
    if payload.len() > cfg.max_frame_bytes {
        return Err(CodecError::FrameTooLarge {
            declared: payload.len(),
            cap: cfg.max_frame_bytes,
        });
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Decodes one payload (the frame body *after* its length prefix).
pub fn decode(payload: &[u8], cfg: &FrameConfig) -> Result<WireMessage, CodecError> {
    if payload.len() > cfg.max_frame_bytes {
        return Err(CodecError::FrameTooLarge {
            declared: payload.len(),
            cap: cfg.max_frame_bytes,
        });
    }
    let mut d = Dec {
        buf: Bytes::from(payload.to_vec()),
    };
    let magic = d.u32()?;
    if magic != WIRE_MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = d.u8()?;
    if version != WIRE_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let msg = match d.u8()? {
        0 => WireMessage::Request(decode_request(&mut d)?),
        1 => WireMessage::Ok(decode_response(&mut d)?),
        2 => WireMessage::Err(decode_error(&mut d)?),
        3 => WireMessage::Ping { seq: d.u64()? },
        4 => WireMessage::Pong { seq: d.u64()? },
        5 => {
            let name = d.str_()?;
            let graph = d.bytes_()?;
            let compression = match d.u8()? {
                0 => None,
                1 => Some(compression_from_tag(d.u8()?)?),
                tag => {
                    return Err(CodecError::BadTag {
                        what: "compression option",
                        tag,
                    })
                }
            };
            WireMessage::RegisterPinned {
                name,
                graph,
                compression,
            }
        }
        tag => {
            return Err(CodecError::BadTag {
                what: "message kind",
                tag,
            })
        }
    };
    if !d.buf.is_empty() {
        return Err(CodecError::Corrupt(format!(
            "{} trailing bytes after message",
            d.buf.remaining()
        )));
    }
    Ok(msg)
}

// ---------------------------------------------------------------------
// Enum tags.
// ---------------------------------------------------------------------

fn compression_tag(c: CompressionPolicy) -> u8 {
    match c {
        CompressionPolicy::Auto => 0,
        CompressionPolicy::Always => 1,
        CompressionPolicy::Never => 2,
    }
}

fn compression_from_tag(tag: u8) -> Result<CompressionPolicy, CodecError> {
    match tag {
        0 => Ok(CompressionPolicy::Auto),
        1 => Ok(CompressionPolicy::Always),
        2 => Ok(CompressionPolicy::Never),
        tag => Err(CodecError::BadTag {
            what: "compression",
            tag,
        }),
    }
}

fn plan_kind_tag(k: PlanKind) -> u8 {
    match k {
        PlanKind::Exact => 0,
        PlanKind::Approx => 1,
        PlanKind::Bounded => 2,
        PlanKind::Baseline => 3,
    }
}

fn plan_kind_from_tag(tag: u8) -> Result<PlanKind, CodecError> {
    match tag {
        0 => Ok(PlanKind::Exact),
        1 => Ok(PlanKind::Approx),
        2 => Ok(PlanKind::Bounded),
        3 => Ok(PlanKind::Baseline),
        tag => Err(CodecError::BadTag {
            what: "plan kind",
            tag,
        }),
    }
}

fn algorithm_tag(a: Algorithm) -> u8 {
    match a {
        Algorithm::MaxCard => 0,
        Algorithm::MaxCard1to1 => 1,
        Algorithm::MaxSim => 2,
        Algorithm::MaxSim1to1 => 3,
    }
}

fn algorithm_from_tag(tag: u8) -> Result<Algorithm, CodecError> {
    match tag {
        0 => Ok(Algorithm::MaxCard),
        1 => Ok(Algorithm::MaxCard1to1),
        2 => Ok(Algorithm::MaxSim),
        3 => Ok(Algorithm::MaxSim1to1),
        tag => Err(CodecError::BadTag {
            what: "algorithm",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------
// Graph snapshots (nested payloads).
// ---------------------------------------------------------------------

fn put_graph(buf: &mut BytesMut, g: &DiGraph<String>) {
    let snap = phom_graph::serialize::to_snapshot(g);
    put_bytes(buf, snap.as_ref());
}

fn get_graph(d: &mut Dec) -> Result<DiGraph<String>, CodecError> {
    let raw = d.bytes_()?;
    phom_graph::serialize::from_snapshot(raw)
        .map_err(|e| CodecError::Corrupt(format!("nested graph snapshot: {e}")))
}

// ---------------------------------------------------------------------
// Query / plan / mapping.
// ---------------------------------------------------------------------

fn encode_query_config(buf: &mut BytesMut, c: &QueryConfig) {
    put_f64(buf, c.xi);
    buf.put_u8(algorithm_tag(c.algorithm));
    put_opt_usize(buf, c.max_stretch);
    put_opt_usize(buf, c.restarts);
    match c.force_plan {
        None => buf.put_u8(0),
        Some(k) => {
            buf.put_u8(1);
            buf.put_u8(plan_kind_tag(k));
        }
    }
    put_opt_duration(buf, c.timeout);
    put_opt_usize(buf, c.intra_workers);
    put_bool(buf, c.partition);
    put_bool(buf, c.compress);
}

fn decode_query_config(d: &mut Dec) -> Result<QueryConfig, CodecError> {
    let xi = d.f64_()?;
    if !xi.is_finite() {
        return Err(CodecError::Corrupt("xi is not finite".into()));
    }
    let algorithm = algorithm_from_tag(d.u8()?)?;
    let max_stretch = d.opt_usize()?;
    let restarts = d.opt_usize()?;
    let force_plan = match d.u8()? {
        0 => None,
        1 => Some(plan_kind_from_tag(d.u8()?)?),
        tag => {
            return Err(CodecError::BadTag {
                what: "force_plan option",
                tag,
            })
        }
    };
    let timeout = d.opt_duration()?;
    let intra_workers = d.opt_usize()?;
    let partition = d.bool_()?;
    let compress = d.bool_()?;
    Ok(QueryConfig {
        xi,
        algorithm,
        max_stretch,
        restarts,
        force_plan,
        timeout,
        intra_workers,
        partition,
        compress,
    })
}

fn encode_matrix(buf: &mut BytesMut, m: &SimMatrix) {
    buf.put_u32(m.n1() as u32);
    buf.put_u32(m.n2() as u32);
    for v in 0..m.n1() {
        for u in 0..m.n2() {
            put_f64(buf, m.score(NodeId(v as u32), NodeId(u as u32)));
        }
    }
}

fn decode_matrix(d: &mut Dec) -> Result<SimMatrix, CodecError> {
    let n1 = d.u32()? as usize;
    let n2 = d.u32()? as usize;
    let cells = n1
        .checked_mul(n2)
        .and_then(|c| c.checked_mul(8))
        .ok_or_else(|| CodecError::Corrupt("matrix dimensions overflow".into()))?;
    d.need(cells)?;
    let mut m = SimMatrix::new(n1, n2);
    for v in 0..n1 {
        for u in 0..n2 {
            let s = d.f64_()?;
            // `SimMatrix::set` panics outside `[0, 1]`; a corrupt frame
            // must become an error instead.
            if !(0.0..=1.0).contains(&s) {
                return Err(CodecError::Corrupt(format!(
                    "matrix score {s} outside [0,1]"
                )));
            }
            m.set(NodeId(v as u32), NodeId(u as u32), s);
        }
    }
    Ok(m)
}

fn encode_weights(buf: &mut BytesMut, w: Option<&NodeWeights>) {
    match w {
        None => buf.put_u8(0),
        Some(w) => {
            buf.put_u8(1);
            put_usize(buf, w.len());
            for x in w.as_slice() {
                put_f64(buf, *x);
            }
        }
    }
}

fn decode_weights(d: &mut Dec) -> Result<Option<NodeWeights>, CodecError> {
    match d.u8()? {
        0 => Ok(None),
        1 => {
            let n = d.count(8, "weights")?;
            let mut w = Vec::with_capacity(n);
            for _ in 0..n {
                let x = d.f64_()?;
                // `NodeWeights::from_vec` panics on negative or
                // non-finite weights; reject them here instead.
                if !x.is_finite() || x < 0.0 {
                    return Err(CodecError::Corrupt(format!("weight {x} invalid")));
                }
                w.push(x);
            }
            Ok(Some(NodeWeights::from_vec(w)))
        }
        tag => Err(CodecError::BadTag {
            what: "weights option",
            tag,
        }),
    }
}

fn encode_query(buf: &mut BytesMut, q: &Query<String>) {
    put_graph(buf, &q.pattern);
    encode_matrix(buf, &q.matrix);
    encode_weights(buf, q.weights.as_ref());
    encode_query_config(buf, &q.config);
}

fn decode_query(d: &mut Dec) -> Result<Query<String>, CodecError> {
    let pattern = Arc::new(get_graph(d)?);
    let matrix = decode_matrix(d)?;
    if matrix.n1() != pattern.node_count() {
        return Err(CodecError::Corrupt(format!(
            "matrix rows {} != pattern nodes {}",
            matrix.n1(),
            pattern.node_count()
        )));
    }
    let weights = decode_weights(d)?;
    let config = decode_query_config(d)?;
    let mut q = Query::new(pattern, matrix);
    q.weights = weights;
    q.config = config;
    Ok(q)
}

fn encode_plan(buf: &mut BytesMut, p: &Plan) {
    buf.put_u8(plan_kind_tag(p.kind));
    put_usize(buf, p.restarts);
    put_str(buf, p.reason);
}

fn decode_plan(d: &mut Dec) -> Result<Plan, CodecError> {
    let kind = plan_kind_from_tag(d.u8()?)?;
    let restarts = d.usize_()?;
    let reason = d.str_()?;
    Ok(Plan {
        kind,
        restarts,
        reason: intern(&reason, &KNOWN_PLAN_REASONS, DECODED_PLAN_REASON),
    })
}

fn encode_mapping(buf: &mut BytesMut, m: &PHomMapping) {
    put_usize(buf, m.pattern_size());
    put_usize(buf, m.len());
    for (v, u) in m.pairs() {
        buf.put_u32(v.0);
        buf.put_u32(u.0);
    }
}

fn decode_mapping(d: &mut Dec) -> Result<PHomMapping, CodecError> {
    let n1 = d.usize_()?;
    let pairs = d.count(8, "mapping pairs")?;
    let mut m = PHomMapping::empty(n1);
    for _ in 0..pairs {
        let v = d.u32()?;
        let u = d.u32()?;
        if v as usize >= n1 {
            return Err(CodecError::Corrupt(format!(
                "mapping pair source {v} outside pattern of {n1}"
            )));
        }
        m.set(NodeId(v), NodeId(u));
    }
    Ok(m)
}

fn encode_updates(buf: &mut BytesMut, updates: &[GraphUpdate]) {
    put_usize(buf, updates.len());
    for u in updates {
        match u {
            GraphUpdate::InsertEdge(a, b) => {
                buf.put_u8(0);
                buf.put_u32(a.0);
                buf.put_u32(b.0);
            }
            GraphUpdate::RemoveEdge(a, b) => {
                buf.put_u8(1);
                buf.put_u32(a.0);
                buf.put_u32(b.0);
            }
        }
    }
}

fn decode_updates(d: &mut Dec) -> Result<Vec<GraphUpdate>, CodecError> {
    let n = d.count(9, "updates")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = d.u8()?;
        let a = NodeId(d.u32()?);
        let b = NodeId(d.u32()?);
        out.push(match tag {
            0 => GraphUpdate::InsertEdge(a, b),
            1 => GraphUpdate::RemoveEdge(a, b),
            tag => {
                return Err(CodecError::BadTag {
                    what: "graph update",
                    tag,
                })
            }
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Traces.
// ---------------------------------------------------------------------

fn encode_span(buf: &mut BytesMut, s: &Span) {
    match s.kind {
        SpanKind::Admission => buf.put_u8(0),
        SpanKind::Plan => buf.put_u8(1),
        SpanKind::Route => buf.put_u8(2),
        SpanKind::Match => buf.put_u8(3),
        SpanKind::ShardMatch(i) => {
            buf.put_u8(4);
            buf.put_u32(i);
        }
        SpanKind::Merge => buf.put_u8(5),
        SpanKind::Restart(i) => {
            buf.put_u8(6);
            buf.put_u32(i);
        }
        SpanKind::UpdateApply => buf.put_u8(7),
        SpanKind::WorkerMatch { shard, worker } => {
            buf.put_u8(8);
            buf.put_u32(shard);
            buf.put_u32(worker);
        }
    }
    buf.put_u64(s.start_micros);
    buf.put_u64(s.duration_micros);
}

fn decode_span_into(d: &mut Dec, t: &mut QueryTrace) -> Result<(), CodecError> {
    let kind = match d.u8()? {
        0 => SpanKind::Admission,
        1 => SpanKind::Plan,
        2 => SpanKind::Route,
        3 => SpanKind::Match,
        4 => SpanKind::ShardMatch(d.u32()?),
        5 => SpanKind::Merge,
        6 => SpanKind::Restart(d.u32()?),
        7 => SpanKind::UpdateApply,
        8 => SpanKind::WorkerMatch {
            shard: d.u32()?,
            worker: d.u32()?,
        },
        tag => {
            return Err(CodecError::BadTag {
                what: "span kind",
                tag,
            })
        }
    };
    let start = d.u64()?;
    let duration = d.u64()?;
    t.push_span_micros(kind, start, duration);
    Ok(())
}

fn encode_counters(buf: &mut BytesMut, c: &TraceCounters) {
    put_str(buf, &c.plan);
    put_usize(buf, c.restarts_planned);
    put_usize(buf, c.restarts_taken);
    put_usize(buf, c.budget_polls);
    put_usize(buf, c.components);
    put_usize(buf, c.parallel_components);
    put_bool(buf, c.cache_hit);
    put_str(buf, &c.closure_backend);
    put_usize(buf, c.candidate_pairs);
    put_usize(buf, c.extended_pairs);
    put_usize(buf, c.shards_consulted);
    put_bool(buf, c.timed_out);
}

fn decode_counters(d: &mut Dec) -> Result<TraceCounters, CodecError> {
    Ok(TraceCounters {
        plan: d.str_()?,
        restarts_planned: d.usize_()?,
        restarts_taken: d.usize_()?,
        budget_polls: d.usize_()?,
        components: d.usize_()?,
        parallel_components: d.usize_()?,
        cache_hit: d.bool_()?,
        closure_backend: d.str_()?,
        candidate_pairs: d.usize_()?,
        extended_pairs: d.usize_()?,
        shards_consulted: d.usize_()?,
        timed_out: d.bool_()?,
    })
}

fn encode_trace(buf: &mut BytesMut, t: &QueryTrace) {
    put_usize(buf, t.spans.len());
    for s in &t.spans {
        encode_span(buf, s);
    }
    encode_counters(buf, &t.counters);
}

fn decode_trace(d: &mut Dec) -> Result<QueryTrace, CodecError> {
    let spans = d.count(17, "trace spans")?;
    let mut t = QueryTrace::new();
    for _ in 0..spans {
        decode_span_into(d, &mut t)?;
    }
    t.counters = decode_counters(d)?;
    Ok(t)
}

// ---------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------

fn encode_request(buf: &mut BytesMut, req: &Request<String>) -> Result<(), CodecError> {
    match req {
        Request::RegisterGraph { name, graph } => {
            buf.put_u8(0);
            put_str(buf, name);
            put_graph(buf, graph);
        }
        Request::RestoreGraph { name, snapshot } => {
            buf.put_u8(1);
            put_str(buf, name);
            put_bytes(buf, snapshot.as_ref());
        }
        Request::EvictGraph { name } => {
            buf.put_u8(2);
            put_str(buf, name);
        }
        Request::Query {
            graph,
            query,
            trace,
        } => {
            buf.put_u8(3);
            put_str(buf, graph);
            encode_query(buf, query);
            put_bool(buf, *trace);
        }
        Request::QueryBatch { graph, queries } => {
            buf.put_u8(4);
            put_str(buf, graph);
            put_usize(buf, queries.len());
            for q in queries {
                encode_query(buf, q);
            }
        }
        Request::ApplyUpdates { graph, updates } => {
            buf.put_u8(5);
            put_str(buf, graph);
            encode_updates(buf, updates);
        }
        Request::Snapshot { graph } => {
            buf.put_u8(6);
            put_str(buf, graph);
        }
        Request::GraphInfo { graph } => {
            buf.put_u8(7);
            put_str(buf, graph);
        }
        Request::Stats => buf.put_u8(8),
    }
    Ok(())
}

fn decode_request(d: &mut Dec) -> Result<Request<String>, CodecError> {
    Ok(match d.u8()? {
        0 => Request::RegisterGraph {
            name: d.str_()?,
            graph: Arc::new(get_graph(d)?),
        },
        1 => Request::RestoreGraph {
            name: d.str_()?,
            snapshot: d.bytes_()?,
        },
        2 => Request::EvictGraph { name: d.str_()? },
        3 => Request::Query {
            graph: d.str_()?,
            query: decode_query(d)?,
            trace: d.bool_()?,
        },
        4 => {
            let graph = d.str_()?;
            let n = d.count(1, "query batch")?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(decode_query(d)?);
            }
            Request::QueryBatch { graph, queries }
        }
        5 => Request::ApplyUpdates {
            graph: d.str_()?,
            updates: decode_updates(d)?,
        },
        6 => Request::Snapshot { graph: d.str_()? },
        7 => Request::GraphInfo { graph: d.str_()? },
        8 => Request::Stats,
        tag => {
            return Err(CodecError::BadTag {
                what: "request",
                tag,
            })
        }
    })
}

// ---------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------

fn encode_graph_info(buf: &mut BytesMut, i: &GraphInfo) {
    put_str(buf, &i.name);
    put_usize(buf, i.nodes);
    put_usize(buf, i.edges);
    put_usize(buf, i.shards);
    put_usize(buf, i.shard_nodes.len());
    for n in &i.shard_nodes {
        put_usize(buf, *n);
    }
    put_usize(buf, i.scc_count);
    put_usize(buf, i.closure_edges);
    put_usize(buf, i.closure_memory_bytes);
    put_str(buf, &i.closure_backend);
    put_opt_usize(buf, i.compressed_nodes);
    put_u128(buf, i.prepare_micros);
    put_str(buf, &i.compression);
}

fn decode_graph_info(d: &mut Dec) -> Result<GraphInfo, CodecError> {
    let name = d.str_()?;
    let nodes = d.usize_()?;
    let edges = d.usize_()?;
    let shards = d.usize_()?;
    let n = d.count(8, "shard nodes")?;
    let mut shard_nodes = Vec::with_capacity(n);
    for _ in 0..n {
        shard_nodes.push(d.usize_()?);
    }
    Ok(GraphInfo {
        name,
        nodes,
        edges,
        shards,
        shard_nodes,
        scc_count: d.usize_()?,
        closure_edges: d.usize_()?,
        closure_memory_bytes: d.usize_()?,
        closure_backend: d.str_()?,
        compressed_nodes: d.opt_usize()?,
        prepare_micros: d.u128_()?,
        compression: d.str_()?,
    })
}

fn encode_update_stats(buf: &mut BytesMut, s: &UpdateStats) {
    put_usize(buf, s.applied);
    put_usize(buf, s.noops);
    put_usize(buf, s.rejected);
    put_usize(buf, s.closure_unchanged);
    put_usize(buf, s.incremental);
    put_usize(buf, s.rebuilds);
    put_usize(buf, s.backend_fallbacks);
    put_usize(buf, s.fallback_damage);
    put_usize(buf, s.fallback_unsupported);
    put_usize(buf, s.affected_components);
    put_usize(buf, s.peak_damage_permille);
    put_usize(buf, s.bounded_rows_recomputed);
    put_u128(buf, s.closure_maintain_micros);
    put_u128(buf, s.bounded_refresh_micros);
    put_u128(buf, s.apply_micros);
}

fn decode_update_stats(d: &mut Dec) -> Result<UpdateStats, CodecError> {
    Ok(UpdateStats {
        applied: d.usize_()?,
        noops: d.usize_()?,
        rejected: d.usize_()?,
        closure_unchanged: d.usize_()?,
        incremental: d.usize_()?,
        rebuilds: d.usize_()?,
        backend_fallbacks: d.usize_()?,
        fallback_damage: d.usize_()?,
        fallback_unsupported: d.usize_()?,
        affected_components: d.usize_()?,
        peak_damage_permille: d.usize_()?,
        bounded_rows_recomputed: d.usize_()?,
        closure_maintain_micros: d.u128_()?,
        bounded_refresh_micros: d.u128_()?,
        apply_micros: d.u128_()?,
    })
}

fn encode_query_response(buf: &mut BytesMut, r: &QueryResponse) {
    encode_mapping(buf, &r.mapping);
    put_f64(buf, r.qual_card);
    put_f64(buf, r.qual_sim);
    encode_plan(buf, &r.plan);
    put_usize(buf, r.shards_consulted);
    put_bool(buf, r.timed_out);
    put_u128(buf, r.micros);
    match &r.trace {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            encode_trace(buf, t);
        }
    }
}

fn decode_query_response(d: &mut Dec) -> Result<QueryResponse, CodecError> {
    let mapping = decode_mapping(d)?;
    let qual_card = d.f64_()?;
    let qual_sim = d.f64_()?;
    let plan = decode_plan(d)?;
    let shards_consulted = d.usize_()?;
    let timed_out = d.bool_()?;
    let micros = d.u128_()?;
    let trace = match d.u8()? {
        0 => None,
        1 => Some(Box::new(decode_trace(d)?)),
        tag => {
            return Err(CodecError::BadTag {
                what: "trace option",
                tag,
            })
        }
    };
    Ok(QueryResponse {
        mapping,
        qual_card,
        qual_sim,
        plan,
        shards_consulted,
        timed_out,
        micros,
        trace,
    })
}

fn encode_histogram(buf: &mut BytesMut, h: &LatencyHistogram) {
    for b in h.buckets() {
        put_usize(buf, *b);
    }
}

fn decode_histogram(d: &mut Dec) -> Result<LatencyHistogram, CodecError> {
    let mut buckets = [0usize; HISTOGRAM_BUCKETS];
    for b in &mut buckets {
        *b = d.usize_()?;
    }
    Ok(LatencyHistogram::from_buckets(buckets))
}

fn encode_plan_histograms(buf: &mut BytesMut, p: &PlanHistograms) {
    for h in &p.by_plan {
        encode_histogram(buf, h);
    }
}

fn decode_plan_histograms(d: &mut Dec) -> Result<PlanHistograms, CodecError> {
    let mut p = PlanHistograms::default();
    for h in &mut p.by_plan {
        *h = decode_histogram(d)?;
    }
    Ok(p)
}

fn encode_slo(buf: &mut BytesMut, s: &SloStatus) {
    put_usize(buf, s.objectives.len());
    for o in &s.objectives {
        put_str(buf, &o.name);
        put_f64(buf, o.windowed_burn);
        put_f64(buf, o.lifetime_burn);
        put_bool(buf, o.breached);
    }
    put_bool(buf, s.breached);
}

fn decode_slo(d: &mut Dec) -> Result<SloStatus, CodecError> {
    let n = d.count(21, "slo objectives")?;
    let mut objectives = Vec::with_capacity(n);
    for _ in 0..n {
        objectives.push(ObjectiveStatus {
            name: d.str_()?,
            windowed_burn: d.f64_()?,
            lifetime_burn: d.f64_()?,
            breached: d.bool_()?,
        });
    }
    Ok(SloStatus {
        objectives,
        breached: d.bool_()?,
    })
}

fn encode_service_stats(buf: &mut BytesMut, s: &ServiceStats) {
    put_usize(buf, s.graphs);
    put_usize(buf, s.shards);
    put_usize(buf, s.queries_admitted);
    put_usize(buf, s.queries_shed);
    put_usize(buf, s.update_batches);
    put_usize(buf, s.reshards);
    put_usize(buf, s.snapshots);
    put_f64(buf, s.cache_hit_ratio);
    put_f64(buf, s.cache_hit_ratio_lifetime);
    put_f64(buf, s.cache_hit_ratio_windowed);
    put_usize(buf, s.backend_fallbacks);
    encode_plan_histograms(buf, &s.plan_histograms);
    encode_plan_histograms(buf, &s.plan_histograms_windowed);
    put_usize(buf, s.slow_traces.len());
    for (micros, trace) in &s.slow_traces {
        put_u128(buf, *micros);
        put_str(buf, trace);
    }
    encode_slo(buf, &s.slo);
    buf.put_u64(s.flight_recorded);
    buf.put_u64(s.journal_events);
    buf.put_u64(s.workers_connected);
    buf.put_u64(s.workers_lost);
    buf.put_u64(s.replicas_promoted);
    let e = &s.engine;
    for v in [
        e.prepares,
        e.cache_hits,
        e.queries,
        e.exact_plans,
        e.approx_plans,
        e.bounded_plans,
        e.baseline_plans,
        e.last_batch_workers,
        e.last_batch_peak_parallel,
        e.updates_applied,
        e.updates_incremental,
        e.update_rebuilds,
        e.timeouts,
        e.intra_parallel_components,
        e.last_batch_p50_micros,
        e.last_batch_p95_micros,
        e.last_batch_p99_micros,
        e.response_p50_micros,
        e.response_p95_micros,
        e.response_p99_micros,
    ] {
        put_usize(buf, v);
    }
}

fn decode_service_stats(d: &mut Dec) -> Result<ServiceStats, CodecError> {
    let graphs = d.usize_()?;
    let shards = d.usize_()?;
    let queries_admitted = d.usize_()?;
    let queries_shed = d.usize_()?;
    let update_batches = d.usize_()?;
    let reshards = d.usize_()?;
    let snapshots = d.usize_()?;
    let cache_hit_ratio = d.f64_()?;
    let cache_hit_ratio_lifetime = d.f64_()?;
    let cache_hit_ratio_windowed = d.f64_()?;
    let backend_fallbacks = d.usize_()?;
    let plan_histograms = decode_plan_histograms(d)?;
    let plan_histograms_windowed = decode_plan_histograms(d)?;
    let n = d.count(20, "slow traces")?;
    let mut slow_traces = Vec::with_capacity(n);
    for _ in 0..n {
        let micros = d.u128_()?;
        let trace = d.str_()?;
        slow_traces.push((micros, trace));
    }
    let slo = decode_slo(d)?;
    let flight_recorded = d.u64()?;
    let journal_events = d.u64()?;
    let workers_connected = d.u64()?;
    let workers_lost = d.u64()?;
    let replicas_promoted = d.u64()?;
    let mut e = [0usize; 20];
    for v in &mut e {
        *v = d.usize_()?;
    }
    Ok(ServiceStats {
        graphs,
        shards,
        queries_admitted,
        queries_shed,
        update_batches,
        reshards,
        snapshots,
        cache_hit_ratio,
        cache_hit_ratio_lifetime,
        cache_hit_ratio_windowed,
        backend_fallbacks,
        plan_histograms,
        plan_histograms_windowed,
        slow_traces,
        slo,
        flight_recorded,
        journal_events,
        workers_connected,
        workers_lost,
        replicas_promoted,
        engine: phom_engine::EngineStats {
            prepares: e[0],
            cache_hits: e[1],
            queries: e[2],
            exact_plans: e[3],
            approx_plans: e[4],
            bounded_plans: e[5],
            baseline_plans: e[6],
            last_batch_workers: e[7],
            last_batch_peak_parallel: e[8],
            updates_applied: e[9],
            updates_incremental: e[10],
            update_rebuilds: e[11],
            timeouts: e[12],
            intra_parallel_components: e[13],
            last_batch_p50_micros: e[14],
            last_batch_p95_micros: e[15],
            last_batch_p99_micros: e[16],
            response_p50_micros: e[17],
            response_p95_micros: e[18],
            response_p99_micros: e[19],
        },
    })
}

fn encode_response(buf: &mut BytesMut, resp: &Response) {
    match resp {
        Response::Registered(info) => {
            buf.put_u8(0);
            encode_graph_info(buf, info);
        }
        Response::Evicted { graph } => {
            buf.put_u8(1);
            put_str(buf, graph);
        }
        Response::Answer(r) => {
            buf.put_u8(2);
            encode_query_response(buf, r);
        }
        Response::Batch(rs) => {
            buf.put_u8(3);
            put_usize(buf, rs.len());
            for r in rs {
                encode_query_response(buf, r);
            }
        }
        Response::Updated(s) => {
            buf.put_u8(4);
            encode_update_stats(buf, &s.stats);
            put_bool(buf, s.resharded);
            put_usize(buf, s.shards);
        }
        Response::Snapshot(b) => {
            buf.put_u8(5);
            put_bytes(buf, b.as_ref());
        }
        Response::Info(info) => {
            buf.put_u8(6);
            encode_graph_info(buf, info);
        }
        Response::Stats(s) => {
            buf.put_u8(7);
            encode_service_stats(buf, s);
        }
    }
}

fn decode_response(d: &mut Dec) -> Result<Response, CodecError> {
    Ok(match d.u8()? {
        0 => Response::Registered(decode_graph_info(d)?),
        1 => Response::Evicted { graph: d.str_()? },
        2 => Response::Answer(decode_query_response(d)?),
        3 => {
            let n = d.count(1, "response batch")?;
            let mut rs = Vec::with_capacity(n);
            for _ in 0..n {
                rs.push(decode_query_response(d)?);
            }
            Response::Batch(rs)
        }
        4 => Response::Updated(UpdateSummary {
            stats: decode_update_stats(d)?,
            resharded: d.bool_()?,
            shards: d.usize_()?,
        }),
        5 => Response::Snapshot(d.bytes_()?),
        6 => Response::Info(decode_graph_info(d)?),
        7 => Response::Stats(Box::new(decode_service_stats(d)?)),
        tag => {
            return Err(CodecError::BadTag {
                what: "response",
                tag,
            })
        }
    })
}

fn encode_error(buf: &mut BytesMut, err: &ServiceError) {
    match err {
        ServiceError::NotFound { graph } => {
            buf.put_u8(0);
            put_str(buf, graph);
        }
        ServiceError::AlreadyRegistered { graph } => {
            buf.put_u8(1);
            put_str(buf, graph);
        }
        ServiceError::Overloaded {
            in_flight,
            queue_depth,
        } => {
            buf.put_u8(2);
            put_usize(buf, *in_flight);
            put_usize(buf, *queue_depth);
        }
        ServiceError::InvalidRequest(msg) => {
            buf.put_u8(3);
            put_str(buf, msg);
        }
        ServiceError::Timeout { micros } => {
            buf.put_u8(4);
            put_u128(buf, *micros);
        }
        ServiceError::SnapshotVersion { found, supported } => {
            buf.put_u8(5);
            buf.put_u32(*found);
            buf.put_u32(*supported);
        }
        ServiceError::SnapshotCorrupt(msg) => {
            buf.put_u8(6);
            put_str(buf, msg);
        }
        ServiceError::Unsupported(what) => {
            buf.put_u8(7);
            put_str(buf, what);
        }
    }
}

fn decode_error(d: &mut Dec) -> Result<ServiceError, CodecError> {
    Ok(match d.u8()? {
        0 => ServiceError::NotFound { graph: d.str_()? },
        1 => ServiceError::AlreadyRegistered { graph: d.str_()? },
        2 => ServiceError::Overloaded {
            in_flight: d.usize_()?,
            queue_depth: d.usize_()?,
        },
        3 => ServiceError::InvalidRequest(d.str_()?),
        4 => ServiceError::Timeout { micros: d.u128_()? },
        5 => ServiceError::SnapshotVersion {
            found: d.u32()?,
            supported: d.u32()?,
        },
        6 => ServiceError::SnapshotCorrupt(d.str_()?),
        7 => {
            let what = d.str_()?;
            ServiceError::Unsupported(intern(&what, &KNOWN_UNSUPPORTED, DECODED_UNSUPPORTED))
        }
        tag => {
            return Err(CodecError::BadTag {
                what: "service error",
                tag,
            })
        }
    })
}
