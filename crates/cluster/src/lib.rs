//! # phom-cluster
//!
//! Cross-process scale-out for the `phom-service` layer: the repo's
//! answer to "one process will never be the endgame".
//!
//! * [`codec`] — a length-prefixed, versioned binary codec for the full
//!   [`phom_service::Request`] / [`phom_service::Response`] /
//!   [`phom_service::ServiceError`] envelope over the `bytes` seam, with
//!   a configurable frame cap and budget-checked decoding (a corrupt or
//!   hostile frame yields a typed [`codec::CodecError`], never a panic).
//! * [`transport`] — one [`transport::Transport`] trait with two
//!   implementations: real TCP with per-connection read/write timeouts,
//!   and an in-process channel hub so every router/worker test runs
//!   hermetically (and can inject disconnects deterministically).
//! * [`worker`] — the worker process mode behind `phom worker --listen`:
//!   a [`phom_service::Service`] hosted behind a socket accept loop, one
//!   framed request/response exchange at a time per connection.
//! * [`router`] — the front-end: owns the shard map (component-group
//!   assignment reusing [`phom_graph::component_groups`]), fans queries
//!   out to the candidate-holding workers, merges per pattern component
//!   **exactly** as the in-process sharded path does (routed answers are
//!   bit-identical to a single-process `Service` run), routes updates to
//!   the owning workers, and keeps read replicas hydrated from service
//!   snapshots — with heartbeat failure detection, retry/backoff, and
//!   replica promotion on primary death.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod router;
pub mod transport;
pub mod worker;

pub use codec::{CodecError, FrameConfig, WireMessage, WIRE_MAGIC, WIRE_VERSION};
pub use router::{Router, RouterConfig, RouterError, RouterStats};
pub use transport::{
    ChannelHub, ChannelTransport, Connection, Listener, TcpTransport, Transport, TransportTimeouts,
};
pub use worker::{WorkerOptions, WorkerServer};
