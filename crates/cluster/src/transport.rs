//! One [`Transport`] seam, two implementations: real TCP sockets with
//! per-connection read/write timeouts, and an in-process channel hub for
//! hermetic tests (same framing, deterministic disconnects, no ports).
//!
//! Framing: a connection carries whole frames as produced by
//! [`crate::codec::encode`] (4-byte big-endian length prefix + payload).
//! [`Connection::send_frame`] takes the full frame;
//! [`Connection::recv_frame`] returns the payload with the prefix
//! stripped and the declared length validated against the frame cap
//! *before* any allocation.

use crate::codec::FrameConfig;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-connection deadlines. A read that sees no data within `read`
/// fails with `TimedOut`/`WouldBlock` (callers poll-loop on idle
/// connections and treat it as peer death when awaiting a response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportTimeouts {
    /// Deadline for receiving a frame.
    pub read: Duration,
    /// Deadline for writing a frame.
    pub write: Duration,
}

impl Default for TransportTimeouts {
    fn default() -> Self {
        TransportTimeouts {
            read: Duration::from_secs(5),
            write: Duration::from_secs(5),
        }
    }
}

/// One bidirectional framed byte stream.
pub trait Connection: Send {
    /// Writes one full frame (length prefix included).
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Reads one frame and returns its payload (prefix stripped). The
    /// declared length is checked against the frame cap before
    /// allocating. `TimedOut`/`WouldBlock` means "no frame yet".
    fn recv_frame(&mut self) -> io::Result<Vec<u8>>;
}

/// Dials worker addresses into [`Connection`]s.
pub trait Transport: Send + Sync {
    /// Opens a connection to `addr`.
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Connection>>;
}

/// Accepts inbound [`Connection`]s on a worker.
pub trait Listener: Send {
    /// Accepts one connection; `Ok(None)` means "none pending yet"
    /// (poll again), errors are fatal to the listener.
    fn accept(&self) -> io::Result<Option<Box<dyn Connection>>>;

    /// The address peers dial to reach this listener.
    fn local_addr(&self) -> String;
}

fn payload_of(frame: Vec<u8>, cap: usize) -> io::Result<Vec<u8>> {
    if frame.len() < 4 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "frame shorter than its length prefix",
        ));
    }
    let declared = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    if declared > cap {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {declared} bytes exceeds the {cap}-byte cap"),
        ));
    }
    if frame.len() != 4 + declared {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length prefix disagrees with frame size",
        ));
    }
    Ok(frame[4..].to_vec())
}

// ---------------------------------------------------------------------
// TCP.
// ---------------------------------------------------------------------

/// The real-socket transport.
#[derive(Debug, Clone, Default)]
pub struct TcpTransport {
    /// Per-connection deadlines applied to every dialed stream.
    pub timeouts: TransportTimeouts,
    /// Frame cap enforced on receive.
    pub frame: FrameConfig,
}

impl TcpTransport {
    /// Binds a listener on `addr` (port `0` picks a free port; see
    /// [`Listener::local_addr`] for the bound address).
    pub fn bind(&self, addr: &str) -> io::Result<TcpServerListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?.to_string();
        Ok(TcpServerListener {
            listener,
            local,
            timeouts: self.timeouts,
            frame: self.frame,
        })
    }
}

impl Transport for TcpTransport {
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Connection>> {
        let mut last = io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing");
        for sock in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock, self.timeouts.read) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.timeouts.read))?;
                    stream.set_write_timeout(Some(self.timeouts.write))?;
                    stream.set_nodelay(true)?;
                    return Ok(Box::new(TcpConnection {
                        stream,
                        cap: self.frame.max_frame_bytes,
                    }));
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }
}

/// A bound TCP accept socket (non-blocking; poll via [`Listener::accept`]).
#[derive(Debug)]
pub struct TcpServerListener {
    listener: TcpListener,
    local: String,
    timeouts: TransportTimeouts,
    frame: FrameConfig,
}

impl Listener for TcpServerListener {
    fn accept(&self) -> io::Result<Option<Box<dyn Connection>>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_read_timeout(Some(self.timeouts.read))?;
                stream.set_write_timeout(Some(self.timeouts.write))?;
                stream.set_nodelay(true)?;
                Ok(Some(Box::new(TcpConnection {
                    stream,
                    cap: self.frame.max_frame_bytes,
                })))
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn local_addr(&self) -> String {
        self.local.clone()
    }
}

struct TcpConnection {
    stream: TcpStream,
    cap: usize,
}

impl Connection for TcpConnection {
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        self.stream.write_all(frame)?;
        self.stream.flush()
    }

    fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix)?;
        let declared = u32::from_be_bytes(prefix) as usize;
        if declared > self.cap {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame of {declared} bytes exceeds the {}-byte cap",
                    self.cap
                ),
            ));
        }
        let mut payload = vec![0u8; declared];
        self.stream.read_exact(&mut payload)?;
        Ok(payload)
    }
}

// ---------------------------------------------------------------------
// In-process channels.
// ---------------------------------------------------------------------

type ConnPair = (Sender<Vec<u8>>, Receiver<Vec<u8>>);

/// The hermetic in-process "network": named listeners, mpsc-backed
/// connections, deterministic disconnects (dropping either end fails the
/// peer's next send/recv like a closed socket).
#[derive(Default)]
pub struct ChannelHub {
    listeners: Mutex<HashMap<String, Sender<ConnPair>>>,
}

impl ChannelHub {
    /// A fresh, empty hub.
    pub fn new() -> Arc<ChannelHub> {
        Arc::new(ChannelHub::default())
    }

    /// Binds a listener under `addr` (any non-empty string works as an
    /// address), replacing a previous binding of the same name.
    pub fn bind(
        self: &Arc<Self>,
        addr: &str,
        timeouts: TransportTimeouts,
        frame: FrameConfig,
    ) -> ChannelListener {
        let (tx, rx) = channel();
        self.listeners
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(addr.to_owned(), tx);
        ChannelListener {
            rx,
            addr: addr.to_owned(),
            timeouts,
            frame,
        }
    }

    /// Removes a listener binding, so future dials to `addr` fail like a
    /// connection refusal (used by tests to simulate worker death).
    pub fn unbind(self: &Arc<Self>, addr: &str) {
        self.listeners
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(addr);
    }

    /// A [`Transport`] handle dialing into this hub.
    pub fn transport(
        self: &Arc<Self>,
        timeouts: TransportTimeouts,
        frame: FrameConfig,
    ) -> ChannelTransport {
        ChannelTransport {
            hub: Arc::clone(self),
            timeouts,
            frame,
        }
    }
}

impl std::fmt::Debug for ChannelHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelHub").finish_non_exhaustive()
    }
}

/// [`Transport`] over a [`ChannelHub`].
#[derive(Clone)]
pub struct ChannelTransport {
    hub: Arc<ChannelHub>,
    timeouts: TransportTimeouts,
    frame: FrameConfig,
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport").finish_non_exhaustive()
    }
}

impl Transport for ChannelTransport {
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Connection>> {
        let accept_tx = {
            let listeners = self.hub.listeners.lock().unwrap_or_else(|e| e.into_inner());
            listeners.get(addr).cloned()
        };
        let Some(accept_tx) = accept_tx else {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("no listener bound at {addr:?}"),
            ));
        };
        let (client_tx, server_rx) = channel();
        let (server_tx, client_rx) = channel();
        accept_tx.send((server_tx, server_rx)).map_err(|_| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("listener at {addr:?} is gone"),
            )
        })?;
        Ok(Box::new(ChannelConnection {
            tx: client_tx,
            rx: client_rx,
            read_timeout: self.timeouts.read,
            cap: self.frame.max_frame_bytes,
        }))
    }
}

/// Accept side of a hub binding.
pub struct ChannelListener {
    rx: Receiver<ConnPair>,
    addr: String,
    timeouts: TransportTimeouts,
    frame: FrameConfig,
}

impl std::fmt::Debug for ChannelListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelListener")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Listener for ChannelListener {
    fn accept(&self) -> io::Result<Option<Box<dyn Connection>>> {
        match self.rx.recv_timeout(Duration::from_millis(10)) {
            Ok((tx, rx)) => Ok(Some(Box::new(ChannelConnection {
                tx,
                rx,
                read_timeout: self.timeouts.read,
                cap: self.frame.max_frame_bytes,
            }))),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "channel listener closed",
            )),
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

struct ChannelConnection {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    read_timeout: Duration,
    cap: usize,
}

impl Connection for ChannelConnection {
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed the connection"))
    }

    fn recv_frame(&mut self) -> io::Result<Vec<u8>> {
        match self.rx.recv_timeout(self.read_timeout) {
            Ok(frame) => payload_of(frame, self.cap),
            Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "no frame within the read timeout",
            )),
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed the connection",
            )),
        }
    }
}
