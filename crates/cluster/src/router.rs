//! The routing front-end: owns the shard map, fans queries out to the
//! workers that hold candidates, merges per pattern component **exactly**
//! as the in-process sharded path does, routes updates to the owning
//! workers, and keeps read replicas hydrated from service snapshots.
//!
//! ## Result identity
//!
//! The router reproduces `phom_service`'s sharded execution bit for bit:
//! the shard map is the same [`component_groups`] assignment, the
//! compression decision is pinned graph-wide before any worker prepares
//! a shard, the query plan is chosen once on the full candidate set and
//! forced onto every worker, shards are consulted in ascending order
//! under one shared deadline, and the per-component merge is a verbatim
//! transcription of the registry's. A routed answer therefore equals the
//! answer a single-process [`phom_service::Service`] (same configs)
//! would give — the property the cluster identity proptests pin down.
//!
//! ## Replication and failover
//!
//! Every shard has a primary plus `replicas` read replicas hydrated from
//! the primary's service snapshot (warm indexes, preserved compression
//! pin — so replica reads are bit-identical too). Writes go to the
//! primary first and then to each replica (updates are idempotent edge
//! mutations, so a retried write cannot corrupt a replica). Reads
//! round-robin across live members. A member that fails its reconnect
//! budget is dropped and journaled as [`EventKind::WorkerLost`]; when it
//! was the primary, the first surviving replica is promoted and
//! journaled as [`EventKind::ReplicaPromoted`].

use crate::codec::{self, WireMessage};
use crate::transport::Transport;
use bytes::Bytes;
use phom_core::PHomMapping;
use phom_dynamic::GraphUpdate;
use phom_engine::{
    plan_query_with, CompressionPolicy, PlannerConfig, Query, QueryTrace, SpanKind, UpdateStats,
};
use phom_graph::serialize::to_snapshot;
use phom_graph::{component_groups, tarjan_scc, weakly_connected_components, DiGraph, NodeId};
use phom_service::{
    GraphInfo, QueryResponse, Request, Response, ServiceError, ServiceStats, ShardingConfig,
    UpdateSummary,
};
use phom_sim::SimMatrix;
use phom_trace::{EventJournal, EventKind, MetricsRegistry, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use crate::codec::FrameConfig;

/// Tunables for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Planner cutoffs. **Must match the workers' engine planner** —
    /// the router plans once on the full candidate set and forces the
    /// decision onto every worker, and the graph-wide compression pin is
    /// derived from this config's base policy.
    pub planner: PlannerConfig,
    /// When and how finely registered graphs shard across workers (the
    /// same policy knobs as the in-process registry).
    pub sharding: ShardingConfig,
    /// Read replicas per shard (capped by the live worker count minus
    /// one; `0` disables replication).
    pub replicas: usize,
    /// Frame cap shared with the codec.
    pub frame: FrameConfig,
    /// Extra dial-and-resend attempts after an I/O failure before a
    /// worker is declared lost.
    pub redials: usize,
    /// Sleep between redial attempts.
    pub retry_backoff: Duration,
    /// Capacity of the router's lifecycle-event journal ring
    /// (`WorkerConnected` / `WorkerLost` / `ReplicaPromoted`).
    pub journal_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            planner: PlannerConfig::default(),
            sharding: ShardingConfig::default(),
            replicas: 1,
            frame: FrameConfig::default(),
            redials: 1,
            retry_backoff: Duration::from_millis(10),
            journal_capacity: 256,
        }
    }
}

/// Every way a routed request can fail, as a value. Service-level
/// failures pass through as [`RouterError::Service`]; the transport adds
/// its own classes on top.
#[derive(Debug, Clone, PartialEq)]
pub enum RouterError {
    /// The worker-side service rejected the request (the same taxonomy
    /// a single-process caller would see).
    Service(ServiceError),
    /// A worker could not be reached within the reconnect budget; it has
    /// been marked lost and journaled.
    Unreachable {
        /// Router-assigned worker index.
        worker: usize,
        /// The address that failed.
        addr: String,
        /// The underlying I/O failure.
        detail: String,
    },
    /// Every member (primary and replicas) of a shard is lost; the
    /// request cannot be served until a worker rejoins.
    NoQuorum {
        /// The routed graph name.
        graph: String,
        /// The shard with no live members.
        shard: usize,
    },
    /// The peer answered with bytes the protocol does not allow here
    /// (codec failure or an out-of-place message kind).
    Protocol(String),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::Service(e) => write!(f, "service error: {e}"),
            RouterError::Unreachable {
                worker,
                addr,
                detail,
            } => write!(f, "worker {worker} at {addr} unreachable: {detail}"),
            RouterError::NoQuorum { graph, shard } => {
                write!(f, "no live worker holds graph {graph:?} shard {shard}")
            }
            RouterError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for RouterError {}

impl From<ServiceError> for RouterError {
    fn from(e: ServiceError) -> Self {
        RouterError::Service(e)
    }
}

/// One worker endpoint: its dial address, the (lazily re-established)
/// connection, and liveness.
struct WorkerHandle {
    addr: String,
    conn: Mutex<Option<Box<dyn crate::transport::Connection>>>,
    alive: AtomicBool,
}

/// One shard of a routed graph: its global node list and the member
/// ring (`members[0]` is the primary, the rest are read replicas).
struct RoutedShard {
    nodes: Vec<NodeId>,
    members: Mutex<Vec<usize>>,
    rr: AtomicUsize,
}

impl RoutedShard {
    fn members(&self) -> Vec<usize> {
        self.members
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// The router's view of one registered graph: the authoritative full
/// graph (kept in sync for routing, re-shards, and pin-flip checks),
/// the global→(shard, local) locator, and the shard member rings.
struct RoutedGraph {
    graph: Arc<DiGraph<String>>,
    locator: Vec<(u32, u32)>,
    shards: Vec<RoutedShard>,
    /// The compression override sent at registration (`Some` iff the
    /// graph actually sharded under an `Auto` base policy).
    pinned: Option<CompressionPolicy>,
}

#[derive(Default)]
struct RouterCounters {
    workers_connected: AtomicU64,
    workers_lost: AtomicU64,
    replicas_promoted: AtomicU64,
    reconnects: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    queries_routed: AtomicU64,
    updates_routed: AtomicU64,
}

/// A point-in-time snapshot of the router's own counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Configured worker endpoints.
    pub workers: usize,
    /// Workers currently marked live.
    pub workers_alive: usize,
    /// Successful worker (re)connections over the router's lifetime.
    pub workers_connected: u64,
    /// Workers declared lost over the router's lifetime.
    pub workers_lost: u64,
    /// Replica promotions after a primary death.
    pub replicas_promoted: u64,
    /// Reconnect attempts after an I/O failure.
    pub reconnects: u64,
    /// Frame bytes sent to workers (length prefixes included).
    pub bytes_sent: u64,
    /// Frame bytes received from workers (length prefixes included).
    pub bytes_received: u64,
    /// Queries routed (single queries; batch members count once each).
    pub queries_routed: u64,
    /// Update batches routed.
    pub updates_routed: u64,
    /// Graphs currently registered through this router.
    pub graphs: usize,
}

impl RouterStats {
    /// Compact JSON rendering (field names match the struct).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"workers_alive\":{},\"workers_connected\":{},\
             \"workers_lost\":{},\"replicas_promoted\":{},\"reconnects\":{},\
             \"bytes_sent\":{},\"bytes_received\":{},\"queries_routed\":{},\
             \"updates_routed\":{},\"graphs\":{}}}",
            self.workers,
            self.workers_alive,
            self.workers_connected,
            self.workers_lost,
            self.replicas_promoted,
            self.reconnects,
            self.bytes_sent,
            self.bytes_received,
            self.queries_routed,
            self.updates_routed,
            self.graphs
        )
    }
}

/// The cluster front-end. See the module docs for the routing, identity,
/// and failover contracts.
pub struct Router {
    transport: Arc<dyn Transport>,
    config: RouterConfig,
    workers: Vec<WorkerHandle>,
    graphs: RwLock<BTreeMap<String, RoutedGraph>>,
    metrics: MetricsRegistry,
    journal: Arc<EventJournal>,
    counters: RouterCounters,
    ping_seq: AtomicU64,
}

fn shard_graph_name(name: &str, si: usize) -> String {
    format!("{name}#{si}")
}

impl Router {
    /// Connects to every worker address eagerly. A worker that refuses
    /// the initial dial starts out lost (journaled) and can rejoin via
    /// [`Router::heartbeat`]; registration requires at least one live
    /// worker, so a fully-dead fleet surfaces as [`RouterError::NoQuorum`]
    /// at first use rather than here.
    pub fn connect(
        transport: Arc<dyn Transport>,
        addrs: &[String],
        config: RouterConfig,
    ) -> Router {
        let journal = Arc::new(EventJournal::new(config.journal_capacity));
        let router = Router {
            workers: addrs
                .iter()
                .map(|addr| WorkerHandle {
                    addr: addr.clone(),
                    conn: Mutex::new(None),
                    alive: AtomicBool::new(false),
                })
                .collect(),
            transport,
            config,
            graphs: RwLock::new(BTreeMap::new()),
            metrics: MetricsRegistry::new(),
            journal,
            counters: RouterCounters::default(),
            ping_seq: AtomicU64::new(0),
        };
        for w in 0..router.workers.len() {
            router.try_revive(w);
        }
        router
    }

    /// The router's metrics registry: `cluster_bytes_sent` /
    /// `cluster_bytes_received` / `worker_reconnects` counters plus a
    /// `worker_<i>_request_micros` latency histogram per worker.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The router's lifecycle-event journal (`WorkerConnected`,
    /// `WorkerLost`, `ReplicaPromoted`).
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// Configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Whether worker `w` is currently marked live.
    pub fn worker_alive(&self, w: usize) -> bool {
        self.workers
            .get(w)
            .is_some_and(|h| h.alive.load(Ordering::Acquire))
    }

    /// The dial address of worker `w` (as configured).
    pub fn worker_addr(&self, w: usize) -> Option<&str> {
        self.workers.get(w).map(|h| h.addr.as_str())
    }

    /// Snapshot of the router's own counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            workers: self.workers.len(),
            workers_alive: self
                .workers
                .iter()
                .filter(|h| h.alive.load(Ordering::Acquire))
                .count(),
            workers_connected: self.counters.workers_connected.load(Ordering::Relaxed),
            workers_lost: self.counters.workers_lost.load(Ordering::Relaxed),
            replicas_promoted: self.counters.replicas_promoted.load(Ordering::Relaxed),
            reconnects: self.counters.reconnects.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.counters.bytes_received.load(Ordering::Relaxed),
            queries_routed: self.counters.queries_routed.load(Ordering::Relaxed),
            updates_routed: self.counters.updates_routed.load(Ordering::Relaxed),
            graphs: self.graphs.read().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }

    /// Fetches the first live worker's [`ServiceStats`] and overlays the
    /// router's cluster counters (`workers_connected` / `workers_lost` /
    /// `replicas_promoted`) — the cluster-aware view of the stats
    /// surface those fields exist for.
    pub fn cluster_stats(&self) -> Result<Box<ServiceStats>, RouterError> {
        for w in 0..self.workers.len() {
            if !self.worker_alive(w) {
                continue;
            }
            match self.call_worker(w, &WireMessage::Request(Request::Stats)) {
                Ok(WireMessage::Ok(Response::Stats(mut stats))) => {
                    stats.workers_connected =
                        self.counters.workers_connected.load(Ordering::Relaxed);
                    stats.workers_lost = self.counters.workers_lost.load(Ordering::Relaxed);
                    stats.replicas_promoted =
                        self.counters.replicas_promoted.load(Ordering::Relaxed);
                    return Ok(stats);
                }
                Ok(WireMessage::Err(e)) => return Err(e.into()),
                Ok(_) => {
                    return Err(RouterError::Protocol(
                        "stats request answered with a non-stats message".into(),
                    ))
                }
                Err(_) => continue,
            }
        }
        Err(RouterError::NoQuorum {
            graph: String::new(),
            shard: 0,
        })
    }

    /// Pings every worker (`Ping`/`Pong` with a sequence check) and
    /// returns the live count. Lost workers get a revival dial first, so
    /// a restarted worker rejoins the pool here (it does **not** rejoin
    /// shard member rings it was dropped from — re-register to re-place).
    pub fn heartbeat(&self) -> usize {
        let mut live = 0usize;
        for w in 0..self.workers.len() {
            if !self.worker_alive(w) && !self.try_revive(w) {
                continue;
            }
            let seq = self.ping_seq.fetch_add(1, Ordering::Relaxed);
            match self.call_worker(w, &WireMessage::Ping { seq }) {
                Ok(WireMessage::Pong { seq: got }) if got == seq => live += 1,
                Ok(_) => self.mark_lost(w, "heartbeat answered with the wrong message"),
                // `call_worker` already marked the worker lost.
                Err(_) => {}
            }
        }
        live
    }

    // ---- membership ------------------------------------------------

    /// Dials a lost (or never-connected) worker; on success it is marked
    /// live, counted, and journaled.
    fn try_revive(&self, w: usize) -> bool {
        let handle = &self.workers[w];
        match self.transport.connect(&handle.addr) {
            Ok(conn) => {
                *handle.conn.lock().unwrap_or_else(|e| e.into_inner()) = Some(conn);
                if !handle.alive.swap(true, Ordering::AcqRel) {
                    self.counters
                        .workers_connected
                        .fetch_add(1, Ordering::Relaxed);
                    self.journal
                        .emit(Severity::Info, || EventKind::WorkerConnected {
                            worker: w,
                            addr: handle.addr.clone(),
                        });
                }
                true
            }
            Err(e) => {
                if handle.alive.swap(false, Ordering::AcqRel) {
                    self.record_lost(w, &format!("dial: {e}"));
                }
                false
            }
        }
    }

    fn record_lost(&self, w: usize, reason: &str) {
        self.counters.workers_lost.fetch_add(1, Ordering::Relaxed);
        let reason = reason.to_owned();
        self.journal.emit(Severity::Warn, || EventKind::WorkerLost {
            worker: w,
            reason,
        });
    }

    /// Marks a worker lost (idempotent) and drops its connection.
    fn mark_lost(&self, w: usize, reason: &str) {
        let handle = &self.workers[w];
        *handle.conn.lock().unwrap_or_else(|e| e.into_inner()) = None;
        if handle.alive.swap(false, Ordering::AcqRel) {
            self.record_lost(w, reason);
        }
    }

    /// Drops `w` from a shard's member ring; when it was the primary,
    /// the first surviving replica is promoted (counted + journaled).
    fn drop_member(&self, graph: &str, si: usize, shard: &RoutedShard, w: usize) {
        let mut members = shard.members.lock().unwrap_or_else(|e| e.into_inner());
        let Some(pos) = members.iter().position(|&m| m == w) else {
            return;
        };
        members.remove(pos);
        if pos == 0 {
            if let Some(&promoted) = members.first() {
                self.counters
                    .replicas_promoted
                    .fetch_add(1, Ordering::Relaxed);
                let graph = graph.to_owned();
                self.journal
                    .emit(Severity::Warn, || EventKind::ReplicaPromoted {
                        graph,
                        shard: si,
                        worker: promoted,
                    });
            }
        }
    }

    // ---- the wire --------------------------------------------------

    /// One framed request/response exchange with worker `w`, with the
    /// configured redial budget. An exhausted budget marks the worker
    /// lost. Retrying a request after a reconnect is safe: queries are
    /// side-effect-free and updates are idempotent edge mutations.
    fn call_worker(&self, w: usize, msg: &WireMessage) -> Result<WireMessage, RouterError> {
        let frame = codec::encode(msg, &self.config.frame)
            .map_err(|e| RouterError::Protocol(format!("encode: {e}")))?;
        // phom-lint: allow(clock, "monotonic per-request latency sample for the worker histograms; no wall-clock semantics")
        let started = Instant::now();
        let payload = self.exchange(w, &frame)?;
        self.metrics.histogram_record(
            &format!("worker_{w}_request_micros"),
            started.elapsed().as_micros(),
        );
        codec::decode(&payload, &self.config.frame)
            .map_err(|e| RouterError::Protocol(format!("decode from worker {w}: {e}")))
    }

    fn exchange(&self, w: usize, frame: &[u8]) -> Result<Vec<u8>, RouterError> {
        let handle = &self.workers[w];
        if !handle.alive.load(Ordering::Acquire) {
            return Err(RouterError::Unreachable {
                worker: w,
                addr: handle.addr.clone(),
                detail: "worker marked lost".into(),
            });
        }
        let mut guard = handle.conn.lock().unwrap_or_else(|e| e.into_inner());
        let mut attempts = 0usize;
        loop {
            if guard.is_none() {
                match self.transport.connect(&handle.addr) {
                    Ok(conn) => *guard = Some(conn),
                    Err(e) => {
                        if attempts >= self.config.redials {
                            *guard = None;
                            drop(guard);
                            self.mark_lost(w, &format!("dial: {e}"));
                            return Err(RouterError::Unreachable {
                                worker: w,
                                addr: handle.addr.clone(),
                                detail: format!("dial: {e}"),
                            });
                        }
                        attempts += 1;
                        self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                        self.metrics.counter_add("worker_reconnects", 1);
                        thread::sleep(self.config.retry_backoff);
                        continue;
                    }
                }
            }
            let Some(conn) = guard.as_mut() else {
                continue;
            };
            match conn.send_frame(frame).and_then(|()| conn.recv_frame()) {
                Ok(payload) => {
                    let sent = frame.len() as u64;
                    let received = (payload.len() + 4) as u64;
                    self.counters.bytes_sent.fetch_add(sent, Ordering::Relaxed);
                    self.counters
                        .bytes_received
                        .fetch_add(received, Ordering::Relaxed);
                    self.metrics.counter_add("cluster_bytes_sent", sent);
                    self.metrics.counter_add("cluster_bytes_received", received);
                    return Ok(payload);
                }
                Err(e) => {
                    *guard = None;
                    if attempts >= self.config.redials {
                        drop(guard);
                        self.mark_lost(w, &format!("io: {e}"));
                        return Err(RouterError::Unreachable {
                            worker: w,
                            addr: handle.addr.clone(),
                            detail: format!("io: {e}"),
                        });
                    }
                    attempts += 1;
                    self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                    self.metrics.counter_add("worker_reconnects", 1);
                    thread::sleep(self.config.retry_backoff);
                }
            }
        }
    }

    /// A read request against one shard: round-robins over the live
    /// member ring, dropping members that fail (with promotion when the
    /// primary falls). A worker-side [`ServiceError`] is final — it is
    /// the same answer every identical member would give.
    fn shard_request(
        &self,
        graph: &str,
        si: usize,
        shard: &RoutedShard,
        msg: &WireMessage,
    ) -> Result<(Response, usize), RouterError> {
        loop {
            let members = shard.members();
            if members.is_empty() {
                return Err(RouterError::NoQuorum {
                    graph: graph.to_owned(),
                    shard: si,
                });
            }
            let start = shard.rr.fetch_add(1, Ordering::Relaxed);
            let mut dropped = false;
            for k in 0..members.len() {
                let w = members[(start + k) % members.len()];
                match self.call_worker(w, msg) {
                    Ok(WireMessage::Ok(resp)) => return Ok((resp, w)),
                    Ok(WireMessage::Err(e)) => return Err(e.into()),
                    Ok(_) => {
                        return Err(RouterError::Protocol(format!(
                            "worker {w} answered a request with a non-response message"
                        )))
                    }
                    Err(RouterError::Unreachable { .. }) => {
                        self.drop_member(graph, si, shard, w);
                        dropped = true;
                    }
                    Err(e) => return Err(e),
                }
            }
            if !dropped {
                return Err(RouterError::NoQuorum {
                    graph: graph.to_owned(),
                    shard: si,
                });
            }
        }
    }

    /// A write request against one shard: always lands on the current
    /// primary (`members[0]`), promoting through the ring on failure.
    fn primary_request(
        &self,
        graph: &str,
        si: usize,
        shard: &RoutedShard,
        msg: &WireMessage,
    ) -> Result<(Response, usize), RouterError> {
        loop {
            let Some(&primary) = shard.members().first() else {
                return Err(RouterError::NoQuorum {
                    graph: graph.to_owned(),
                    shard: si,
                });
            };
            match self.call_worker(primary, msg) {
                Ok(WireMessage::Ok(resp)) => return Ok((resp, primary)),
                Ok(WireMessage::Err(e)) => return Err(e.into()),
                Ok(_) => {
                    return Err(RouterError::Protocol(format!(
                        "worker {primary} answered a request with a non-response message"
                    )))
                }
                Err(RouterError::Unreachable { .. }) => {
                    self.drop_member(graph, si, shard, primary);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Replicates a write to every current replica of a shard. A replica
    /// that fails (transport or service) is dropped from the ring — it
    /// can no longer serve bit-identical reads.
    fn replicate(&self, graph: &str, si: usize, shard: &RoutedShard, msg: &WireMessage) {
        let members = shard.members();
        for &w in members.iter().skip(1) {
            match self.call_worker(w, msg) {
                Ok(WireMessage::Ok(_)) => {}
                _ => self.drop_member(graph, si, shard, w),
            }
        }
    }

    // ---- registration ----------------------------------------------

    /// Registers `graph` under `name`: splits it per the sharding policy
    /// (the same [`component_groups`] assignment as the in-process
    /// registry, with the same graph-wide compression pin), registers
    /// each shard on its primary worker, and hydrates `replicas` read
    /// replicas per shard from the primary's snapshot.
    pub fn register(
        &self,
        name: String,
        graph: Arc<DiGraph<String>>,
    ) -> Result<GraphInfo, RouterError> {
        if name.is_empty() {
            return Err(ServiceError::InvalidRequest("graph name must be non-empty".into()).into());
        }
        if self
            .graphs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&name)
        {
            return Err(ServiceError::AlreadyRegistered { graph: name }.into());
        }
        let (routed, info) = self.build_routed(&name, graph)?;
        let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
        if graphs.contains_key(&name) {
            self.evict_routed(&name, &routed);
            return Err(ServiceError::AlreadyRegistered { graph: name }.into());
        }
        graphs.insert(name, routed);
        Ok(info)
    }

    /// Evicts a routed graph: every member of every shard drops its
    /// shard graph (best-effort — lost workers are skipped), and the
    /// router forgets the shard map.
    pub fn evict(&self, name: &str) -> Result<(), RouterError> {
        let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
        let Some(routed) = graphs.remove(name) else {
            return Err(ServiceError::NotFound {
                graph: name.to_owned(),
            }
            .into());
        };
        drop(graphs);
        self.evict_routed(name, &routed);
        Ok(())
    }

    /// Builds the shard map and registers every shard (with replicas)
    /// on the fleet. On failure, already-registered shards are evicted.
    fn build_routed(
        &self,
        name: &str,
        graph: Arc<DiGraph<String>>,
    ) -> Result<(RoutedGraph, GraphInfo), RouterError> {
        let n = graph.node_count();
        let sharding = &self.config.sharding;
        // The exact group assignment `GraphEntry::build` makes.
        let groups: Vec<Vec<NodeId>> = if sharding.max_shards > 1 && n >= sharding.min_shard_nodes {
            component_groups(&graph, sharding.max_shards)
        } else if n == 0 {
            Vec::new()
        } else {
            vec![graph.nodes().collect()]
        };
        // The graph-wide compression pin (same rule as the registry):
        // only an actually-sharded graph under an `Auto` base policy
        // needs the whole-graph decision forced onto its shards.
        let pinned =
            if groups.len() > 1 && self.config.planner.compression == CompressionPolicy::Auto {
                Some(CompressionPolicy::pinned(n, tarjan_scc(&*graph).count()))
            } else {
                None
            };
        let mut locator = vec![(0u32, 0u32); n];
        let mut specs: Vec<(Vec<NodeId>, Bytes)> = Vec::with_capacity(groups.len());
        if groups.len() == 1 {
            for v in graph.nodes() {
                locator[v.index()] = (0, v.0);
            }
            specs.push((graph.nodes().collect(), to_snapshot(&graph)));
        } else {
            for (si, nodes) in groups.iter().enumerate() {
                let keep: BTreeSet<NodeId> = nodes.iter().copied().collect();
                let (sub, old_ids) = graph.induced_subgraph(&keep);
                for (local, &global) in old_ids.iter().enumerate() {
                    locator[global.index()] = (si as u32, local as u32);
                }
                specs.push((old_ids, to_snapshot(&sub)));
            }
        }

        let live: Vec<usize> = (0..self.workers.len())
            .filter(|&w| self.worker_alive(w))
            .collect();
        let mut shards = Vec::with_capacity(specs.len());
        let mut infos = Vec::with_capacity(specs.len());
        for (si, (nodes, snapshot)) in specs.into_iter().enumerate() {
            // Primary on the ring, replicas on the next distinct workers.
            let want = if live.is_empty() {
                Vec::new()
            } else {
                let take = 1 + self.config.replicas.min(live.len() - 1);
                (0..take).map(|k| live[(si + k) % live.len()]).collect()
            };
            match self.register_shard(name, si, snapshot, pinned, want) {
                Ok((shard_members, info)) => {
                    infos.push(info);
                    shards.push(RoutedShard {
                        nodes,
                        members: Mutex::new(shard_members),
                        rr: AtomicUsize::new(0),
                    });
                }
                Err(e) => {
                    let partial = RoutedGraph {
                        graph: Arc::clone(&graph),
                        locator: Vec::new(),
                        shards,
                        pinned,
                    };
                    self.evict_routed(name, &partial);
                    return Err(e);
                }
            }
        }
        let compression = pinned
            .unwrap_or(self.config.planner.compression)
            .name()
            .to_owned();
        let info = aggregate_info(name, &graph, &shards, &infos, compression);
        Ok((
            RoutedGraph {
                graph,
                locator,
                shards,
                pinned,
            },
            info,
        ))
    }

    /// Registers one shard on its primary and hydrates the replicas from
    /// the primary's snapshot. Walks the candidate ring on primary
    /// failure; returns the surviving member ring.
    fn register_shard(
        &self,
        name: &str,
        si: usize,
        snapshot: Bytes,
        pinned: Option<CompressionPolicy>,
        mut members: Vec<usize>,
    ) -> Result<(Vec<usize>, GraphInfo), RouterError> {
        let shard_name = shard_graph_name(name, si);
        loop {
            let Some(&primary) = members.first() else {
                return Err(RouterError::NoQuorum {
                    graph: name.to_owned(),
                    shard: si,
                });
            };
            let register = WireMessage::RegisterPinned {
                name: shard_name.clone(),
                graph: snapshot.clone(),
                compression: pinned,
            };
            let info = match self.call_worker(primary, &register) {
                Ok(WireMessage::Ok(Response::Registered(info))) => info,
                Ok(WireMessage::Err(e)) => return Err(e.into()),
                Ok(_) => {
                    return Err(RouterError::Protocol(format!(
                        "worker {primary} answered registration with a non-response message"
                    )))
                }
                Err(RouterError::Unreachable { .. }) => {
                    members.remove(0);
                    continue;
                }
                Err(e) => return Err(e),
            };
            if members.len() == 1 {
                return Ok((members, info));
            }
            // Hydrate replicas from the primary's *service* snapshot so
            // warm indexes and the compression pin carry over — the
            // replica answers bit-identically from its first read.
            let snap = WireMessage::Request(Request::Snapshot {
                graph: shard_name.clone(),
            });
            let service_snapshot = match self.call_worker(primary, &snap) {
                Ok(WireMessage::Ok(Response::Snapshot(bytes))) => bytes,
                Ok(WireMessage::Err(e)) => return Err(e.into()),
                Ok(_) => {
                    return Err(RouterError::Protocol(format!(
                        "worker {primary} answered snapshot with a non-response message"
                    )))
                }
                Err(RouterError::Unreachable { .. }) => {
                    // The primary died between registering and
                    // snapshotting; its registration dies with it.
                    members.remove(0);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let mut kept = vec![primary];
            for &replica in members.iter().skip(1) {
                let restore = WireMessage::Request(Request::RestoreGraph {
                    name: shard_name.clone(),
                    snapshot: service_snapshot.clone(),
                });
                // A replica that cannot hydrate is simply not a member;
                // the shard still has its primary.
                if let Ok(WireMessage::Ok(Response::Registered(_))) =
                    self.call_worker(replica, &restore)
                {
                    kept.push(replica);
                }
            }
            return Ok((kept, info));
        }
    }

    fn evict_routed(&self, name: &str, routed: &RoutedGraph) {
        for (si, shard) in routed.shards.iter().enumerate() {
            let msg = WireMessage::Request(Request::EvictGraph {
                name: shard_graph_name(name, si),
            });
            for w in shard.members() {
                let _ = self.call_worker(w, &msg);
            }
        }
    }

    // ---- queries ---------------------------------------------------

    /// Routes one query: plans once on the full candidate set, fans the
    /// forced plan out to the candidate-holding shards' workers, and
    /// merges per pattern component — the verbatim transcription of the
    /// in-process sharded path, so the answer is bit-identical to a
    /// single-process service run.
    pub fn query(
        &self,
        graph: &str,
        query: &Query<String>,
        trace: bool,
    ) -> Result<QueryResponse, RouterError> {
        self.counters.queries_routed.fetch_add(1, Ordering::Relaxed);
        let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        let Some(routed) = graphs.get(graph) else {
            return Err(ServiceError::NotFound {
                graph: graph.to_owned(),
            }
            .into());
        };
        let n1 = query.pattern.node_count();
        if query.matrix.n1() != n1 {
            return Err(ServiceError::InvalidRequest(format!(
                "similarity matrix has {} pattern rows, pattern has {} nodes",
                query.matrix.n1(),
                n1
            ))
            .into());
        }
        if query.matrix.n2() != routed.graph.node_count() {
            return Err(ServiceError::InvalidRequest(format!(
                "similarity matrix has {} data columns, graph {:?} has {} nodes",
                query.matrix.n2(),
                graph,
                routed.graph.node_count()
            ))
            .into());
        }
        if let Some(w) = &query.weights {
            if w.len() != n1 {
                return Err(ServiceError::InvalidRequest(format!(
                    "{} weights for {} pattern nodes",
                    w.len(),
                    n1
                ))
                .into());
            }
        }
        if routed.shards.len() == 1 {
            // Unsharded: the worker holds the full graph and plans the
            // original query itself (its planner matches the router's) —
            // the same fast path the in-process registry takes.
            let msg = WireMessage::Request(Request::Query {
                graph: shard_graph_name(graph, 0),
                query: query.clone(),
                trace,
            });
            let (resp, _) = self.shard_request(graph, 0, &routed.shards[0], &msg)?;
            return match resp {
                Response::Answer(r) => Ok(r),
                _ => Err(RouterError::Protocol(
                    "query answered with a non-answer response".into(),
                )),
            };
        }
        self.query_sharded(graph, routed, query, trace)
    }

    /// Routes a batch: each query takes the routed single-query path, in
    /// input order. The first failure aborts the batch — a typed error,
    /// never a partial merge dressed up as success.
    pub fn query_batch(
        &self,
        graph: &str,
        queries: &[Query<String>],
    ) -> Result<Vec<QueryResponse>, RouterError> {
        queries
            .iter()
            .map(|q| self.query(graph, q, false))
            .collect()
    }

    /// The multi-shard fan-out. Mirrors the registry's `execute_sharded`
    /// stage for stage; the only difference is *where* each shard's
    /// forced sub-query executes (a worker process instead of an
    /// in-process prepared shard), recorded as a
    /// [`SpanKind::WorkerMatch`] span per consulted shard.
    fn query_sharded(
        &self,
        graph: &str,
        routed: &RoutedGraph,
        query: &Query<String>,
        trace: bool,
    ) -> Result<QueryResponse, RouterError> {
        // phom-lint: allow(clock, "monotonic elapsed-time stats for routed query latency; no wall-clock semantics")
        let started = Instant::now();
        let mut tr = trace.then(|| Box::new(QueryTrace::new()));
        let plan_open = tr.as_ref().map(|t| t.begin());
        let plan = plan_query_with(query, &self.config.planner);
        if let (Some(t), Some(open)) = (tr.as_mut(), plan_open) {
            t.end(SpanKind::Plan, open);
        }
        // One deadline for the whole routed query, however many workers
        // it consults (same rule as the in-process sharded path).
        let deadline = query
            .config
            .timeout
            .or(self.config.planner.timeout)
            // phom-lint: allow(clock, "monotonic deadline for the per-request time budget; no wall-clock semantics")
            .map(|t| Instant::now() + t);

        let n1 = query.pattern.node_count();
        let xi = query.config.xi;
        let mut sub_config = query.config.clone();
        sub_config.force_plan = Some(plan.kind);
        sub_config.restarts = Some(plan.restarts);
        sub_config.partition = true;

        let route_open = tr.as_ref().map(|t| t.begin());
        let relevant: Vec<bool> = routed
            .shards
            .iter()
            .map(|shard| {
                shard
                    .nodes
                    .iter()
                    .any(|&g| (0..n1 as u32).any(|v| query.matrix.score(NodeId(v), g) >= xi))
            })
            .collect();
        if let (Some(t), Some(open)) = (tr.as_mut(), route_open) {
            t.end(SpanKind::Route, open);
        }

        let mut timed_out = false;
        let mut consulted = 0usize;
        let mut all_cache_hits = true;
        let mut backends: Vec<String> = Vec::new();
        let mut shard_maps: Vec<(usize, PHomMapping)> = Vec::new();
        for (si, shard) in routed.shards.iter().enumerate() {
            if !relevant[si] {
                continue;
            }
            let mut remaining = None;
            if let Some(d) = deadline {
                // phom-lint: allow(clock, "monotonic deadline check for the per-request time budget; no wall-clock semantics")
                let left = d.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    timed_out = true;
                    break;
                }
                remaining = Some(left);
            }
            consulted += 1;
            let shard_open = tr.as_ref().map(|t| t.begin());
            let local_matrix = SimMatrix::from_fn(n1, shard.nodes.len(), |v, lu| {
                query.matrix.score(v, shard.nodes[lu.index()])
            });
            let mut sub = Query::new(Arc::clone(&query.pattern), local_matrix);
            sub.weights = query.weights.clone();
            sub.config = sub_config.clone();
            if remaining.is_some() {
                sub.config.timeout = remaining;
            }
            let msg = WireMessage::Request(Request::Query {
                graph: shard_graph_name(graph, si),
                query: sub,
                trace: tr.is_some(),
            });
            let (resp, worker) = self.shard_request(graph, si, shard, &msg)?;
            let Response::Answer(r) = resp else {
                return Err(RouterError::Protocol(
                    "query answered with a non-answer response".into(),
                ));
            };
            timed_out |= r.timed_out;
            let global = PHomMapping::from_pairs(
                n1,
                r.mapping
                    .pairs()
                    .map(|(v, lu)| (v, shard.nodes[lu.index()])),
            );
            shard_maps.push((si, global));
            if let (Some(t), Some(open)) = (tr.as_mut(), shard_open) {
                t.end(
                    SpanKind::WorkerMatch {
                        shard: si as u32,
                        worker: worker as u32,
                    },
                    open,
                );
                if let Some(st) = r.trace {
                    t.counters.restarts_taken += st.counters.restarts_taken;
                    t.counters.budget_polls += st.counters.budget_polls;
                    t.counters.components += st.counters.components;
                    t.counters.parallel_components += st.counters.parallel_components;
                    t.counters.candidate_pairs += st.counters.candidate_pairs;
                    t.counters.extended_pairs += st.counters.extended_pairs;
                    all_cache_hits &= st.counters.cache_hit;
                    if !backends.contains(&st.counters.closure_backend) {
                        backends.push(st.counters.closure_backend.clone());
                    }
                }
            }
        }

        let merge_open = tr.as_ref().map(|t| t.begin());
        let weights = query.effective_weights();
        let similarity = query.config.algorithm.similarity();
        let mut merged = PHomMapping::empty(n1);
        // Proposition 1: pattern components are independent, so each
        // takes its best shard's assignment (identical tie-breaks to the
        // in-process merge: primary quality, then secondary, first
        // shard wins ties).
        for comp in weakly_connected_components(&*query.pattern) {
            let mut best: Option<(f64, f64, usize)> = None;
            for (entry_idx, (_, map)) in shard_maps.iter().enumerate() {
                let mut card = 0usize;
                let mut sim = 0.0f64;
                for &v in &comp {
                    if let Some(u) = map.get(v) {
                        card += 1;
                        sim += weights.get(v) * query.matrix.score(v, u);
                    }
                }
                if card == 0 {
                    continue;
                }
                let (primary, secondary) = if similarity {
                    (sim, card as f64)
                } else {
                    (card as f64, sim)
                };
                let better = match best {
                    None => true,
                    Some((p, s, _)) => primary > p || (primary == p && secondary > s),
                };
                if better {
                    best = Some((primary, secondary, entry_idx));
                }
            }
            if let Some((_, _, entry_idx)) = best {
                let (_, map) = &shard_maps[entry_idx];
                for &v in &comp {
                    if let Some(u) = map.get(v) {
                        merged.set(v, u);
                    }
                }
            }
        }

        let qual_card = merged.qual_card();
        let qual_sim = merged.qual_sim(&weights, &query.matrix);
        if let Some(t) = tr.as_mut() {
            if let Some(open) = merge_open {
                t.end(SpanKind::Merge, open);
            }
            t.counters.plan = plan.kind.name().to_owned();
            t.counters.restarts_planned = plan.restarts;
            t.counters.shards_consulted = consulted;
            t.counters.timed_out = timed_out;
            t.counters.cache_hit = consulted > 0 && all_cache_hits;
            t.counters.closure_backend = match backends.len() {
                0 => "none".to_owned(),
                1 => backends.swap_remove(0),
                _ => "mixed".to_owned(),
            };
        }
        Ok(QueryResponse {
            mapping: merged,
            qual_card,
            qual_sim,
            plan,
            shards_consulted: consulted,
            timed_out,
            micros: started.elapsed().as_micros(),
            trace: tr,
        })
    }

    // ---- updates ---------------------------------------------------

    /// Applies an update batch, mirroring the in-process registry's
    /// routing: cross-shard edge inserts (and pin flips) re-split the
    /// graph across the fleet; everything else goes to each owning
    /// shard's primary and is then replicated to its replicas
    /// (idempotent edge mutations, so a failover retry is safe).
    pub fn apply_updates(
        &self,
        graph: &str,
        updates: &[GraphUpdate],
    ) -> Result<UpdateSummary, RouterError> {
        self.counters.updates_routed.fetch_add(1, Ordering::Relaxed);
        let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
        let Some(routed) = graphs.get_mut(graph) else {
            return Err(ServiceError::NotFound {
                graph: graph.to_owned(),
            }
            .into());
        };
        // phom-lint: allow(clock, "monotonic elapsed-time stats for routed update timings; no wall-clock semantics")
        let started = Instant::now();
        let n = routed.graph.node_count();
        let sharded = routed.shards.len() > 1;
        let cross_shard_insert = sharded
            && updates.iter().any(|u| {
                let (a, b) = u.endpoints();
                u.in_range(n)
                    && matches!(u, GraphUpdate::InsertEdge(..))
                    && !routed.graph.has_edge(a, b)
                    && routed.locator[a.index()].0 != routed.locator[b.index()].0
            });

        let mut full = (*routed.graph).clone();
        let mut full_stats = UpdateStats::default();
        for &u in updates {
            if !u.in_range(n) {
                full_stats.rejected += 1;
            } else if u.apply_to(&mut full) {
                full_stats.applied += 1;
            } else {
                full_stats.noops += 1;
            }
        }
        let full = Arc::new(full);

        if cross_shard_insert {
            let mut stats = full_stats;
            stats.rebuilds += 1;
            let rebuilt = self.rebuild_routed(graph, routed, full)?;
            stats.apply_micros = started.elapsed().as_micros();
            let shards = rebuilt.shards.len();
            *routed = rebuilt;
            return Ok(UpdateSummary {
                stats,
                resharded: true,
                shards,
            });
        }

        // Route to owning shards (cross-shard deletes target edges that
        // cannot exist and were counted as no-ops above).
        let mut per_shard: Vec<Vec<GraphUpdate>> = vec![Vec::new(); routed.shards.len()];
        for &u in updates {
            if !u.in_range(n) {
                continue;
            }
            let (a, b) = u.endpoints();
            let (sa, la) = routed.locator[a.index()];
            let (sb, lb) = routed.locator[b.index()];
            if sa != sb {
                continue;
            }
            let local = match u {
                GraphUpdate::InsertEdge(..) => GraphUpdate::InsertEdge(NodeId(la), NodeId(lb)),
                GraphUpdate::RemoveEdge(..) => GraphUpdate::RemoveEdge(NodeId(la), NodeId(lb)),
            };
            per_shard[sa as usize].push(local);
        }

        let mut agg = UpdateStats {
            rejected: full_stats.rejected,
            ..Default::default()
        };
        for (si, shard) in routed.shards.iter().enumerate() {
            if per_shard[si].is_empty() {
                continue;
            }
            let msg = WireMessage::Request(Request::ApplyUpdates {
                graph: shard_graph_name(graph, si),
                updates: per_shard[si].clone(),
            });
            // Primary-tagged write; promotion walks the ring if the
            // primary is gone, and an empty ring is a typed NoQuorum.
            let (resp, _) = self.primary_request(graph, si, shard, &msg)?;
            let Response::Updated(sum) = resp else {
                return Err(RouterError::Protocol(
                    "update answered with a non-update response".into(),
                ));
            };
            agg.absorb(&sum.stats);
            self.replicate(graph, si, shard, &msg);
        }
        agg.noops = full_stats.noops;

        // Pin-flip mirror: no edge crosses a shard, so the full graph's
        // SCC count is the sum of the per-shard counts the workers just
        // maintained — fetched from their `GraphInfo` surfaces.
        if sharded && self.config.planner.compression == CompressionPolicy::Auto && agg.applied > 0
        {
            let mut scc_sum = 0usize;
            for (si, shard) in routed.shards.iter().enumerate() {
                let msg = WireMessage::Request(Request::GraphInfo {
                    graph: shard_graph_name(graph, si),
                });
                let (resp, _) = self.primary_request(graph, si, shard, &msg)?;
                let Response::Info(info) = resp else {
                    return Err(RouterError::Protocol(
                        "info answered with a non-info response".into(),
                    ));
                };
                scc_sum += info.scc_count;
            }
            let current = routed.pinned.unwrap_or(self.config.planner.compression);
            if CompressionPolicy::pinned(n, scc_sum) != current {
                let mut stats = full_stats;
                stats.rebuilds += 1;
                let rebuilt = self.rebuild_routed(graph, routed, full)?;
                stats.apply_micros = started.elapsed().as_micros();
                let shards = rebuilt.shards.len();
                *routed = rebuilt;
                return Ok(UpdateSummary {
                    stats,
                    resharded: true,
                    shards,
                });
            }
        }
        agg.apply_micros = started.elapsed().as_micros();
        routed.graph = full;
        Ok(UpdateSummary {
            stats: agg,
            resharded: false,
            shards: routed.shards.len(),
        })
    }

    /// Evicts the old shard graphs and re-registers `full` from scratch
    /// (fresh split, fresh pin) — the cluster version of the registry's
    /// "re-split from scratch" path.
    fn rebuild_routed(
        &self,
        name: &str,
        old: &RoutedGraph,
        full: Arc<DiGraph<String>>,
    ) -> Result<RoutedGraph, RouterError> {
        self.evict_routed(name, old);
        let (rebuilt, _) = self.build_routed(name, full)?;
        Ok(rebuilt)
    }

    // ---- introspection ---------------------------------------------

    /// Aggregated shape/index statistics for a routed graph, summing the
    /// live per-shard `GraphInfo` surfaces exactly as the in-process
    /// entry does.
    pub fn graph_info(&self, name: &str) -> Result<GraphInfo, RouterError> {
        let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        let Some(routed) = graphs.get(name) else {
            return Err(ServiceError::NotFound {
                graph: name.to_owned(),
            }
            .into());
        };
        let mut infos = Vec::with_capacity(routed.shards.len());
        for (si, shard) in routed.shards.iter().enumerate() {
            let msg = WireMessage::Request(Request::GraphInfo {
                graph: shard_graph_name(name, si),
            });
            let (resp, _) = self.shard_request(name, si, shard, &msg)?;
            let Response::Info(info) = resp else {
                return Err(RouterError::Protocol(
                    "info answered with a non-info response".into(),
                ));
            };
            infos.push(info);
        }
        let compression = routed
            .pinned
            .unwrap_or(self.config.planner.compression)
            .name()
            .to_owned();
        Ok(aggregate_info(
            name,
            &routed.graph,
            &routed.shards,
            &infos,
            compression,
        ))
    }

    /// Names of the graphs registered through this router.
    pub fn graph_names(&self) -> Vec<String> {
        self.graphs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }
}

/// Folds per-shard `GraphInfo`s into the full-graph view, the same
/// summation and backend merge as the in-process `GraphEntry::info`.
fn aggregate_info(
    name: &str,
    graph: &DiGraph<String>,
    shards: &[RoutedShard],
    infos: &[GraphInfo],
    compression: String,
) -> GraphInfo {
    let mut info = GraphInfo {
        name: name.to_owned(),
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        shards: shards.len(),
        shard_nodes: shards.iter().map(|s| s.nodes.len()).collect(),
        scc_count: 0,
        closure_edges: 0,
        closure_memory_bytes: 0,
        closure_backend: String::new(),
        compressed_nodes: None,
        prepare_micros: 0,
        compression,
    };
    let mut backends: Vec<&str> = Vec::new();
    for shard_info in infos {
        info.scc_count += shard_info.scc_count;
        info.closure_edges += shard_info.closure_edges;
        info.closure_memory_bytes += shard_info.closure_memory_bytes;
        info.prepare_micros += shard_info.prepare_micros;
        if let Some(c) = shard_info.compressed_nodes {
            *info.compressed_nodes.get_or_insert(0) += c;
        }
        if !backends.contains(&shard_info.closure_backend.as_str()) {
            backends.push(&shard_info.closure_backend);
        }
    }
    info.closure_backend = match backends.len() {
        0 => "none".to_owned(),
        1 => backends[0].to_owned(),
        _ => "mixed".to_owned(),
    };
    info
}
