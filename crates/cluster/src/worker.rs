//! The worker process mode: a [`Service`] hosted behind a framed socket
//! accept loop. One thread per connection; each connection is a strict
//! request/response exchange (the router multiplexes by holding one
//! connection per worker and serializing calls over it).
//!
//! Workers are registered by the router with sharding *disabled* (each
//! worker-held graph is exactly one shard of the routed graph), so the
//! worker-side `GraphEntry` keeps whatever compression policy the
//! router pinned at registration — the key to bit-identical routed
//! answers.

use crate::codec::{self, FrameConfig, WireMessage};
use crate::transport::{Connection, Listener};
use phom_service::{Response, Service, ServiceError};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tunables for one worker server.
#[derive(Debug, Clone, Copy)]
pub struct WorkerOptions {
    /// Frame cap shared with the codec.
    pub frame: FrameConfig,
    /// Idle sleep between accept polls.
    pub poll_interval: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            frame: FrameConfig::default(),
            poll_interval: Duration::from_millis(5),
        }
    }
}

/// A running worker: the accept loop plus its per-connection handler
/// threads. Dropping (or [`WorkerServer::stop`]) shuts it down.
#[derive(Debug)]
pub struct WorkerServer {
    stop: Arc<AtomicBool>,
    addr: String,
    accept_thread: Option<JoinHandle<()>>,
}

impl WorkerServer {
    /// Starts serving `service` on `listener` in background threads and
    /// returns immediately.
    pub fn spawn(
        service: Arc<Service<String>>,
        listener: Box<dyn Listener>,
        options: WorkerOptions,
    ) -> WorkerServer {
        let stop = Arc::new(AtomicBool::new(false));
        let addr = listener.local_addr();
        let stop_in = Arc::clone(&stop);
        let accept_thread = thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while !stop_in.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok(Some(conn)) => {
                        let service = Arc::clone(&service);
                        let stop = Arc::clone(&stop_in);
                        let frame = options.frame;
                        handlers.push(thread::spawn(move || {
                            serve_connection(service, conn, stop, frame);
                        }));
                    }
                    Ok(None) => thread::sleep(options.poll_interval),
                    Err(_) => break,
                }
                handlers.retain(|h| !h.is_finished());
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        WorkerServer {
            stop,
            addr,
            accept_thread: Some(accept_thread),
        }
    }

    /// The address peers dial to reach this worker.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Signals shutdown and joins the accept loop (connection handlers
    /// drain on their next read-timeout tick).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(
    service: Arc<Service<String>>,
    mut conn: Box<dyn Connection>,
    stop: Arc<AtomicBool>,
    frame: FrameConfig,
) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let payload = match conn.recv_frame() {
            Ok(p) => p,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                // Idle connection: poll the stop flag and wait again.
                continue;
            }
            Err(_) => return,
        };
        let reply = match codec::decode(&payload, &frame) {
            Ok(msg) => handle_message(&service, msg),
            Err(e) => WireMessage::Err(ServiceError::InvalidRequest(format!("codec: {e}"))),
        };
        let encoded = match codec::encode(&reply, &frame) {
            Ok(f) => f,
            Err(e) => {
                // A response too large for the frame cap degrades into a
                // (small) typed error instead of a dropped connection.
                let fallback =
                    WireMessage::Err(ServiceError::InvalidRequest(format!("response: {e}")));
                match codec::encode(&fallback, &frame) {
                    Ok(f) => f,
                    Err(_) => return,
                }
            }
        };
        if conn.send_frame(&encoded).is_err() {
            return;
        }
    }
}

/// Dispatches one decoded message against the worker's service.
fn handle_message(service: &Service<String>, msg: WireMessage) -> WireMessage {
    match msg {
        WireMessage::Request(req) => match service.handle(req) {
            Ok(resp) => WireMessage::Ok(resp),
            Err(e) => WireMessage::Err(e),
        },
        WireMessage::Ping { seq } => WireMessage::Pong { seq },
        WireMessage::RegisterPinned {
            name,
            graph,
            compression,
        } => {
            let parsed = phom_graph::serialize::from_snapshot(graph)
                .map_err(|e| ServiceError::SnapshotCorrupt(format!("pinned register: {e}")));
            match parsed {
                Ok(g) => match service.register_pinned(name, Arc::new(g), compression) {
                    Ok(info) => WireMessage::Ok(Response::Registered(info)),
                    Err(e) => WireMessage::Err(e),
                },
                Err(e) => WireMessage::Err(e),
            }
        }
        WireMessage::Ok(_) | WireMessage::Err(_) | WireMessage::Pong { .. } => WireMessage::Err(
            ServiceError::InvalidRequest("response message sent to a worker".into()),
        ),
    }
}

// Re-exported for the CLI's worker mode.
pub use phom_service::ServiceConfig;

/// Convenience: a service + worker pair for tests and the CLI — builds
/// the `Service<String>` from `config` and serves it on `listener`.
pub fn spawn_service(
    config: ServiceConfig,
    listener: Box<dyn Listener>,
    options: WorkerOptions,
) -> (Arc<Service<String>>, WorkerServer) {
    let service = Arc::new(Service::new(config));
    let server = WorkerServer::spawn(Arc::clone(&service), listener, options);
    (service, server)
}
