//! Enumeration of total (1-1) p-hom mappings — the constructive
//! counterpart of [`crate::exact::count_phom_mappings`].
//!
//! Where the counter answers *how many* ways `G1 ≼(e,p) G2`, this module
//! materializes the mappings themselves (up to a caller-set limit), which
//! is what an analyst inspects when a match is surprising: on the
//! Appendix A gadgets, each enumerated mapping *is* one satisfying
//! assignment / exact cover. Exponential like the decision problem;
//! intended for small graphs and diagnostics.

use crate::mapping::PHomMapping;
use phom_graph::{DiGraph, NodeId, ReachabilityIndex, TransitiveClosure};
use phom_sim::SimMatrix;

/// Enumerates total (entire-pattern) p-hom mappings from `g1` to `g2`,
/// stopping after `limit` mappings. Deterministic order: pattern nodes
/// are assigned in fail-first order, candidates in ascending id.
///
/// `limit = usize::MAX` enumerates everything; `limit = 1` is an
/// alternative to [`crate::exact::decide_phom`] that returns the
/// lexicographically first witness under the search order.
pub fn enumerate_phom_mappings<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mat: &SimMatrix,
    xi: f64,
    injective: bool,
    limit: usize,
) -> Vec<PHomMapping> {
    let closure = TransitiveClosure::new(g2);
    enumerate_phom_mappings_with(g1, &closure, mat, xi, injective, limit)
}

/// [`enumerate_phom_mappings`] with a precomputed reachability index over
/// `G2` (pass a [`TransitiveClosure::bounded`] closure for bounded-stretch
/// enumeration).
pub fn enumerate_phom_mappings_with<L>(
    g1: &DiGraph<L>,
    closure: &dyn ReachabilityIndex,
    mat: &SimMatrix,
    xi: f64,
    injective: bool,
    limit: usize,
) -> Vec<PHomMapping> {
    let n1 = g1.node_count();
    if limit == 0 {
        return Vec::new();
    }
    if n1 == 0 {
        return vec![PHomMapping::empty(0)];
    }

    let cands: Vec<Vec<NodeId>> = g1
        .nodes()
        .map(|v| mat.candidates(v, xi).collect())
        .collect();
    if cands.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let mut order: Vec<NodeId> = g1.nodes().collect();
    order.sort_by_key(|v| (cands[v.index()].len(), v.0));

    struct Ctx<'a, L> {
        g1: &'a DiGraph<L>,
        closure: &'a dyn ReachabilityIndex,
        cands: Vec<Vec<NodeId>>,
        order: Vec<NodeId>,
        injective: bool,
        limit: usize,
    }

    /// The p-hom consistency check against already-assigned neighbours.
    fn consistent<L>(ctx: &Ctx<'_, L>, assign: &[Option<NodeId>], v: NodeId, u: NodeId) -> bool {
        if ctx.injective && assign.iter().flatten().any(|&x| x == u) {
            return false;
        }
        if ctx.g1.has_edge(v, v) && !ctx.closure.reaches(u, u) {
            return false;
        }
        for &child in ctx.g1.post(v) {
            if child == v {
                continue;
            }
            if let Some(cu) = assign[child.index()] {
                if !ctx.closure.reaches(u, cu) {
                    return false;
                }
            }
        }
        for &parent in ctx.g1.prev(v) {
            if parent == v {
                continue;
            }
            if let Some(pu) = assign[parent.index()] {
                if !ctx.closure.reaches(pu, u) {
                    return false;
                }
            }
        }
        true
    }

    fn walk<L>(
        ctx: &Ctx<'_, L>,
        depth: usize,
        assign: &mut Vec<Option<NodeId>>,
        out: &mut Vec<PHomMapping>,
    ) {
        if out.len() >= ctx.limit {
            return;
        }
        let Some(&v) = ctx.order.get(depth) else {
            out.push(PHomMapping::from_pairs(
                assign.len(),
                assign
                    .iter()
                    .enumerate()
                    // phom-lint: allow(unwrap, "depth == order.len() means every pattern node received an assignment")
                    .map(|(i, u)| (NodeId(i as u32), u.expect("total assignment"))),
            ));
            return;
        };
        for idx in 0..ctx.cands[v.index()].len() {
            let u = ctx.cands[v.index()][idx];
            if consistent(ctx, assign, v, u) {
                assign[v.index()] = Some(u);
                walk(ctx, depth + 1, assign, out);
                assign[v.index()] = None;
                if out.len() >= ctx.limit {
                    return;
                }
            }
        }
    }

    let ctx = Ctx {
        g1,
        closure,
        cands,
        order,
        injective,
        limit,
    };
    let mut assign = vec![None; n1];
    let mut out = Vec::new();
    walk(&ctx, 0, &mut assign, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_phom_mappings;
    use crate::mapping::verify_phom;
    use phom_graph::graph_from_labels;

    #[test]
    fn empty_pattern_has_exactly_the_empty_mapping() {
        let g1: DiGraph<String> = DiGraph::new();
        let g2 = graph_from_labels(&["a"], &[]);
        let ms = enumerate_phom_mappings(&g1, &g2, &SimMatrix::new(0, 1), 0.5, false, 100);
        assert_eq!(ms.len(), 1);
        assert!(ms[0].is_empty());
    }

    #[test]
    fn fig2_g1_g2_has_two_phom_mappings() {
        // Fig. 2: G1 (A->B, A->C with two A nodes) style example — here a
        // simple pattern with one choice point: C maps to either C node.
        let g1 = graph_from_labels(&["A", "B", "C"], &[("A", "B"), ("B", "C")]);
        let g2 = graph_from_labels(
            &["A", "B", "C", "C2"],
            &[("A", "B"), ("B", "C"), ("B", "C2")],
        );
        let mat = SimMatrix::from_fn(3, 4, |v, u| {
            let a = g1.label(v);
            let b = g2.label(u).trim_end_matches('2');
            if a == b {
                1.0
            } else {
                0.0
            }
        });
        let ms = enumerate_phom_mappings(&g1, &g2, &mat, 0.5, false, usize::MAX);
        assert_eq!(ms.len(), 2, "C has two images");
        let closure = TransitiveClosure::new(&g2);
        for m in &ms {
            assert_eq!(m.len(), 3, "total mappings only");
            verify_phom(&g1, m, &mat, 0.5, &closure, false).expect("valid");
        }
        assert_ne!(ms[0], ms[1]);
    }

    #[test]
    fn limit_truncates_enumeration() {
        let g1 = graph_from_labels(&["x"], &[]);
        let g2 = graph_from_labels(&["x1", "x2", "x3"], &[]);
        let all = enumerate_phom_mappings(
            &g1,
            &g2,
            &SimMatrix::from_fn(1, 3, |_, _| 1.0),
            0.5,
            false,
            100,
        );
        assert_eq!(all.len(), 3);
        let two = enumerate_phom_mappings(
            &g1,
            &g2,
            &SimMatrix::from_fn(1, 3, |_, _| 1.0),
            0.5,
            false,
            2,
        );
        assert_eq!(two.len(), 2);
        let none = enumerate_phom_mappings(
            &g1,
            &g2,
            &SimMatrix::from_fn(1, 3, |_, _| 1.0),
            0.5,
            false,
            0,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn injective_mode_prunes_shared_images() {
        let g1 = graph_from_labels(&["a", "b"], &[]);
        let g2 = graph_from_labels(&["x"], &[]);
        let mat = SimMatrix::from_fn(2, 1, |_, _| 1.0);
        assert_eq!(
            enumerate_phom_mappings(&g1, &g2, &mat, 0.5, false, 100).len(),
            1
        );
        assert!(enumerate_phom_mappings(&g1, &g2, &mat, 0.5, true, 100).is_empty());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_pair() -> impl Strategy<Value = (DiGraph<u8>, DiGraph<u8>)> {
            let g = |n_max: usize, e_max: usize| {
                (
                    1usize..n_max,
                    proptest::collection::vec((0usize..10, 0usize..10), 0..e_max),
                )
                    .prop_map(|(n, raw)| {
                        let mut g = DiGraph::with_capacity(n);
                        for i in 0..n {
                            g.add_node((i % 3) as u8);
                        }
                        for (a, b) in raw {
                            g.add_edge(NodeId((a % n) as u32), NodeId((b % n) as u32));
                        }
                        g
                    })
            };
            (g(5, 8), g(7, 14))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Enumeration cardinality equals the model count, and every
            /// enumerated mapping is valid and distinct.
            #[test]
            fn prop_enumeration_matches_count(
                (g1, g2) in arb_pair(),
                injective in any::<bool>(),
            ) {
                let mat = SimMatrix::label_equality(&g1, &g2);
                let count = count_phom_mappings(&g1, &g2, &mat, 1.0, injective);
                prop_assume!(count <= 2000);
                let ms = enumerate_phom_mappings(&g1, &g2, &mat, 1.0, injective, usize::MAX);
                prop_assert_eq!(ms.len() as u64, count);
                let closure = TransitiveClosure::new(&g2);
                for m in &ms {
                    prop_assert_eq!(m.len(), g1.node_count());
                    prop_assert!(verify_phom(&g1, m, &mat, 1.0, &closure, injective).is_ok());
                }
                let mut uniq: Vec<Vec<(NodeId, NodeId)>> =
                    ms.iter().map(|m| m.pairs().collect()).collect();
                uniq.sort();
                uniq.dedup();
                prop_assert_eq!(uniq.len(), ms.len(), "no duplicates");
            }
        }
    }
}
