//! The NP-hardness gadget constructions of Appendix A:
//!
//! * [`three_sat_to_phom`] — the reduction from 3SAT to the p-hom decision
//!   problem (proof of Theorem 4.1(a), Fig. 7): `φ` is satisfiable iff
//!   `G1 ≼(e,p) G2`;
//! * [`x3c_to_one_one_phom`] — the reduction from Exact Cover by 3-Sets to
//!   the 1-1 p-hom problem (proof of Theorem 4.1(b), Fig. 8).
//!
//! Besides documenting the proofs executably, these gadgets serve as
//! adversarial workloads: they are exactly the instances on which greedy
//! matching must make globally consistent choices.

use phom_graph::{DiGraph, NodeId};
use phom_sim::SimMatrix;

/// A literal: variable index (0-based) plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// Variable index `x_i`.
    pub var: usize,
    /// True for a negated occurrence `¬x_i`.
    pub negated: bool,
}

impl Lit {
    /// Positive literal.
    pub fn pos(var: usize) -> Self {
        Self {
            var,
            negated: false,
        }
    }

    /// Negative literal.
    pub fn neg(var: usize) -> Self {
        Self { var, negated: true }
    }

    /// Evaluates under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var] != self.negated
    }
}

/// A 3-CNF formula: clauses of exactly three literals over `num_vars`
/// variables.
#[derive(Debug, Clone)]
pub struct Cnf3 {
    /// Number of variables `m`.
    pub num_vars: usize,
    /// The clauses `C_1 .. C_n`.
    pub clauses: Vec<[Lit; 3]>,
}

impl Cnf3 {
    /// Evaluates the formula under an assignment.
    ///
    /// # Panics
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Brute-force satisfiability (test oracle; `O(2^m)`).
    pub fn brute_force_satisfiable(&self) -> Option<Vec<bool>> {
        let m = self.num_vars;
        assert!(m <= 24, "brute force capped at 24 variables");
        for mask in 0u32..(1u32 << m) {
            let assignment: Vec<bool> = (0..m).map(|i| mask & (1 << i) != 0).collect();
            if self.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }
}

/// The 3SAT → p-hom instance of Theorem 4.1(a).
#[derive(Debug, Clone)]
pub struct PhomSatInstance {
    /// The pattern DAG `G1` (root, variable nodes, clause nodes).
    pub g1: DiGraph<String>,
    /// The data DAG `G2` (root, T/F, XT/XF nodes, clause-assignment nodes).
    pub g2: DiGraph<String>,
    /// The similarity matrix of the reduction (0/1-valued).
    pub mat: SimMatrix,
    /// The threshold `ξ = 1`.
    pub xi: f64,
    /// `g1` node of variable `x_i`.
    pub var_nodes: Vec<NodeId>,
    /// `g2` node `XT_i` (assign true) per variable.
    pub xt_nodes: Vec<NodeId>,
    /// `g2` node `XF_i` (assign false) per variable.
    pub xf_nodes: Vec<NodeId>,
}

impl PhomSatInstance {
    /// Decodes a full p-hom mapping back into a truth assignment
    /// (the "g" direction of the proof).
    pub fn decode_assignment(&self, mapping: &crate::mapping::PHomMapping) -> Vec<bool> {
        self.var_nodes
            .iter()
            .enumerate()
            .map(|(i, &xv)| {
                // phom-lint: allow(unwrap, "decoder contract: the mapping is a valid solution of the reduction instance (Theorem 4.1 proof direction)")
                let img = mapping.get(xv).expect("variable node mapped");
                if img == self.xt_nodes[i] {
                    true
                } else if img == self.xf_nodes[i] {
                    false
                } else {
                    // phom-lint: allow(unwrap, "decoder contract: a valid solution maps variable gadgets onto assignment nodes only")
                    panic!("variable {i} mapped to a non-assignment node {img:?}")
                }
            })
            .collect()
    }
}

/// Builds the Theorem 4.1(a) reduction: `φ` satisfiable iff
/// `G1 ≼(e,p) G2` with `ξ = 1`.
pub fn three_sat_to_phom(phi: &Cnf3) -> PhomSatInstance {
    let m = phi.num_vars;
    let n = phi.clauses.len();

    // --- G1: root R1 -> X_i; X_{p_jk} -> C_j for occurrences. ---
    let mut g1: DiGraph<String> = DiGraph::with_capacity(1 + m + n);
    let r1 = g1.add_node("R1".into());
    let var_nodes: Vec<NodeId> = (0..m).map(|i| g1.add_node(format!("X{i}"))).collect();
    let clause_nodes: Vec<NodeId> = (0..n).map(|j| g1.add_node(format!("C{j}"))).collect();
    for &xv in &var_nodes {
        g1.add_edge(r1, xv);
    }
    for (j, clause) in phi.clauses.iter().enumerate() {
        for lit in clause {
            g1.add_edge(var_nodes[lit.var], clause_nodes[j]);
        }
    }

    // --- G2: R2 -> {T, F}; T -> XT_i, F -> XF_i; assignment nodes. ---
    let mut g2: DiGraph<String> = DiGraph::new();
    let r2 = g2.add_node("R2".into());
    let t = g2.add_node("T".into());
    let f = g2.add_node("F".into());
    g2.add_edge(r2, t);
    g2.add_edge(r2, f);
    let xt_nodes: Vec<NodeId> = (0..m)
        .map(|i| {
            let x = g2.add_node(format!("XT{i}"));
            g2.add_edge(t, x);
            x
        })
        .collect();
    let xf_nodes: Vec<NodeId> = (0..m)
        .map(|i| {
            let x = g2.add_node(format!("XF{i}"));
            g2.add_edge(f, x);
            x
        })
        .collect();

    // For each clause C_j and each of the 8 truth assignments ρ of its three
    // variables, a node C_j(ρ); edges from XT/XF per ρ only when ρ makes
    // C_j true.
    let mut clause_rho_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    for (j, clause) in phi.clauses.iter().enumerate() {
        let mut rho_nodes = Vec::with_capacity(8);
        for rho in 0u8..8 {
            let node = g2.add_node(format!("{}_{j}", rho));
            rho_nodes.push(node);
            // Bit k of rho = value assigned to the k-th literal's variable.
            // ρ must be a *function of the variables*: positions sharing a
            // variable need equal bits, otherwise this ρ is not a truth
            // assignment and gets no incoming edges (so it can never be the
            // image of C_j — every clause node has variable in-edges in G1).
            let values = |k: usize| rho & (1 << k) != 0;
            let consistent = (0..3).all(|k| {
                (k + 1..3).all(|l| clause[k].var != clause[l].var || values(k) == values(l))
            });
            let satisfied = clause
                .iter()
                .enumerate()
                .any(|(k, lit)| values(k) != lit.negated);
            if consistent && satisfied {
                for (k, lit) in clause.iter().enumerate() {
                    let from = if values(k) {
                        xt_nodes[lit.var]
                    } else {
                        xf_nodes[lit.var]
                    };
                    g2.add_edge(from, node);
                }
            }
        }
        clause_rho_nodes.push(rho_nodes);
    }

    // --- mat(): R1~R2; X_i ~ XT_i, XF_i; C_j ~ all C_j(ρ). ---
    let mut mat = SimMatrix::new(g1.node_count(), g2.node_count());
    mat.set(r1, r2, 1.0);
    for i in 0..m {
        mat.set(var_nodes[i], xt_nodes[i], 1.0);
        mat.set(var_nodes[i], xf_nodes[i], 1.0);
    }
    for j in 0..n {
        for &rn in &clause_rho_nodes[j] {
            mat.set(clause_nodes[j], rn, 1.0);
        }
    }

    PhomSatInstance {
        g1,
        g2,
        mat,
        xi: 1.0,
        var_nodes,
        xt_nodes,
        xf_nodes,
    }
}

/// An X3C instance: universe `{0, .., 3q-1}` and a collection of 3-element
/// subsets.
#[derive(Debug, Clone)]
pub struct X3cInstance {
    /// `q`: the exact cover must use exactly `q` subsets.
    pub q: usize,
    /// The 3-element subsets (each sorted, elements `< 3q`).
    pub sets: Vec<[usize; 3]>,
}

impl X3cInstance {
    /// Brute-force exact-cover check (test oracle; `O(2^n)`).
    pub fn brute_force_cover(&self) -> Option<Vec<usize>> {
        let n = self.sets.len();
        assert!(n <= 20, "brute force capped at 20 subsets");
        'outer: for mask in 0u32..(1u32 << n) {
            if (mask.count_ones() as usize) != self.q {
                continue;
            }
            let mut seen = vec![false; 3 * self.q];
            for (i, set) in self.sets.iter().enumerate() {
                if mask & (1 << i) == 0 {
                    continue;
                }
                for &x in set {
                    if seen[x] {
                        continue 'outer;
                    }
                    seen[x] = true;
                }
            }
            if seen.iter().all(|&s| s) {
                return Some((0..n).filter(|i| mask & (1 << i) != 0).collect());
            }
        }
        None
    }
}

/// The X3C → 1-1 p-hom instance of Theorem 4.1(b).
#[derive(Debug, Clone)]
pub struct OneOnePhomX3cInstance {
    /// The pattern tree `G1` (root, q subset slots, 3q element slots).
    pub g1: DiGraph<String>,
    /// The data DAG `G2` (root, the n subsets, the 3q elements).
    pub g2: DiGraph<String>,
    /// The reduction's similarity matrix.
    pub mat: SimMatrix,
    /// `ξ = 1`.
    pub xi: f64,
    /// Subset-slot nodes `C'_1..C'_q` in `g1`.
    pub slot_nodes: Vec<NodeId>,
    /// Subset nodes `C_1..C_n` in `g2` (index = subset index).
    pub set_nodes: Vec<NodeId>,
}

impl OneOnePhomX3cInstance {
    /// Decodes a 1-1 p-hom mapping into the chosen sub-collection `S'`.
    pub fn decode_cover(&self, mapping: &crate::mapping::PHomMapping) -> Vec<usize> {
        self.slot_nodes
            .iter()
            .map(|&slot| {
                // phom-lint: allow(unwrap, "decoder contract: the mapping is a valid solution of the reduction instance (Theorem 4.1 proof direction)")
                let img = mapping.get(slot).expect("slot mapped");
                self.set_nodes
                    .iter()
                    .position(|&s| s == img)
                    // phom-lint: allow(unwrap, "decoder contract: a valid solution maps slot gadgets onto subset nodes only")
                    .expect("slot mapped to a subset node")
            })
            .collect()
    }
}

/// Builds the Theorem 4.1(b) reduction: an exact cover exists iff
/// `G1 ≼1-1 G2` with `ξ = 1`.
pub fn x3c_to_one_one_phom(inst: &X3cInstance) -> OneOnePhomX3cInstance {
    let q = inst.q;
    let n = inst.sets.len();

    // --- G1: R1 -> C'_i -> {X'_i1, X'_i2, X'_i3}, a tree. ---
    let mut g1: DiGraph<String> = DiGraph::with_capacity(1 + q + 3 * q);
    let r1 = g1.add_node("R1".into());
    let mut slot_nodes = Vec::with_capacity(q);
    let mut slot_children = Vec::with_capacity(q);
    for i in 0..q {
        let c = g1.add_node(format!("C'{i}"));
        g1.add_edge(r1, c);
        slot_nodes.push(c);
        let kids: Vec<NodeId> = (0..3)
            .map(|k| {
                let x = g1.add_node(format!("X'{i}_{k}"));
                g1.add_edge(c, x);
                x
            })
            .collect();
        slot_children.push(kids);
    }

    // --- G2: R2 -> C_i -> its three elements (elements shared). ---
    let mut g2: DiGraph<String> = DiGraph::with_capacity(1 + n + 3 * q);
    let r2 = g2.add_node("R2".into());
    let elem_nodes: Vec<NodeId> = (0..3 * q).map(|x| g2.add_node(format!("X{x}"))).collect();
    let mut set_nodes = Vec::with_capacity(n);
    for (i, set) in inst.sets.iter().enumerate() {
        let c = g2.add_node(format!("C{i}"));
        g2.add_edge(r2, c);
        for &x in set {
            g2.add_edge(c, elem_nodes[x]);
        }
        set_nodes.push(c);
    }

    // --- mat(): R1~R2; C'_i ~ every C_j; X'_ik ~ every element. ---
    let mut mat = SimMatrix::new(g1.node_count(), g2.node_count());
    mat.set(r1, r2, 1.0);
    for &slot in &slot_nodes {
        for &set in &set_nodes {
            mat.set(slot, set, 1.0);
        }
    }
    for kids in &slot_children {
        for &kid in kids {
            for &e in &elem_nodes {
                mat.set(kid, e, 1.0);
            }
        }
    }

    OneOnePhomX3cInstance {
        g1,
        g2,
        mat,
        xi: 1.0,
        slot_nodes,
        set_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::decide_phom;

    #[test]
    fn paper_example_sat_instance() {
        // φ = C1 ∧ C2, C1 = x1 ∨ ¬x2 ∨ x3, C2 = ¬x2 ∨ x3 ∨ x4 (Fig. 7,
        // 0-indexed). Satisfiable.
        let phi = Cnf3 {
            num_vars: 4,
            clauses: vec![
                [Lit::pos(0), Lit::neg(1), Lit::pos(2)],
                [Lit::neg(1), Lit::pos(2), Lit::pos(3)],
            ],
        };
        assert!(phi.brute_force_satisfiable().is_some());
        let inst = three_sat_to_phom(&phi);
        let m = decide_phom(&inst.g1, &inst.g2, &inst.mat, inst.xi, false)
            .expect("satisfiable formula must yield a p-hom mapping");
        let assignment = inst.decode_assignment(&m);
        assert!(phi.eval(&assignment), "decoded assignment satisfies φ");
    }

    #[test]
    fn unsatisfiable_formula_has_no_phom() {
        // (x0) ∧ (¬x0) padded to 3 literals with the same variable.
        let phi = Cnf3 {
            num_vars: 1,
            clauses: vec![
                [Lit::pos(0), Lit::pos(0), Lit::pos(0)],
                [Lit::neg(0), Lit::neg(0), Lit::neg(0)],
            ],
        };
        assert!(phi.brute_force_satisfiable().is_none());
        let inst = three_sat_to_phom(&phi);
        assert!(decide_phom(&inst.g1, &inst.g2, &inst.mat, inst.xi, false).is_none());
    }

    #[test]
    fn sat_gadget_graphs_are_dags() {
        let phi = Cnf3 {
            num_vars: 3,
            clauses: vec![[Lit::pos(0), Lit::pos(1), Lit::neg(2)]],
        };
        let inst = three_sat_to_phom(&phi);
        let s1 = phom_graph::tarjan_scc(&inst.g1);
        let s2 = phom_graph::tarjan_scc(&inst.g2);
        assert_eq!(s1.count(), inst.g1.node_count());
        assert_eq!(s2.count(), inst.g2.node_count());
    }

    #[test]
    fn paper_example_x3c_instance() {
        // The Fig. 8 instance: X = 6 elements, S = {C1, C2, C3};
        // C1 = {0,1,2}, C2 = {0,1,3}, C3 = {3,4,5}. Cover: {C1, C3}.
        let inst = X3cInstance {
            q: 2,
            sets: vec![[0, 1, 2], [0, 1, 3], [3, 4, 5]],
        };
        let cover = inst.brute_force_cover().expect("cover exists");
        assert_eq!(cover, vec![0, 2]);
        let gadget = x3c_to_one_one_phom(&inst);
        let m = decide_phom(&gadget.g1, &gadget.g2, &gadget.mat, gadget.xi, true)
            .expect("exact cover must yield a 1-1 p-hom mapping");
        let mut decoded = gadget.decode_cover(&m);
        decoded.sort_unstable();
        assert_eq!(decoded, vec![0, 2], "the unique cover is recovered");
    }

    #[test]
    fn x3c_without_cover_has_no_one_one_phom() {
        // Two overlapping subsets cannot cover 6 elements.
        let inst = X3cInstance {
            q: 2,
            sets: vec![[0, 1, 2], [0, 1, 3]],
        };
        assert!(inst.brute_force_cover().is_none());
        let gadget = x3c_to_one_one_phom(&inst);
        assert!(decide_phom(&gadget.g1, &gadget.g2, &gadget.mat, gadget.xi, true).is_none());
    }

    #[test]
    fn x3c_gadget_is_tree_and_dag() {
        let inst = X3cInstance {
            q: 1,
            sets: vec![[0, 1, 2]],
        };
        let gadget = x3c_to_one_one_phom(&inst);
        // G1 is a tree: |E| = |V| - 1 and acyclic.
        assert_eq!(gadget.g1.edge_count(), gadget.g1.node_count() - 1);
        let s1 = phom_graph::tarjan_scc(&gadget.g1);
        assert_eq!(s1.count(), gadget.g1.node_count());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_cnf() -> impl Strategy<Value = Cnf3> {
            (2usize..5usize).prop_flat_map(|m| {
                proptest::collection::vec(
                    (
                        (0usize..5, any::<bool>()),
                        (0usize..5, any::<bool>()),
                        (0usize..5, any::<bool>()),
                    )
                        .prop_map(move |(a, b, c)| {
                            [
                                Lit {
                                    var: a.0 % m,
                                    negated: a.1,
                                },
                                Lit {
                                    var: b.0 % m,
                                    negated: b.1,
                                },
                                Lit {
                                    var: c.0 % m,
                                    negated: c.1,
                                },
                            ]
                        }),
                    1..5,
                )
                .prop_map(move |clauses| Cnf3 {
                    num_vars: m,
                    clauses,
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Theorem 4.1(a): φ satisfiable ⟺ G1 ≼(e,p) G2.
            #[test]
            fn prop_sat_reduction_is_faithful(phi in arb_cnf()) {
                let sat = phi.brute_force_satisfiable().is_some();
                let inst = three_sat_to_phom(&phi);
                let phom =
                    decide_phom(&inst.g1, &inst.g2, &inst.mat, inst.xi, false).is_some();
                prop_assert_eq!(sat, phom);
            }

            /// Round-trip: every witness mapping decodes to a satisfying
            /// assignment.
            #[test]
            fn prop_sat_witness_decodes(phi in arb_cnf()) {
                let inst = three_sat_to_phom(&phi);
                if let Some(m) =
                    decide_phom(&inst.g1, &inst.g2, &inst.mat, inst.xi, false)
                {
                    let a = inst.decode_assignment(&m);
                    prop_assert!(phi.eval(&a));
                }
            }
        }

        fn arb_x3c() -> impl Strategy<Value = X3cInstance> {
            (1usize..3usize).prop_flat_map(|q| {
                proptest::collection::vec(
                    proptest::sample::subsequence((0..3 * q).collect::<Vec<usize>>(), 3),
                    1..7,
                )
                .prop_map(move |subs| X3cInstance {
                    q,
                    sets: subs.into_iter().map(|s| [s[0], s[1], s[2]]).collect(),
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Theorem 4.1(b): exact cover ⟺ G1 ≼1-1 G2.
            #[test]
            fn prop_x3c_reduction_is_faithful(inst in arb_x3c()) {
                let cover = inst.brute_force_cover().is_some();
                let gadget = x3c_to_one_one_phom(&inst);
                let phom =
                    decide_phom(&gadget.g1, &gadget.g2, &gadget.mat, gadget.xi, true)
                        .is_some();
                prop_assert_eq!(cover, phom);
            }
        }
    }
}
