//! Symmetric matching (Remark of §3.2): (1-1) p-hom maps *edges* of `G1`
//! to *paths* of `G2`. To compare two graphs symmetrically — paths to
//! paths — compute the transitive closure `G1+` first and test
//! `G1+ ≼(e,p) G2`; for a two-way similarity verdict, test both directions.

use crate::mapping::PHomMapping;
use crate::optimize::{match_graphs, MatchOutcome, MatcherConfig};
use phom_graph::{DiGraph, TransitiveClosure};
use phom_sim::{NodeWeights, SimMatrix};

/// Matches `G1+` (paths of `G1`) against `G2` — the path-to-path variant.
pub fn match_paths<L: Clone + Sync>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mat: &SimMatrix,
    weights: &NodeWeights,
    cfg: &MatcherConfig,
) -> MatchOutcome {
    let g1_closure_graph = TransitiveClosure::new(g1).to_graph(g1);
    match_graphs(&g1_closure_graph, g2, mat, weights, cfg)
}

/// Result of a two-way (mutual) match.
#[derive(Debug, Clone)]
pub struct MutualOutcome {
    /// `G1+ ≼ G2` direction.
    pub forward: MatchOutcome,
    /// `G2+ ≼ G1` direction (with the transposed similarity matrix).
    pub backward: MatchOutcome,
}

impl MutualOutcome {
    /// The smaller of the two qualities (a symmetric similarity score in
    /// `[0, 1]`); pick `qual_card` or `qual_sim` via `by_sim`.
    pub fn symmetric_quality(&self, by_sim: bool) -> f64 {
        if by_sim {
            self.forward.qual_sim.min(self.backward.qual_sim)
        } else {
            self.forward.qual_card.min(self.backward.qual_card)
        }
    }
}

/// Two-way matching: `G1+ ≼ G2` and `G2+ ≼ G1`. The backward direction
/// reuses `mat` transposed and takes its own weights for `G2`'s nodes.
pub fn match_mutual<L: Clone + Sync>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mat: &SimMatrix,
    weights1: &NodeWeights,
    weights2: &NodeWeights,
    cfg: &MatcherConfig,
) -> MutualOutcome {
    let forward = match_paths(g1, g2, mat, weights1, cfg);
    let tmat = mat.transposed();
    let backward = match_paths(g2, g1, &tmat, weights2, cfg);
    MutualOutcome { forward, backward }
}

/// Convenience: is `mapping` total on the pattern? (Used when symmetric
/// matching is read as a yes/no "the sites mirror each other".)
pub fn is_total(mapping: &PHomMapping) -> bool {
    mapping.len() == mapping.pattern_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    #[test]
    fn path_variant_matches_transitive_pattern() {
        // G1 is a path a -> b -> c; in G1+ there is also a -> c. G2 provides
        // a -> b -> c, so a -> c maps to the 2-edge path: still matches.
        let g1 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let g2 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let mat = SimMatrix::label_equality(&g1, &g2);
        let w = NodeWeights::uniform(3);
        let out = match_paths(&g1, &g2, &mat, &w, &MatcherConfig::default());
        assert!((out.qual_card - 1.0).abs() < 1e-12);
        assert!(is_total(&out.mapping));
    }

    #[test]
    fn mutual_match_is_symmetric_for_isomorphic_graphs() {
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let mat = SimMatrix::label_equality(&g1, &g2);
        let w1 = NodeWeights::uniform(2);
        let w2 = NodeWeights::uniform(2);
        let out = match_mutual(&g1, &g2, &mat, &w1, &w2, &MatcherConfig::default());
        assert!((out.symmetric_quality(false) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mutual_match_detects_asymmetry() {
        // G2 has an extra node G1 knows nothing about: forward is total,
        // backward is not.
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "b", "extra"], &[("a", "b"), ("b", "extra")]);
        let mat = SimMatrix::label_equality(&g1, &g2);
        let w1 = NodeWeights::uniform(2);
        let w2 = NodeWeights::uniform(3);
        let out = match_mutual(&g1, &g2, &mat, &w1, &w2, &MatcherConfig::default());
        assert!((out.forward.qual_card - 1.0).abs() < 1e-12);
        assert!(out.backward.qual_card < 1.0);
        assert!(out.symmetric_quality(false) < 1.0);
    }
}
