//! Matching across *version sequences* — the Web-graph-sequence setting
//! the paper inherits from Papadimitriou et al. \[23\]: an archive holds
//! versions `G0, G1, .., Gk` of the same graph and one wants `G0 ≼ Gk`
//! without paying a full match against every distant version.
//!
//! Composition of p-hom mappings is *not* closed for partial mappings:
//! `σ1 : G0 ⇀ G1` sends an edge to a path in `G1`, but `σ2 : G1 ⇀ G2`
//! only guarantees images for the path's *endpoints* if its interior
//! nodes happen to be mapped. [`compose_mappings`] therefore composes
//! optimistically and then **repairs**: pairs violating the edge-to-path
//! condition are dropped greedily until the result verifies.

use crate::mapping::{verify_phom, PHomMapping};
use phom_graph::{DiGraph, NodeId, TransitiveClosure};
use phom_sim::SimMatrix;

/// Result of a composition.
#[derive(Debug, Clone)]
pub struct ComposedMapping {
    /// The repaired, valid mapping `G0 ⇀ G2`.
    pub mapping: PHomMapping,
    /// Pairs dropped during repair (composition broke their edges).
    pub dropped: usize,
}

/// Composes `σ2 ∘ σ1` and repairs it into a valid p-hom mapping w.r.t.
/// `mat02` / `xi` over `(g0, g2)`.
///
/// Repair loop: while some mapped edge of `g0` lacks a witness path in
/// `g2`, unmap the endpoint with the most violations (ties: larger node
/// id). Terminates in ≤ `|V0|` rounds; the result always verifies.
pub fn compose_mappings<L>(
    g0: &DiGraph<L>,
    g2: &DiGraph<L>,
    sigma1: &PHomMapping,
    sigma2: &PHomMapping,
    mat02: &SimMatrix,
    xi: f64,
    injective: bool,
) -> ComposedMapping {
    let closure2 = TransitiveClosure::new(g2);

    // Optimistic composition, with threshold and injectivity screening.
    let mut assign: Vec<Option<NodeId>> = vec![None; g0.node_count()];
    let mut used: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    for (v, mid) in sigma1.pairs() {
        let Some(u) = sigma2.get(mid) else { continue };
        if mat02.score(v, u) < xi {
            continue;
        }
        if injective && !used.insert(u) {
            continue;
        }
        if g0.has_self_loop(v) && !closure2.reaches(u, u) {
            continue;
        }
        assign[v.index()] = Some(u);
    }

    // Repair: drop the worst offender until no violations remain.
    let mut dropped = 0usize;
    loop {
        let mut violations = vec![0usize; g0.node_count()];
        let mut any = false;
        for v in g0.nodes() {
            let Some(u) = assign[v.index()] else { continue };
            for &v2 in g0.post(v) {
                if v2 == v {
                    continue;
                }
                if let Some(u2) = assign[v2.index()] {
                    if !closure2.reaches(u, u2) {
                        violations[v.index()] += 1;
                        violations[v2.index()] += 1;
                        any = true;
                    }
                }
            }
        }
        if !any {
            break;
        }
        let worst = (0..g0.node_count())
            .filter(|&v| assign[v].is_some())
            .max_by_key(|&v| (violations[v], v))
            // phom-lint: allow(unwrap, "any == true means a violation was counted on a mapped node this round")
            .expect("some node is mapped when violations exist");
        assign[worst] = None;
        dropped += 1;
    }

    let mapping = PHomMapping::from_pairs(
        g0.node_count(),
        assign
            .iter()
            .enumerate()
            .filter_map(|(v, u)| u.map(|u| (NodeId(v as u32), u))),
    );
    debug_assert_eq!(
        verify_phom(g0, &mapping, mat02, xi, &closure2, injective),
        Ok(())
    );
    ComposedMapping { mapping, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{comp_max_card, AlgoConfig};
    use phom_graph::graph_from_labels;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn total_compositions_stay_total() {
        // G0 = G1 = G2 = a path; identity mappings compose to identity.
        let g = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let id = PHomMapping::from_pairs(3, [(n(0), n(0)), (n(1), n(1)), (n(2), n(2))]);
        let mat = SimMatrix::label_equality(&g, &g);
        let c = compose_mappings(&g, &g, &id, &id, &mat, 0.5, true);
        assert_eq!(c.dropped, 0);
        assert_eq!(c.mapping.len(), 3);
    }

    #[test]
    fn composition_through_stretched_middle() {
        // G0: a -> b. G1 stretches it: a -> x -> b. G2 = G1.
        // σ1 maps a->a, b->b (path via x); σ2 identity on G1.
        let g0 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g1 = graph_from_labels(&["a", "x", "b"], &[("a", "x"), ("x", "b")]);
        let sigma1 = PHomMapping::from_pairs(2, [(n(0), n(0)), (n(1), n(2))]);
        let sigma2 = PHomMapping::from_pairs(3, [(n(0), n(0)), (n(1), n(1)), (n(2), n(2))]);
        let mat02 = SimMatrix::label_equality(&g0, &g1);
        let c = compose_mappings(&g0, &g1, &sigma1, &sigma2, &mat02, 0.5, true);
        assert_eq!(c.mapping.len(), 2);
        assert_eq!(c.dropped, 0);
    }

    #[test]
    fn repair_drops_broken_edges() {
        // σ1 and σ2 valid individually, but composition breaks the edge:
        // G1's witness path interior is REMAPPED by σ2 into a dead end.
        let g0 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let _g1 = graph_from_labels(&["a", "x", "b"], &[("a", "x"), ("x", "b")]);
        // G2: a and b exist but b is only reachable FROM x2, and a links
        // nowhere.
        let g2 = graph_from_labels(&["a", "b"], &[("b", "a")]);
        let sigma1 = PHomMapping::from_pairs(2, [(n(0), n(0)), (n(1), n(2))]);
        // σ2: a->a, b->b (valid for G1's *edges*? G1 edge (a,x): x unmapped
        // so no obligation; edge (x,b): x unmapped. Valid on its domain.)
        let sigma2 = PHomMapping::from_pairs(3, [(n(0), n(0)), (n(2), n(1))]);
        let mat02 = SimMatrix::label_equality(&g0, &g2);
        let c = compose_mappings(&g0, &g2, &sigma1, &sigma2, &mat02, 0.5, true);
        // Composed a->a, b->b violates edge (a, b): no path a ~> b in G2.
        assert_eq!(c.dropped, 1, "one endpoint dropped to repair");
        assert_eq!(c.mapping.len(), 1);
    }

    #[test]
    fn composition_respects_threshold() {
        let g0 = graph_from_labels(&["a"], &[]);
        let _g1 = graph_from_labels(&["a"], &[]);
        let g2 = graph_from_labels(&["a"], &[]);
        let sigma1 = PHomMapping::from_pairs(1, [(n(0), n(0))]);
        let sigma2 = PHomMapping::from_pairs(1, [(n(0), n(0))]);
        let mut mat02 = SimMatrix::label_equality(&g0, &g2);
        mat02.set(n(0), n(0), 0.4);
        let c = compose_mappings(&g0, &g2, &sigma1, &sigma2, &mat02, 0.5, false);
        assert!(c.mapping.is_empty(), "below-threshold pair never composed");
    }

    #[test]
    fn sequence_of_algorithm_outputs_composes() {
        // Chain three versions of a small graph through comp_max_card and
        // compose the two hops; the composed mapping must be valid and
        // usually large.
        let g0 = graph_from_labels(&["r", "a", "b", "c"], &[("r", "a"), ("a", "b"), ("b", "c")]);
        let g1 = graph_from_labels(
            &["r", "a", "x", "b", "c"],
            &[("r", "a"), ("a", "x"), ("x", "b"), ("b", "c")],
        );
        let g2 = graph_from_labels(
            &["r", "a", "x", "y", "b", "c"],
            &[("r", "a"), ("a", "x"), ("x", "y"), ("y", "b"), ("b", "c")],
        );
        let cfg = AlgoConfig::default();
        let m01 = SimMatrix::label_equality(&g0, &g1);
        let m12 = SimMatrix::label_equality(&g1, &g2);
        let m02 = SimMatrix::label_equality(&g0, &g2);
        let sigma1 = comp_max_card(&g0, &g1, &m01, &cfg);
        let sigma2 = comp_max_card(&g1, &g2, &m12, &cfg);
        let c = compose_mappings(&g0, &g2, &sigma1, &sigma2, &m02, 0.5, false);
        assert!(
            c.mapping.len() >= 3,
            "composed mapping covers most of G0: {:?}",
            c.mapping
        );
    }

    mod prop {
        use super::*;
        use crate::algo::comp_max_card;
        use proptest::prelude::*;

        fn arb_triple() -> impl Strategy<Value = (DiGraph<u8>, DiGraph<u8>, DiGraph<u8>)> {
            let g = |n: usize, edges: Vec<(usize, usize)>| {
                let mut g = DiGraph::with_capacity(n);
                for i in 0..n {
                    g.add_node((i % 3) as u8);
                }
                for (a, b) in edges {
                    g.add_edge(NodeId((a % n) as u32), NodeId((b % n) as u32));
                }
                g
            };
            (
                (
                    1usize..5,
                    proptest::collection::vec((0usize..5, 0usize..5), 0..8),
                ),
                (
                    1usize..6,
                    proptest::collection::vec((0usize..6, 0usize..6), 0..10),
                ),
                (
                    1usize..6,
                    proptest::collection::vec((0usize..6, 0usize..6), 0..10),
                ),
            )
                .prop_map(move |((n0, e0), (n1, e1), (n2, e2))| (g(n0, e0), g(n1, e1), g(n2, e2)))
        }

        proptest! {
            /// Whatever σ1, σ2 the algorithms produce, the composition is
            /// always repaired into a valid mapping.
            #[test]
            fn prop_composition_always_valid((g0, g1, g2) in arb_triple()) {
                let cfg = AlgoConfig::default();
                let m01 = SimMatrix::label_equality(&g0, &g1);
                let m12 = SimMatrix::label_equality(&g1, &g2);
                let m02 = SimMatrix::label_equality(&g0, &g2);
                let sigma1 = comp_max_card(&g0, &g1, &m01, &cfg);
                let sigma2 = comp_max_card(&g1, &g2, &m12, &cfg);
                for injective in [false, true] {
                    let c = compose_mappings(
                        &g0, &g2, &sigma1, &sigma2, &m02, 0.5, injective,
                    );
                    let closure = TransitiveClosure::new(&g2);
                    prop_assert_eq!(
                        verify_phom(&g0, &c.mapping, &m02, 0.5, &closure, injective),
                        Ok(())
                    );
                }
            }
        }
    }
}
