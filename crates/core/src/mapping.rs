//! P-hom mappings `σ` and the two quality metrics of §3.3:
//! maximum cardinality `qualCard` and overall similarity `qualSim`.

use phom_graph::{DiGraph, NodeId, ReachabilityIndex};
use phom_sim::{NodeWeights, SimMatrix};

/// A (partial) mapping `σ` from nodes of the pattern `G1` to nodes of the
/// data graph `G2`. `assign[v] = Some(u)` means `σ(v) = u`; unassigned
/// pattern nodes are outside the mapped subgraph `G1'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PHomMapping {
    assign: Vec<Option<NodeId>>,
}

impl PHomMapping {
    /// The empty mapping over `n1` pattern nodes.
    pub fn empty(n1: usize) -> Self {
        Self {
            assign: vec![None; n1],
        }
    }

    /// Builds a mapping from `(v, u)` pairs over `n1` pattern nodes.
    ///
    /// # Panics
    /// Panics if a pattern node is assigned twice.
    pub fn from_pairs(n1: usize, pairs: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut m = Self::empty(n1);
        for (v, u) in pairs {
            m.set(v, u);
        }
        m
    }

    /// Number of pattern nodes (`|V1|`, the `qualCard` denominator).
    pub fn pattern_size(&self) -> usize {
        self.assign.len()
    }

    /// Number of mapped pattern nodes (`|V1'|`).
    pub fn len(&self) -> usize {
        self.assign.iter().filter(|a| a.is_some()).count()
    }

    /// True when nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.assign.iter().all(|a| a.is_none())
    }

    /// `σ(v)`, if `v` is in the mapped subgraph.
    #[inline]
    pub fn get(&self, v: NodeId) -> Option<NodeId> {
        self.assign[v.index()]
    }

    /// Sets `σ(v) = u`.
    ///
    /// # Panics
    /// Panics if `v` is already assigned (mappings are built once).
    pub fn set(&mut self, v: NodeId, u: NodeId) {
        let slot = &mut self.assign[v.index()];
        assert!(slot.is_none(), "pattern node {v:?} assigned twice");
        *slot = Some(u);
    }

    /// Iterates over `(v, σ(v))` pairs in pattern-node order.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.assign
            .iter()
            .enumerate()
            .filter_map(|(v, a)| a.map(|u| (NodeId(v as u32), u)))
    }

    /// The mapped pattern nodes `V1'`.
    pub fn domain(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.pairs().map(|(v, _)| v)
    }

    /// True when no two pattern nodes share an image (1-1 / injective).
    pub fn is_injective(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.len());
        self.pairs().all(|(_, u)| seen.insert(u))
    }

    /// `qualCard(σ) = |V1'| / |V1|` (§3.3). Zero for an empty pattern.
    pub fn qual_card(&self) -> f64 {
        if self.assign.is_empty() {
            0.0
        } else {
            self.len() as f64 / self.assign.len() as f64
        }
    }

    /// `qualSim(σ) = Σ_{v∈V1'} w(v)·mat(v, σ(v)) / Σ_{v∈V1} w(v)` (§3.3).
    ///
    /// # Panics
    /// Panics if `weights` does not cover the pattern.
    pub fn qual_sim(&self, weights: &NodeWeights, mat: &SimMatrix) -> f64 {
        assert_eq!(weights.len(), self.assign.len(), "weights must cover V1");
        let denom = weights.total();
        if denom == 0.0 {
            return 0.0;
        }
        let num: f64 = self
            .pairs()
            .map(|(v, u)| weights.get(v) * mat.score(v, u))
            .sum();
        num / denom
    }

    /// Merges a mapping computed on a component back into `self`, where
    /// `old_of_new[nv]` gives the original id of component node `nv`
    /// (Appendix B partitioning, Proposition 1).
    pub fn absorb_renumbered(&mut self, part: &PHomMapping, old_of_new: &[NodeId]) {
        for (nv, u) in part.pairs() {
            self.set(old_of_new[nv.index()], u);
        }
    }
}

/// A reason why a candidate mapping is *not* a valid (1-1) p-hom mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// `mat(v, σ(v)) < ξ`.
    SimilarityBelowThreshold {
        /// Pattern node.
        v: NodeId,
        /// Its image.
        u: NodeId,
        /// The offending similarity value.
        score: f64,
    },
    /// Edge `(v, v')` of the mapped subgraph has no witness path
    /// `σ(v) ⇝ σ(v')` in `G2`.
    MissingPath {
        /// Edge source in the pattern.
        v: NodeId,
        /// Edge target in the pattern.
        v2: NodeId,
    },
    /// Two pattern nodes share an image (only checked in 1-1 mode).
    NotInjective {
        /// First pattern node.
        v1: NodeId,
        /// Second pattern node.
        v2: NodeId,
        /// The shared image.
        u: NodeId,
    },
}

/// Checks the p-hom conditions of §3.2 for `σ` restricted to its domain:
/// (1) `mat(v, σ(v)) ≥ ξ` for every mapped `v`; (2) every edge `(v, v')`
/// of `G1` with both ends mapped has a nonempty path
/// `σ(v) ⇝ σ(v')` in `G2`; and, when `injective`, (3) σ is 1-1.
///
/// `closure` must be a reachability index over `G2` (any
/// [`ReachabilityIndex`] backend — dense closure or chain index).
pub fn verify_phom<L>(
    g1: &DiGraph<L>,
    mapping: &PHomMapping,
    mat: &SimMatrix,
    xi: f64,
    closure: &dyn ReachabilityIndex,
    injective: bool,
) -> Result<(), Violation> {
    for (v, u) in mapping.pairs() {
        let score = mat.score(v, u);
        if score < xi {
            return Err(Violation::SimilarityBelowThreshold { v, u, score });
        }
    }
    for (v, u) in mapping.pairs() {
        for &v2 in g1.post(v) {
            if let Some(u2) = mapping.get(v2) {
                if !closure.reaches(u, u2) {
                    return Err(Violation::MissingPath { v, v2 });
                }
            }
        }
    }
    if injective {
        let mut owner: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
        for (v, u) in mapping.pairs() {
            if let Some(&v1) = owner.get(&u) {
                return Err(Violation::NotInjective { v1, v2: v, u });
            }
            owner.insert(u, v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::{graph_from_labels, TransitiveClosure};
    use phom_sim::SimMatrixBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_mapping_metrics() {
        let m = PHomMapping::empty(4);
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        assert_eq!(m.qual_card(), 0.0);
        assert!(m.is_injective());
    }

    #[test]
    fn qual_card_is_fraction_of_mapped_nodes() {
        let m =
            PHomMapping::from_pairs(5, [(n(0), n(0)), (n(1), n(3)), (n(2), n(1)), (n(4), n(2))]);
        assert_eq!(m.len(), 4);
        assert!(
            (m.qual_card() - 0.8).abs() < 1e-12,
            "Example 3.3(1): 4/5 = 0.8"
        );
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn double_assignment_rejected() {
        let mut m = PHomMapping::empty(2);
        m.set(n(0), n(1));
        m.set(n(0), n(0));
    }

    #[test]
    fn injectivity_detected() {
        let m = PHomMapping::from_pairs(3, [(n(0), n(1)), (n(1), n(1))]);
        assert!(!m.is_injective());
        let m2 = PHomMapping::from_pairs(3, [(n(0), n(1)), (n(1), n(2))]);
        assert!(m2.is_injective());
    }

    #[test]
    fn example_3_3_qual_sim() {
        // G5 nodes: A=0, v1=1 (B), v2=2 (B), D=3, E=4; G6 nodes: A=0, B=1, D=2, E=3.
        // Weights: 1 everywhere except w(v2) = 6.
        let weights = NodeWeights::from_vec(vec![1.0, 1.0, 6.0, 1.0, 1.0]);
        let mat = SimMatrixBuilder::new()
            .pair(n(0), n(0), 1.0) // A ~ A
            .pair(n(3), n(2), 1.0) // D ~ D
            .pair(n(4), n(3), 1.0) // E ~ E
            .pair(n(2), n(1), 1.0) // v2 ~ B
            .pair(n(1), n(1), 0.6) // v1 ~ B
            .build(5, 4);

        // σs maps A and v2 only: qualSim = (1*1 + 6*1) / 10 = 0.7.
        let sigma_s = PHomMapping::from_pairs(5, [(n(0), n(0)), (n(2), n(1))]);
        assert!((sigma_s.qual_sim(&weights, &mat) - 0.7).abs() < 1e-12);

        // σc maps A, v1, D, E: qualSim = (1 + 0.6 + 1 + 1) / 10 = 0.36.
        let sigma_c =
            PHomMapping::from_pairs(5, [(n(0), n(0)), (n(1), n(1)), (n(3), n(2)), (n(4), n(3))]);
        assert!((sigma_c.qual_sim(&weights, &mat) - 0.36).abs() < 1e-12);
        // σc maps more nodes but σs has higher overall similarity.
        assert!(sigma_c.qual_card() > sigma_s.qual_card());
        assert!(sigma_s.qual_sim(&weights, &mat) > sigma_c.qual_sim(&weights, &mat));
    }

    #[test]
    fn verify_accepts_edge_to_path() {
        // G1: a -> b. G2: a -> mid -> b (edge maps to a 2-edge path).
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "mid", "b"], &[("a", "mid"), ("mid", "b")]);
        let mat = SimMatrixBuilder::new()
            .pair(n(0), n(0), 1.0)
            .pair(n(1), n(2), 1.0)
            .build(2, 3);
        let closure = TransitiveClosure::new(&g2);
        let m = PHomMapping::from_pairs(2, [(n(0), n(0)), (n(1), n(2))]);
        assert_eq!(verify_phom(&g1, &m, &mat, 0.5, &closure, true), Ok(()));
    }

    #[test]
    fn verify_rejects_missing_path() {
        // G1: a -> b. G2: b -> a (wrong direction).
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "b"], &[("b", "a")]);
        let mat = SimMatrixBuilder::new()
            .pair(n(0), n(0), 1.0)
            .pair(n(1), n(1), 1.0)
            .build(2, 2);
        let closure = TransitiveClosure::new(&g2);
        let m = PHomMapping::from_pairs(2, [(n(0), n(0)), (n(1), n(1))]);
        assert_eq!(
            verify_phom(&g1, &m, &mat, 0.5, &closure, false),
            Err(Violation::MissingPath { v: n(0), v2: n(1) })
        );
    }

    #[test]
    fn verify_rejects_low_similarity() {
        let g1 = graph_from_labels(&["a"], &[]);
        let g2 = graph_from_labels(&["a"], &[]);
        let mat = SimMatrixBuilder::new().pair(n(0), n(0), 0.4).build(1, 1);
        let closure = TransitiveClosure::new(&g2);
        let m = PHomMapping::from_pairs(1, [(n(0), n(0))]);
        assert!(matches!(
            verify_phom(&g1, &m, &mat, 0.5, &closure, false),
            Err(Violation::SimilarityBelowThreshold { .. })
        ));
    }

    #[test]
    fn verify_rejects_non_injective_in_one_one_mode() {
        let g1 = graph_from_labels(&["a", "b"], &[]);
        let g2 = graph_from_labels(&["x"], &[]);
        let mat = SimMatrixBuilder::new()
            .pair(n(0), n(0), 1.0)
            .pair(n(1), n(0), 1.0)
            .build(2, 1);
        let closure = TransitiveClosure::new(&g2);
        let m = PHomMapping::from_pairs(2, [(n(0), n(0)), (n(1), n(0))]);
        assert_eq!(verify_phom(&g1, &m, &mat, 0.5, &closure, false), Ok(()));
        assert!(matches!(
            verify_phom(&g1, &m, &mat, 0.5, &closure, true),
            Err(Violation::NotInjective { .. })
        ));
    }

    #[test]
    fn unmapped_edge_endpoints_are_ignored() {
        // Edge (a, b) with only a mapped: no path obligation.
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a"], &[]);
        let mat = SimMatrixBuilder::new().pair(n(0), n(0), 1.0).build(2, 1);
        let closure = TransitiveClosure::new(&g2);
        let m = PHomMapping::from_pairs(2, [(n(0), n(0))]);
        assert_eq!(verify_phom(&g1, &m, &mat, 0.5, &closure, true), Ok(()));
    }

    #[test]
    fn absorb_renumbered_translates_component_ids() {
        let mut whole = PHomMapping::empty(5);
        let part = PHomMapping::from_pairs(2, [(n(0), n(7)), (n(1), n(9))]);
        whole.absorb_renumbered(&part, &[n(3), n(4)]);
        assert_eq!(whole.get(n(3)), Some(n(7)));
        assert_eq!(whole.get(n(4)), Some(n(9)));
        assert_eq!(whole.len(), 2);
    }
}
