//! The *naive* approximation algorithms sketched right after Theorem 5.1:
//! (1) materialize the product graph via reduction function `f`,
//! (2) run the independent-set machinery of \[7, 16\] on its complement,
//! (3) translate back with function `g`.
//!
//! They carry the same `O(log²(n₁n₂)/(n₁n₂))` guarantee as the direct
//! algorithms but pay for `O(|V1||V2|)` product vertices and up to
//! `O(|V1|²|V2|²)` edges — the ablation benches quantify exactly that gap
//! against `compMaxCard`, which operates on the matching lists directly.

use crate::mapping::PHomMapping;
use crate::product::ProductGraph;
use phom_graph::DiGraph;
use phom_sim::{NodeWeights, SimMatrix};
use phom_wis::{max_independent_set, weighted_independent_set};

/// Naive CPH / CPH¹⁻¹: product graph + `CliqueRemoval` on the complement.
pub fn naive_max_card<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mat: &SimMatrix,
    xi: f64,
    injective: bool,
) -> PHomMapping {
    let product = ProductGraph::build(g1, g2, mat, xi, injective);
    let complement = product.complement();
    let set = max_independent_set(&complement);
    debug_assert!(product.is_compatible_set(&set));
    product.extract_mapping(&set)
}

/// Naive SPH / SPH¹⁻¹: product graph + Halldórsson weighted IS on the
/// complement with weights `w(v)·mat(v, u)`.
pub fn naive_max_sim<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mat: &SimMatrix,
    weights: &NodeWeights,
    xi: f64,
    injective: bool,
) -> PHomMapping {
    let product = ProductGraph::build(g1, g2, mat, xi, injective);
    if product.vertices.is_empty() {
        return PHomMapping::empty(g1.node_count());
    }
    let complement = product.complement();
    let w = product.vertex_weights(mat, weights);
    let r = weighted_independent_set(&complement, &w);
    debug_assert!(product.is_compatible_set(&r.set));
    product.extract_mapping(&r.set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::verify_phom;
    use phom_graph::{graph_from_labels, NodeId, TransitiveClosure};

    #[test]
    fn naive_card_finds_full_mapping_on_easy_instance() {
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "x", "b"], &[("a", "x"), ("x", "b")]);
        let mat = SimMatrix::label_equality(&g1, &g2);
        let m = naive_max_card(&g1, &g2, &mat, 0.5, true);
        assert_eq!(m.len(), 2);
        assert!(m.is_injective());
    }

    #[test]
    fn naive_sim_respects_weights() {
        let g1 = graph_from_labels(&["a", "b"], &[]);
        let g2 = graph_from_labels(&["a", "b"], &[]);
        let mat = SimMatrix::label_equality(&g1, &g2);
        let w = NodeWeights::from_vec(vec![5.0, 1.0]);
        let m = naive_max_sim(&g1, &g2, &mat, &w, 0.5, false);
        // No conflicts here: both nodes map.
        assert!(m.get(NodeId(0)).is_some());
    }

    #[test]
    fn naive_empty_when_no_candidates() {
        let g1 = graph_from_labels(&["a"], &[]);
        let g2 = graph_from_labels(&["z"], &[]);
        let mat = SimMatrix::label_equality(&g1, &g2);
        assert!(naive_max_card(&g1, &g2, &mat, 0.5, false).is_empty());
        let w = NodeWeights::uniform(1);
        assert!(naive_max_sim(&g1, &g2, &mat, &w, 0.5, false).is_empty());
    }

    mod prop {
        use super::*;
        use crate::algo::{comp_max_card, AlgoConfig};
        use proptest::prelude::*;

        fn arb_pair() -> impl Strategy<Value = (DiGraph<u8>, DiGraph<u8>)> {
            (
                1usize..5,
                proptest::collection::vec((0usize..5, 0usize..5), 0..8),
                1usize..6,
                proptest::collection::vec((0usize..6, 0usize..6), 0..10),
            )
                .prop_map(|(n1, e1, n2, e2)| {
                    let mut g1 = DiGraph::with_capacity(n1);
                    for i in 0..n1 {
                        g1.add_node((i % 3) as u8);
                    }
                    for (a, b) in e1 {
                        g1.add_edge(NodeId((a % n1) as u32), NodeId((b % n1) as u32));
                    }
                    let mut g2 = DiGraph::with_capacity(n2);
                    for i in 0..n2 {
                        g2.add_node((i % 3) as u8);
                    }
                    for (a, b) in e2 {
                        g2.add_edge(NodeId((a % n2) as u32), NodeId((b % n2) as u32));
                    }
                    (g1, g2)
                })
        }

        proptest! {
            #[test]
            fn prop_naive_mappings_are_valid((g1, g2) in arb_pair()) {
                let mat = SimMatrix::label_equality(&g1, &g2);
                let closure = TransitiveClosure::new(&g2);
                let w = NodeWeights::uniform(g1.node_count());
                for injective in [false, true] {
                    let mc = naive_max_card(&g1, &g2, &mat, 0.5, injective);
                    prop_assert_eq!(
                        verify_phom(&g1, &mc, &mat, 0.5, &closure, injective), Ok(())
                    );
                    let ms = naive_max_sim(&g1, &g2, &mat, &w, 0.5, injective);
                    prop_assert_eq!(
                        verify_phom(&g1, &ms, &mat, 0.5, &closure, injective), Ok(())
                    );
                }
            }

            #[test]
            fn prop_naive_and_direct_are_both_nontrivial((g1, g2) in arb_pair()) {
                // Both carry the same guarantee; sanity: when any candidate
                // pair exists, both find a nonempty mapping.
                let mat = SimMatrix::label_equality(&g1, &g2);
                if mat.candidate_pair_count(0.5) == 0 { return Ok(()); }
                // A lone self-loop pattern node may kill all candidates for
                // both algorithms equally; compare emptiness instead.
                let naive = naive_max_card(&g1, &g2, &mat, 0.5, false);
                let direct = comp_max_card(&g1, &g2, &mat, &AlgoConfig::default());
                prop_assert_eq!(naive.is_empty(), direct.is_empty());
            }
        }
    }
}
