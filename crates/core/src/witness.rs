//! Witness extraction: a p-hom mapping asserts that every pattern edge has
//! a nonempty image path — this module *produces* those paths, which is
//! what downstream applications (site diffing, plagiarism reports) show to
//! users, and what the quickstart example prints.

use crate::mapping::PHomMapping;
use phom_graph::traversal::shortest_nonempty_path;
use phom_graph::{DiGraph, NodeId};

/// The witness path for one pattern edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWitness {
    /// Pattern edge source.
    pub from: NodeId,
    /// Pattern edge target.
    pub to: NodeId,
    /// Image path in the data graph, `[σ(from), .., σ(to)]`
    /// (length ≥ 2; a direct edge gives exactly 2 entries).
    pub path: Vec<NodeId>,
}

/// Extracts one shortest witness path per mapped pattern edge.
///
/// Returns `Err` with the offending edge when some mapped edge has no
/// witness — i.e. when `mapping` is *not* a valid p-hom mapping on its
/// domain (callers that ran `verify_phom` first will never see this).
pub fn edge_witnesses<L>(
    g1: &DiGraph<L>,
    g2: &DiGraph<L>,
    mapping: &PHomMapping,
) -> Result<Vec<EdgeWitness>, (NodeId, NodeId)> {
    let mut out = Vec::new();
    for (v, u) in mapping.pairs() {
        for &v2 in g1.post(v) {
            let Some(u2) = mapping.get(v2) else { continue };
            match shortest_nonempty_path(g2, u, u2) {
                Some(path) => out.push(EdgeWitness {
                    from: v,
                    to: v2,
                    path,
                }),
                None => return Err((v, v2)),
            }
        }
    }
    Ok(out)
}

/// Summary statistics over the witness paths of a mapping — the "how much
/// did edges stretch" signal that distinguishes a near-isomorphic match
/// from a heavily rerouted one.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchStats {
    /// Number of mapped pattern edges.
    pub edges: usize,
    /// Edges whose witness is a single data edge (no stretching).
    pub direct: usize,
    /// Maximum witness path length in edges.
    pub max_stretch: usize,
    /// Mean witness path length in edges.
    pub mean_stretch: f64,
}

/// Computes [`StretchStats`] for a valid mapping.
///
/// # Panics
/// Panics if the mapping is invalid (a mapped edge lacks a witness);
/// validate with `verify_phom` first.
pub fn stretch_stats<L>(g1: &DiGraph<L>, g2: &DiGraph<L>, mapping: &PHomMapping) -> StretchStats {
    let witnesses =
        // phom-lint: allow(unwrap, "doc contract: `# Panics` on invalid mappings; callers validate with verify_phom first")
        edge_witnesses(g1, g2, mapping).expect("stretch_stats requires a valid p-hom mapping");
    let edges = witnesses.len();
    if edges == 0 {
        return StretchStats {
            edges: 0,
            direct: 0,
            max_stretch: 0,
            mean_stretch: 0.0,
        };
    }
    let lengths: Vec<usize> = witnesses.iter().map(|w| w.path.len() - 1).collect();
    StretchStats {
        edges,
        direct: lengths.iter().filter(|&&l| l == 1).count(),
        max_stretch: lengths.iter().copied().max().unwrap_or(0),
        mean_stretch: lengths.iter().sum::<usize>() as f64 / edges as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phom_graph::graph_from_labels;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn direct_edge_witness() {
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let m = PHomMapping::from_pairs(2, [(n(0), n(0)), (n(1), n(1))]);
        let w = edge_witnesses(&g1, &g2, &m).expect("valid");
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].path, vec![n(0), n(1)]);
        let s = stretch_stats(&g1, &g2, &m);
        assert_eq!(s.direct, 1);
        assert_eq!(s.max_stretch, 1);
        assert!((s.mean_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stretched_edge_witness() {
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "x", "y", "b"], &[("a", "x"), ("x", "y"), ("y", "b")]);
        let m = PHomMapping::from_pairs(2, [(n(0), n(0)), (n(1), n(3))]);
        let w = edge_witnesses(&g1, &g2, &m).expect("valid");
        assert_eq!(w[0].path, vec![n(0), n(1), n(2), n(3)]);
        let s = stretch_stats(&g1, &g2, &m);
        assert_eq!(s.direct, 0);
        assert_eq!(s.max_stretch, 3);
    }

    #[test]
    fn invalid_mapping_reports_offending_edge() {
        let g1 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let g2 = graph_from_labels(&["a", "b"], &[("b", "a")]);
        let m = PHomMapping::from_pairs(2, [(n(0), n(0)), (n(1), n(1))]);
        assert_eq!(edge_witnesses(&g1, &g2, &m), Err((n(0), n(1))));
    }

    #[test]
    fn unmapped_endpoints_are_skipped() {
        let g1 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let g2 = graph_from_labels(&["a", "b"], &[("a", "b")]);
        let m = PHomMapping::from_pairs(3, [(n(0), n(0)), (n(1), n(1))]);
        let w = edge_witnesses(&g1, &g2, &m).expect("valid on domain");
        assert_eq!(w.len(), 1, "edge (b, c) has an unmapped endpoint");
    }

    #[test]
    fn empty_mapping_gives_empty_stats() {
        let g1 = graph_from_labels(&["a"], &[]);
        let g2 = graph_from_labels(&["a"], &[]);
        let m = PHomMapping::empty(1);
        let s = stretch_stats(&g1, &g2, &m);
        assert_eq!(s.edges, 0);
        assert_eq!(s.mean_stretch, 0.0);
    }

    #[test]
    fn witnesses_of_algorithm_output() {
        // End-to-end: run compMaxCard, then extract witnesses.
        use crate::algo::{comp_max_card, AlgoConfig};
        use phom_sim::SimMatrix;
        let g1 = graph_from_labels(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let g2 = graph_from_labels(&["a", "m", "b", "c"], &[("a", "m"), ("m", "b"), ("b", "c")]);
        let mat = SimMatrix::label_equality(&g1, &g2);
        let m = comp_max_card(&g1, &g2, &mat, &AlgoConfig::default());
        assert_eq!(m.len(), 3);
        let s = stretch_stats(&g1, &g2, &m);
        assert_eq!(s.edges, 2);
        assert_eq!(s.direct, 1, "b->c maps directly");
        assert_eq!(s.max_stretch, 2, "a->b stretches through m");
    }
}
